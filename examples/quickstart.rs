//! Quickstart: tune one benchmark and compare BinTuner's output against
//! the default optimization levels.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bintuner::{Tuner, TunerConfig};
use genetic::Termination;
use lzc::NcdBaseline;
use minicc::{Compiler, CompilerKind, OptLevel};

fn main() {
    // 1. Pick a benchmark from the corpus (the paper's LLVM showcase).
    let bench = corpus::by_name("462.libquantum").expect("benchmark exists");
    println!(
        "benchmark: {} ({} functions)",
        bench.name,
        bench.module.funcs.len()
    );

    // 2. Tune with the LLVM profile and a small GA budget.
    let config = TunerConfig {
        compiler: CompilerKind::Llvm,
        termination: Termination {
            max_evaluations: 150,
            min_evaluations: 100,
            plateau_window: 50,
            ..Default::default()
        },
        ..Default::default()
    };
    let tuner = Tuner::new(config);
    let result = tuner.tune(&bench.module).expect("tuning run");
    println!(
        "tuned in {} iterations (stopped by {:?}), best NCD vs -O0: {:.4}",
        result.iterations, result.stopped_by, result.best_ncd
    );

    // 3. Compare against the default levels.
    let cc = Compiler::new(CompilerKind::Llvm);
    let ncd = NcdBaseline::new(binrep::encode_binary(&result.baseline));
    for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::Os] {
        let bin = cc
            .compile_preset(&bench.module, level, binrep::Arch::X86)
            .expect("preset compiles");
        println!(
            "  {level}: NCD {:.4}",
            ncd.score(&binrep::encode_binary(&bin))
        );
    }
    println!(
        "  BinTuner: NCD {:.4}  <-- should be the largest",
        result.best_ncd
    );

    // 4. Functional correctness: the tuned binary behaves identically.
    for inputs in &bench.test_inputs {
        let base = emu::Machine::new(&result.baseline)
            .run(&[], inputs, 10_000_000)
            .expect("baseline runs");
        let tuned = emu::Machine::new(&result.best_binary)
            .run(&[], inputs, 10_000_000)
            .expect("tuned runs");
        assert_eq!(base.output, tuned.output);
    }
    println!("functional correctness: all test inputs produce identical output");

    // 5. What did the search pick? Show the enabled flags.
    let names = tuner.compiler().profile().enabled_names(&result.best_flags);
    println!(
        "{} flags enabled, e.g.: {:?}",
        names.len(),
        &names[..names.len().min(8)]
    );
}
