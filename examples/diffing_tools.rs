//! Reproduce the heart of the paper's §5.4: how well do prominent binary
//! diffing tools match functions across optimization settings — and how
//! badly does BinTuner break them compared to Obfuscator-LLVM?
//!
//! ```sh
//! cargo run --release --example diffing_tools
//! ```

use bintuner::{obfuscate, ObfuscatorConfig, Tuner, TunerConfig};
use difftools::{precision_at_1, Tool};
use genetic::Termination;
use minicc::{Compiler, CompilerKind, OptLevel};

fn main() {
    let bench = corpus::by_name("657.xz_s").expect("benchmark");
    let kind = CompilerKind::Llvm;
    let cc = Compiler::new(kind);
    let arch = binrep::Arch::X86;
    let o0 = cc
        .compile_preset(&bench.module, OptLevel::O0, arch)
        .unwrap();

    // The four settings of Figure 8(b).
    let o1 = cc
        .compile_preset(&bench.module, OptLevel::O1, arch)
        .unwrap();
    let o3 = cc
        .compile_preset(&bench.module, OptLevel::O3, arch)
        .unwrap();
    let ollvm = {
        let mut b = cc
            .compile_preset(&bench.module, OptLevel::O2, arch)
            .unwrap();
        obfuscate(&mut b, &ObfuscatorConfig::default());
        b
    };
    let tuned = Tuner::new(TunerConfig {
        compiler: kind,
        termination: Termination {
            max_evaluations: 100,
            min_evaluations: 70,
            plateau_window: 35,
            ..Default::default()
        },
        ..Default::default()
    })
    .tune(&bench.module)
    .expect("tuning run")
    .best_binary;

    println!("Precision@1 matching {} functions against -O0:", bench.name);
    println!(
        "{:>10} {:>6} {:>6} {:>8} {:>9}",
        "tool", "O1", "O3", "O-LLVM", "BinTuner"
    );
    for tool in Tool::ALL {
        let p = |bin: &binrep::Binary| precision_at_1(tool, &o0, bin, 99);
        println!(
            "{:>10} {:>6.2} {:>6.2} {:>8.2} {:>9.2}",
            tool.name(),
            p(&o1),
            p(&o3),
            p(&ollvm),
            p(&tuned)
        );
    }
    println!(
        "\nexpected shape: precision declines left to right; BinTuner rivals or\n\
         beats O-LLVM; IMF-SIM (blackbox I/O testing) stays the most robust."
    );
}
