//! Poke at the minicc compiler directly: build a small program in the
//! mini-C AST, compile it under different flags, and inspect what the
//! optimizations did to the machine code.
//!
//! ```sh
//! cargo run --release --example compiler_playground
//! ```

use minicc::ast::{BinOp, Expr, FuncDef, LValue, Module, Stmt};
use minicc::{Compiler, CompilerKind, OptLevel};

fn main() {
    // sum = Σ i∈[0,16) (a[i] * b[i]);  return sum / 255;
    let mut m = Module::new("playground");
    let mut f = FuncDef::new("main", vec![], vec![]);
    f.local("sum")
        .local("i")
        .local_array("a", 16)
        .local_array("b", 16);
    f.body = vec![
        Stmt::For {
            var: "i".into(),
            start: Expr::Const(0),
            end: Expr::Const(16),
            step: 1,
            body: vec![
                Stmt::Assign(
                    LValue::Index("a".into(), Expr::Var("i".into())),
                    Expr::vc(BinOp::Add, "i", 3),
                ),
                Stmt::Assign(
                    LValue::Index("b".into(), Expr::Var("i".into())),
                    Expr::vc(BinOp::Mul, "i", 5),
                ),
            ],
        },
        Stmt::Assign(LValue::Var("sum".into()), Expr::Const(0)),
        Stmt::For {
            var: "i".into(),
            start: Expr::Const(0),
            end: Expr::Const(16),
            step: 1,
            body: vec![Stmt::Assign(
                LValue::Var("sum".into()),
                Expr::bin(
                    BinOp::Add,
                    Expr::Var("sum".into()),
                    Expr::bin(
                        BinOp::Mul,
                        Expr::Index("a".into(), Box::new(Expr::Var("i".into()))),
                        Expr::Index("b".into(), Box::new(Expr::Var("i".into()))),
                    ),
                ),
            )],
        },
        Stmt::Return(Expr::vc(BinOp::Div, "sum", 255)),
    ];
    m.funcs.push(f);
    m.validate().expect("valid module");

    let cc = Compiler::new(CompilerKind::Gcc);
    for level in [OptLevel::O0, OptLevel::O2, OptLevel::O3] {
        let bin = cc
            .compile_preset(&m, level, binrep::Arch::X86)
            .expect("compiles");
        let hist = binrep::opcode_histogram(&bin);
        let code = binrep::encode_binary(&bin);
        let r = emu::Machine::new(&bin)
            .run(&[], &[], 100_000)
            .expect("runs");
        println!(
            "{level}: {} insns, {} blocks, {} bytes, result={} \
             (div present: {}, SIMD mul: {})",
            bin.insn_count(),
            bin.block_count(),
            code.len(),
            r.ret,
            hist.contains_key("udiv"),
            hist.contains_key("pmulld"),
        );
    }
    println!(
        "\nnote: at -O3 the division by 255 becomes a Granlund–Montgomery\n\
         multiply (no udiv) and the product loop vectorizes (pmulld)."
    );

    // Disassemble main's first blocks at O3 to see it with your own eyes.
    let o3 = cc
        .compile_preset(&m, OptLevel::O3, binrep::Arch::X86)
        .unwrap();
    let main = o3.function_by_name("main").unwrap();
    println!("\nmain at -O3, first two blocks:");
    for block in main.cfg.blocks.iter().take(2) {
        println!("{}:", block.id);
        for insn in &block.insns {
            println!("    {insn}");
        }
        println!("    ; -> {:?}", block.term.successors());
    }
}
