//! End-to-end pipeline tests spanning all crates: tuner → binhunt →
//! difftools → avscan, reproducing each paper claim's *shape* at test
//! scale.

use bintuner::{Tuner, TunerConfig};
use minicc::{Compiler, CompilerKind, OptLevel};

/// Shared deterministic preset (see `testutil`).
fn small(max: usize) -> TunerConfig {
    testutil::pipeline_tuner(max)
}

#[test]
fn tuned_binary_undermines_binhunt_more_than_o3() {
    // The paper's headline (Figure 5): BinTuner vs O0 > O3 vs O0.
    let bench = corpus::by_name("462.libquantum").unwrap();
    let cc = Compiler::new(CompilerKind::Gcc);
    let result = Tuner::new(small(90))
        .tune(&bench.module)
        .expect("tuning run");
    let o3 = cc
        .compile_preset(&bench.module, OptLevel::O3, binrep::Arch::X86)
        .unwrap();
    let d3 = binhunt::diff_binaries_with_beam(&result.baseline, &o3, 5).difference;
    let dt = binhunt::diff_binaries_with_beam(&result.baseline, &result.best_binary, 5).difference;
    assert!(
        dt >= d3 - 0.02,
        "BinTuner {dt:.3} should reach/beat O3 {d3:.3}"
    );
}

#[test]
fn tuned_binary_degrades_difftool_precision() {
    // Figure 8's shape: Precision@1 of a representative tool drops from
    // O1 to BinTuner.
    let bench = corpus::by_name("657.xz_s").unwrap();
    let cc = Compiler::new(CompilerKind::Gcc);
    let result = Tuner::new(small(80))
        .tune(&bench.module)
        .expect("tuning run");
    let o0 = &result.baseline;
    let o1 = cc
        .compile_preset(&bench.module, OptLevel::O1, binrep::Arch::X86)
        .unwrap();
    for tool in [difftools::Tool::Asm2Vec, difftools::Tool::CoP] {
        let p1 = difftools::precision_at_1(tool, o0, &o1, 5);
        let pt = difftools::precision_at_1(tool, o0, &result.best_binary, 5);
        assert!(
            pt <= p1 + 0.05,
            "{}: O1 {p1:.2} vs tuned {pt:.2}",
            tool.name()
        );
    }
}

#[test]
fn tuned_malware_evades_code_signatures() {
    // Table 2's shape: detection drops by more than a third (paper: more
    // than half at full budget) and data/API signatures survive.
    let bench = corpus::malware(corpus::MalwareFamily::LightAidra, 0);
    let cc = Compiler::new(CompilerKind::Gcc);
    let reference = cc
        .compile_preset(&bench.module, OptLevel::O2, binrep::Arch::X86)
        .unwrap();
    let ensemble = avscan::Ensemble::from_reference(&reference, 48, 11);
    let base_detections = ensemble.detection_count(&reference);
    let result = Tuner::new(small(70))
        .tune(&bench.module)
        .expect("tuning run");
    let tuned_detections = ensemble.detection_count(&result.best_binary);
    assert!(
        (tuned_detections as f64) < 0.67 * base_detections as f64,
        "tuned {tuned_detections} vs reference {base_detections}"
    );
    assert!(tuned_detections > 0, "data/API signatures must survive");
}

#[test]
fn ncd_correlates_with_binhunt_over_presets() {
    // The fitness-function sanity behind §4.2/Figure 10: NCD must track a
    // semantic differ across the whole difficulty spectrum. Correlating
    // only the four O0-vs-preset points saturates both metrics near their
    // ceiling (pure noise, n=4), so this pools *all* preset pairs — from
    // identical (distance ~0) to O0-vs-O3 — across several benchmarks.
    let mut ncds = Vec::new();
    let mut bhs = Vec::new();
    for name in ["429.mcf", "462.libquantum", "445.gobmk"] {
        let bench = corpus::by_name(name).unwrap();
        let cc = Compiler::new(CompilerKind::Gcc);
        let bins: Vec<_> = OptLevel::ALL
            .iter()
            .map(|&l| {
                cc.compile_preset(&bench.module, l, binrep::Arch::X86)
                    .unwrap()
            })
            .collect();
        for i in 0..bins.len() {
            for j in i..bins.len() {
                let ci = binrep::encode_binary(&bins[i]);
                let cj = binrep::encode_binary(&bins[j]);
                ncds.push(lzc::ncd(&ci, &cj));
                bhs.push(binhunt::diff_binaries(&bins[i], &bins[j]).difference);
            }
        }
    }
    let r = bintuner::pearson(&ncds, &bhs);
    assert!(
        r > 0.8,
        "Pearson(NCD, BinHunt) = {r:.2} over {} pairs",
        ncds.len()
    );
}

#[test]
fn database_records_full_trajectory() {
    let bench = corpus::by_name("473.astar").unwrap();
    let result = Tuner::new(small(50))
        .tune(&bench.module)
        .expect("tuning run");
    let rows = result.db.rows();
    assert_eq!(rows.len(), result.iterations);
    // best_ncd is monotone non-decreasing.
    for w in rows.windows(2) {
        assert!(w[1].best_ncd >= w[0].best_ncd - 1e-12);
    }
    // CSV export round-trips line count.
    assert_eq!(result.db.to_csv().lines().count(), rows.len() + 1);
}
