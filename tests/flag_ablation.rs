//! Per-flag ablation tests: each major optimization flag, enabled on top
//! of a fixed base configuration, must (a) leave semantics intact and
//! (b) leave its *structural signature* in the produced binary — the very
//! signatures §3 of the paper says break diffing assumptions.

use minicc::{Compiler, CompilerKind, OptLevel};
use testutil::observe;

fn base_flags(cc: &Compiler) -> Vec<bool> {
    cc.profile().preset(OptLevel::O1)
}

fn with_flag(cc: &Compiler, base: &[bool], name: &str) -> Vec<bool> {
    let mut f = base.to_vec();
    let i = cc
        .profile()
        .flag_index(name)
        .unwrap_or_else(|| panic!("flag {name} exists"));
    f[i] = true;
    cc.profile().constraints().repair(&f, 1)
}

struct Ablation {
    bench: corpus::Benchmark,
    cc: Compiler,
    base_bin: binrep::Binary,
    base: Vec<bool>,
    oracle: Vec<Vec<u32>>,
}

impl Ablation {
    fn new(name: &str) -> Ablation {
        let bench = corpus::by_name(name).unwrap();
        let cc = Compiler::new(CompilerKind::Gcc);
        let base = base_flags(&cc);
        let base_bin = cc.compile(&bench.module, &base, binrep::Arch::X86).unwrap();
        let oracle = bench
            .test_inputs
            .iter()
            .map(|i| observe(&base_bin, i))
            .collect();
        Ablation {
            bench,
            cc,
            base_bin,
            base,
            oracle,
        }
    }

    /// Enable `flag`, check semantics, return the new binary.
    fn enable(&self, flag: &str) -> binrep::Binary {
        let flags = with_flag(&self.cc, &self.base, flag);
        let bin = self
            .cc
            .compile(&self.bench.module, &flags, binrep::Arch::X86)
            .unwrap();
        for (inputs, want) in self.bench.test_inputs.iter().zip(&self.oracle) {
            assert_eq!(&observe(&bin, inputs), want, "{flag} broke semantics");
        }
        bin
    }
}

fn count_term(bin: &binrep::Binary, pred: impl Fn(&binrep::Terminator) -> bool) -> usize {
    bin.functions
        .iter()
        .flat_map(|f| f.cfg.blocks.iter())
        .filter(|b| pred(&b.term))
        .count()
}

#[test]
fn jump_tables_flag_creates_indirect_jumps() {
    let ab = Ablation::new("445.gobmk");
    let bin = ab.enable("-fjump-tables");
    let tables = count_term(&bin, |t| matches!(t, binrep::Terminator::JumpTable { .. }));
    let base_tables = count_term(&ab.base_bin, |t| {
        matches!(t, binrep::Terminator::JumpTable { .. })
    });
    assert!(tables > base_tables, "{tables} vs {base_tables}");
}

#[test]
fn tail_call_flag_removes_call_edges() {
    let ab = Ablation::new("483.xalancbmk");
    let bin = ab.enable("-foptimize-sibling-calls");
    let tails = count_term(&bin, |t| matches!(t, binrep::Terminator::TailCall(_)));
    assert!(tails > 0);
    let edges = |b: &binrep::Binary| -> usize { b.call_graph().values().map(Vec::len).sum() };
    assert!(edges(&bin) < edges(&ab.base_bin));
}

#[test]
fn vectorize_flag_emits_simd() {
    let ab = Ablation::new("462.libquantum");
    let bin = ab.enable("-ftree-vectorize");
    let hist = binrep::opcode_histogram(&bin);
    assert!(
        hist.contains_key("paddd") || hist.contains_key("pmulld") || hist.contains_key("movups"),
        "{hist:?}"
    );
}

#[test]
fn unroll_flag_reduces_loop_back_edges_per_iteration() {
    let ab = Ablation::new("462.libquantum");
    let bin = ab.enable("-funroll-loops");
    // Unrolling replicates bodies: more instructions in total.
    assert!(bin.insn_count() > ab.base_bin.insn_count());
}

#[test]
fn inline_flag_removes_calls() {
    let ab = Ablation::new("483.xalancbmk");
    let bin = ab.enable("-finline-functions");
    let calls = |b: &binrep::Binary| -> usize {
        b.functions
            .iter()
            .flat_map(|f| f.cfg.blocks.iter())
            .flat_map(|bl| bl.insns.iter())
            .filter(|i| i.callee().is_some())
            .count()
    };
    assert!(calls(&bin) < calls(&ab.base_bin));
}

#[test]
fn peephole_and_strength_reduction_remove_division() {
    // Hand-built module with a guaranteed division by a non-power-of-two
    // constant (Figure 3(a)'s x/255).
    use minicc::ast::{BinOp, Expr, FuncDef, Module, Stmt};
    let mut m = Module::new("divtest");
    m.funcs.push(FuncDef::new(
        "main",
        vec!["x".into()],
        vec![Stmt::Return(Expr::vc(BinOp::Div, "x", 255))],
    ));
    m.validate().unwrap();
    // Clean base (no style-bit filler flags): the O1 preset includes
    // -fcprop-registers, whose codegen style loads constants into a
    // register first and thereby hides the `udiv r, imm` pattern from the
    // peephole — a real flag interaction, but not what this test probes.
    let cc = Compiler::new(CompilerKind::Gcc);
    let base = vec![false; cc.profile().n_flags()];
    let plain = cc.compile(&m, &base, binrep::Arch::X86).unwrap();
    let mut flags = base.clone();
    flags[cc
        .profile()
        .flag_index("-fexpensive-optimizations")
        .unwrap()] = true;
    let flags = cc.profile().constraints().repair(&flags, 1);
    let reduced = cc.compile(&m, &flags, binrep::Arch::X86).unwrap();
    let hist_base = binrep::opcode_histogram(&plain);
    let hist = binrep::opcode_histogram(&reduced);
    assert!(hist_base.contains_key("udiv"));
    assert!(!hist.contains_key("udiv"), "{hist:?}");
    assert!(hist.contains_key("umulh"), "magic multiply expected");
    // Exact semantics across the whole u32 edge set.
    for x in [0u32, 1, 254, 255, 256, 0xffff_ffff, 0x8000_0000] {
        let a = emu::Machine::new(&plain)
            .run(&[x], &[], 10_000)
            .unwrap()
            .ret;
        let b = emu::Machine::new(&reduced)
            .run(&[x], &[], 10_000)
            .unwrap()
            .ret;
        assert_eq!(a, b);
        assert_eq!(a, x / 255);
    }
}

#[test]
fn branch_count_reg_uses_loop_instruction() {
    let ab = Ablation::new("648.exchange2_s");
    let bin = ab.enable("-fbranch-count-reg");
    let loops = count_term(&bin, |t| matches!(t, binrep::Terminator::LoopBack { .. }));
    assert!(loops > 0, "expected `loop` instruction lowering");
}

#[test]
fn reorder_functions_permutes_layout() {
    let ab = Ablation::new("429.mcf");
    let bin = ab.enable("-freorder-functions");
    let names = |b: &binrep::Binary| -> Vec<String> {
        b.functions.iter().map(|f| f.name.clone()).collect()
    };
    assert_ne!(names(&bin), names(&ab.base_bin));
    // Same set, different order.
    let mut a = names(&bin);
    let mut b = names(&ab.base_bin);
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn align_functions_pads_with_nops() {
    let ab = Ablation::new("429.mcf");
    let bin = ab.enable("-falign-functions");
    let padded = bin.functions.iter().filter(|f| f.align_pad > 0).count();
    assert!(padded > 0);
}

#[test]
fn merge_all_constants_shrinks_data() {
    let ab = Ablation::new("400.perlbench");
    let bin = ab.enable("-fmerge-all-constants");
    assert!(bin.data.len() <= ab.base_bin.data.len());
}

#[test]
fn every_single_flag_alone_preserves_semantics() {
    // The exhaustive sweep: each flag individually on top of O0.
    let bench = corpus::by_name("605.mcf_s").unwrap();
    let cc = Compiler::new(CompilerKind::Llvm);
    let o0 = cc
        .compile_preset(&bench.module, OptLevel::O0, binrep::Arch::X86)
        .unwrap();
    let want = observe(&o0, &bench.test_inputs[0]);
    let n = cc.profile().n_flags();
    for i in 0..n {
        let mut flags = vec![false; n];
        flags[i] = true;
        let flags = cc.profile().constraints().repair(&flags, i as u64);
        let bin = cc
            .compile(&bench.module, &flags, binrep::Arch::X86)
            .unwrap();
        assert_eq!(
            observe(&bin, &bench.test_inputs[0]),
            want,
            "flag {} alone broke semantics",
            cc.profile().flags()[i].name
        );
    }
}
