//! The repository's central guarantee, tested end to end: **every
//! optimization configuration preserves program semantics** — BinTuner's
//! outputs "retain functional correctness" (paper §5.1).
//!
//! Differential execution on the emulator: `-O0` output is the oracle;
//! presets, random valid flag vectors, and obfuscated builds must agree.

use minicc::{Compiler, CompilerKind, OptLevel};
use rand::prelude::*;
use rand::rngs::StdRng;
use testutil::observe;

#[test]
fn presets_preserve_semantics_across_corpus() {
    let benchmarks = ["429.mcf", "462.libquantum", "657.xz_s", "458.sjeng"];
    for kind in [CompilerKind::Gcc, CompilerKind::Llvm] {
        let cc = Compiler::new(kind);
        for name in benchmarks {
            if corpus::excluded_for(kind).contains(&name) {
                continue;
            }
            let bench = corpus::by_name(name).unwrap();
            let o0 = cc
                .compile_preset(&bench.module, OptLevel::O0, binrep::Arch::X86)
                .unwrap();
            let oracle: Vec<Vec<u32>> = bench.test_inputs.iter().map(|i| observe(&o0, i)).collect();
            for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::Os] {
                let bin = cc
                    .compile_preset(&bench.module, level, binrep::Arch::X86)
                    .unwrap();
                for (inputs, want) in bench.test_inputs.iter().zip(&oracle) {
                    assert_eq!(
                        &observe(&bin, inputs),
                        want,
                        "{kind} {level} {name} inputs {inputs:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn random_flag_vectors_preserve_semantics() {
    // The property BinTuner's whole search rests on: any *valid* point of
    // the optimization space is a correct compiler configuration.
    let bench = corpus::by_name("605.mcf_s").unwrap();
    for kind in [CompilerKind::Gcc, CompilerKind::Llvm] {
        let cc = Compiler::new(kind);
        let o0 = cc
            .compile_preset(&bench.module, OptLevel::O0, binrep::Arch::X86)
            .unwrap();
        let want = observe(&o0, &bench.test_inputs[0]);
        let mut rng = StdRng::seed_from_u64(0x5EED);
        for trial in 0..16 {
            let raw: Vec<bool> = (0..cc.profile().n_flags())
                .map(|_| rng.gen_bool(0.5))
                .collect();
            let flags = cc.profile().constraints().repair(&raw, trial);
            let bin = cc
                .compile(&bench.module, &flags, binrep::Arch::X86)
                .unwrap();
            assert_eq!(
                observe(&bin, &bench.test_inputs[0]),
                want,
                "{kind} trial {trial}"
            );
        }
    }
}

#[test]
fn semantics_hold_on_every_architecture() {
    let bench = corpus::by_name("648.exchange2_s").unwrap();
    let cc = Compiler::new(CompilerKind::Gcc);
    for arch in binrep::Arch::ALL {
        let o0 = cc
            .compile_preset(&bench.module, OptLevel::O0, arch)
            .unwrap();
        let o3 = cc
            .compile_preset(&bench.module, OptLevel::O3, arch)
            .unwrap();
        assert_eq!(
            observe(&o0, &bench.test_inputs[0]),
            observe(&o3, &bench.test_inputs[0]),
            "{arch}"
        );
    }
}

#[test]
fn obfuscated_builds_preserve_semantics() {
    let bench = corpus::by_name("462.libquantum").unwrap();
    let cc = Compiler::new(CompilerKind::Llvm);
    let o2 = cc
        .compile_preset(&bench.module, OptLevel::O2, binrep::Arch::X86)
        .unwrap();
    let mut obf = o2.clone();
    bintuner::obfuscate(&mut obf, &bintuner::ObfuscatorConfig::default());
    for inputs in &bench.test_inputs {
        assert_eq!(observe(&o2, inputs), observe(&obf, inputs));
    }
}

#[test]
fn malware_variants_preserve_behaviour_when_tuned() {
    // Table 2's premise: the tuned malware still *works* (same output,
    // same API trace), it just looks different.
    let bench = corpus::malware(corpus::MalwareFamily::Bashlife, 3);
    let config = bintuner::TunerConfig {
        termination: genetic::Termination {
            max_evaluations: 50,
            min_evaluations: 40,
            plateau_window: 20,
            ..Default::default()
        },
        ..Default::default()
    };
    let result = bintuner::Tuner::new(config)
        .tune(&bench.module)
        .expect("tuning run");
    for inputs in &bench.test_inputs {
        let a = emu::Machine::new(&result.baseline)
            .run(&[], inputs, 20_000_000)
            .unwrap();
        let b = emu::Machine::new(&result.best_binary)
            .run(&[], inputs, 20_000_000)
            .unwrap();
        assert_eq!(a.output, b.output);
        // Builtin expansion (-fbuiltin) legitimately inlines strcpy-like
        // library calls, like real GCC — compare only the behavioural
        // (network/process) API trace.
        let behavioural = |t: &[String]| -> Vec<String> {
            t.iter()
                .filter(|n| !matches!(n.as_str(), "strcpy" | "strlen" | "memcpy" | "memset"))
                .cloned()
                .collect()
        };
        assert_eq!(behavioural(&a.api_trace), behavioural(&b.api_trace));
    }
}
