//! Property-based integration tests: randomly generated programs,
//! compiled under randomly chosen (repaired) flag vectors, must behave
//! exactly like their -O0 builds. This is the strongest statement the
//! repository makes about the compiler substrate.

use minicc::{Compiler, CompilerKind, OptLevel};
use proptest::prelude::*;
use testutil::observe;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random program × random valid flags × random inputs ≡ -O0.
    #[test]
    fn prop_random_program_random_flags_semantics(
        seed in 0u64..5000,
        flag_bits in proptest::collection::vec(any::<bool>(), 140..150),
        input_a in any::<u32>(),
        input_b in 0u32..100_000,
    ) {
        let module = corpus::generate(
            "prop",
            &corpus::Profile {
                seed,
                funcs: 10,
                ..Default::default()
            },
        );
        module.validate().unwrap();
        let kind = if seed % 2 == 0 { CompilerKind::Gcc } else { CompilerKind::Llvm };
        let cc = Compiler::new(kind);
        let n = cc.profile().n_flags();
        let raw: Vec<bool> = (0..n).map(|i| flag_bits[i % flag_bits.len()]).collect();
        let flags = cc.profile().constraints().repair(&raw, seed);
        let o0 = cc.compile_preset(&module, OptLevel::O0, binrep::Arch::X86).unwrap();
        let opt = cc.compile(&module, &flags, binrep::Arch::X86).unwrap();
        let inputs = vec![input_a, input_b];
        prop_assert_eq!(observe(&o0, &inputs), observe(&opt, &inputs));
    }

    /// Encoded binaries always decode (well-formedness of the encoder).
    #[test]
    fn prop_encode_decode_round_trip(seed in 0u64..5000) {
        let module = corpus::generate(
            "prop",
            &corpus::Profile { seed, funcs: 6, ..Default::default() },
        );
        let cc = Compiler::new(CompilerKind::Gcc);
        for level in [OptLevel::O0, OptLevel::O3] {
            for arch in binrep::Arch::ALL {
                let bin = cc.compile_preset(&module, level, arch).unwrap();
                let code = binrep::encode_binary(&bin);
                let items = binrep::decode(&code, arch)
                    .unwrap_or_else(|e| panic!("{arch} {level}: {e}"));
                prop_assert!(!items.is_empty());
            }
        }
    }

    /// BinHunt difference is a bounded, self-zero pseudo-metric on the
    /// binaries we produce.
    #[test]
    fn prop_binhunt_score_properties(seed in 0u64..2000) {
        let module = corpus::generate(
            "prop",
            &corpus::Profile { seed, funcs: 6, ..Default::default() },
        );
        let cc = Compiler::new(CompilerKind::Llvm);
        let a = cc.compile_preset(&module, OptLevel::O0, binrep::Arch::X86).unwrap();
        let b = cc.compile_preset(&module, OptLevel::O2, binrep::Arch::X86).unwrap();
        let self_diff = binhunt::diff_binaries(&a, &a).difference;
        let cross = binhunt::diff_binaries(&a, &b).difference;
        prop_assert!(self_diff < 0.05);
        prop_assert!((0.0..=1.0).contains(&cross));
    }
}
