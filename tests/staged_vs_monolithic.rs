//! The staged pipeline's byte-identity contract, pinned corpus-wide.
//!
//! `Compiler::compile` is now the composition of three explicit stages
//! (`stage_ast` → `stage_lower` → `stage_mir`), and the fitness engine
//! caches the stage-1/stage-2 artifacts under their
//! [`minicc::StageKeys`] projections. That is only sound if two
//! invariants hold for every flag vector:
//!
//! 1. **Staged == monolithic**: driving the stages by hand produces the
//!    byte-identical `Binary` that `Compiler::compile` produces.
//! 2. **Projection completeness**: a stage's output depends *only* on
//!    the fields in its stage key — so reusing an artifact compiled
//!    under a different `EffectConfig` with an equal stage digest (a
//!    *warm* artifact cache) still yields byte-identical output.
//!
//! Invariant 2 is the one a routing mistake in `StageKeys::project`
//! would break (e.g. a field read by `mir_opt` but projected only into
//! the AST key): the exhaustive destructuring guarantees every field is
//! routed *somewhere*, and this suite is what proves it is routed to
//! every stage that actually reads it. Run over the full corpus, both
//! compiler profiles, every preset, and seeded random repaired flag
//! vectors, with the warm path reusing artifacts across vectors exactly
//! the way the engine's tier-0 cache does.

use binrep::Arch;
use minicc::{Compiler, CompilerKind, EffectConfig, OptLevel, StageKeys};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::HashMap;
use std::sync::Arc;

/// A test double of the engine's tier-0 artifact cache: memoized
/// stage-1/stage-2 artifacts keyed exactly as the engine keys them.
#[derive(Default)]
struct ArtifactMemo {
    ast: HashMap<u128, Arc<minicc::ast::Module>>,
    lower: HashMap<(u128, u128), Arc<binrep::Binary>>,
    /// Times a stage-1 or stage-2 artifact was actually served from the
    /// memo — the warm leg of the differential only proves the
    /// key-projection invariant when this ends up > 0.
    hits: usize,
}

impl ArtifactMemo {
    /// Compile staged, serving stage-1/stage-2 artifacts from the memo
    /// when a previous vector (possibly with a *different* effect
    /// config) already produced them.
    fn compile_warm(
        &mut self,
        cc: &Compiler,
        m: &minicc::ast::Module,
        eff: &EffectConfig,
        arch: Arch,
    ) -> binrep::Binary {
        let keys = StageKeys::project(eff);
        let ad = keys.ast.stable_digest();
        let ld = keys.lower.stable_digest();
        let lowered = match self.lower.get(&(ad, ld)) {
            Some(b) => {
                self.hits += 1;
                b.clone()
            }
            None => {
                let ast = match self.ast.get(&ad) {
                    Some(a) => {
                        self.hits += 1;
                        a.clone()
                    }
                    None => {
                        let a = Arc::new(cc.stage_ast(m, eff));
                        self.ast.insert(ad, a.clone());
                        a
                    }
                };
                let b = Arc::new(cc.stage_lower(&ast, eff, arch));
                self.lower.insert((ad, ld), b.clone());
                b
            }
        };
        cc.stage_mir((*lowered).clone(), eff)
    }
}

/// Compile staged with no reuse at all (cold artifact cache).
fn compile_staged_cold(
    cc: &Compiler,
    m: &minicc::ast::Module,
    eff: &EffectConfig,
    arch: Arch,
) -> binrep::Binary {
    let optimized = cc.stage_ast(m, eff);
    let lowered = cc.stage_lower(&optimized, eff, arch);
    cc.stage_mir(lowered, eff)
}

fn assert_all_paths_agree(
    cc: &Compiler,
    bench: &corpus::Benchmark,
    flags: &[bool],
    arch: Arch,
    memo: &mut ArtifactMemo,
    label: &str,
) {
    let mono = cc
        .compile(&bench.module, flags, arch)
        .unwrap_or_else(|e| panic!("{label}: monolithic compile failed: {e}"));
    let eff = EffectConfig::from_flags(cc.profile(), flags);
    let cold = compile_staged_cold(cc, &bench.module, &eff, arch);
    let warm = memo.compile_warm(cc, &bench.module, &eff, arch);
    let mono_bytes = binrep::encode_binary(&mono);
    assert_eq!(
        mono_bytes,
        binrep::encode_binary(&cold),
        "{label}: staged (cold) diverged from monolithic"
    );
    assert_eq!(
        mono_bytes,
        binrep::encode_binary(&warm),
        "{label}: staged (warm artifact cache) diverged from monolithic"
    );
}

#[test]
fn presets_are_byte_identical_staged_and_monolithic_across_corpus() {
    for kind in [CompilerKind::Gcc, CompilerKind::Llvm] {
        let cc = Compiler::new(kind);
        for bench in corpus::all_benign() {
            if corpus::excluded_for(kind).contains(&bench.name) {
                continue;
            }
            // One memo per (module, kind): presets share artifacts
            // heavily (O2/O3/Os agree on many early-stage fields).
            let mut memo = ArtifactMemo::default();
            for level in OptLevel::ALL {
                let flags = cc.profile().preset(level);
                assert_all_paths_agree(
                    &cc,
                    &bench,
                    &flags,
                    Arch::X86,
                    &mut memo,
                    &format!("{kind} {} {level}", bench.name),
                );
            }
            // The warm leg must have exercised real reuse (e.g. -Os
            // shares -O2's AST stage key), or invariant 2 went
            // untested for this module.
            assert!(
                memo.hits > 0,
                "{kind} {}: warm memo never served an artifact",
                bench.name
            );
        }
    }
}

#[test]
fn random_flag_vectors_are_byte_identical_staged_and_monolithic() {
    // ~200 seeded random repaired vectors, spread across the whole
    // corpus and both profiles, each compiled monolithically, staged
    // cold, and staged against a warm artifact memo shared across all
    // of a module's vectors — the sharing pattern that catches a field
    // projected into too few stage keys.
    const TRIALS_PER_MODULE: usize = 9;
    let mut total = 0usize;
    let mut total_hits = 0usize;
    for kind in [CompilerKind::Gcc, CompilerKind::Llvm] {
        let cc = Compiler::new(kind);
        let n = cc.profile().n_flags();
        for bench in corpus::all_benign() {
            if corpus::excluded_for(kind).contains(&bench.name) {
                continue;
            }
            let mut memo = ArtifactMemo::default();
            let mut rng = StdRng::seed_from_u64(0x57A6_ED00 ^ bench.content_hash());
            for trial in 0..TRIALS_PER_MODULE {
                let raw: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
                let flags = cc.profile().constraints().repair(&raw, trial as u64);
                assert_all_paths_agree(
                    &cc,
                    &bench,
                    &flags,
                    Arch::X86,
                    &mut memo,
                    &format!("{kind} {} trial {trial}", bench.name),
                );
                total += 1;
            }
            total_hits += memo.hits;
        }
    }
    assert!(total >= 200, "only {total} random vectors exercised");
    // Random vectors collide on stage keys far less often than presets,
    // but across ~40 (module, profile) memos the warm leg must have
    // served artifacts somewhere — otherwise every "warm" compile was
    // secretly cold and invariant 2 went untested here.
    assert!(
        total_hits > 0,
        "warm memos never served an artifact across the whole sweep"
    );
}

#[test]
fn staged_matches_monolithic_on_every_arch() {
    // Lowering takes the arch; make sure the staged split did not bake
    // in an X86 assumption.
    let bench = corpus::by_name("429.mcf").unwrap();
    let cc = Compiler::new(CompilerKind::Gcc);
    for arch in Arch::ALL {
        let mut memo = ArtifactMemo::default();
        for level in [OptLevel::O2, OptLevel::O3] {
            let flags = cc.profile().preset(level);
            assert_all_paths_agree(
                &cc,
                &bench,
                &flags,
                arch,
                &mut memo,
                &format!("{arch} {level}"),
            );
        }
    }
}
