//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access. The workspace uses serde
//! only as `#[derive(Serialize, Deserialize)]` markers on plain data types
//! — no code path ever serializes — so these derives expand to nothing.
//! If real serialization is ever needed, replace this vendored crate with
//! the upstream dependency; every call site already compiles against the
//! real API shape.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`'s derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`'s derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
