//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! provides the subset of the rand 0.8 API the workspace uses — seeded
//! [`rngs::StdRng`], the [`Rng`] extension methods (`gen`, `gen_bool`,
//! `gen_range`), and [`seq::SliceRandom`] (`choose`, `shuffle`) — on top
//! of a xoshiro256\*\* generator seeded through SplitMix64.
//!
//! The stream differs from upstream `rand`'s `StdRng` (ChaCha12), but the
//! workspace only relies on *determinism for a fixed seed*, never on a
//! specific stream, so the substitution is behavior-preserving for every
//! caller in this repository.

#![warn(missing_docs)]

/// Core RNG abstraction: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable RNG constructors (the only constructor the workspace uses is
/// [`SeedableRng::seed_from_u64`]).
pub trait SeedableRng: Sized {
    /// Build an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw a uniform value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // 24 random mantissa bits in [0, 1).
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform integer in `[0, span)` by rejection sampling (span ≤ 2^64 in
/// practice for every call site in the workspace).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    if span.is_power_of_two() {
        return (rng.next_u64() as u128) & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span as u64 + 1) % span as u64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span as u64) as u128;
        }
    }
}

/// Extension methods on any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p}");
        f64::sample(self) < p
    }

    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator (stand-in for rand's
    /// `StdRng`; same seeding discipline, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = StdRng::splitmix(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// `choose`/`shuffle` on slices (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// `amount` distinct elements in random order (fewer if the slice
        /// is shorter), as an iterator like rand's `SliceChooseIter`.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx.truncate(amount);
            idx.into_iter()
                .map(|i| &self[i])
                .collect::<Vec<&T>>()
                .into_iter()
        }
    }
}

/// The prelude every call site imports (`use rand::prelude::*`).
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
    }

    #[test]
    fn f32_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..64).collect();
        assert!(v.choose(&mut rng).is_some());
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
