//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! provides a small but *real* measuring harness behind criterion's API
//! shape: [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Timings are wall-clock means over `sample_size` samples, each
//! sample sized to fill `measurement_time / sample_size`, after a warm-up
//! pass — no statistics beyond mean/min/max, no plots, no saved baselines.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark configuration and entry point (subset of criterion's).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Untimed warm-up duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark under this config.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Criterion {
        run_bench(id, self, &mut f);
        self
    }

    /// Open a named group of benchmarks sharing this config.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks (subset of criterion's).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Total time budget for the timed samples in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.criterion, &mut f);
        self
    }

    /// Finish the group (printing is immediate; this is a no-op).
    pub fn finish(self) {}
}

/// Passed to the closure of [`Criterion::bench_function`]; its
/// [`Bencher::iter`] runs and times the workload.
pub struct Bencher {
    mode: Mode,
    /// Filled by `iter` in measurement mode.
    sample_nanos: Vec<f64>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

enum Mode {
    Measure,
}

impl Bencher {
    /// Time `f`, called in batches until the measurement budget is spent.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        match self.mode {
            Mode::Measure => {
                // Warm-up: also estimates per-iteration cost.
                let warm_start = Instant::now();
                let mut warm_iters: u64 = 0;
                while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
                    black_box(f());
                    warm_iters += 1;
                }
                let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
                let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
                let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);
                self.sample_nanos.clear();
                for _ in 0..self.sample_size {
                    let t = Instant::now();
                    for _ in 0..iters_per_sample {
                        black_box(f());
                    }
                    self.sample_nanos
                        .push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
                }
            }
        }
    }
}

fn run_bench(id: &str, config: &Criterion, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        mode: Mode::Measure,
        sample_nanos: Vec::new(),
        sample_size: config.sample_size,
        measurement_time: config.measurement_time,
        warm_up_time: config.warm_up_time,
    };
    f(&mut b);
    if b.sample_nanos.is_empty() {
        println!("{id:50} (no measurement — iter never called)");
        return;
    }
    let n = b.sample_nanos.len() as f64;
    let mean = b.sample_nanos.iter().sum::<f64>() / n;
    let min = b.sample_nanos.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = b
        .sample_nanos
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{id:50} time: [{} {} {}]",
        fmt_nanos(min),
        fmt_nanos(mean),
        fmt_nanos(max)
    );
}

fn fmt_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions into a named runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `fn main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    criterion_group!(smoke, smoke_bench);

    fn smoke_bench(c: &mut Criterion) {
        c.sample_size = 2;
        c.measurement_time = Duration::from_millis(10);
        c.warm_up_time = Duration::from_millis(2);
        c.bench_function("x", |b| b.iter(|| black_box(2 * 2)));
    }

    #[test]
    fn group_macro_runs() {
        smoke();
    }
}
