//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! reimplements the slice of the proptest API the workspace uses:
//! the [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`] macros, the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_filter`, [`arbitrary::any`], range and tuple strategies,
//! [`collection::vec`], [`option::of`], and [`test_runner::ProptestConfig`].
//!
//! Differences from upstream: failing cases are *not* shrunk (the failing
//! input is printed as-is via the panic message), and the RNG stream is a
//! fixed deterministic function of the test's module path and name rather
//! than a persisted seed file. Every property in this workspace is
//! deterministic given its inputs, so behavior is reproducible run-to-run.

#![warn(missing_docs)]

pub mod test_runner {
    //! Test configuration and the deterministic RNG driving generation.

    /// Subset of proptest's config: how many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// SplitMix64-based deterministic RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG seeded from a test identifier (stable across runs).
        pub fn deterministic(test_name: &str) -> TestRng {
            // FNV-1a over the fully qualified test name.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            if bound.is_power_of_two() {
                return self.next_u64() & (bound - 1);
            }
            let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Derive a second strategy from each generated value.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Discard values failing `pred` (regenerating, bounded retries).
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }

        /// Type-erase the strategy (used by the `prop_oneof!` macro).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter '{}' rejected 1000 consecutive values",
                self.whence
            );
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Uniform choice among alternatives (backs the `prop_oneof!` macro).
    pub struct OneOf<V>(Vec<BoxedStrategy<V>>);

    impl<V> OneOf<V> {
        /// Choose uniformly among `alts` each generation.
        pub fn new(alts: Vec<BoxedStrategy<V>>) -> OneOf<V> {
            assert!(
                !alts.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            OneOf(alts)
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the default strategy per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a default generation strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Bias 1-in-8 draws toward boundary values, like
                    // upstream proptest's edge-case weighting.
                    if rng.below(8) == 0 {
                        const EDGES: [$t; 5] =
                            [0 as $t, 1 as $t, <$t>::MAX, <$t>::MIN, <$t>::MAX - 1];
                        EDGES[rng.below(5) as usize]
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The default strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for [`vec()`]: exact or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy: each element from `element`, length from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (`None` 1 time in 4).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `Some` three times in four, `None` otherwise.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

pub mod prelude {
    //! Everything a property-test file imports.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Assert inside a property (no shrinking: behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property (behaves like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for _case in 0..cfg.cases {
                $(let $arg = ($strat).generate(&mut rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(a in 3u32..17, b in 1usize..=4usize) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((1..=4).contains(&b));
        }

        #[test]
        fn combinators_compose(v in crate::collection::vec(any::<u8>(), 0..32),
                               o in crate::option::of(0i32..5),
                               c in prop_oneof![Just(1u8), (10u8..20).prop_map(|x| x)]) {
            prop_assert!(v.len() < 32);
            if let Some(x) = o {
                prop_assert!((0..5).contains(&x));
            }
            prop_assert!(c == 1 || (10..20).contains(&c));
        }

        #[test]
        fn flat_map_filters(n in (2usize..9).prop_flat_map(|n| 0..n)
                                 .prop_filter("nonzero", |&v| v != usize::MAX)) {
            prop_assert!(n < 9);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut r1 = crate::test_runner::TestRng::deterministic("x");
        let mut r2 = crate::test_runner::TestRng::deterministic("x");
        let s = crate::collection::vec(any::<u64>(), 5);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
