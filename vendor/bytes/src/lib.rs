//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`BytesMut`] (a thin growable byte buffer over `Vec<u8>`) and
//! the [`BufMut`] write trait, covering exactly the API surface the
//! `binrep` encoder uses. Semantics match upstream `bytes` for these
//! methods: little-endian multi-byte writes, append-only growth.

#![warn(missing_docs)]

/// A growable, appendable byte buffer (subset of `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Copy the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Sequential little-endian writes (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one unsigned byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_slice(&[v as u8]);
    }

    /// Append a `u16`, little-endian.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append an `i16`, little-endian.
    fn put_i16_le(&mut self, v: i16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append an `i32`, little-endian.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_layout() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xAB);
        b.put_i8(-1);
        b.put_u16_le(0x0102);
        b.put_i16_le(-2);
        b.put_i32_le(0x0A0B0C0D);
        assert_eq!(
            b.to_vec(),
            vec![0xAB, 0xFF, 0x02, 0x01, 0xFE, 0xFF, 0x0D, 0x0C, 0x0B, 0x0A]
        );
        assert_eq!(b.len(), 10);
        assert_eq!(&b[..2], &[0xAB, 0xFF]);
    }
}
