//! Umbrella crate for the BinTuner reproduction workspace.
//!
//! Re-exports every sub-crate so downstream users can depend on one
//! package. See the repository README for a quick overview and
//! `docs/ARCHITECTURE.md` for the paper-to-crate mapping and the
//! tuning-loop / persistent-store design.

pub use avscan;
pub use binhunt;
pub use binrep;
pub use bintuner;
pub use corpus;
pub use difftools;
pub use emu;
pub use genetic;
pub use lzc;
pub use minicc;
pub use perfmodel;
pub use satz;
