//! Canonical Huffman coding with a bounded maximum code length.

use crate::bitio::{BitReader, BitWriter, OutOfBits};

/// Maximum code length in bits.
pub const MAX_BITS: usize = 15;

/// Compute bounded code lengths for the given symbol frequencies.
///
/// Returns one length per symbol (0 = symbol absent). Uses the classic
/// heap-based Huffman construction; if the tree exceeds [`MAX_BITS`] the
/// frequencies are damped (`f = f/2 + 1`) and construction retried, which
/// converges quickly and stays near-optimal.
pub fn code_lengths(freqs: &[u64]) -> Vec<u8> {
    let n = freqs.len();
    let present: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    let mut lens = vec![0u8; n];
    match present.len() {
        0 => return lens,
        1 => {
            // A single symbol still needs one bit.
            lens[present[0]] = 1;
            return lens;
        }
        _ => {}
    }
    let mut f: Vec<u64> = freqs.to_vec();
    loop {
        let lengths = huffman_lengths(&f);
        let max = lengths.iter().copied().max().unwrap_or(0);
        if (max as usize) <= MAX_BITS {
            return lengths;
        }
        for x in f.iter_mut() {
            if *x > 0 {
                *x = *x / 2 + 1;
            }
        }
    }
}

fn huffman_lengths(freqs: &[u64]) -> Vec<u8> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct Node {
        freq: u64,
        // Tie-break on creation order for determinism.
        order: u32,
        idx: usize,
    }

    // Internal tree: nodes[i] = (left, right) for internal, or symbol.
    enum Tree {
        Leaf(usize),
        Internal(usize, usize),
    }

    let mut heap: BinaryHeap<Reverse<Node>> = BinaryHeap::new();
    let mut nodes: Vec<Tree> = Vec::new();
    let mut order = 0u32;
    for (sym, &f) in freqs.iter().enumerate() {
        if f > 0 {
            nodes.push(Tree::Leaf(sym));
            heap.push(Reverse(Node {
                freq: f,
                order,
                idx: nodes.len() - 1,
            }));
            order += 1;
        }
    }
    while heap.len() > 1 {
        let a = heap.pop().unwrap().0;
        let b = heap.pop().unwrap().0;
        nodes.push(Tree::Internal(a.idx, b.idx));
        heap.push(Reverse(Node {
            freq: a.freq + b.freq,
            order,
            idx: nodes.len() - 1,
        }));
        order += 1;
    }
    let root = heap.pop().unwrap().0.idx;
    let mut lens = vec![0u8; freqs.len()];
    // Iterative depth assignment.
    let mut stack = vec![(root, 0u8)];
    while let Some((idx, depth)) = stack.pop() {
        match nodes[idx] {
            Tree::Leaf(sym) => lens[sym] = depth.max(1),
            Tree::Internal(l, r) => {
                stack.push((l, depth + 1));
                stack.push((r, depth + 1));
            }
        }
    }
    lens
}

/// Canonical encoder table: symbol → (code, length).
#[derive(Debug, Clone)]
pub struct Encoder {
    codes: Vec<(u16, u8)>,
}

impl Encoder {
    /// Build from code lengths (as produced by [`code_lengths`]).
    pub fn from_lengths(lens: &[u8]) -> Encoder {
        let mut codes = vec![(0u16, 0u8); lens.len()];
        let max = lens.iter().copied().max().unwrap_or(0) as usize;
        let mut bl_count = vec![0u16; max + 1];
        for &l in lens {
            if l > 0 {
                bl_count[l as usize] += 1;
            }
        }
        let mut next = vec![0u16; max + 2];
        let mut code = 0u16;
        for bits in 1..=max {
            code = (code + bl_count[bits - 1]) << 1;
            next[bits] = code;
        }
        for (sym, &l) in lens.iter().enumerate() {
            if l > 0 {
                codes[sym] = (next[l as usize], l);
                next[l as usize] += 1;
            }
        }
        Encoder { codes }
    }

    /// Emit the code for `sym` (bit-reversed, since the stream is LSB-first).
    pub fn put(&self, w: &mut BitWriter, sym: usize) {
        let (code, len) = self.codes[sym];
        debug_assert!(len > 0, "encoding absent symbol {sym}");
        // Reverse `len` bits so the decoder can read MSB-of-code first.
        let mut rev = 0u32;
        for i in 0..len {
            rev |= (((code >> i) & 1) as u32) << (len - 1 - i);
        }
        w.put(rev, len as u32);
    }
}

/// Canonical decoder (simple length-walk decode; adequate for our sizes).
#[derive(Debug, Clone)]
pub struct Decoder {
    // For each length 1..=MAX_BITS: (first_code, first_index, count).
    by_len: Vec<(u32, u32, u32)>,
    // Symbols sorted by (length, symbol).
    symbols: Vec<u16>,
}

/// Error for malformed Huffman tables/streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadCode;

impl std::fmt::Display for BadCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid huffman code in stream")
    }
}

impl std::error::Error for BadCode {}

impl Decoder {
    /// Build from code lengths.
    pub fn from_lengths(lens: &[u8]) -> Decoder {
        let max = lens.iter().copied().max().unwrap_or(0) as usize;
        let mut symbols: Vec<u16> = Vec::new();
        let mut by_len = Vec::with_capacity(max);
        let mut code = 0u32;
        for bits in 1..=max {
            code <<= 1;
            let first_code = code;
            let first_index = symbols.len() as u32;
            for (sym, &l) in lens.iter().enumerate() {
                if l as usize == bits {
                    symbols.push(sym as u16);
                    code += 1;
                }
            }
            by_len.push((first_code, first_index, symbols.len() as u32 - first_index));
        }
        Decoder { by_len, symbols }
    }

    /// Decode one symbol from the reader.
    ///
    /// # Errors
    ///
    /// [`BadCode`] if the bit pattern matches no code, or the stream ends.
    pub fn get(&self, r: &mut BitReader<'_>) -> Result<u16, BadCode> {
        let mut code = 0u32;
        for (first_code, first_index, count) in &self.by_len {
            code = (code << 1) | r.bit().map_err(|OutOfBits| BadCode)?;
            if code < first_code + count {
                if code >= *first_code {
                    return Ok(self.symbols[(first_index + (code - first_code)) as usize]);
                }
                return Err(BadCode);
            }
        }
        Err(BadCode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(freqs: &[u64], seq: &[usize]) {
        let lens = code_lengths(freqs);
        let enc = Encoder::from_lengths(&lens);
        let dec = Decoder::from_lengths(&lens);
        let mut w = BitWriter::new();
        for &s in seq {
            enc.put(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in seq {
            assert_eq!(dec.get(&mut r).unwrap() as usize, s);
        }
    }

    #[test]
    fn simple_alphabet() {
        round_trip(&[10, 1, 1, 5], &[0, 1, 2, 3, 0, 0, 3]);
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let lens = code_lengths(&[0, 7, 0]);
        assert_eq!(lens, vec![0, 1, 0]);
        round_trip(&[0, 7, 0], &[1, 1, 1]);
    }

    #[test]
    fn empty_alphabet() {
        assert_eq!(code_lengths(&[0, 0]), vec![0, 0]);
    }

    #[test]
    fn skewed_frequencies_respect_max_bits() {
        // Fibonacci-ish frequencies force deep trees; damping must cap them.
        let mut freqs = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lens = code_lengths(&freqs);
        assert!(lens.iter().all(|&l| (l as usize) <= MAX_BITS));
        assert!(lens.iter().all(|&l| l > 0));
        let seq: Vec<usize> = (0..40).collect();
        round_trip(&freqs, &seq);
    }

    #[test]
    fn frequent_symbols_get_short_codes() {
        let lens = code_lengths(&[1000, 1, 1, 1]);
        assert!(lens[0] < lens[1]);
    }
}
