//! Property-based tests for the compressor and NCD.

#![cfg(test)]

use crate::{compress, compressed_len, decompress, ncd};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lossless round trip on arbitrary bytes.
    #[test]
    fn prop_round_trip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).unwrap(), data);
    }

    /// Round trip on highly repetitive inputs (worst case for match logic).
    #[test]
    fn prop_round_trip_repetitive(byte in any::<u8>(), n in 0usize..8192, stride in 1usize..17) {
        let data: Vec<u8> = (0..n).map(|i| byte.wrapping_add((i % stride) as u8)).collect();
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).unwrap(), data);
    }

    /// The counting fast path is exact: the bit-tally of
    /// [`compressed_len`] must equal the length of the byte buffer
    /// [`compress`] actually materializes, on arbitrary byte strings.
    #[test]
    fn prop_compressed_len_matches_compress(data in proptest::collection::vec(any::<u8>(), 0..8192)) {
        prop_assert_eq!(compressed_len(&data), compress(&data).len());
    }

    /// Same pin on repetitive inputs (match-heavy token streams exercise
    /// the length/distance extra-bit accounting).
    #[test]
    fn prop_compressed_len_matches_on_repetitive(byte in any::<u8>(), n in 0usize..8192, stride in 1usize..17) {
        let data: Vec<u8> = (0..n).map(|i| byte.wrapping_add((i % stride) as u8)).collect();
        prop_assert_eq!(compressed_len(&data), compress(&data).len());
    }

    /// NCD stays within its theoretical-ish bounds and is ~0 on identity.
    #[test]
    fn prop_ncd_bounds(a in proptest::collection::vec(any::<u8>(), 1..2048),
                       b in proptest::collection::vec(any::<u8>(), 1..2048)) {
        let d = ncd(&a, &b);
        prop_assert!((0.0..=1.25).contains(&d), "ncd out of range: {}", d);
        prop_assert!(ncd(&a, &a) <= 0.3);
    }

    /// Truncating a stream never panics — it errors.
    #[test]
    fn prop_truncation_errors_not_panics(data in proptest::collection::vec(any::<u8>(), 16..512),
                                         cut in 1usize..12) {
        let mut c = compress(&data);
        let new_len = c.len().saturating_sub(cut);
        c.truncate(new_len);
        let _ = decompress(&c); // must not panic
    }

    /// Flipping a byte never panics.
    #[test]
    fn prop_corruption_errors_not_panics(data in proptest::collection::vec(any::<u8>(), 16..512),
                                         pos in any::<usize>(), flip in 1u8..255) {
        let mut c = compress(&data);
        let idx = pos % c.len();
        c[idx] ^= flip;
        if let Ok(out) = decompress(&c) {
            // If it still decodes (flip in padding bits), length must match.
            prop_assert_eq!(out.len(), data.len());
        }
    }
}
