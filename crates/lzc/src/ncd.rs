//! Normalized Compression Distance (paper §4.2, Equation 1).
//!
//! `NCD(x, y) = (C(x·y) − min(C(x), C(y))) / max(C(x), C(y))`
//!
//! where `C` is [`crate::compressed_len`] and `x·y` is concatenation. The
//! score is ~0.0 for identical inputs and approaches 1.0 (occasionally
//! slightly above, as with any real compressor) for unrelated inputs.

use crate::lz::compressed_len;

/// Compute the NCD between two byte strings.
///
/// # Example
///
/// ```
/// let a = vec![7u8; 4096];
/// let b: Vec<u8> = (0..4096u32).map(|i| (i * 37 % 251) as u8).collect();
/// assert!(lzc::ncd(&a, &a) < 0.15);
/// assert!(lzc::ncd(&a, &b) > 0.5);
/// ```
pub fn ncd(x: &[u8], y: &[u8]) -> f64 {
    if x.is_empty() && y.is_empty() {
        return 0.0;
    }
    let cx = compressed_len(x);
    let cy = compressed_len(y);
    ncd_with(x, cx, y, cy)
}

fn ncd_with(x: &[u8], cx: usize, y: &[u8], cy: usize) -> f64 {
    let mut xy = Vec::with_capacity(x.len() + y.len());
    xy.extend_from_slice(x);
    xy.extend_from_slice(y);
    let cxy = compressed_len(&xy);
    let min = cx.min(cy);
    let max = cx.max(cy);
    if max == 0 {
        return 0.0;
    }
    (cxy.saturating_sub(min)) as f64 / max as f64
}

/// NCD against a fixed baseline, caching `C(baseline)`.
///
/// BinTuner computes `NCD(candidate, O0-binary)` once per GA iteration with
/// the same baseline throughout a run; caching the baseline's compressed
/// length halves the per-iteration compression work.
#[derive(Debug, Clone)]
pub struct NcdBaseline {
    data: Vec<u8>,
    clen: usize,
}

impl NcdBaseline {
    /// Pre-compress the baseline.
    pub fn new(baseline: Vec<u8>) -> NcdBaseline {
        let clen = compressed_len(&baseline);
        NcdBaseline {
            data: baseline,
            clen,
        }
    }

    /// The baseline bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Cached `C(baseline)`.
    pub fn compressed_len(&self) -> usize {
        self.clen
    }

    /// `NCD(other, baseline)`.
    pub fn score(&self, other: &[u8]) -> f64 {
        if other.is_empty() && self.data.is_empty() {
            return 0.0;
        }
        let c_other = compressed_len(other);
        ncd_with(other, c_other, &self.data, self.clen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterned(seed: u32, n: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 8) as u8
            })
            .collect()
    }

    #[test]
    fn identical_inputs_score_near_zero() {
        let a = patterned(1, 50_000);
        assert!(ncd(&a, &a) < 0.05, "{}", ncd(&a, &a));
    }

    #[test]
    fn unrelated_inputs_score_near_one() {
        let a = patterned(1, 50_000);
        let b = patterned(99, 50_000);
        let d = ncd(&a, &b);
        assert!(d > 0.9, "{d}");
        assert!(d < 1.15, "{d}");
    }

    #[test]
    fn partial_overlap_scores_in_between() {
        let a = patterned(1, 40_000);
        let mut b = a.clone();
        let extra = patterned(2, 40_000);
        b.extend_from_slice(&extra);
        let d = ncd(&a, &b);
        assert!(d > 0.2 && d < 0.8, "{d}");
    }

    #[test]
    fn symmetry_within_tolerance() {
        let a = patterned(3, 30_000);
        let b = patterned(4, 20_000);
        let d1 = ncd(&a, &b);
        let d2 = ncd(&b, &a);
        assert!((d1 - d2).abs() < 0.05, "{d1} vs {d2}");
    }

    #[test]
    fn empty_edge_cases() {
        assert_eq!(ncd(b"", b""), 0.0);
        let a = patterned(5, 1000);
        // Comparing data against nothing is maximally different (the fixed
        // table header softens the score a little on tiny inputs).
        assert!(ncd(&a, b"") > 0.75);
    }

    #[test]
    fn baseline_matches_direct_computation() {
        let a = patterned(6, 20_000);
        let b = patterned(7, 20_000);
        let base = NcdBaseline::new(b.clone());
        let direct = ncd(&a, &b);
        let cached = base.score(&a);
        assert!((direct - cached).abs() < 1e-12);
    }
}
