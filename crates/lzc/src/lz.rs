//! LZ77 tokenizer and the `lzc` stream format.
//!
//! The format is deflate-like (literal/length alphabet + distance alphabet,
//! both canonical-Huffman coded) but with an effectively unbounded match
//! window (~32 MiB), because NCD concatenates two whole code sections and
//! must be able to find cross-section matches — the property LZMA provides
//! in the paper.

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::{code_lengths, Decoder, Encoder};

/// Minimum match length.
pub const MIN_MATCH: usize = 4;
/// Maximum match length.
pub const MAX_MATCH: usize = 258;

const EOB: usize = 256;
const HASH_BITS: u32 = 16;
const MAX_CHAIN: usize = 64;

/// Errors returned by [`decompress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LzError {
    /// Stream does not start with the `LZC1` magic.
    BadMagic,
    /// Stream ended early or contained an invalid code.
    Corrupt(&'static str),
}

impl std::fmt::Display for LzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LzError::BadMagic => f.write_str("not an lzc stream"),
            LzError::Corrupt(what) => write!(f, "corrupt lzc stream: {what}"),
        }
    }
}

impl std::error::Error for LzError {}

/// Length-code table entry: `(base, extra_bits)`.
fn length_codes() -> Vec<(usize, u32)> {
    let mut v = Vec::new();
    let mut base = 3usize;
    for _ in 0..8 {
        v.push((base, 0));
        base += 1;
    }
    for extra in 1..=5u32 {
        for _ in 0..4 {
            v.push((base, extra));
            base += 1 << extra;
        }
    }
    debug_assert_eq!(base, 259);
    v
}

/// Distance-code table entry: `(base, extra_bits)`.
fn dist_codes() -> Vec<(usize, u32)> {
    let mut v = Vec::new();
    let mut base = 1usize;
    for _ in 0..4 {
        v.push((base, 0));
        base += 1;
    }
    for extra in 1..=23u32 {
        for _ in 0..2 {
            v.push((base, extra));
            base += 1 << extra;
        }
    }
    v
}

fn code_for(codes: &[(usize, u32)], value: usize) -> usize {
    // Largest base <= value.
    match codes.binary_search_by(|(b, _)| b.cmp(&value)) {
        Ok(i) => i,
        Err(i) => i - 1,
    }
}

#[derive(Debug, Clone, Copy)]
enum Token {
    Literal(u8),
    Match { len: usize, dist: usize },
}

fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

fn tokenize(data: &[u8]) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::with_capacity(n / 3);
    if n < MIN_MATCH {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }
    let mut head = vec![u32::MAX; 1 << HASH_BITS];
    let mut prev = vec![u32::MAX; n];
    let mut i = 0usize;
    while i < n {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= n {
            let h = hash4(data, i);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != u32::MAX && chain < MAX_CHAIN {
                let c = cand as usize;
                // Quick reject on first byte beyond current best.
                if best_len == 0 || data.get(c + best_len) == data.get(i + best_len) {
                    let max = (n - i).min(MAX_MATCH);
                    let mut l = 0usize;
                    while l < max && data[c + l] == data[i + l] {
                        l += 1;
                    }
                    if l >= MIN_MATCH && l > best_len {
                        best_len = l;
                        best_dist = i - c;
                        if l == max {
                            break;
                        }
                    }
                }
                cand = prev[c];
                chain += 1;
            }
            // Insert current position into the chain.
            prev[i] = head[h];
            head[h] = i as u32;
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match {
                len: best_len,
                dist: best_dist,
            });
            // Insert skipped positions (sparsely, every position, bounded
            // work since insertion is O(1)).
            let end = (i + best_len).min(n.saturating_sub(MIN_MATCH - 1));
            let mut j = i + 1;
            while j < end {
                let h = hash4(data, j);
                prev[j] = head[h];
                head[h] = j as u32;
                j += 1;
            }
            i += best_len;
        } else {
            tokens.push(Token::Literal(data[i]));
            i += 1;
        }
    }
    tokens
}

/// Symbol frequencies of a token stream (EOB terminator included) plus
/// the total raw extra bits its matches will emit. Shared by
/// [`compress`] and [`compressed_len`] so the two can never drift:
/// identical frequencies mean identical canonical code lengths, which
/// is what makes the bit count exact.
fn tally_tokens(
    tokens: &[Token],
    lcodes: &[(usize, u32)],
    dcodes: &[(usize, u32)],
) -> (Vec<u64>, Vec<u64>, u64) {
    let mut lit_freq = vec![0u64; 257 + lcodes.len()];
    let mut dist_freq = vec![0u64; dcodes.len()];
    lit_freq[EOB] = 1;
    let mut extra_bits = 0u64;
    for t in tokens {
        match t {
            Token::Literal(b) => lit_freq[*b as usize] += 1,
            Token::Match { len, dist } => {
                let lc = code_for(lcodes, *len);
                lit_freq[257 + lc] += 1;
                extra_bits += u64::from(lcodes[lc].1);
                let dc = code_for(dcodes, *dist);
                dist_freq[dc] += 1;
                extra_bits += u64::from(dcodes[dc].1);
            }
        }
    }
    (lit_freq, dist_freq, extra_bits)
}

/// Compress `data` into an `lzc` stream.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let lcodes = length_codes();
    let dcodes = dist_codes();
    let tokens = tokenize(data);

    let (lit_freq, dist_freq, _) = tally_tokens(&tokens, &lcodes, &dcodes);
    let lit_lens = code_lengths(&lit_freq);
    let dist_lens = code_lengths(&dist_freq);
    let lit_enc = Encoder::from_lengths(&lit_lens);
    let dist_enc = Encoder::from_lengths(&dist_lens);

    let mut out = Vec::with_capacity(data.len() / 2 + 64);
    out.extend_from_slice(b"LZC1");
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());

    let mut w = BitWriter::new();
    for &l in lit_lens.iter().chain(dist_lens.iter()) {
        w.put(l as u32, 4);
    }
    for t in &tokens {
        match t {
            Token::Literal(b) => lit_enc.put(&mut w, *b as usize),
            Token::Match { len, dist } => {
                let lc = code_for(&lcodes, *len);
                lit_enc.put(&mut w, 257 + lc);
                let (base, extra) = lcodes[lc];
                w.put((*len - base) as u32, extra);
                let dc = code_for(&dcodes, *dist);
                dist_enc.put(&mut w, dc);
                let (dbase, dextra) = dcodes[dc];
                w.put((*dist - dbase) as u32, dextra);
            }
        }
    }
    lit_enc.put(&mut w, EOB);
    out.extend_from_slice(&w.finish());
    out
}

/// Decompress an `lzc` stream produced by [`compress`].
///
/// # Errors
///
/// Returns [`LzError`] on bad magic, truncation, invalid codes, or
/// out-of-range match references.
pub fn decompress(stream: &[u8]) -> Result<Vec<u8>, LzError> {
    let lcodes = length_codes();
    let dcodes = dist_codes();
    if stream.len() < 12 || &stream[..4] != b"LZC1" {
        return Err(LzError::BadMagic);
    }
    let raw_len = u64::from_le_bytes(stream[4..12].try_into().unwrap()) as usize;
    let mut r = BitReader::new(&stream[12..]);
    let n_lit = 257 + lcodes.len();
    let mut lit_lens = vec![0u8; n_lit];
    let mut dist_lens = vec![0u8; dcodes.len()];
    for l in lit_lens.iter_mut().chain(dist_lens.iter_mut()) {
        *l = r.get(4).map_err(|_| LzError::Corrupt("table"))? as u8;
    }
    let lit_dec = Decoder::from_lengths(&lit_lens);
    let dist_dec = Decoder::from_lengths(&dist_lens);

    // Cap the pre-allocation: `raw_len` comes from the (possibly corrupt)
    // stream and must not drive an unbounded allocation.
    let mut out = Vec::with_capacity(raw_len.min(1 << 22));
    loop {
        let sym = lit_dec
            .get(&mut r)
            .map_err(|_| LzError::Corrupt("literal"))? as usize;
        if sym < 256 {
            out.push(sym as u8);
        } else if sym == EOB {
            break;
        } else {
            let (base, extra) = lcodes
                .get(sym - 257)
                .copied()
                .ok_or(LzError::Corrupt("length code"))?;
            let len = base + r.get(extra).map_err(|_| LzError::Corrupt("length"))? as usize;
            let dc = dist_dec
                .get(&mut r)
                .map_err(|_| LzError::Corrupt("distance"))? as usize;
            let (dbase, dextra) = dcodes
                .get(dc)
                .copied()
                .ok_or(LzError::Corrupt("distance code"))?;
            let dist = dbase + r.get(dextra).map_err(|_| LzError::Corrupt("distance"))? as usize;
            if dist == 0 || dist > out.len() {
                return Err(LzError::Corrupt("match out of range"));
            }
            let start = out.len() - dist;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
        if out.len() > raw_len {
            return Err(LzError::Corrupt("output longer than declared"));
        }
    }
    if out.len() != raw_len {
        return Err(LzError::Corrupt("output shorter than declared"));
    }
    Ok(out)
}

/// Length in bytes of the compressed form of `data`.
///
/// This is `C(x)` in the paper's NCD formula (Equation 1) — and the only
/// thing NCD needs, so it is computed by *counting* output bits instead
/// of materializing the compressed byte buffer: no bit-writer, no
/// output `Vec` growth, no canonical-code assignment. The count walks the
/// same token stream and code-length tables [`compress`] uses, so it is
/// exact (`compressed_len(x) == compress(x).len()`, pinned by a
/// property test), but the NCD hot path — three compressed lengths per
/// fitness evaluation — skips the allocation and byte-packing work
/// entirely.
pub fn compressed_len(data: &[u8]) -> usize {
    let lcodes = length_codes();
    let dcodes = dist_codes();
    let tokens = tokenize(data);

    // Extra (raw) bits are fixed per code, independent of the Huffman
    // lengths, so one shared pass tallies them with the frequencies.
    let (lit_freq, dist_freq, extra_bits) = tally_tokens(&tokens, &lcodes, &dcodes);
    let lit_lens = code_lengths(&lit_freq);
    let dist_lens = code_lengths(&dist_freq);

    // Header table: 4 bits per code length; then every symbol occurrence
    // costs its canonical code length (the EOB terminator is already in
    // `lit_freq`).
    let mut bits = 4 * (lit_lens.len() + dist_lens.len()) as u64 + extra_bits;
    for (freq, len) in lit_freq.iter().zip(&lit_lens) {
        bits += freq * u64::from(*len);
    }
    for (freq, len) in dist_freq.iter().zip(&dist_lens) {
        bits += freq * u64::from(*len);
    }
    // 4-byte magic + 8-byte raw length + zero-padded final partial byte.
    12 + bits.div_ceil(8) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let c = compress(data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn empty_and_tiny() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"ab");
        round_trip(b"abc");
    }

    #[test]
    fn repetitive_data_compresses_well() {
        let data: Vec<u8> = b"boilerplate-"
            .iter()
            .copied()
            .cycle()
            .take(40_000)
            .collect();
        let c = compress(&data);
        assert!(c.len() < data.len() / 20, "{} vs {}", c.len(), data.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn incompressible_data_survives() {
        // A simple xorshift stream — no long repeats.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xff) as u8
            })
            .collect();
        round_trip(&data);
        let c = compress(&data);
        // Overhead must stay modest.
        assert!(c.len() < data.len() + data.len() / 8 + 512);
    }

    #[test]
    fn long_range_matches_are_found() {
        // Two identical 100 KiB halves of incompressible data: the second
        // half should compress to almost nothing thanks to the wide window.
        let mut x = 0xdeadbeefu32;
        let half: Vec<u8> = (0..100_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 8) as u8
            })
            .collect();
        let mut data = half.clone();
        data.extend_from_slice(&half);
        let c_half = compressed_len(&half);
        let c_full = compressed_len(&data);
        assert!(
            c_full < c_half + c_half / 4,
            "no long-range match: {c_full} vs {c_half}"
        );
        round_trip(&data);
    }

    #[test]
    fn max_length_matches() {
        let data = vec![0xAAu8; 10_000];
        round_trip(&data);
    }

    #[test]
    fn compressed_len_counts_exactly() {
        // The counting fast path and the materializing compressor must
        // agree on every shape: empty, sub-MIN_MATCH, literal-only,
        // match-heavy, and mixed streams.
        let mut x = 0xc0ffee11u32;
        let noisy: Vec<u8> = (0..30_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 8) as u8
            })
            .collect();
        let mut mixed = noisy.clone();
        mixed.extend_from_slice(&noisy[..10_000]);
        for data in [
            &b""[..],
            b"ab",
            b"abc",
            b"abcd",
            &vec![7u8; 5_000],
            &noisy,
            &mixed,
        ] {
            assert_eq!(
                compressed_len(data),
                compress(data).len(),
                "len {}",
                data.len()
            );
        }
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(decompress(b"nope"), Err(LzError::BadMagic));
        let mut c = compress(b"hello world hello world hello world");
        c.truncate(c.len() - 1);
        assert!(matches!(decompress(&c), Err(LzError::Corrupt(_))));
    }

    #[test]
    fn code_tables_are_monotone() {
        for table in [length_codes(), dist_codes()] {
            for w in table.windows(2) {
                assert!(w[0].0 < w[1].0);
            }
        }
        let lc = length_codes();
        assert_eq!(lc[0].0, 3);
        assert!(lc.last().unwrap().0 <= MAX_MATCH + 1);
        // Every length in 3..=258 maps to a code whose range contains it.
        for len in 3..=MAX_MATCH {
            let c = code_for(&lc, len);
            let (base, extra) = lc[c];
            assert!(base <= len && len < base + (1 << extra).max(1));
        }
    }
}
