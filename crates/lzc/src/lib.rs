//! # lzc — lossless compression and Normalized Compression Distance
//!
//! BinTuner's fitness function is NCD (paper §4.2): an information-theoretic
//! approximation of Kolmogorov-complexity distance computed with a real
//! lossless compressor. The paper uses LZMA; this crate provides a
//! from-scratch LZ77 + canonical-Huffman compressor with an ~32 MiB match
//! window (so concatenated code sections can reference each other, which is
//! what makes NCD work) and the NCD computation on top.
//!
//! ## Example
//!
//! ```
//! let original = b"the quick brown fox jumps over the lazy dog".repeat(100);
//! let packed = lzc::compress(&original);
//! assert!(packed.len() < original.len());
//! assert_eq!(lzc::decompress(&packed).unwrap(), original);
//!
//! // NCD: 0.0 = identical, ->1.0 = unrelated.
//! assert!(lzc::ncd(&original, &original) < 0.15);
//! ```

#![warn(missing_docs)]

mod bitio;
mod huffman;
mod lz;
mod ncd;
mod proptests;

pub use lz::{compress, compressed_len, decompress, LzError, MAX_MATCH, MIN_MATCH};
pub use ncd::{ncd, NcdBaseline};
