//! LSB-first bit-level I/O used by the compressed stream format.

/// Writes bits LSB-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    cur: u32,
    nbits: u32,
}

impl BitWriter {
    /// A fresh writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Append the low `n` bits of `value` (`n` ≤ 24).
    pub fn put(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 24);
        debug_assert!(n == 32 || value < (1u32 << n.max(1)) || n == 0);
        self.cur |= value << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.bytes.push((self.cur & 0xff) as u8);
            self.cur >>= 8;
            self.nbits -= 8;
        }
    }

    /// Flush any partial byte (zero-padded) and return the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.bytes.push((self.cur & 0xff) as u8);
        }
        self.bytes
    }
}

/// Reads bits LSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    cur: u32,
    nbits: u32,
}

/// Error produced when a read runs past the end of the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBits;

impl std::fmt::Display for OutOfBits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("compressed stream truncated")
    }
}

impl std::error::Error for OutOfBits {}

impl<'a> BitReader<'a> {
    /// Read from `bytes`.
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader {
            bytes,
            pos: 0,
            cur: 0,
            nbits: 0,
        }
    }

    /// Read `n` bits (`n` ≤ 24).
    pub fn get(&mut self, n: u32) -> Result<u32, OutOfBits> {
        debug_assert!(n <= 24);
        while self.nbits < n {
            let b = *self.bytes.get(self.pos).ok_or(OutOfBits)?;
            self.pos += 1;
            self.cur |= (b as u32) << self.nbits;
            self.nbits += 8;
        }
        let mask = if n == 0 { 0 } else { (1u32 << n) - 1 };
        let v = self.cur & mask;
        self.cur >>= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Read a single bit.
    pub fn bit(&mut self) -> Result<u32, OutOfBits> {
        self.get(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_widths() {
        let mut w = BitWriter::new();
        let values = [
            (5u32, 3u32),
            (0, 1),
            (1023, 10),
            (1, 1),
            (0xabcd & 0x3fff, 14),
        ];
        for (v, n) in values {
            w.put(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for (v, n) in values {
            assert_eq!(r.get(n).unwrap(), v);
        }
    }

    #[test]
    fn truncation_is_detected() {
        let mut r = BitReader::new(&[0xff]);
        assert!(r.get(8).is_ok());
        assert_eq!(r.get(1), Err(OutOfBits));
    }
}
