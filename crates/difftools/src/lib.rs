//! # difftools — prominent binary-diffing approaches, re-implemented
//!
//! The paper's §5.4 comparative evaluation runs seven open-source (or
//! re-implemented) diffing tools against BinTuner's output. This crate
//! rebuilds each tool's defining *code representation + matcher*
//! ([`Tool`]) plus the Precision@1 evaluation protocol
//! ([`precision_at_1`]) used by IMF-SIM and Asm2Vec.
//!
//! ## Example
//!
//! ```
//! use difftools::{precision_at_1, Tool};
//! use minicc::{Compiler, CompilerKind, OptLevel};
//!
//! let bench = corpus::by_name("429.mcf").unwrap();
//! let cc = Compiler::new(CompilerKind::Gcc);
//! let o0 = cc.compile_preset(&bench.module, OptLevel::O0, binrep::Arch::X86).unwrap();
//! let o1 = cc.compile_preset(&bench.module, OptLevel::O1, binrep::Arch::X86).unwrap();
//! let p = precision_at_1(Tool::Asm2Vec, &o0, &o1, 42);
//! assert!((0.0..=1.0).contains(&p));
//! ```

#![warn(missing_docs)]

pub mod embed;
pub mod hungarian;
pub mod tools;

pub use embed::{cosine, Model};
pub use hungarian::assign;
pub use tools::{precision_at_1, Tool};
