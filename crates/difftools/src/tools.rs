//! Re-implementations of the seven binary-diffing tools of the paper's
//! §5.4 comparative evaluation, and the Precision@1 harness.
//!
//! Each tool is reproduced at the level of its *code representation and
//! matching strategy* (§2.2's taxonomy): lexical function embeddings
//! (Asm2Vec), basic-block embeddings (INNEREYE), CFG/DFG numeric semantic
//! features (VulSeeker), in-memory fuzzing of function I/O (IMF-SIM),
//! symbolic basic-block equivalence along paths (CoP), MinHash over block
//! semantics (Multi-MH), and global bipartite CFG/CG matching with the
//! Hungarian algorithm (BinSlayer).

use crate::embed::{cosine, Model};
use crate::hungarian;
use binhunt::{canonicalize, summarize};
use binrep::{Binary, Function};
use emu::Machine;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::HashMap;

/// The tools compared in Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tool {
    /// Asm2Vec (S&P '19): lexical function embeddings.
    Asm2Vec,
    /// INNEREYE (NDSS '19): basic-block embeddings (LLVM-trained in the
    /// paper, hence only evaluated on the LLVM suite).
    InnerEye,
    /// VulSeeker (ASE '18): CFG+DFG numeric semantic features.
    VulSeeker,
    /// IMF-SIM (ASE '17): in-memory fuzzing, function I/O comparison.
    ImfSim,
    /// CoP (FSE '14): symbolic block equivalence + longest common
    /// subsequence of blocks.
    CoP,
    /// Multi-MH (S&P '15): MinHash over basic-block semantics.
    MultiMh,
    /// BinSlayer (PPREW '13): bipartite graph matching, Hungarian
    /// algorithm.
    BinSlayer,
}

impl Tool {
    /// All seven tools.
    pub const ALL: [Tool; 7] = [
        Tool::Asm2Vec,
        Tool::InnerEye,
        Tool::VulSeeker,
        Tool::ImfSim,
        Tool::CoP,
        Tool::MultiMh,
        Tool::BinSlayer,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Tool::Asm2Vec => "Asm2Vec",
            Tool::InnerEye => "INNEREYE",
            Tool::VulSeeker => "VulSeeker",
            Tool::ImfSim => "IMF-SIM",
            Tool::CoP => "CoP",
            Tool::MultiMh => "Multi-MH",
            Tool::BinSlayer => "BinSlayer",
        }
    }
}

fn eligible(f: &Function) -> bool {
    !f.is_library && f.cfg.insn_count() >= 4
}

/// Precision@1 of `tool` matching functions of `query` (a transformed
/// binary) against `base` (the `-O0` training side, per the paper's
/// Asm2Vec-style setup). Ground truth is symbol-name equality.
pub fn precision_at_1(tool: Tool, base: &Binary, query: &Binary, seed: u64) -> f64 {
    let base_fns: Vec<&Function> = base.functions.iter().filter(|f| eligible(f)).collect();
    let query_fns: Vec<&Function> = query
        .functions
        .iter()
        .filter(|f| eligible(f) && base_fns.iter().any(|g| g.name == f.name))
        .collect();
    if query_fns.is_empty() || base_fns.is_empty() {
        return 0.0;
    }
    if tool == Tool::BinSlayer {
        return binslayer_precision(&base_fns, &query_fns, base, query);
    }
    let scorer = build_scorer(tool, base, query, &base_fns, seed);
    let mut correct = 0usize;
    for qf in &query_fns {
        let mut best: Option<(f64, &str)> = None;
        for (bi, bf) in base_fns.iter().enumerate() {
            let s = scorer.score(qf, bi, bf);
            if best.map(|(b, _)| s > b).unwrap_or(true) {
                best = Some((s, &bf.name));
            }
        }
        if best.map(|(_, n)| n == qf.name).unwrap_or(false) {
            correct += 1;
        }
    }
    correct as f64 / query_fns.len() as f64
}

// ------------------------------------------------------------- scorers

enum Scorer<'a> {
    Embedding {
        model: Model,
        base_vecs: Vec<[f32; crate::embed::DIM]>,
    },
    BlockEmbedding {
        model: Model,
        base_blocks: Vec<Vec<[f32; crate::embed::DIM]>>,
    },
    Features {
        base_feats: Vec<binrep::FunctionFeatures>,
    },
    Io {
        machine_query: Machine<'a>,
        base_sigs: Vec<Vec<u32>>,
        arg_sets: Vec<[u32; 4]>,
        query_sig_cache: std::cell::RefCell<HashMap<u32, Vec<u32>>>,
    },
    Lcs {
        base_seqs: Vec<Vec<u64>>,
    },
    MinHash {
        base_sigs: Vec<[u64; 32]>,
    },
}

fn block_hashes(f: &Function) -> Vec<u64> {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    f.cfg
        .blocks
        .iter()
        .map(|b| {
            let mut h = DefaultHasher::new();
            canonicalize(&summarize(&b.insns)).hash(&mut h);
            h.finish()
        })
        .collect()
}

fn minhash(elems: &[u64]) -> [u64; 32] {
    let mut sig = [u64::MAX; 32];
    for &e in elems {
        for (k, s) in sig.iter_mut().enumerate() {
            let h = e
                .wrapping_mul(0x9e3779b97f4a7c15 ^ (k as u64).wrapping_mul(0xc2b2ae3d27d4eb4f))
                .rotate_left((k % 61) as u32);
            if h < *s {
                *s = h;
            }
        }
    }
    sig
}

fn io_signature(machine: &Machine<'_>, f: &Function, arg_sets: &[[u32; 4]]) -> Vec<u32> {
    let mut sig = Vec::with_capacity(arg_sets.len() * 2);
    for args in arg_sets {
        match machine.run_function(f.id, &args[..f.params.min(4)], &[7, 3], 60_000) {
            Ok(r) => {
                sig.push(r.ret);
                sig.push(
                    r.output
                        .iter()
                        .fold(0u32, |h, &v| h.wrapping_mul(31).wrapping_add(v)),
                );
            }
            Err(_) => {
                sig.push(0xdead_beef);
                sig.push(0);
            }
        }
    }
    sig
}

fn build_scorer<'a>(
    tool: Tool,
    base: &'a Binary,
    query: &'a Binary,
    base_fns: &[&Function],
    seed: u64,
) -> Scorer<'a> {
    match tool {
        Tool::Asm2Vec => {
            let model = Model::train(base, 2, seed);
            let base_vecs = base_fns.iter().map(|f| model.embed_function(f)).collect();
            Scorer::Embedding { model, base_vecs }
        }
        Tool::InnerEye => {
            let model = Model::train(base, 2, seed);
            let base_blocks = base_fns
                .iter()
                .map(|f| {
                    f.cfg
                        .blocks
                        .iter()
                        .filter(|b| !b.insns.is_empty())
                        .map(|b| model.embed_block(&b.insns))
                        .collect()
                })
                .collect();
            Scorer::BlockEmbedding { model, base_blocks }
        }
        Tool::VulSeeker => Scorer::Features {
            base_feats: base_fns
                .iter()
                .map(|f| binrep::function_features(f))
                .collect(),
        },
        Tool::ImfSim => {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x1f);
            // 12 probe input sets: enough that functions with genuinely
            // different behavior rarely collide on every probe (6 was
            // observed to leave indistinguishable small helpers tied).
            let arg_sets: Vec<[u32; 4]> = (0..12)
                .map(|_| {
                    [
                        rng.gen_range(0..256),
                        rng.gen_range(0..1024),
                        rng.gen(),
                        rng.gen_range(0..16),
                    ]
                })
                .collect();
            let machine_base = Machine::new(base);
            let base_sigs = base_fns
                .iter()
                .map(|f| io_signature(&machine_base, f, &arg_sets))
                .collect();
            Scorer::Io {
                machine_query: Machine::new(query),
                base_sigs,
                arg_sets,
                query_sig_cache: Default::default(),
            }
        }
        Tool::CoP => Scorer::Lcs {
            base_seqs: base_fns.iter().map(|f| block_hashes(f)).collect(),
        },
        Tool::MultiMh => Scorer::MinHash {
            base_sigs: base_fns.iter().map(|f| minhash(&block_hashes(f))).collect(),
        },
        Tool::BinSlayer => unreachable!("handled separately"),
    }
}

fn lcs_len(a: &[u64], b: &[u64]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for x in a {
        for (j, y) in b.iter().enumerate() {
            cur[j + 1] = if x == y {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

impl<'a> Scorer<'a> {
    fn score(&self, qf: &Function, bi: usize, _bf: &Function) -> f64 {
        match self {
            Scorer::Embedding { model, base_vecs } => {
                let qv = model.embed_function(qf);
                cosine(&qv, &base_vecs[bi])
            }
            Scorer::BlockEmbedding { model, base_blocks } => {
                let q_blocks: Vec<_> = qf
                    .cfg
                    .blocks
                    .iter()
                    .filter(|b| !b.insns.is_empty())
                    .map(|b| model.embed_block(&b.insns))
                    .collect();
                if q_blocks.is_empty() || base_blocks[bi].is_empty() {
                    return 0.0;
                }
                // Mean of best block-pair similarities (query side).
                let mut total = 0.0;
                for qb in &q_blocks {
                    let best = base_blocks[bi]
                        .iter()
                        .map(|bb| cosine(qb, bb))
                        .fold(f64::MIN, f64::max);
                    total += best;
                }
                total / q_blocks.len() as f64
            }
            Scorer::Features { base_feats } => {
                binrep::function_features(qf).cosine(&base_feats[bi])
            }
            Scorer::Io {
                machine_query,
                base_sigs,
                arg_sets,
                query_sig_cache,
                ..
            } => {
                let mut cache = query_sig_cache.borrow_mut();
                let sig = cache
                    .entry(qf.id.0)
                    .or_insert_with(|| io_signature(machine_query, qf, arg_sets))
                    .clone();
                let base = &base_sigs[bi];
                let eq = sig.iter().zip(base).filter(|(a, b)| a == b).count();
                eq as f64 / sig.len().max(1) as f64
            }
            Scorer::Lcs { base_seqs } => {
                let q = block_hashes(qf);
                let l = lcs_len(&q, &base_seqs[bi]);
                l as f64 / q.len().max(base_seqs[bi].len()).max(1) as f64
            }
            Scorer::MinHash { base_sigs } => {
                let q = minhash(&block_hashes(qf));
                let eq = q.iter().zip(&base_sigs[bi]).filter(|(a, b)| a == b).count();
                eq as f64 / 32.0
            }
        }
    }
}

fn binslayer_precision(
    base_fns: &[&Function],
    query_fns: &[&Function],
    base: &Binary,
    query: &Binary,
) -> f64 {
    // Cost = L1 distance between structural feature vectors plus call-
    // degree mismatch (BinSlayer's node cost over CFG/CG shape).
    let cg_base = base.call_graph();
    let cg_query = query.call_graph();
    let degree =
        |bin: &Binary,
         f: &Function,
         cg: &std::collections::BTreeMap<binrep::FuncId, Vec<binrep::FuncId>>| {
            let out = cg.get(&f.id).map(Vec::len).unwrap_or(0);
            let inc = cg.values().filter(|v| v.contains(&f.id)).count();
            let _ = bin;
            (out, inc)
        };
    let feat = |f: &Function| binrep::function_features(f).to_vec();
    let base_feats: Vec<(Vec<f64>, (usize, usize))> = base_fns
        .iter()
        .map(|f| (feat(f), degree(base, f, &cg_base)))
        .collect();
    let costs: Vec<Vec<f64>> = query_fns
        .iter()
        .map(|qf| {
            let qv = feat(qf);
            let qd = degree(query, qf, &cg_query);
            base_feats
                .iter()
                .map(|(bv, bd)| {
                    let l1: f64 = qv.iter().zip(bv).map(|(a, b)| (a - b).abs()).sum();
                    l1 + 3.0 * (qd.0.abs_diff(bd.0) + qd.1.abs_diff(bd.1)) as f64
                })
                .collect()
        })
        .collect();
    let assignment = hungarian::assign(&costs);
    let correct = assignment
        .iter()
        .enumerate()
        .filter(|(qi, bi)| {
            bi.map(|bi| base_fns[bi].name == query_fns[*qi].name)
                .unwrap_or(false)
        })
        .count();
    correct as f64 / query_fns.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use minicc::{Compiler, CompilerKind, OptLevel};

    fn compiled(level: OptLevel) -> Binary {
        let b = corpus::by_name("429.mcf").unwrap();
        Compiler::new(CompilerKind::Gcc)
            .compile_preset(&b.module, level, binrep::Arch::X86)
            .unwrap()
    }

    #[test]
    fn self_match_is_perfect_for_all_tools() {
        let bin = compiled(OptLevel::O0);
        for tool in Tool::ALL {
            let p = precision_at_1(tool, &bin, &bin, 7);
            // IMF-SIM compares blackbox I/O only: two functions computing
            // identical outputs are genuinely indistinguishable to it, so
            // its self-precision may dip below 1.0 even on identical
            // binaries (a faithful property of the approach). The generated
            // corpus contains duplicate/wrapper function pairs that agree
            // on every probe input, and each such pair costs one match, so
            // the floor is set to tolerate a few collision classes.
            let floor = if tool == Tool::ImfSim { 0.70 } else { 0.95 };
            assert!(p > floor, "{} self-precision {p}", tool.name());
        }
    }

    #[test]
    fn precision_declines_with_optimization_level() {
        let o0 = compiled(OptLevel::O0);
        let o1 = compiled(OptLevel::O1);
        let o3 = compiled(OptLevel::O3);
        for tool in [Tool::Asm2Vec, Tool::CoP, Tool::MultiMh, Tool::BinSlayer] {
            let p1 = precision_at_1(tool, &o0, &o1, 7);
            let p3 = precision_at_1(tool, &o0, &o3, 7);
            assert!(p3 <= p1 + 0.15, "{}: O1 {p1} vs O3 {p3}", tool.name());
        }
    }

    #[test]
    fn imf_sim_is_robust_to_intra_procedural_change() {
        // IMF-SIM compares I/O behaviour, which optimization preserves —
        // the paper's explanation for it beating the other tools.
        let o0 = compiled(OptLevel::O0);
        let o3 = compiled(OptLevel::O3);
        let p = precision_at_1(Tool::ImfSim, &o0, &o3, 7);
        assert!(p > 0.5, "IMF-SIM O3 precision {p}");
    }
}
