//! Token-embedding machinery shared by the Asm2Vec and INNEREYE
//! re-implementations: a small CBOW model with negative sampling trained
//! by SGD over instruction-token streams.
//!
//! Fidelity note: Asm2Vec uses a PV-DM variant and INNEREYE an LSTM; what
//! the paper's experiment exercises is the *representation family* —
//! lexical embeddings of instruction tokens, robust to renaming but tied
//! to token distribution — which CBOW captures, deterministically and
//! fast.

use binrep::{Binary, Function, Insn, Operand};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::HashMap;

/// Embedding dimensionality.
pub const DIM: usize = 16;

/// Tokenize one instruction into lexical tokens (mnemonic + operand
/// shape tokens, registers kept by name — Asm2Vec learns their
/// relationships rather than normalizing them away).
pub fn tokens(insn: &Insn) -> Vec<String> {
    let mut out = vec![insn.op.mnemonic()];
    let mut op_token = |o: &Operand| {
        out.push(match o {
            Operand::Reg(r) => r.name().to_string(),
            Operand::Vec(x) => format!("xmm{}", x.0),
            Operand::Imm(v) => {
                if v.unsigned_abs() < 16 {
                    format!("imm{v}")
                } else {
                    "imm_large".to_string()
                }
            }
            Operand::Mem(m) => {
                let mut t = "mem".to_string();
                if let Some(b) = m.base {
                    t.push('_');
                    t.push_str(b.name());
                }
                if m.index.is_some() {
                    t.push_str("_idx");
                }
                t
            }
        })
    };
    if let Some(a) = &insn.a {
        op_token(a);
    }
    if let Some(b) = &insn.b {
        op_token(b);
    }
    out
}

/// A trained token-embedding model.
#[derive(Debug, Clone)]
pub struct Model {
    vocab: HashMap<String, usize>,
    vectors: Vec<[f32; DIM]>,
    counts: Vec<u32>,
}

impl Model {
    /// Train on every instruction stream in a binary.
    pub fn train(bin: &Binary, epochs: usize, seed: u64) -> Model {
        let mut streams: Vec<Vec<String>> = Vec::new();
        for f in &bin.functions {
            let mut s = Vec::new();
            for b in &f.cfg.blocks {
                for i in &b.insns {
                    s.extend(tokens(i));
                }
            }
            if !s.is_empty() {
                streams.push(s);
            }
        }
        let mut vocab = HashMap::new();
        let mut counts = Vec::new();
        for t in streams.iter().flatten() {
            let id = *vocab.entry(t.clone()).or_insert_with(|| {
                counts.push(0);
                counts.len() - 1
            });
            counts[id] += 1;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vectors: Vec<[f32; DIM]> = (0..vocab.len())
            .map(|_| {
                let mut v = [0f32; DIM];
                for x in &mut v {
                    *x = (rng.gen::<f32>() - 0.5) / DIM as f32;
                }
                v
            })
            .collect();
        let mut ctx_vectors = vectors.clone();
        let ids: Vec<Vec<usize>> = streams
            .iter()
            .map(|s| s.iter().map(|t| vocab[t]).collect())
            .collect();
        let vocab_size = vectors.len().max(1);
        let lr = 0.05f32;
        for _ in 0..epochs {
            for stream in &ids {
                for (pos, &center) in stream.iter().enumerate() {
                    // Context: window of 2 either side.
                    let lo = pos.saturating_sub(2);
                    let hi = (pos + 3).min(stream.len());
                    let mut ctx = [0f32; DIM];
                    let mut n = 0;
                    for w in stream[lo..hi].iter() {
                        if *w != center {
                            for d in 0..DIM {
                                ctx[d] += ctx_vectors[*w][d];
                            }
                            n += 1;
                        }
                    }
                    if n == 0 {
                        continue;
                    }
                    for x in &mut ctx {
                        *x /= n as f32;
                    }
                    // Positive + 2 negative samples.
                    for (target, label) in [(center, 1.0f32)]
                        .into_iter()
                        .chain((0..2).map(|_| (rng.gen_range(0..vocab_size), 0.0)))
                    {
                        let w = &vectors[target];
                        let dot: f32 = (0..DIM).map(|d| ctx[d] * w[d]).sum();
                        let pred = 1.0 / (1.0 + (-dot).exp());
                        let g = lr * (label - pred);
                        let wv = vectors[target];
                        for d in 0..DIM {
                            vectors[target][d] += g * ctx[d];
                        }
                        for token in stream[lo..hi].iter() {
                            if *token != center {
                                for d in 0..DIM {
                                    ctx_vectors[*token][d] += g * wv[d] / n as f32;
                                }
                            }
                        }
                    }
                }
            }
        }
        Model {
            vocab,
            vectors,
            counts,
        }
    }

    /// Embed a token sequence: inverse-frequency-weighted average.
    pub fn embed_tokens<'a>(&self, toks: impl Iterator<Item = &'a str>) -> [f32; DIM] {
        let mut v = [0f32; DIM];
        let mut total = 0f32;
        for t in toks {
            if let Some(&id) = self.vocab.get(t) {
                let w = 1.0 / (1.0 + (self.counts[id] as f32).ln().max(0.0));
                for (slot, x) in v.iter_mut().zip(&self.vectors[id]) {
                    *slot += w * x;
                }
                total += w;
            }
        }
        if total > 0.0 {
            for x in &mut v {
                *x /= total;
            }
        }
        v
    }

    /// Embed a whole function.
    pub fn embed_function(&self, f: &Function) -> [f32; DIM] {
        let toks: Vec<String> = f
            .cfg
            .blocks
            .iter()
            .flat_map(|b| b.insns.iter())
            .flat_map(tokens)
            .collect();
        self.embed_tokens(toks.iter().map(String::as_str))
    }

    /// Embed one basic block's instruction list.
    pub fn embed_block(&self, insns: &[Insn]) -> [f32; DIM] {
        let toks: Vec<String> = insns.iter().flat_map(tokens).collect();
        self.embed_tokens(toks.iter().map(String::as_str))
    }
}

/// Cosine similarity of two embeddings.
pub fn cosine(a: &[f32; DIM], b: &[f32; DIM]) -> f64 {
    let dot: f32 = (0..DIM).map(|d| a[d] * b[d]).sum();
    let na: f32 = (0..DIM).map(|d| a[d] * a[d]).sum::<f32>().sqrt();
    let nb: f32 = (0..DIM).map(|d| b[d] * b[d]).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot / (na * nb)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use binrep::{Arch, BlockId, FuncId, Gpr, Opcode};

    fn tiny_binary() -> Binary {
        let mut bin = Binary::new("t", Arch::X86);
        for k in 0..4u32 {
            let mut f = Function::new(FuncId(k), format!("f{k}"), 1);
            let blk = f.cfg.block_mut(BlockId(0));
            for j in 0..12 {
                blk.insns
                    .push(Insn::op2(Opcode::Add, Gpr::Eax, (k * 7 + j) as i64));
                blk.insns.push(Insn::op2(Opcode::Mov, Gpr::Ebx, Gpr::Eax));
            }
            bin.functions.push(f);
        }
        bin
    }

    #[test]
    fn training_is_deterministic() {
        let bin = tiny_binary();
        let m1 = Model::train(&bin, 2, 42);
        let m2 = Model::train(&bin, 2, 42);
        assert_eq!(m1.vectors.len(), m2.vectors.len());
        for (a, b) in m1.vectors.iter().zip(&m2.vectors) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn identical_functions_have_identical_embeddings() {
        let bin = tiny_binary();
        let m = Model::train(&bin, 2, 1);
        let e0 = m.embed_function(&bin.functions[0]);
        let e0b = m.embed_function(&bin.functions[0]);
        assert_eq!(e0, e0b);
        assert!((cosine(&e0, &e0b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tokens_capture_operand_shapes() {
        let i = Insn::op2(
            Opcode::Mov,
            Gpr::Eax,
            binrep::MemRef::base_disp(Gpr::Ebp, -4),
        );
        let t = tokens(&i);
        assert_eq!(t, vec!["mov", "eax", "mem_ebp"]);
        let j = Insn::op2(Opcode::Add, Gpr::Ebx, 100000i64);
        assert_eq!(tokens(&j), vec!["add", "ebx", "imm_large"]);
    }
}
