//! Hungarian algorithm (Kuhn–Munkres) for minimum-cost bipartite
//! assignment — the improvement BinSlayer (PPREW '13) adds over BinDiff's
//! greedy graph-matching heuristics.

/// Solve the assignment problem for an `n×m` cost matrix.
///
/// Returns `assign[i] = Some(j)` mapping each row to a distinct column
/// minimizing total cost. When `n > m`, the extra rows stay unassigned.
pub fn assign(costs: &[Vec<f64>]) -> Vec<Option<usize>> {
    let n = costs.len();
    if n == 0 {
        return Vec::new();
    }
    let m = costs[0].len();
    let dim = n.max(m);
    const PAD: f64 = 1e9;
    // Pad to square.
    let cost = |i: usize, j: usize| -> f64 {
        if i < n && j < m {
            costs[i][j]
        } else {
            PAD
        }
    };
    // Kuhn–Munkres with potentials (O(dim³)), 1-based internal arrays.
    let mut u = vec![0.0f64; dim + 1];
    let mut v = vec![0.0f64; dim + 1];
    let mut p = vec![0usize; dim + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; dim + 1];
    for i in 1..=dim {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; dim + 1];
        let mut used = vec![false; dim + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0;
            for j in 1..=dim {
                if used[j] {
                    continue;
                }
                let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=dim {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut out = vec![None; n];
    for (j, &i) in p.iter().enumerate().take(dim + 1).skip(1) {
        if i >= 1 && i <= n && j <= m {
            // Reject padded assignments.
            if cost(i - 1, j - 1) < PAD {
                out[i - 1] = Some(j - 1);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_square() {
        let costs = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let a = assign(&costs);
        // Optimal: (0,1)=1, (1,0)=2, (2,2)=2 → total 5.
        assert_eq!(a, vec![Some(1), Some(0), Some(2)]);
    }

    #[test]
    fn identity_is_optimal_for_diagonal() {
        let n = 6;
        let costs: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| if i == j { 0.0 } else { 10.0 }).collect())
            .collect();
        let a = assign(&costs);
        for (i, j) in a.iter().enumerate() {
            assert_eq!(*j, Some(i));
        }
    }

    #[test]
    fn rectangular_matrices() {
        // More rows than columns: one row unassigned.
        let costs = vec![vec![1.0], vec![0.5], vec![2.0]];
        let a = assign(&costs);
        assert_eq!(a.iter().filter(|x| x.is_some()).count(), 1);
        assert_eq!(a[1], Some(0));
        // More columns than rows.
        let costs = vec![vec![3.0, 1.0, 2.0]];
        assert_eq!(assign(&costs), vec![Some(1)]);
    }

    #[test]
    fn total_cost_is_minimal_vs_brute_force() {
        // Deterministic pseudo-random matrices, verified against brute force.
        let mut x = 0x1357u32;
        let mut rnd = move || {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            (x % 100) as f64
        };
        for _ in 0..20 {
            let n = 5;
            let costs: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| rnd()).collect()).collect();
            let a = assign(&costs);
            let got: f64 = a
                .iter()
                .enumerate()
                .map(|(i, j)| costs[i][j.unwrap()])
                .sum();
            // Brute force over permutations.
            let mut best = f64::INFINITY;
            let mut perm: Vec<usize> = (0..n).collect();
            permute(&mut perm, 0, &mut |p| {
                let c: f64 = p.iter().enumerate().map(|(i, &j)| costs[i][j]).sum();
                if c < best {
                    best = c;
                }
            });
            assert!((got - best).abs() < 1e-9, "{got} vs {best}");
        }
    }

    fn permute(arr: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == arr.len() {
            f(arr);
            return;
        }
        for i in k..arr.len() {
            arr.swap(k, i);
            permute(arr, k + 1, f);
            arr.swap(k, i);
        }
    }
}
