//! # avscan — anti-virus scanner ensemble and compiler-provenance classifier
//!
//! Models the two measurement instruments of the paper's malware study:
//!
//! * **VirusTotal-style scanner ensemble** (§5.5, Table 2, Figure 1(b)):
//!   ~54 signature scanners. Most match byte n-grams extracted from the
//!   *code section* of a reference sample (these break when BinTuner
//!   re-tunes the code); a minority match *data-section* strings (C2
//!   tables) or the *API import set*, which survive retuning — exactly the
//!   paper's observation about which scanners still detect tuned samples.
//! * **BinComp-style provenance classifier** (§2.4, Figure 1(a)): nearest-
//!   centroid classification of (compiler, optimization level) from
//!   code-section features, with a distance threshold flagging
//!   *non-default* optimization settings.
//!
//! ## Example
//!
//! ```
//! use avscan::Ensemble;
//! use minicc::{Compiler, CompilerKind, OptLevel};
//!
//! let mal = corpus::malware(corpus::MalwareFamily::LightAidra, 0);
//! let cc = Compiler::new(CompilerKind::Gcc);
//! let reference = cc.compile_preset(&mal.module, OptLevel::O2, binrep::Arch::X86).unwrap();
//! let ensemble = Ensemble::from_reference(&reference, 54, 7);
//! assert!(ensemble.detection_count(&reference) > 40);
//! ```

#![warn(missing_docs)]

use binrep::{Arch, Binary};
use minicc::{Compiler, CompilerKind, OptLevel};
use rand::prelude::*;
use rand::rngs::StdRng;

/// One scanner's signature.
#[derive(Debug, Clone)]
enum Signature {
    /// Byte n-gram over the code section.
    CodeNgram(Vec<u8>),
    /// Byte n-gram over the data section.
    DataBytes(Vec<u8>),
    /// Required set of imported API names.
    ApiSet(Vec<String>),
}

/// A single anti-virus scanner.
#[derive(Debug, Clone)]
pub struct Scanner {
    name: String,
    sig: Signature,
}

impl Scanner {
    /// Whether this scanner flags the binary.
    pub fn detects(&self, bin: &Binary) -> bool {
        match &self.sig {
            Signature::CodeNgram(pat) => {
                let code = binrep::encode_binary(bin);
                code.windows(pat.len()).any(|w| w == &pat[..])
            }
            Signature::DataBytes(pat) => {
                let data: Vec<u8> = bin.data.iter().flat_map(|w| w.to_le_bytes()).collect();
                data.windows(pat.len()).any(|w| w == &pat[..])
            }
            Signature::ApiSet(apis) => {
                let imports = bin.referenced_imports();
                apis.iter().all(|a| imports.iter().any(|i| i == a))
            }
        }
    }

    /// Scanner name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A deterministic ensemble of scanners built from a reference sample.
#[derive(Debug, Clone)]
pub struct Ensemble {
    scanners: Vec<Scanner>,
}

impl Ensemble {
    /// Extract `n` signatures from a reference (default-compiled) sample.
    ///
    /// Signature mix: ~65% code n-grams, ~20% data strings, ~15% API
    /// sets — the proportion drives how far detection falls for tuned
    /// variants (Table 2: from ~46 to ~14 of 60ish engines).
    pub fn from_reference(reference: &Binary, n: usize, seed: u64) -> Ensemble {
        let mut rng = StdRng::seed_from_u64(seed);
        let code = binrep::encode_binary(reference);
        let data: Vec<u8> = reference
            .data
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .collect();
        let imports = reference.referenced_imports();
        let mut scanners = Vec::with_capacity(n);
        for k in 0..n {
            let roll = rng.gen_range(0..100);
            let sig = if roll < 65 && code.len() > 64 {
                let len = rng.gen_range(20..48usize);
                let start = rng.gen_range(0..code.len() - len);
                Signature::CodeNgram(code[start..start + len].to_vec())
            } else if roll < 85 && data.len() > 24 {
                let len = rng.gen_range(8..20usize).min(data.len() - 1);
                // Bias towards string-looking regions (printable bytes).
                let mut best = 0usize;
                let mut best_score = 0usize;
                for _ in 0..8 {
                    let s = rng.gen_range(0..data.len() - len);
                    let score = data[s..s + len]
                        .iter()
                        .filter(|b| b.is_ascii_graphic() || **b == b' ')
                        .count();
                    if score > best_score {
                        best_score = score;
                        best = s;
                    }
                }
                Signature::DataBytes(data[best..best + len].to_vec())
            } else if imports.len() >= 2 {
                let mut apis = imports.clone();
                apis.shuffle(&mut rng);
                apis.truncate(rng.gen_range(2..=3.min(apis.len())));
                Signature::ApiSet(apis)
            } else {
                Signature::CodeNgram(code[..code.len().min(24)].to_vec())
            };
            scanners.push(Scanner {
                name: format!("AV-{k:02}"),
                sig,
            });
        }
        Ensemble { scanners }
    }

    /// Number of scanners flagging this binary (the VirusTotal count).
    pub fn detection_count(&self, bin: &Binary) -> usize {
        self.scanners.iter().filter(|s| s.detects(bin)).count()
    }

    /// Total scanners in the ensemble.
    pub fn len(&self) -> usize {
        self.scanners.len()
    }

    /// Whether the ensemble is empty.
    pub fn is_empty(&self) -> bool {
        self.scanners.is_empty()
    }
}

/// A provenance label: compiler family plus optimization setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Provenance {
    /// Compiler family.
    pub compiler: CompilerKind,
    /// Nearest default level.
    pub level: OptLevel,
    /// Whether the sample looks like a *non-default* setting (distance to
    /// every preset centroid above threshold).
    pub non_default: bool,
}

/// BinComp-style compiler-provenance classifier.
#[derive(Debug, Clone)]
pub struct ProvenanceClassifier {
    centroids: Vec<(CompilerKind, OptLevel, Vec<f64>)>,
    threshold: f64,
}

fn features(bin: &Binary) -> Vec<f64> {
    let hist = binrep::opcode_histogram(bin);
    let total: usize = hist.values().sum::<usize>().max(1);
    // Fixed mnemonic basket + structural markers.
    const BASKET: [&str; 14] = [
        "mov", "push", "pop", "add", "cmp", "lea", "imul", "udiv", "umulh", "nop", "paddd",
        "pmulld", "setae", "cmovb",
    ];
    let mut v: Vec<f64> = BASKET
        .iter()
        .map(|m| *hist.get(*m).unwrap_or(&0) as f64 / total as f64)
        .collect();
    let tables = bin
        .functions
        .iter()
        .flat_map(|f| f.cfg.blocks.iter())
        .filter(|b| matches!(b.term, binrep::Terminator::JumpTable { .. }))
        .count();
    let tails = bin
        .functions
        .iter()
        .flat_map(|f| f.cfg.blocks.iter())
        .filter(|b| matches!(b.term, binrep::Terminator::TailCall(_)))
        .count();
    v.push(tables as f64 / bin.functions.len().max(1) as f64);
    v.push(tails as f64 / bin.functions.len().max(1) as f64);
    v.push(bin.block_count() as f64 / bin.insn_count().max(1) as f64);
    v
}

fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

impl ProvenanceClassifier {
    /// Train centroids by compiling a training module at every
    /// (compiler, level) pair — the paper trains on Mirai's leaked source
    /// with "all applicable combinations of compiler versions and
    /// optimization levels" (§2.4).
    pub fn train(
        training: &minicc::ast::Module,
        arch: Arch,
        threshold: f64,
    ) -> ProvenanceClassifier {
        let mut centroids = Vec::new();
        for kind in [CompilerKind::Gcc, CompilerKind::Llvm] {
            let cc = Compiler::new(kind);
            for level in OptLevel::ALL {
                let bin = cc
                    .compile_preset(training, level, arch)
                    .expect("training compile");
                centroids.push((kind, level, features(&bin)));
            }
        }
        ProvenanceClassifier {
            centroids,
            threshold,
        }
    }

    /// Classify a sample.
    pub fn classify(&self, bin: &Binary) -> Provenance {
        let f = features(bin);
        let mut best: Option<(f64, CompilerKind, OptLevel)> = None;
        for (kind, level, c) in &self.centroids {
            let d = dist(&f, c);
            if best.map(|(bd, _, _)| d < bd).unwrap_or(true) {
                best = Some((d, *kind, *level));
            }
        }
        let (d, compiler, level) = best.expect("trained classifier");
        Provenance {
            compiler,
            level,
            non_default: d > self.threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference() -> (corpus::Benchmark, Binary) {
        let mal = corpus::malware(corpus::MalwareFamily::Bashlife, 0);
        let cc = Compiler::new(CompilerKind::Gcc);
        let bin = cc
            .compile_preset(&mal.module, OptLevel::O2, Arch::X86)
            .unwrap();
        (mal, bin)
    }

    #[test]
    fn reference_sample_is_widely_detected() {
        let (_, bin) = reference();
        let ens = Ensemble::from_reference(&bin, 54, 3);
        let n = ens.detection_count(&bin);
        assert!(n >= 50, "{n}/54");
    }

    #[test]
    fn code_signatures_break_when_code_changes() {
        let (mal, bin) = reference();
        let ens = Ensemble::from_reference(&bin, 54, 3);
        // Recompile at O3: code bytes shift, data/API signatures survive.
        let cc = Compiler::new(CompilerKind::Gcc);
        let o3 = cc
            .compile_preset(&mal.module, OptLevel::O3, Arch::X86)
            .unwrap();
        let n_o3 = ens.detection_count(&o3);
        let n_ref = ens.detection_count(&bin);
        assert!(n_o3 < n_ref, "O3 {n_o3} vs ref {n_ref}");
        // Data-section strings keep a detection floor.
        assert!(n_o3 > 3, "{n_o3}");
    }

    #[test]
    fn provenance_identifies_default_levels() {
        let mal = corpus::malware(corpus::MalwareFamily::Mirai, 0);
        let clf = ProvenanceClassifier::train(&mal.module, Arch::X86, 0.05);
        let cc = Compiler::new(CompilerKind::Gcc);
        for level in [OptLevel::O0, OptLevel::O2, OptLevel::O3] {
            let bin = cc.compile_preset(&mal.module, level, Arch::X86).unwrap();
            let p = clf.classify(&bin);
            assert!(!p.non_default, "{level} classified non-default");
            assert_eq!(p.level, level, "wrong level for {level}");
        }
    }

    #[test]
    fn ensemble_is_deterministic() {
        let (_, bin) = reference();
        let a = Ensemble::from_reference(&bin, 30, 9);
        let b = Ensemble::from_reference(&bin, 30, 9);
        assert_eq!(a.detection_count(&bin), b.detection_count(&bin));
        assert_eq!(a.len(), 30);
    }
}
