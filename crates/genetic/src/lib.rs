//! # genetic — the metaheuristic search engine of BinTuner
//!
//! Paper §4.1 / Appendix B: compiler optimization flags are encoded as a
//! chromosome-like boolean vector; selection, crossover and mutation evolve
//! the population under a fitness function (NCD), with a constraint-repair
//! step keeping every individual a *valid* optimization sequence. The four
//! tuned parameters — `mutation_rate`, `crossover_rate`,
//! `must_mutate_count`, `crossover_strength` — appear exactly as in the
//! paper, as do the three termination criteria (iteration cap, time budget,
//! diminishing returns on fitness growth).
//!
//! ## Example
//!
//! ```
//! use genetic::{Ga, GaParams, Termination};
//!
//! // Maximize the number of set bits. The fitness closure returns
//! // (fitness, cost-in-seconds); evaluations are the paper's
//! // "compilation iterations".
//! let mut ga = Ga::new(16, GaParams::default(), 42);
//! let run = ga.run(
//!     |genes| (genes.iter().filter(|&&g| g).count() as f64, 0.1),
//!     |genes, _| genes.to_vec(), // no constraints to repair
//!     &Termination { max_evaluations: 800, plateau_growth: 0.0, ..Default::default() },
//! );
//! assert!(run.best_fitness >= 14.0);
//! ```

#![warn(missing_docs)]

use rand::prelude::*;
use rand::rngs::StdRng;
use std::cell::RefCell;

/// The outcome of evaluating one genome.
///
/// Returned by [`Evaluator::evaluate_batch`]; carries the fitness itself
/// plus the bookkeeping the tuning loop records per iteration (paper
/// Table 1's cost accounting and the engine's cache telemetry).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Eval {
    /// Fitness of the genome (higher is better).
    pub fitness: f64,
    /// Modelled cost of the evaluation in seconds (the paper's
    /// "compilation iterations" time accounting).
    pub cost_seconds: f64,
    /// Measured wall-clock spent producing this evaluation, in seconds
    /// (0 when the evaluator does not measure, e.g. the closure shim).
    pub wall_seconds: f64,
    /// Wall-clock seconds this evaluation spent producing a *shared*
    /// stage-1 (AST) artifact on behalf of its whole effect family, in
    /// addition to its own compile. Recorded separately from
    /// `wall_seconds` so per-evaluation wall attribution stays truthful
    /// (0 for cache hits and for non-producer evaluations).
    pub ast_produce_seconds: f64,
    /// Whether the result came from the evaluator's *in-run* memoization
    /// cache rather than a fresh evaluation.
    pub cache_hit: bool,
    /// Whether the result was served from a *persistent* (cross-run)
    /// store — a warm-start hit that saved a real evaluation this
    /// process never performed. Disjoint from `cache_hit`.
    pub persistent_hit: bool,
    /// Fresh evaluation whose compile reused a cached stage-1 artifact
    /// (optimized AST) and ran only the later pipeline stages. Always
    /// `false` for cache hits and for evaluators without an artifact
    /// cache. Disjoint from `lower_reused`.
    pub ast_reused: bool,
    /// Fresh evaluation whose compile reused a cached stage-2 artifact
    /// (lowered machine code) and ran only the final, cheap stage.
    pub lower_reused: bool,
}

impl Eval {
    /// A plain evaluation: no cache, no measured wall time.
    pub fn new(fitness: f64, cost_seconds: f64) -> Eval {
        Eval {
            fitness,
            cost_seconds,
            wall_seconds: 0.0,
            ast_produce_seconds: 0.0,
            cache_hit: false,
            persistent_hit: false,
            ast_reused: false,
            lower_reused: false,
        }
    }
}

/// A typed abort from an [`Evaluator`]: the batch could not be scored
/// and never will be — the search cannot continue.
///
/// This is the error channel a remote evaluation service needs: losing
/// every worker mid-batch is not a per-genome failure (a failed compile
/// still yields a fitness penalty) but the death of the evaluation
/// substrate itself. In-process evaluators are infallible by
/// construction and never produce one.
#[derive(Debug)]
pub struct EvalAbort {
    message: String,
    source: Option<Box<dyn std::error::Error + Send + Sync>>,
}

impl EvalAbort {
    /// An abort with a message and no underlying cause.
    pub fn new(message: impl Into<String>) -> EvalAbort {
        EvalAbort {
            message: message.into(),
            source: None,
        }
    }

    /// An abort wrapping the error that killed the evaluator.
    pub fn with_source(
        message: impl Into<String>,
        source: impl std::error::Error + Send + Sync + 'static,
    ) -> EvalAbort {
        EvalAbort {
            message: message.into(),
            source: Some(Box::new(source)),
        }
    }
}

impl std::fmt::Display for EvalAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for EvalAbort {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.source
            .as_deref()
            .map(|e| e as &(dyn std::error::Error + 'static))
    }
}

/// Batch fitness evaluation — the server/client split of the paper's
/// Figure 4 architecture.
///
/// The GA produces whole generations at a time; an `Evaluator` scores
/// them as one batch, which lets implementations fan the work out to a
/// worker pool, deduplicate repeated genomes, or ship batches to remote
/// compile farms. `evaluate_batch` must return exactly one [`Eval`] per
/// input genome, in input order, and must be deterministic in the genome
/// (the GA's reproducibility guarantee rests on that).
///
/// A *failed evaluation* (e.g. a rejected flag combination) is still an
/// `Ok` result — it scores the genome with a penalty fitness. `Err` is
/// reserved for [`EvalAbort`]: the evaluator itself is gone and the run
/// must stop. Evaluators with no failure mode simply always return `Ok`.
pub trait Evaluator {
    /// Score every genome in `genomes`, preserving order.
    ///
    /// # Errors
    ///
    /// [`EvalAbort`] when the evaluation substrate failed mid-batch and
    /// no results can ever be produced (the abort is propagated out of
    /// [`Ga::run_batched`] / [`Ga::run_batched_dedup`] unchanged).
    fn evaluate_batch(&self, genomes: &[Vec<bool>]) -> Result<Vec<Eval>, EvalAbort>;
}

/// Compat shim: adapts the historical `FnMut(&[bool]) -> (f64, f64)`
/// fitness closure to the batch protocol (evaluating sequentially).
pub struct FnEvaluator<F>(RefCell<F>);

impl<F: FnMut(&[bool]) -> (f64, f64)> FnEvaluator<F> {
    /// Wrap a fitness closure returning `(fitness, cost_seconds)`.
    pub fn new(f: F) -> FnEvaluator<F> {
        FnEvaluator(RefCell::new(f))
    }
}

impl<F: FnMut(&[bool]) -> (f64, f64)> Evaluator for FnEvaluator<F> {
    fn evaluate_batch(&self, genomes: &[Vec<bool>]) -> Result<Vec<Eval>, EvalAbort> {
        let f = &mut *self.0.borrow_mut();
        Ok(genomes
            .iter()
            .map(|g| {
                let (fitness, cost) = f(g);
                Eval::new(fitness, cost)
            })
            .collect())
    }
}

/// Per-gene mutation-rate multipliers — how a learned prior biases the
/// search toward the genes that historically moved fitness.
///
/// [`MutationBias::uniform`] (the default) applies no table at all: the
/// mutation loop takes exactly the code path it always took, so runs are
/// *bit-identical* to a bias-free GA — the guarantee the differential
/// tests pin. A weighted table multiplies the base
/// [`GaParams::mutation_rate`] per gene (clamped to `[0, 1]`), so weight
/// `1.0` is neutral, `> 1.0` explores a gene more, `< 1.0` less. Weights
/// are sanitized at construction: non-finite values become `1.0`
/// (neutral) and negatives become `0.0`, so a degenerate prior can never
/// panic the RNG.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MutationBias {
    weights: Option<Vec<f64>>,
}

impl MutationBias {
    /// No bias: every gene mutates at the base rate (bit-identical to a
    /// GA without bias support).
    pub fn uniform() -> MutationBias {
        MutationBias::default()
    }

    /// A per-gene weight table (sanitized; see type docs). The table
    /// length must match the chromosome width — a mismatched table is
    /// ignored (treated as uniform) rather than panicking mid-run.
    pub fn from_weights(weights: Vec<f64>) -> MutationBias {
        let weights = weights
            .into_iter()
            .map(|w| if w.is_finite() { w.max(0.0) } else { 1.0 })
            .collect();
        MutationBias {
            weights: Some(weights),
        }
    }

    /// Whether this is the uniform (no-table) bias.
    pub fn is_uniform(&self) -> bool {
        self.weights.is_none()
    }

    /// The weight table, if any.
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }
}

/// Genetic-algorithm parameters (the four the paper tunes, plus
/// population shape and the prior-derived search hints).
#[derive(Debug, Clone)]
pub struct GaParams {
    /// Number of individuals per generation.
    pub population: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Probability a child is produced by crossover (vs. cloning).
    pub crossover_rate: f64,
    /// Minimum number of genes force-flipped in a mutated child.
    pub must_mutate_count: usize,
    /// Fraction of genes taken from the fitter parent during crossover.
    pub crossover_strength: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Individuals carried over unchanged each generation.
    pub elitism: usize,
    /// Genomes injected into the initial population (after the all-off
    /// and all-on baselines, before the random fill) — how a prior seeds
    /// the search with configurations that scored well before. Seeds are
    /// repaired like any other individual and marked in the history
    /// ([`EvalRecord::seeded`]). Empty (the default) leaves the initial
    /// population — and the RNG stream — exactly as without seeding.
    /// Seeds whose length does not match the chromosome width, or beyond
    /// the available population slots, are ignored.
    pub seeded_initial: Vec<Vec<bool>>,
    /// Prior-derived per-gene mutation weights (uniform by default; see
    /// [`MutationBias`]).
    pub mutation_bias: MutationBias,
}

impl Default for GaParams {
    fn default() -> GaParams {
        GaParams {
            population: 24,
            mutation_rate: 0.04,
            crossover_rate: 0.85,
            must_mutate_count: 2,
            crossover_strength: 0.6,
            tournament: 3,
            elitism: 2,
            seeded_initial: Vec::new(),
            mutation_bias: MutationBias::uniform(),
        }
    }
}

/// Termination criteria (Appendix B lists exactly these three).
#[derive(Debug, Clone)]
pub struct Termination {
    /// Hard cap on fitness evaluations ("compilation iterations").
    pub max_evaluations: usize,
    /// Simulated/wall time budget in seconds (charged from each
    /// [`Eval::cost_seconds`]; 0 = unlimited).
    pub max_seconds: f64,
    /// Stop when the best fitness's growth rate over the last window is
    /// below this fraction (paper: 0.35%).
    pub plateau_growth: f64,
    /// Window (in evaluations) over which growth is measured.
    pub plateau_window: usize,
    /// Minimum evaluations before the plateau criterion may fire.
    pub min_evaluations: usize,
}

impl Default for Termination {
    fn default() -> Termination {
        Termination {
            max_evaluations: 2000,
            max_seconds: 0.0,
            plateau_growth: 0.0035,
            plateau_window: 120,
            min_evaluations: 160,
        }
    }
}

/// One fitness evaluation's record (drives the paper's Figure 6 plots).
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRecord {
    /// 1-based evaluation index.
    pub iteration: usize,
    /// Fitness of the evaluated individual.
    pub fitness: f64,
    /// Best fitness seen so far.
    pub best_so_far: f64,
    /// The genes evaluated.
    pub genes: Vec<bool>,
    /// Accumulated charged time (seconds) when this evaluation finished.
    pub elapsed_seconds: f64,
    /// Whether the evaluation was served from the evaluator's in-run
    /// cache.
    pub cache_hit: bool,
    /// Whether the evaluation was served from a persistent (cross-run)
    /// store.
    pub persistent_hit: bool,
    /// Whether the evaluation's fresh compile reused a cached stage-1
    /// artifact (see [`Eval::ast_reused`]).
    pub ast_reused: bool,
    /// Whether the evaluation's fresh compile reused a cached stage-2
    /// artifact (see [`Eval::lower_reused`]).
    pub lower_reused: bool,
    /// Whether this individual was injected into the initial population
    /// from [`GaParams::seeded_initial`] (a prior-transferred seed)
    /// rather than bred or randomly generated.
    pub seeded: bool,
    /// Measured wall-clock seconds for this evaluation (0 when the
    /// evaluator does not measure).
    pub wall_seconds: f64,
    /// Wall-clock seconds spent producing a shared stage-1 artifact for
    /// this evaluation's effect family (see [`Eval::ast_produce_seconds`]).
    pub ast_produce_seconds: f64,
}

/// The outcome of a GA run.
#[derive(Debug, Clone)]
pub struct GaRun {
    /// Best genes found.
    pub best_genes: Vec<bool>,
    /// Best fitness.
    pub best_fitness: f64,
    /// Total fitness evaluations performed.
    pub evaluations: usize,
    /// Per-evaluation history.
    pub history: Vec<EvalRecord>,
    /// Which criterion stopped the run.
    pub stopped_by: StopReason,
    /// Total charged time in seconds.
    pub elapsed_seconds: f64,
    /// How many evaluations were served from the evaluator's in-run
    /// cache.
    pub cache_hits: usize,
    /// How many evaluations were served from a persistent (cross-run)
    /// store.
    pub persistent_hits: usize,
    /// Offspring discarded before evaluation because their digest was
    /// already seen (only [`Ga::run_batched_dedup`] produces these).
    pub skipped_duplicates: usize,
    /// Evaluations of prior-injected seeds ([`GaParams::seeded_initial`];
    /// 0 when no seeds were configured or none fit the population).
    pub seeded_evaluations: usize,
    /// Total measured wall-clock seconds across evaluations (0 when the
    /// evaluator does not measure).
    pub wall_seconds: f64,
}

/// Why a run terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Evaluation cap reached.
    MaxEvaluations,
    /// Time budget exhausted.
    TimeBudget,
    /// Fitness growth reached the point of diminishing returns.
    Plateau,
}

/// Borrowed constraint-repair callback (paper §4.1's constraints-
/// verification step): maps a raw chromosome plus a repair seed to a
/// constraint-valid chromosome.
type RepairFn<'a> = &'a dyn Fn(&[bool], u64) -> Vec<bool>;

/// Borrowed equivalence-class digest for population-level dedup.
type DigestFn<'a> = &'a dyn Fn(&[bool]) -> u64;

/// The genetic algorithm engine.
#[derive(Debug)]
pub struct Ga {
    n_genes: usize,
    params: GaParams,
    rng: StdRng,
}

impl Ga {
    /// A GA over `n_genes`-bit chromosomes.
    pub fn new(n_genes: usize, params: GaParams, seed: u64) -> Ga {
        Ga {
            n_genes,
            params,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn mutate(&mut self, genes: &mut [bool]) {
        let mut flipped = 0usize;
        // A weight table only applies when it matches the chromosome
        // width; the uniform path below is the historical code path,
        // untouched so unbiased runs stay bit-identical.
        match self.params.mutation_bias.weights() {
            Some(w) if w.len() == genes.len() => {
                for (g, &weight) in genes.iter_mut().zip(w) {
                    let p = (self.params.mutation_rate * weight).clamp(0.0, 1.0);
                    if self.rng.gen_bool(p) {
                        *g = !*g;
                        flipped += 1;
                    }
                }
            }
            _ => {
                for g in genes.iter_mut() {
                    if self.rng.gen_bool(self.params.mutation_rate) {
                        *g = !*g;
                        flipped += 1;
                    }
                }
            }
        }
        while flipped < self.params.must_mutate_count {
            let i = self.rng.gen_range(0..self.n_genes.max(1));
            genes[i] = !genes[i];
            flipped += 1;
        }
    }

    fn crossover(&mut self, fitter: &[bool], other: &[bool]) -> Vec<bool> {
        (0..self.n_genes)
            .map(|i| {
                if self.rng.gen_bool(self.params.crossover_strength) {
                    fitter[i]
                } else {
                    other[i]
                }
            })
            .collect()
    }

    fn tournament_pick<'a>(&mut self, pop: &'a [(Vec<bool>, f64)]) -> &'a (Vec<bool>, f64) {
        let mut best: Option<&(Vec<bool>, f64)> = None;
        for _ in 0..self.params.tournament {
            let c = &pop[self.rng.gen_range(0..pop.len())];
            if best.map(|b| c.1 > b.1).unwrap_or(true) {
                best = Some(c);
            }
        }
        best.unwrap()
    }

    /// Run the GA with a fitness closure returning
    /// `(fitness, cost_seconds)` — the historical per-individual protocol,
    /// kept as a thin shim over [`Ga::run_batched`]. `repair` must return
    /// a constraint-valid chromosome (paper §4.1's constraints-
    /// verification step).
    pub fn run(
        &mut self,
        fitness: impl FnMut(&[bool]) -> (f64, f64),
        repair: impl Fn(&[bool], u64) -> Vec<bool>,
        term: &Termination,
    ) -> GaRun {
        // A closure evaluator has no abort channel, so this cannot fail.
        self.run_batched(&FnEvaluator::new(fitness), repair, term)
            .expect("FnEvaluator is infallible")
    }

    /// Run the GA against a batch [`Evaluator`].
    ///
    /// The initial population is evaluated as one batch, and each
    /// generation's offspring as one batch, so implementations can
    /// parallelize or deduplicate within a batch. History, termination
    /// and RNG semantics are identical to the sequential protocol: a
    /// fixed seed yields the same [`GaRun`] whichever way the evaluator
    /// schedules the work, because breeding never depends on sibling
    /// fitness within a generation. When a budget criterion fires
    /// mid-batch, the remaining evaluations of that batch are discarded
    /// uncounted — exactly the evaluations the sequential loop would
    /// never have started.
    ///
    /// # Errors
    ///
    /// Propagates the evaluator's [`EvalAbort`] unchanged; the partial
    /// run is discarded (results already committed before the abort are
    /// not replayable, and a half-run would misreport its stop reason).
    pub fn run_batched(
        &mut self,
        evaluator: &dyn Evaluator,
        repair: impl Fn(&[bool], u64) -> Vec<bool>,
        term: &Termination,
    ) -> Result<GaRun, EvalAbort> {
        self.run_inner(evaluator, &repair, None, term)
    }

    /// Run the GA with population-level deduplication: breeding consults
    /// a seen-digest set, and an offspring whose digest was already
    /// evaluated is discarded and re-bred (up to a bounded number of
    /// attempts) so the evaluation budget is spent on genuinely new
    /// configurations.
    ///
    /// `digest` maps a repaired chromosome to the equivalence class that
    /// actually determines its fitness — for BinTuner, the resolved
    /// effect configuration, under which many distinct flag vectors
    /// collapse. It must be deterministic. Runs remain deterministic in
    /// the seed, but follow a *different* trajectory than
    /// [`Ga::run_batched`] (re-breeding consumes RNG), so dedup is
    /// opt-in. Discards are counted in [`GaRun::skipped_duplicates`];
    /// when re-breeding exhausts its attempts the duplicate child is
    /// accepted rather than looping forever (selection still needs a
    /// full population).
    ///
    /// # Errors
    ///
    /// Propagates the evaluator's [`EvalAbort`] unchanged (see
    /// [`Ga::run_batched`]).
    pub fn run_batched_dedup(
        &mut self,
        evaluator: &dyn Evaluator,
        repair: impl Fn(&[bool], u64) -> Vec<bool>,
        digest: impl Fn(&[bool]) -> u64,
        term: &Termination,
    ) -> Result<GaRun, EvalAbort> {
        self.run_inner(evaluator, &repair, Some(&digest), term)
    }

    /// Breed one child from the current population (tournament selection,
    /// crossover-or-clone, mutation, repair).
    fn breed(&mut self, population: &[(Vec<bool>, f64)], repair: RepairFn<'_>) -> Vec<bool> {
        let p1 = self.tournament_pick(population).clone();
        let p2 = self.tournament_pick(population).clone();
        let (fitter, other) = if p1.1 >= p2.1 { (&p1, &p2) } else { (&p2, &p1) };
        let mut child = if self.rng.gen_bool(self.params.crossover_rate) {
            self.crossover(&fitter.0, &other.0)
        } else {
            fitter.0.clone()
        };
        self.mutate(&mut child);
        repair(&child, self.rng.gen())
    }

    fn run_inner(
        &mut self,
        evaluator: &dyn Evaluator,
        repair: RepairFn<'_>,
        digest: Option<DigestFn<'_>>,
        term: &Termination,
    ) -> Result<GaRun, EvalAbort> {
        /// Re-breeding attempts per child before accepting a duplicate.
        /// Bounded so a converged population (or a digest with few
        /// classes) cannot spin the breeding loop forever.
        const DEDUP_RETRIES: usize = 12;

        let mut state = RunState {
            history: Vec::new(),
            best: (vec![false; self.n_genes], f64::NEG_INFINITY),
            elapsed: 0.0,
            wall: 0.0,
            evals: 0,
            cache_hits: 0,
            persistent_hits: 0,
            seeded_evals: 0,
        };
        let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut skipped_duplicates = 0usize;
        let stopped;

        // Initial population: the all-off vector, a dense vector,
        // prior-injected seeds (if any), and random ones — all repaired,
        // evaluated as one batch. Seeds fill slots without consuming RNG,
        // so an empty seed list leaves the stream — and therefore the
        // whole run — bit-identical to a seed-free GA.
        let seeds: Vec<&Vec<bool>> = self
            .params
            .seeded_initial
            .iter()
            .filter(|s| s.len() == self.n_genes)
            .collect();
        let initial: Vec<(Vec<bool>, bool)> = (0..self.params.population)
            .map(|k| {
                let (raw, seeded): (Vec<bool>, bool) = match k {
                    0 => (vec![false; self.n_genes], false),
                    1 => (vec![true; self.n_genes], false),
                    _ => match seeds.get(k - 2) {
                        Some(&s) => (s.clone(), true),
                        None => (
                            (0..self.n_genes).map(|_| self.rng.gen_bool(0.5)).collect(),
                            false,
                        ),
                    },
                };
                (repair(&raw, k as u64), seeded)
            })
            .collect();
        let seeded_mask: Vec<bool> = initial.iter().map(|(_, s)| *s).collect();
        let initial: Vec<Vec<bool>> = initial.into_iter().map(|(g, _)| g).collect();
        if let Some(digest) = digest {
            for g in &initial {
                seen.insert(digest(g));
            }
        }
        let results = evaluator.evaluate_batch(&initial)?;
        let (fitnesses, _) = state.commit(&initial, &results, &seeded_mask, false, term);
        let mut population: Vec<(Vec<bool>, f64)> = initial.into_iter().zip(fitnesses).collect();

        loop {
            // Termination checks (generation boundary).
            if state.evals >= term.max_evaluations {
                stopped = StopReason::MaxEvaluations;
                break;
            }
            if term.max_seconds > 0.0 && state.elapsed >= term.max_seconds {
                stopped = StopReason::TimeBudget;
                break;
            }
            if state.evals >= term.min_evaluations && state.evals > term.plateau_window {
                let then = state.history[state.evals - term.plateau_window - 1].best_so_far;
                let now = state.best.1;
                let growth = if then.abs() > 1e-12 {
                    (now - then) / then.abs()
                } else {
                    1.0
                };
                if growth < term.plateau_growth {
                    stopped = StopReason::Plateau;
                    break;
                }
            }
            // Breed the next generation, then evaluate it as one batch.
            // Parents come from the *current* population only, so breeding
            // order cannot observe sibling fitness — the batch is
            // semantically identical to the one-at-a-time loop. The brood
            // is truncated to the remaining evaluation budget: the
            // sequential loop would stop breeding at the cap, and
            // evaluating past it would waste real compiles (the time
            // budget can still cut mid-batch — per-eval cost is only known
            // after evaluation — and those results are discarded).
            let mut sorted = population.clone();
            sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            let elites: Vec<(Vec<bool>, f64)> =
                sorted.iter().take(self.params.elitism).cloned().collect();
            let brood =
                (self.params.population - elites.len()).min(term.max_evaluations - state.evals);
            let offspring: Vec<Vec<bool>> = (0..brood)
                .map(|_| {
                    let mut child = self.breed(&population, repair);
                    if let Some(digest) = digest {
                        // Skip offspring that collapse to an already-
                        // evaluated configuration: re-breed, spending the
                        // budget on new ones. Accepted children enter the
                        // seen set, which also dedups within this brood.
                        let mut attempts = 0;
                        while !seen.insert(digest(&child)) {
                            if attempts >= DEDUP_RETRIES {
                                break;
                            }
                            attempts += 1;
                            skipped_duplicates += 1;
                            child = self.breed(&population, repair);
                        }
                    }
                    child
                })
                .collect();
            let results = evaluator.evaluate_batch(&offspring)?;
            let (fitnesses, cut) = state.commit(&offspring, &results, &[], true, term);
            population = elites;
            population.extend(offspring.into_iter().zip(fitnesses));
            if cut {
                // A budget criterion fired mid-batch; the boundary checks
                // at the top of the loop pick the stop reason.
                continue;
            }
        }

        Ok(GaRun {
            best_genes: state.best.0,
            best_fitness: state.best.1,
            evaluations: state.evals,
            history: state.history,
            stopped_by: stopped,
            elapsed_seconds: state.elapsed,
            cache_hits: state.cache_hits,
            persistent_hits: state.persistent_hits,
            skipped_duplicates,
            seeded_evaluations: state.seeded_evals,
            wall_seconds: state.wall,
        })
    }
}

/// Mutable accounting threaded through one [`Ga::run_batched`] call.
struct RunState {
    history: Vec<EvalRecord>,
    best: (Vec<bool>, f64),
    elapsed: f64,
    wall: f64,
    evals: usize,
    cache_hits: usize,
    persistent_hits: usize,
    seeded_evals: usize,
}

impl RunState {
    /// Commit a batch's results in order. When `bounded`, stop at the
    /// first evaluation after which a budget criterion fires; the
    /// remaining results are discarded uncounted (the sequential loop
    /// would never have started them). `seeded` marks prior-injected
    /// individuals positionally (pass `&[]` for bred batches). Returns
    /// every genome's fitness (committed or not, so the caller can build
    /// a full population) and whether the budget cut the batch short.
    fn commit(
        &mut self,
        genomes: &[Vec<bool>],
        results: &[Eval],
        seeded: &[bool],
        bounded: bool,
        term: &Termination,
    ) -> (Vec<f64>, bool) {
        debug_assert_eq!(genomes.len(), results.len());
        let fitnesses: Vec<f64> = results.iter().map(|e| e.fitness).collect();
        let mut cut = false;
        for (i, (genes, eval)) in genomes.iter().zip(results).enumerate() {
            let was_seeded = seeded.get(i).copied().unwrap_or(false);
            self.evals += 1;
            self.elapsed += eval.cost_seconds;
            self.wall += eval.wall_seconds;
            self.cache_hits += eval.cache_hit as usize;
            self.persistent_hits += eval.persistent_hit as usize;
            self.seeded_evals += was_seeded as usize;
            if eval.fitness > self.best.1 {
                self.best = (genes.clone(), eval.fitness);
            }
            self.history.push(EvalRecord {
                iteration: self.evals,
                fitness: eval.fitness,
                best_so_far: self.best.1,
                genes: genes.clone(),
                elapsed_seconds: self.elapsed,
                cache_hit: eval.cache_hit,
                persistent_hit: eval.persistent_hit,
                ast_reused: eval.ast_reused,
                lower_reused: eval.lower_reused,
                seeded: was_seeded,
                wall_seconds: eval.wall_seconds,
                ast_produce_seconds: eval.ast_produce_seconds,
            });
            if bounded
                && (self.evals >= term.max_evaluations
                    || (term.max_seconds > 0.0 && self.elapsed >= term.max_seconds))
            {
                cut = true;
                break;
            }
        }
        (fitnesses, cut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn onemax(genes: &[bool]) -> (f64, f64) {
        (genes.iter().filter(|&&g| g).count() as f64, 0.01)
    }

    #[test]
    fn solves_onemax() {
        let mut ga = Ga::new(24, GaParams::default(), 1);
        let run = ga.run(
            onemax,
            |g, _| g.to_vec(),
            &Termination {
                max_evaluations: 1500,
                plateau_growth: 0.0,
                ..Default::default()
            },
        );
        assert!(run.best_fitness >= 22.0, "{}", run.best_fitness);
        assert_eq!(run.evaluations, run.history.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let term = Termination {
            max_evaluations: 300,
            ..Default::default()
        };
        let run1 = Ga::new(16, GaParams::default(), 7).run(onemax, |g, _| g.to_vec(), &term);
        let run2 = Ga::new(16, GaParams::default(), 7).run(onemax, |g, _| g.to_vec(), &term);
        assert_eq!(run1.best_genes, run2.best_genes);
        assert_eq!(run1.evaluations, run2.evaluations);
    }

    #[test]
    fn plateau_terminates_early() {
        // Constant fitness plateaus immediately after the window.
        let mut ga = Ga::new(12, GaParams::default(), 3);
        let run = ga.run(
            |_| (5.0, 0.0),
            |g, _| g.to_vec(),
            &Termination {
                max_evaluations: 5000,
                plateau_window: 50,
                min_evaluations: 60,
                ..Default::default()
            },
        );
        assert_eq!(run.stopped_by, StopReason::Plateau);
        assert!(run.evaluations < 300, "{}", run.evaluations);
    }

    #[test]
    fn time_budget_terminates() {
        let mut ga = Ga::new(12, GaParams::default(), 3);
        let run = ga.run(
            |g| (onemax(g).0, 1.0),
            |g, _| g.to_vec(),
            &Termination {
                max_evaluations: 100_000,
                max_seconds: 40.0,
                plateau_growth: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(run.stopped_by, StopReason::TimeBudget);
        assert!(run.elapsed_seconds >= 40.0);
    }

    #[test]
    fn repair_is_always_applied() {
        // Repair forces gene 0 off; no evaluated individual may have it on.
        let mut ga = Ga::new(8, GaParams::default(), 9);
        let run = ga.run(
            onemax,
            |g, _| {
                let mut g = g.to_vec();
                g[0] = false;
                g
            },
            &Termination {
                max_evaluations: 400,
                ..Default::default()
            },
        );
        assert!(run.history.iter().all(|r| !r.genes[0]));
        assert!(run.best_fitness <= 7.0);
    }

    /// Batch evaluator computing onemax, marking repeats as cache hits
    /// and charging them nothing — a miniature of the fitness engine.
    struct BatchOnemax {
        seen: std::cell::RefCell<std::collections::BTreeSet<Vec<bool>>>,
    }

    impl BatchOnemax {
        fn new() -> BatchOnemax {
            BatchOnemax {
                seen: std::cell::RefCell::new(Default::default()),
            }
        }
    }

    impl Evaluator for BatchOnemax {
        fn evaluate_batch(&self, genomes: &[Vec<bool>]) -> Result<Vec<Eval>, EvalAbort> {
            let mut seen = self.seen.borrow_mut();
            Ok(genomes
                .iter()
                .map(|g| {
                    let hit = !seen.insert(g.clone());
                    Eval {
                        fitness: onemax(g).0,
                        cost_seconds: 0.01,
                        wall_seconds: 0.001,
                        cache_hit: hit,
                        ..Eval::new(0.0, 0.0)
                    }
                })
                .collect())
        }
    }

    #[test]
    fn batched_protocol_matches_closure_protocol() {
        // Same seed, same fitness: the batch path and the sequential
        // closure shim must produce identical runs, record for record.
        let term = Termination {
            max_evaluations: 500,
            ..Default::default()
        };
        let run_seq = Ga::new(16, GaParams::default(), 7).run(onemax, |g, _| g.to_vec(), &term);
        let run_batch = Ga::new(16, GaParams::default(), 7)
            .run_batched(&BatchOnemax::new(), |g, _| g.to_vec(), &term)
            .unwrap();
        assert_eq!(run_seq.best_genes, run_batch.best_genes);
        assert_eq!(run_seq.best_fitness, run_batch.best_fitness);
        assert_eq!(run_seq.evaluations, run_batch.evaluations);
        assert_eq!(run_seq.stopped_by, run_batch.stopped_by);
        assert_eq!(run_seq.history.len(), run_batch.history.len());
        for (a, b) in run_seq.history.iter().zip(&run_batch.history) {
            assert_eq!(a.genes, b.genes);
            assert_eq!(a.fitness, b.fitness);
            assert_eq!(a.best_so_far, b.best_so_far);
        }
    }

    #[test]
    fn cache_hits_are_accounted() {
        let mut ga = Ga::new(12, GaParams::default(), 5);
        let run = ga
            .run_batched(
                &BatchOnemax::new(),
                |g, _| g.to_vec(),
                &Termination {
                    max_evaluations: 600,
                    plateau_growth: 0.0,
                    ..Default::default()
                },
            )
            .unwrap();
        // Tournament selection revisits genomes constantly on a 12-bit
        // space; the evaluator must have reported hits, and the run must
        // have accumulated them consistently with its history.
        assert!(run.cache_hits > 0, "{}", run.cache_hits);
        assert_eq!(
            run.cache_hits,
            run.history.iter().filter(|r| r.cache_hit).count()
        );
        assert!(run.wall_seconds > 0.0);
    }

    #[test]
    fn closure_shim_reports_no_cache_hits() {
        let mut ga = Ga::new(10, GaParams::default(), 2);
        let run = ga.run(
            onemax,
            |g, _| g.to_vec(),
            &Termination {
                max_evaluations: 100,
                ..Default::default()
            },
        );
        assert_eq!(run.cache_hits, 0);
        assert_eq!(run.wall_seconds, 0.0);
        assert!(run.history.iter().all(|r| !r.cache_hit));
    }

    /// Digest collapsing a chromosome to its popcount — a deliberately
    /// coarse equivalence (n+1 classes) that makes duplicates common,
    /// mirroring how many flag vectors collapse to one effect config.
    fn popcount_digest(g: &[bool]) -> u64 {
        g.iter().filter(|&&b| b).count() as u64
    }

    #[test]
    fn dedup_spends_budget_on_new_classes() {
        let term = Termination {
            max_evaluations: 300,
            plateau_growth: 0.0,
            ..Default::default()
        };
        let distinct_classes = |run: &GaRun| {
            run.history
                .iter()
                .map(|r| popcount_digest(&r.genes))
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        };
        let plain = Ga::new(24, GaParams::default(), 17)
            .run_batched(&BatchOnemax::new(), |g, _| g.to_vec(), &term)
            .unwrap();
        let dedup = Ga::new(24, GaParams::default(), 17)
            .run_batched_dedup(
                &BatchOnemax::new(),
                |g, _| g.to_vec(),
                popcount_digest,
                &term,
            )
            .unwrap();
        // Re-breeding must actually have fired, and the same budget must
        // cover at least as many equivalence classes as without dedup.
        assert!(dedup.skipped_duplicates > 0, "{}", dedup.skipped_duplicates);
        assert_eq!(plain.skipped_duplicates, 0);
        assert!(
            distinct_classes(&dedup) >= distinct_classes(&plain),
            "dedup {} < plain {}",
            distinct_classes(&dedup),
            distinct_classes(&plain)
        );
    }

    #[test]
    fn dedup_is_deterministic_and_bounded() {
        let term = Termination {
            max_evaluations: 200,
            plateau_growth: 0.0,
            ..Default::default()
        };
        // A single-class digest makes *every* re-breed a duplicate; the
        // bounded retry must still accept children and terminate.
        let degenerate = Ga::new(16, GaParams::default(), 3)
            .run_batched_dedup(&BatchOnemax::new(), |g, _| g.to_vec(), |_| 0, &term)
            .unwrap();
        assert_eq!(degenerate.evaluations, 200);

        let a = Ga::new(16, GaParams::default(), 9)
            .run_batched_dedup(
                &BatchOnemax::new(),
                |g, _| g.to_vec(),
                popcount_digest,
                &term,
            )
            .unwrap();
        let b = Ga::new(16, GaParams::default(), 9)
            .run_batched_dedup(
                &BatchOnemax::new(),
                |g, _| g.to_vec(),
                popcount_digest,
                &term,
            )
            .unwrap();
        assert_eq!(a.best_genes, b.best_genes);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.skipped_duplicates, b.skipped_duplicates);
    }

    /// Record-for-record equality of two runs (the strongest form of
    /// "did not change the search").
    fn assert_identical_runs(a: &GaRun, b: &GaRun) {
        assert_eq!(a.best_genes, b.best_genes);
        assert_eq!(a.best_fitness.to_bits(), b.best_fitness.to_bits());
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.stopped_by, b.stopped_by);
        assert_eq!(a.history.len(), b.history.len());
        for (x, y) in a.history.iter().zip(&b.history) {
            assert_eq!(x.genes, y.genes, "iteration {}", x.iteration);
            assert_eq!(x.fitness.to_bits(), y.fitness.to_bits());
            assert_eq!(x.best_so_far.to_bits(), y.best_so_far.to_bits());
        }
    }

    #[test]
    fn empty_seeds_and_neutral_weights_are_bit_identical() {
        // The two prior hooks in their "off" positions must not move a
        // single record: explicit all-1.0 weights and an explicit empty
        // seed list both reproduce the default run exactly.
        let term = Termination {
            max_evaluations: 400,
            plateau_growth: 0.0,
            ..Default::default()
        };
        let baseline = Ga::new(16, GaParams::default(), 21)
            .run_batched(&BatchOnemax::new(), |g, _| g.to_vec(), &term)
            .unwrap();
        let hooks_off = GaParams {
            seeded_initial: Vec::new(),
            mutation_bias: MutationBias::from_weights(vec![1.0; 16]),
            ..Default::default()
        };
        let run = Ga::new(16, hooks_off, 21)
            .run_batched(&BatchOnemax::new(), |g, _| g.to_vec(), &term)
            .unwrap();
        assert_identical_runs(&baseline, &run);
        assert_eq!(run.seeded_evaluations, 0);
        assert!(run.history.iter().all(|r| !r.seeded));
    }

    #[test]
    fn seeds_enter_initial_population_and_are_marked() {
        let good = vec![true; 12];
        let params = GaParams {
            seeded_initial: vec![good.clone(), vec![false; 12]],
            ..Default::default()
        };
        let run = Ga::new(12, params, 4)
            .run_batched(
                &BatchOnemax::new(),
                |g, _| g.to_vec(),
                &Termination {
                    max_evaluations: 100,
                    ..Default::default()
                },
            )
            .unwrap();
        // Slots 0 and 1 are the fixed baselines; slots 2 and 3 carry the
        // seeds verbatim (repair here is identity) and are flagged.
        assert_eq!(run.history[2].genes, good);
        assert!(run.history[2].seeded && run.history[3].seeded);
        assert!(!run.history[0].seeded && !run.history[1].seeded);
        assert!(!run.history[4].seeded);
        assert_eq!(run.seeded_evaluations, 2);
        assert_eq!(
            run.seeded_evaluations,
            run.history.iter().filter(|r| r.seeded).count()
        );
    }

    #[test]
    fn mismatched_seeds_are_ignored() {
        // Wrong-width seeds must not enter the population (or consume the
        // slots that random individuals would fill).
        let params = GaParams {
            seeded_initial: vec![vec![true; 7], vec![true; 99]],
            ..Default::default()
        };
        let term = Termination {
            max_evaluations: 60,
            ..Default::default()
        };
        let seeded = Ga::new(12, params, 8)
            .run_batched(&BatchOnemax::new(), |g, _| g.to_vec(), &term)
            .unwrap();
        let plain = Ga::new(12, GaParams::default(), 8)
            .run_batched(&BatchOnemax::new(), |g, _| g.to_vec(), &term)
            .unwrap();
        assert_identical_runs(&plain, &seeded);
        assert_eq!(seeded.seeded_evaluations, 0);
    }

    #[test]
    fn mutation_bias_steers_gene_flip_frequency() {
        // Freeze gene 5 (weight 0) and super-heat gene 2 (weight far
        // above the base rate): across a run, gene 5 must never flip away
        // from its repaired state and gene 2 must churn.
        let mut weights = vec![1.0; 12];
        weights[5] = 0.0;
        weights[2] = 20.0;
        let params = GaParams {
            mutation_bias: MutationBias::from_weights(weights),
            must_mutate_count: 0,
            ..Default::default()
        };
        let run = Ga::new(12, params, 6)
            .run_batched(
                &BatchOnemax::new(),
                |g, _| g.to_vec(),
                &Termination {
                    max_evaluations: 400,
                    plateau_growth: 0.0,
                    ..Default::default()
                },
            )
            .unwrap();
        let flips = |i: usize| {
            run.history
                .windows(2)
                .filter(|w| w[0].genes[i] != w[1].genes[i])
                .count()
        };
        assert!(
            flips(2) > flips(5),
            "hot {} vs frozen {}",
            flips(2),
            flips(5)
        );
    }

    #[test]
    fn mutation_bias_sanitizes_degenerate_weights() {
        let b = MutationBias::from_weights(vec![f64::NAN, -3.0, f64::INFINITY, 0.5]);
        assert_eq!(b.weights().unwrap(), &[1.0, 0.0, 1.0, 0.5]);
        assert!(MutationBias::uniform().is_uniform());
        assert!(!b.is_uniform());
    }

    #[test]
    fn dedup_with_never_duplicate_digest_matches_run_batched() {
        // PR 2's default-off invariant, locked in differentially: when the
        // digest never reports a duplicate (every call yields a fresh
        // class), `run_batched_dedup` must equal `run_batched` record for
        // record — re-breeding is the *only* divergence dedup introduces.
        let term = Termination {
            max_evaluations: 500,
            plateau_growth: 0.0,
            ..Default::default()
        };
        let plain = Ga::new(20, GaParams::default(), 13)
            .run_batched(&BatchOnemax::new(), |g, _| g.to_vec(), &term)
            .unwrap();
        let counter = std::cell::Cell::new(0u64);
        let unique_digest = |_: &[bool]| {
            counter.set(counter.get() + 1);
            counter.get()
        };
        let dedup_off = Ga::new(20, GaParams::default(), 13)
            .run_batched_dedup(&BatchOnemax::new(), |g, _| g.to_vec(), unique_digest, &term)
            .unwrap();
        assert_identical_runs(&plain, &dedup_off);
        assert_eq!(dedup_off.skipped_duplicates, 0);
    }

    #[test]
    fn must_mutate_count_diversifies_clones() {
        let params = GaParams {
            crossover_rate: 0.0,
            mutation_rate: 0.0,
            must_mutate_count: 3,
            ..Default::default()
        };
        let mut ga = Ga::new(20, params, 11);
        let run = ga.run(
            onemax,
            |g, _| g.to_vec(),
            &Termination {
                max_evaluations: 200,
                plateau_growth: 0.0,
                ..Default::default()
            },
        );
        // Forced mutation keeps producing new individuals even without
        // crossover/mutation probability.
        let distinct: std::collections::BTreeSet<Vec<bool>> =
            run.history.iter().map(|r| r.genes.clone()).collect();
        assert!(distinct.len() > 50, "{}", distinct.len());
    }

    /// Evaluator that scores `ok_batches` batches, then aborts — the
    /// shape of a compile farm dying partway through a run.
    struct AbortAfter {
        ok_batches: std::cell::Cell<usize>,
    }

    impl Evaluator for AbortAfter {
        fn evaluate_batch(&self, genomes: &[Vec<bool>]) -> Result<Vec<Eval>, EvalAbort> {
            let left = self.ok_batches.get();
            if left == 0 {
                return Err(EvalAbort::with_source(
                    "farm died",
                    std::io::Error::other("all clients lost"),
                ));
            }
            self.ok_batches.set(left - 1);
            Ok(genomes
                .iter()
                .map(|g| Eval::new(onemax(g).0, 0.01))
                .collect())
        }
    }

    #[test]
    fn evaluator_abort_propagates_from_both_batch_sites() {
        let term = Termination {
            max_evaluations: 500,
            plateau_growth: 0.0,
            ..Default::default()
        };
        // Abort on the very first (initial-population) batch.
        let err = Ga::new(12, GaParams::default(), 4)
            .run_batched(
                &AbortAfter {
                    ok_batches: std::cell::Cell::new(0),
                },
                |g, _| g.to_vec(),
                &term,
            )
            .unwrap_err();
        assert_eq!(err.to_string(), "farm died");
        assert_eq!(
            std::error::Error::source(&err).unwrap().to_string(),
            "all clients lost"
        );
        // Abort on an offspring batch, through both entry points.
        for dedup in [false, true] {
            let evaluator = AbortAfter {
                ok_batches: std::cell::Cell::new(1),
            };
            let mut ga = Ga::new(12, GaParams::default(), 4);
            let err = if dedup {
                ga.run_batched_dedup(&evaluator, |g, _| g.to_vec(), popcount_digest, &term)
                    .unwrap_err()
            } else {
                ga.run_batched(&evaluator, |g, _| g.to_vec(), &term)
                    .unwrap_err()
            };
            assert_eq!(err.to_string(), "farm died");
        }
    }
}
