//! # genetic — the metaheuristic search engine of BinTuner
//!
//! Paper §4.1 / Appendix B: compiler optimization flags are encoded as a
//! chromosome-like boolean vector; selection, crossover and mutation evolve
//! the population under a fitness function (NCD), with a constraint-repair
//! step keeping every individual a *valid* optimization sequence. The four
//! tuned parameters — `mutation_rate`, `crossover_rate`,
//! `must_mutate_count`, `crossover_strength` — appear exactly as in the
//! paper, as do the three termination criteria (iteration cap, time budget,
//! diminishing returns on fitness growth).
//!
//! ## Example
//!
//! ```
//! use genetic::{Ga, GaParams, Termination};
//!
//! // Maximize the number of set bits. The fitness closure returns
//! // (fitness, cost-in-seconds); evaluations are the paper's
//! // "compilation iterations".
//! let mut ga = Ga::new(16, GaParams::default(), 42);
//! let run = ga.run(
//!     |genes| (genes.iter().filter(|&&g| g).count() as f64, 0.1),
//!     |genes, _| genes.to_vec(), // no constraints to repair
//!     &Termination { max_evaluations: 800, plateau_growth: 0.0, ..Default::default() },
//! );
//! assert!(run.best_fitness >= 14.0);
//! ```

#![warn(missing_docs)]

use rand::prelude::*;
use rand::rngs::StdRng;

/// Genetic-algorithm parameters (the four the paper tunes, plus
/// population shape).
#[derive(Debug, Clone)]
pub struct GaParams {
    /// Number of individuals per generation.
    pub population: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Probability a child is produced by crossover (vs. cloning).
    pub crossover_rate: f64,
    /// Minimum number of genes force-flipped in a mutated child.
    pub must_mutate_count: usize,
    /// Fraction of genes taken from the fitter parent during crossover.
    pub crossover_strength: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Individuals carried over unchanged each generation.
    pub elitism: usize,
}

impl Default for GaParams {
    fn default() -> GaParams {
        GaParams {
            population: 24,
            mutation_rate: 0.04,
            crossover_rate: 0.85,
            must_mutate_count: 2,
            crossover_strength: 0.6,
            tournament: 3,
            elitism: 2,
        }
    }
}

/// Termination criteria (Appendix B lists exactly these three).
#[derive(Debug, Clone)]
pub struct Termination {
    /// Hard cap on fitness evaluations ("compilation iterations").
    pub max_evaluations: usize,
    /// Simulated/wall time budget in seconds (caller supplies per-eval
    /// cost through [`GaRun::charge_time`]'s accounting; 0 = unlimited).
    pub max_seconds: f64,
    /// Stop when the best fitness's growth rate over the last window is
    /// below this fraction (paper: 0.35%).
    pub plateau_growth: f64,
    /// Window (in evaluations) over which growth is measured.
    pub plateau_window: usize,
    /// Minimum evaluations before the plateau criterion may fire.
    pub min_evaluations: usize,
}

impl Default for Termination {
    fn default() -> Termination {
        Termination {
            max_evaluations: 2000,
            max_seconds: 0.0,
            plateau_growth: 0.0035,
            plateau_window: 120,
            min_evaluations: 160,
        }
    }
}

/// One fitness evaluation's record (drives the paper's Figure 6 plots).
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRecord {
    /// 1-based evaluation index.
    pub iteration: usize,
    /// Fitness of the evaluated individual.
    pub fitness: f64,
    /// Best fitness seen so far.
    pub best_so_far: f64,
    /// The genes evaluated.
    pub genes: Vec<bool>,
    /// Accumulated charged time (seconds) when this evaluation finished.
    pub elapsed_seconds: f64,
}

/// The outcome of a GA run.
#[derive(Debug, Clone)]
pub struct GaRun {
    /// Best genes found.
    pub best_genes: Vec<bool>,
    /// Best fitness.
    pub best_fitness: f64,
    /// Total fitness evaluations performed.
    pub evaluations: usize,
    /// Per-evaluation history.
    pub history: Vec<EvalRecord>,
    /// Which criterion stopped the run.
    pub stopped_by: StopReason,
    /// Total charged time in seconds.
    pub elapsed_seconds: f64,
}

/// Why a run terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Evaluation cap reached.
    MaxEvaluations,
    /// Time budget exhausted.
    TimeBudget,
    /// Fitness growth reached the point of diminishing returns.
    Plateau,
}

/// The genetic algorithm engine.
#[derive(Debug)]
pub struct Ga {
    n_genes: usize,
    params: GaParams,
    rng: StdRng,
}

impl Ga {
    /// A GA over `n_genes`-bit chromosomes.
    pub fn new(n_genes: usize, params: GaParams, seed: u64) -> Ga {
        Ga {
            n_genes,
            params,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn mutate(&mut self, genes: &mut [bool]) {
        let mut flipped = 0usize;
        for g in genes.iter_mut() {
            if self.rng.gen_bool(self.params.mutation_rate) {
                *g = !*g;
                flipped += 1;
            }
        }
        while flipped < self.params.must_mutate_count {
            let i = self.rng.gen_range(0..self.n_genes.max(1));
            genes[i] = !genes[i];
            flipped += 1;
        }
    }

    fn crossover(&mut self, fitter: &[bool], other: &[bool]) -> Vec<bool> {
        (0..self.n_genes)
            .map(|i| {
                if self.rng.gen_bool(self.params.crossover_strength) {
                    fitter[i]
                } else {
                    other[i]
                }
            })
            .collect()
    }

    fn tournament_pick<'a>(&mut self, pop: &'a [(Vec<bool>, f64)]) -> &'a (Vec<bool>, f64) {
        let mut best: Option<&(Vec<bool>, f64)> = None;
        for _ in 0..self.params.tournament {
            let c = &pop[self.rng.gen_range(0..pop.len())];
            if best.map(|b| c.1 > b.1).unwrap_or(true) {
                best = Some(c);
            }
        }
        best.unwrap()
    }

    /// Run the GA. `fitness` scores a chromosome (higher is better);
    /// `repair` must return a constraint-valid chromosome (paper §4.1's
    /// constraints-verification step).
    pub fn run(
        &mut self,
        mut fitness: impl FnMut(&[bool]) -> (f64, f64),
        repair: impl Fn(&[bool], u64) -> Vec<bool>,
        term: &Termination,
    ) -> GaRun {
        let mut history: Vec<EvalRecord> = Vec::new();
        let mut best: (Vec<bool>, f64) = (vec![false; self.n_genes], f64::NEG_INFINITY);
        let mut elapsed = 0.0f64;
        let mut evals = 0usize;
        let mut stopped = StopReason::MaxEvaluations;

        let mut evaluate =
            |genes: Vec<bool>,
             history: &mut Vec<EvalRecord>,
             best: &mut (Vec<bool>, f64),
             elapsed: &mut f64,
             evals: &mut usize,
             fitness: &mut dyn FnMut(&[bool]) -> (f64, f64)|
             -> f64 {
                let (fit, cost) = fitness(&genes);
                *evals += 1;
                *elapsed += cost;
                if fit > best.1 {
                    *best = (genes.clone(), fit);
                }
                history.push(EvalRecord {
                    iteration: *evals,
                    fitness: fit,
                    best_so_far: best.1,
                    genes,
                    elapsed_seconds: *elapsed,
                });
                fit
            };

        // Initial population: the all-off vector, a few dense vectors, and
        // random ones — all repaired.
        let mut population: Vec<(Vec<bool>, f64)> = Vec::new();
        for k in 0..self.params.population {
            let raw: Vec<bool> = match k {
                0 => vec![false; self.n_genes],
                1 => vec![true; self.n_genes],
                _ => (0..self.n_genes).map(|_| self.rng.gen_bool(0.5)).collect(),
            };
            let genes = repair(&raw, k as u64);
            let fit = evaluate(
                genes.clone(),
                &mut history,
                &mut best,
                &mut elapsed,
                &mut evals,
                &mut fitness,
            );
            population.push((genes, fit));
        }

        'outer: loop {
            // Termination checks.
            if evals >= term.max_evaluations {
                stopped = StopReason::MaxEvaluations;
                break;
            }
            if term.max_seconds > 0.0 && elapsed >= term.max_seconds {
                stopped = StopReason::TimeBudget;
                break;
            }
            if evals >= term.min_evaluations && evals > term.plateau_window {
                let then = history[evals - term.plateau_window - 1].best_so_far;
                let now = best.1;
                let growth = if then.abs() > 1e-12 {
                    (now - then) / then.abs()
                } else {
                    1.0
                };
                if growth < term.plateau_growth {
                    stopped = StopReason::Plateau;
                    break;
                }
            }
            // Next generation.
            let mut sorted = population.clone();
            sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            let mut next: Vec<(Vec<bool>, f64)> = sorted
                .iter()
                .take(self.params.elitism)
                .cloned()
                .collect();
            while next.len() < self.params.population {
                let p1 = self.tournament_pick(&population).clone();
                let p2 = self.tournament_pick(&population).clone();
                let (fitter, other) = if p1.1 >= p2.1 { (&p1, &p2) } else { (&p2, &p1) };
                let mut child = if self.rng.gen_bool(self.params.crossover_rate) {
                    self.crossover(&fitter.0, &other.0)
                } else {
                    fitter.0.clone()
                };
                self.mutate(&mut child);
                let child = repair(&child, self.rng.gen());
                let fit = evaluate(
                    child.clone(),
                    &mut history,
                    &mut best,
                    &mut elapsed,
                    &mut evals,
                    &mut fitness,
                );
                next.push((child, fit));
                if evals >= term.max_evaluations
                    || (term.max_seconds > 0.0 && elapsed >= term.max_seconds)
                {
                    population = next;
                    continue 'outer;
                }
            }
            population = next;
        }

        GaRun {
            best_genes: best.0,
            best_fitness: best.1,
            evaluations: evals,
            history,
            stopped_by: stopped,
            elapsed_seconds: elapsed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn onemax(genes: &[bool]) -> (f64, f64) {
        (genes.iter().filter(|&&g| g).count() as f64, 0.01)
    }

    #[test]
    fn solves_onemax() {
        let mut ga = Ga::new(24, GaParams::default(), 1);
        let run = ga.run(onemax, |g, _| g.to_vec(), &Termination {
            max_evaluations: 1500,
            plateau_growth: 0.0,
            ..Default::default()
        });
        assert!(run.best_fitness >= 22.0, "{}", run.best_fitness);
        assert_eq!(run.evaluations, run.history.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let term = Termination {
            max_evaluations: 300,
            ..Default::default()
        };
        let run1 = Ga::new(16, GaParams::default(), 7).run(onemax, |g, _| g.to_vec(), &term);
        let run2 = Ga::new(16, GaParams::default(), 7).run(onemax, |g, _| g.to_vec(), &term);
        assert_eq!(run1.best_genes, run2.best_genes);
        assert_eq!(run1.evaluations, run2.evaluations);
    }

    #[test]
    fn plateau_terminates_early() {
        // Constant fitness plateaus immediately after the window.
        let mut ga = Ga::new(12, GaParams::default(), 3);
        let run = ga.run(|_| (5.0, 0.0), |g, _| g.to_vec(), &Termination {
            max_evaluations: 5000,
            plateau_window: 50,
            min_evaluations: 60,
            ..Default::default()
        });
        assert_eq!(run.stopped_by, StopReason::Plateau);
        assert!(run.evaluations < 300, "{}", run.evaluations);
    }

    #[test]
    fn time_budget_terminates() {
        let mut ga = Ga::new(12, GaParams::default(), 3);
        let run = ga.run(
            |g| (onemax(g).0, 1.0),
            |g, _| g.to_vec(),
            &Termination {
                max_evaluations: 100_000,
                max_seconds: 40.0,
                plateau_growth: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(run.stopped_by, StopReason::TimeBudget);
        assert!(run.elapsed_seconds >= 40.0);
    }

    #[test]
    fn repair_is_always_applied() {
        // Repair forces gene 0 off; no evaluated individual may have it on.
        let mut ga = Ga::new(8, GaParams::default(), 9);
        let run = ga.run(
            onemax,
            |g, _| {
                let mut g = g.to_vec();
                g[0] = false;
                g
            },
            &Termination {
                max_evaluations: 400,
                ..Default::default()
            },
        );
        assert!(run.history.iter().all(|r| !r.genes[0]));
        assert!(run.best_fitness <= 7.0);
    }

    #[test]
    fn must_mutate_count_diversifies_clones() {
        let params = GaParams {
            crossover_rate: 0.0,
            mutation_rate: 0.0,
            must_mutate_count: 3,
            ..Default::default()
        };
        let mut ga = Ga::new(20, params, 11);
        let run = ga.run(onemax, |g, _| g.to_vec(), &Termination {
            max_evaluations: 200,
            plateau_growth: 0.0,
            ..Default::default()
        });
        // Forced mutation keeps producing new individuals even without
        // crossover/mutation probability.
        let distinct: std::collections::BTreeSet<Vec<bool>> =
            run.history.iter().map(|r| r.genes.clone()).collect();
        assert!(distinct.len() > 50, "{}", distinct.len());
    }
}
