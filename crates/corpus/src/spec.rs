//! Benchmark definitions: SPEC CPU2006/CPU2017-alikes, Coreutils, OpenSSL,
//! and the IoT-malware sources (paper §5 dataset).
//!
//! Each benchmark is a deterministic synthetic program whose size and
//! statement mix mirror the traits the paper attributes to the original
//! (462.libquantum: factorization + dot products → vectorizable loops;
//! Coreutils: 95 utilities statically linked, string/switch heavy;
//! OpenSSL: crypto arithmetic; 483/623.xalancbmk: large and call-heavy).
//! Absolute scale is reduced ~20× to laptop scale (DESIGN.md §5).

use crate::gen::{generate, Mix, Profile, CRYPTO_OPS};
use minicc::ast::{BinOp, Expr, FuncDef, Global, LValue, Module, Stmt};
use minicc::CompilerKind;

/// Which suite a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPECint 2006.
    Spec2006,
    /// SPECspeed 2017 Integer.
    Spec2017,
    /// Coreutils-8.30 (statically linked into one binary).
    Coreutils,
    /// OpenSSL-1.1.1.
    OpenSsl,
    /// IoT malware (leaked sources).
    Malware,
}

impl Suite {
    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Spec2006 => "SPECint 2006",
            Suite::Spec2017 => "SPECspeed 2017",
            Suite::Coreutils => "Coreutils",
            Suite::OpenSsl => "OpenSSL",
            Suite::Malware => "IoT malware",
        }
    }
}

/// A ready-to-compile benchmark program.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Paper name, e.g. `"462.libquantum"`.
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// The source module.
    pub module: Module,
    /// Input vectors for differential testing ("the test cases shipped
    /// with our dataset", §5.1).
    pub test_inputs: Vec<Vec<u32>>,
}

impl Benchmark {
    /// Stable content hash of the benchmark's module — the identity the
    /// persistent fitness store files results under, so two runs over
    /// the same (deterministically generated) benchmark share cache
    /// entries while any regeneration change invalidates them.
    pub fn content_hash(&self) -> u64 {
        self.module.content_hash()
    }

    /// Structural shape features of the benchmark's module — the
    /// coarse, perturbation-tolerant identity prior mining uses to find
    /// transfer sources among stored modules (see
    /// [`minicc::ModuleFeatures`]).
    pub fn features(&self) -> minicc::ModuleFeatures {
        self.module.features()
    }
}

fn mk(name: &'static str, suite: Suite, profile: Profile) -> Benchmark {
    let module = generate(name, &profile);
    Benchmark {
        name,
        suite,
        module,
        test_inputs: vec![vec![3, 11], vec![250, 9], vec![77777, 123]],
    }
}

fn profile(seed: u64, funcs: usize, mix: Mix) -> Profile {
    Profile {
        seed,
        funcs,
        mix,
        ..Default::default()
    }
}

/// SPECint 2006 benchmarks (the paper's "4**" programs).
pub fn spec2006() -> Vec<Benchmark> {
    let m = Mix::default();
    vec![
        mk(
            "400.perlbench",
            Suite::Spec2006,
            profile(
                0x400,
                64,
                Mix {
                    switches: 4,
                    strings: 3,
                    ..m
                },
            ),
        ),
        mk(
            "401.bzip2",
            Suite::Spec2006,
            profile(
                0x401,
                18,
                Mix {
                    loops: 5,
                    vec_loops: 3,
                    ..m
                },
            ),
        ),
        mk(
            "403.gcc",
            Suite::Spec2006,
            profile(
                0x403,
                96,
                Mix {
                    switches: 5,
                    calls: 5,
                    ..m
                },
            ),
        ),
        mk(
            "429.mcf",
            Suite::Spec2006,
            profile(
                0x429,
                12,
                Mix {
                    loops: 5,
                    arith: 8,
                    ..m
                },
            ),
        ),
        mk(
            "445.gobmk",
            Suite::Spec2006,
            profile(
                0x445,
                72,
                Mix {
                    branches: 7,
                    switches: 3,
                    ..m
                },
            ),
        ),
        mk(
            "456.hmmer",
            Suite::Spec2006,
            profile(
                0x456,
                28,
                Mix {
                    vec_loops: 5,
                    loops: 4,
                    ..m
                },
            ),
        ),
        mk(
            "458.sjeng",
            Suite::Spec2006,
            profile(
                0x458,
                24,
                Mix {
                    branches: 6,
                    switches: 3,
                    ..m
                },
            ),
        ),
        mk(
            "462.libquantum",
            Suite::Spec2006,
            profile(
                0x462,
                20,
                Mix {
                    vec_loops: 6,
                    loops: 4,
                    arith: 7,
                    ..m
                },
            ),
        ),
        mk(
            "464.h264ref",
            Suite::Spec2006,
            profile(
                0x464,
                40,
                Mix {
                    vec_loops: 5,
                    loops: 5,
                    ..m
                },
            ),
        ),
        mk(
            "471.omnetpp",
            Suite::Spec2006,
            profile(
                0x471,
                48,
                Mix {
                    calls: 6,
                    branches: 5,
                    ..m
                },
            ),
        ),
        mk(
            "473.astar",
            Suite::Spec2006,
            profile(
                0x473,
                16,
                Mix {
                    loops: 5,
                    branches: 5,
                    ..m
                },
            ),
        ),
        mk(
            "483.xalancbmk",
            Suite::Spec2006,
            profile(
                0x483,
                110,
                Mix {
                    calls: 7,
                    switches: 4,
                    strings: 2,
                    ..m
                },
            ),
        ),
    ]
}

/// SPECspeed 2017 Integer benchmarks (the paper's "6**" programs).
pub fn spec2017() -> Vec<Benchmark> {
    let m = Mix::default();
    vec![
        mk(
            "600.perlbench_s",
            Suite::Spec2017,
            profile(
                0x600,
                72,
                Mix {
                    switches: 4,
                    strings: 3,
                    ..m
                },
            ),
        ),
        mk(
            "602.gcc_s",
            Suite::Spec2017,
            profile(
                0x602,
                100,
                Mix {
                    switches: 5,
                    calls: 5,
                    ..m
                },
            ),
        ),
        mk(
            "605.mcf_s",
            Suite::Spec2017,
            profile(
                0x605,
                14,
                Mix {
                    loops: 5,
                    arith: 8,
                    ..m
                },
            ),
        ),
        mk(
            "620.omnetpp_s",
            Suite::Spec2017,
            profile(
                0x620,
                78,
                Mix {
                    calls: 6,
                    branches: 5,
                    ..m
                },
            ),
        ),
        mk(
            "623.xalancbmk_s",
            Suite::Spec2017,
            profile(
                0x623,
                120,
                Mix {
                    calls: 7,
                    switches: 4,
                    strings: 2,
                    ..m
                },
            ),
        ),
        mk(
            "625.x264_s",
            Suite::Spec2017,
            profile(
                0x625,
                20,
                Mix {
                    vec_loops: 6,
                    loops: 4,
                    ..m
                },
            ),
        ),
        mk(
            "631.deepsjeng_s",
            Suite::Spec2017,
            profile(
                0x631,
                26,
                Mix {
                    branches: 6,
                    switches: 3,
                    ..m
                },
            ),
        ),
        mk(
            "641.leela_s",
            Suite::Spec2017,
            profile(
                0x641,
                34,
                Mix {
                    branches: 5,
                    loops: 4,
                    ..m
                },
            ),
        ),
        mk(
            "648.exchange2_s",
            Suite::Spec2017,
            profile(
                0x648,
                16,
                Mix {
                    loops: 6,
                    arith: 7,
                    ..m
                },
            ),
        ),
        mk(
            "657.xz_s",
            Suite::Spec2017,
            profile(
                0x657,
                30,
                Mix {
                    loops: 5,
                    vec_loops: 4,
                    switches: 2,
                    ..m
                },
            ),
        ),
    ]
}

/// Benchmarks the paper had to exclude for a compiler (footnote 2:
/// compilation or linking errors).
pub fn excluded_for(kind: CompilerKind) -> &'static [&'static str] {
    match kind {
        CompilerKind::Llvm => &["403.gcc", "471.omnetpp", "602.gcc_s"],
        CompilerKind::Gcc => &["401.bzip2", "464.h264ref", "602.gcc_s"],
    }
}

/// Coreutils-8.30 as one statically linked binary: 95 small utilities
/// plus a shared library layer.
pub fn coreutils() -> Benchmark {
    let mix = Mix {
        arith: 5,
        loops: 3,
        vec_loops: 1,
        switches: 5,
        branches: 5,
        strings: 5,
        calls: 4,
    };
    let mut b = mk(
        "Coreutils",
        Suite::Coreutils,
        Profile {
            seed: 0xC04E,
            funcs: 130,
            mix,
            library_pct: 35,
            string_pool: &[
                "--help",
                "--version",
                "cannot open %s",
                "missing operand",
                "invalid option -- %c",
                "write error",
                "/usr/share/locale",
                "GNU coreutils",
            ],
            ..Default::default()
        },
    );
    // Rename the top-tier functions after real utilities so matching
    // experiments read naturally.
    const UTILS: &[&str] = &[
        "cat", "chmod", "chown", "cp", "cut", "date", "dd", "df", "du", "echo", "env", "expand",
        "factor", "head", "id", "join", "kill", "ln", "ls", "md5sum", "mkdir", "mv", "nice", "nl",
        "od", "paste", "pr", "printf", "pwd", "rm", "rmdir", "seq", "sort", "split", "stat", "sum",
        "tail", "tee", "touch", "tr", "true", "tsort", "uniq", "wc", "who", "yes",
    ];
    let mut renames: Vec<(String, String)> = Vec::new();
    {
        let m = &mut b.module;
        let n = m.funcs.len();
        let top_start = n.saturating_sub(UTILS.len() + 1); // keep `main` last
        for (i, f) in m.funcs[top_start..n - 1].iter_mut().enumerate() {
            if let Some(u) = UTILS.get(i) {
                renames.push((f.name.clone(), format!("{u}_main")));
                f.name = format!("{u}_main");
            }
        }
    }
    // Fix call sites for renamed functions.
    for (old, new) in renames {
        for f in &mut b.module.funcs {
            rename_calls(&mut f.body, &old, &new);
        }
    }
    b.module.validate().unwrap();
    b
}

fn rename_calls(body: &mut [Stmt], old: &str, new: &str) {
    fn expr(e: &mut Expr, old: &str, new: &str) {
        match e {
            Expr::Call(n, args) => {
                if n == old {
                    *n = new.to_string();
                }
                args.iter_mut().for_each(|a| expr(a, old, new));
            }
            Expr::CallImport(_, args) => args.iter_mut().for_each(|a| expr(a, old, new)),
            Expr::Bin(_, a, b) => {
                expr(a, old, new);
                expr(b, old, new);
            }
            Expr::Not(a) | Expr::Neg(a) => expr(a, old, new),
            Expr::Index(_, i) => expr(i, old, new),
            _ => {}
        }
    }
    for s in body {
        match s {
            Stmt::Assign(LValue::Index(_, i), e) => {
                expr(i, old, new);
                expr(e, old, new);
            }
            Stmt::Assign(_, e) | Stmt::Return(e) | Stmt::ExprStmt(e) => expr(e, old, new),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                expr(cond, old, new);
                rename_calls(then_body, old, new);
                rename_calls(else_body, old, new);
            }
            Stmt::While { cond, body } => {
                expr(cond, old, new);
                rename_calls(body, old, new);
            }
            Stmt::For {
                start, end, body, ..
            } => {
                expr(start, old, new);
                expr(end, old, new);
                rename_calls(body, old, new);
            }
            Stmt::Switch {
                scrutinee,
                cases,
                default,
            } => {
                expr(scrutinee, old, new);
                for (_, b) in cases {
                    rename_calls(b, old, new);
                }
                rename_calls(default, old, new);
            }
        }
    }
}

/// OpenSSL-1.1.1: crypto-arithmetic heavy.
pub fn openssl() -> Benchmark {
    mk(
        "OpenSSL",
        Suite::OpenSsl,
        Profile {
            seed: 0x055E,
            funcs: 110,
            mix: Mix {
                arith: 8,
                loops: 5,
                vec_loops: 4,
                switches: 2,
                branches: 3,
                strings: 2,
                calls: 4,
            },
            ops: CRYPTO_OPS,
            library_pct: 50,
            string_pool: &[
                "OpenSSL 1.1.1",
                "RSA part of OpenSSL",
                "bad decrypt",
                "wrong version number",
                "certificate verify failed",
            ],
            ..Default::default()
        },
    )
}

/// All 22 SPEC benchmarks plus Coreutils and OpenSSL.
pub fn all_benign() -> Vec<Benchmark> {
    let mut v = spec2006();
    v.extend(spec2017());
    v.push(coreutils());
    v.push(openssl());
    v
}

/// The paper's two tuned IoT malware families (Table 2) plus Mirai
/// (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MalwareFamily {
    /// Linux.Mirai (leaked 2016 source).
    Mirai,
    /// LightAidra.
    LightAidra,
    /// BASHLIFE.
    Bashlife,
}

impl MalwareFamily {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MalwareFamily::Mirai => "Mirai",
            MalwareFamily::LightAidra => "LightAidra",
            MalwareFamily::Bashlife => "BASHLIFE",
        }
    }
}

/// Build an IoT-malware source module. `variant_seed` perturbs the
/// generated filler code (source-level variants), while the *signature-
/// bearing* parts — C2 strings in the data section, the API call set, the
/// scanner/killer/attack structure — stay fixed, which is what lets some
/// AV signatures survive BinTuner (paper §5.5).
pub fn malware(family: MalwareFamily, variant_seed: u64) -> Benchmark {
    let (name, seed, c2, funcs): (&'static str, u64, &'static [&'static str], usize) = match family
    {
        MalwareFamily::Mirai => (
            "mirai",
            0x314A1,
            &[
                "POST /cdn-cgi/ HTTP/1.1",
                "/bin/busybox MIRAI",
                "185.70.105.161",
                "enable\nsystem\nshell\nsh",
                "/dev/watchdog",
            ],
            40,
        ),
        MalwareFamily::LightAidra => (
            "lightaidra",
            0xA1D4A,
            &[
                "/var/run/.lightpid",
                "JOIN #aidra",
                "PRIVMSG %s :[scan] started",
                "176.32.33.12",
            ],
            28,
        ),
        MalwareFamily::Bashlife => (
            "bashlife",
            0xBA5E,
            &[
                "PING :gayfgt",
                "/proc/net/route",
                "103.41.124.0",
                "busybox wget",
            ],
            24,
        ),
    };
    let profile = Profile {
        seed: seed ^ variant_seed.wrapping_mul(0x9e3779b97f4a7c15),
        funcs,
        mix: Mix {
            arith: 5,
            loops: 4,
            vec_loops: 1,
            switches: 3,
            branches: 5,
            strings: 4,
            calls: 4,
        },
        string_pool: c2,
        ..Default::default()
    };
    let mut module = generate(name, &profile);
    attach_malware_payload(&mut module, c2);
    module.validate().unwrap();
    Benchmark {
        name: match family {
            MalwareFamily::Mirai => "Mirai",
            MalwareFamily::LightAidra => "LightAidra",
            MalwareFamily::Bashlife => "BASHLIFE",
        },
        suite: Suite::Malware,
        module,
        test_inputs: vec![vec![1, 2], vec![9, 0]],
    }
}

/// The fixed malicious skeleton: C2 strings as *globals* (data-section
/// signatures), plus scanner/killer/attack functions using the network
/// and process APIs (API-set signatures).
fn attach_malware_payload(m: &mut Module, c2: &[&str]) {
    for (k, s) in c2.iter().enumerate() {
        let mut bytes: Vec<u8> = s.bytes().collect();
        bytes.push(0);
        while !bytes.len().is_multiple_of(4) {
            bytes.push(0);
        }
        let words = bytes
            .chunks(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        m.globals.push(Global {
            name: format!("c2_{k}"),
            words,
        });
    }
    // scanner(): socket/connect/send loop.
    let mut scanner = FuncDef::new("scanner", vec!["range".into()], vec![]);
    scanner.local("fd").local("i0").local("hits");
    scanner.body = vec![
        Stmt::Assign(LValue::Var("hits".into()), Expr::Const(0)),
        Stmt::Assign(
            LValue::Var("fd".into()),
            Expr::CallImport("socket".into(), vec![Expr::Const(2), Expr::Const(1)]),
        ),
        Stmt::For {
            var: "i0".into(),
            start: Expr::Const(0),
            end: Expr::Const(16),
            step: 1,
            body: vec![
                Stmt::Assign(
                    LValue::Var("hits".into()),
                    Expr::CallImport(
                        "connect".into(),
                        vec![Expr::Var("fd".into()), Expr::Var("i0".into())],
                    ),
                ),
                Stmt::ExprStmt(Expr::CallImport(
                    "send".into(),
                    vec![Expr::Var("fd".into()), Expr::Var("i0".into())],
                )),
            ],
        },
        Stmt::Return(Expr::Var("hits".into())),
    ];
    m.funcs.push(scanner);
    // killer(): kill competing bots.
    let mut killer = FuncDef::new("killer", vec![], vec![]);
    killer.local("pid");
    killer.body = vec![
        Stmt::Assign(
            LValue::Var("pid".into()),
            Expr::CallImport("getpid".into(), vec![]),
        ),
        Stmt::ExprStmt(Expr::CallImport(
            "kill".into(),
            vec![Expr::vc(BinOp::Add, "pid", 1), Expr::Const(9)],
        )),
        Stmt::ExprStmt(Expr::CallImport("unlink".into(), vec![Expr::Const(0)])),
        Stmt::Return(Expr::Var("pid".into())),
    ];
    m.funcs.push(killer);
    // attack(): flood loop.
    let mut attack = FuncDef::new("attack", vec!["n".into()], vec![]);
    attack.local("i0").local("sent");
    attack.body = vec![
        Stmt::Assign(LValue::Var("sent".into()), Expr::Const(0)),
        Stmt::For {
            var: "i0".into(),
            start: Expr::Const(0),
            end: Expr::bin(BinOp::Rem, Expr::Var("n".into()), Expr::Const(24)),
            step: 1,
            body: vec![Stmt::Assign(
                LValue::Var("sent".into()),
                Expr::CallImport("send".into(), vec![Expr::Const(3), Expr::Var("i0".into())]),
            )],
        },
        Stmt::Return(Expr::Var("sent".into())),
    ];
    m.funcs.push(attack);
    // Wire the payload into main (before its return).
    let main = m
        .funcs
        .iter_mut()
        .find(|f| f.name == "main")
        .expect("generated module has main");
    let ret = main.body.pop().unwrap();
    let print = main.body.pop().unwrap();
    main.body.push(Stmt::Assign(
        LValue::Var("x".into()),
        Expr::Call("scanner".into(), vec![Expr::Var("x".into())]),
    ));
    main.body.push(Stmt::Assign(
        LValue::Var("y".into()),
        Expr::Call("killer".into(), vec![]),
    ));
    main.body.push(Stmt::Assign(
        LValue::Var("sum".into()),
        Expr::Call("attack".into(), vec![Expr::Var("sum".into())]),
    ));
    main.body.push(print);
    main.body.push(ret);
}
