//! The synthetic program generator engine.
//!
//! Generates deterministic mini-C modules whose *code-structure mix*
//! (loop-heavy, switch-heavy, call-heavy, string-heavy, crypto-arithmetic)
//! is parameterized per benchmark. Generated programs obey the language's
//! structural rules (calls in statement position, ≤4 params, definite
//! assignment before use, bounded loops, call DAG by construction) so that
//! every optimization pass applies and differential execution terminates.

use minicc::ast::{BinOp, Expr, FuncDef, Global, LValue, Module, Stmt};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Statement-mix weights for a program profile. Higher = more frequent.
#[derive(Debug, Clone, Copy)]
pub struct Mix {
    /// Plain arithmetic assignments.
    pub arith: u32,
    /// Counted `for` loops over scalars.
    pub loops: u32,
    /// Element-wise / reduction array loops (vectorizer food).
    pub vec_loops: u32,
    /// Dense and sparse switches.
    pub switches: u32,
    /// If/else (including branch-free-convertible shapes).
    pub branches: u32,
    /// String operations (`strcpy`, `strlen` of literals).
    pub strings: u32,
    /// Calls to lower-tier functions.
    pub calls: u32,
}

impl Default for Mix {
    fn default() -> Mix {
        Mix {
            arith: 6,
            loops: 3,
            vec_loops: 2,
            switches: 2,
            branches: 4,
            strings: 1,
            calls: 3,
        }
    }
}

/// A full program profile.
#[derive(Debug, Clone)]
pub struct Profile {
    /// RNG seed — fixes the program completely.
    pub seed: u64,
    /// Number of functions (besides `main`).
    pub funcs: usize,
    /// Statement mix.
    pub mix: Mix,
    /// Ops favoured inside expressions (crypto → xor/shift/mul heavy).
    pub ops: &'static [BinOp],
    /// Number of global arrays.
    pub globals: usize,
    /// Portion (0..=100) of functions marked as statically-linked library
    /// code (Coreutils/OpenSSL style).
    pub library_pct: u32,
    /// Extra string literals interned per string op (C2 tables etc.).
    pub string_pool: &'static [&'static str],
    /// Imports available to the program besides I/O.
    pub imports: &'static [&'static str],
}

const DEFAULT_OPS: &[BinOp] = &[
    BinOp::Add,
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Xor,
    BinOp::And,
    BinOp::Or,
    BinOp::Shr,
    BinOp::Div,
    BinOp::Rem,
];

/// Crypto-flavoured op mix (OpenSSL-alike).
pub const CRYPTO_OPS: &[BinOp] = &[
    BinOp::Xor,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Mul,
    BinOp::Add,
    BinOp::Or,
    BinOp::And,
];

const DEFAULT_STRINGS: &[&str] = &[
    "usage: %s [OPTION]...",
    "out of memory",
    "invalid argument",
    "/etc/config",
    "Hello World!",
];

impl Default for Profile {
    fn default() -> Profile {
        Profile {
            seed: 1,
            funcs: 24,
            mix: Mix::default(),
            ops: DEFAULT_OPS,
            globals: 3,
            library_pct: 0,
            string_pool: DEFAULT_STRINGS,
            imports: &["print_u32", "read_input"],
        }
    }
}

struct Gen {
    rng: StdRng,
    profile: Profile,
}

struct FnSpec {
    name: String,
    params: usize,
    tier: usize,
}

impl Gen {
    fn pick_op(&mut self) -> BinOp {
        *self.profile.ops.choose(&mut self.rng).unwrap()
    }

    fn small(&mut self, max: u32) -> u32 {
        self.rng.gen_range(1..=max)
    }

    /// A pure expression over the given readable scalars, depth-bounded.
    fn expr(&mut self, vars: &[String], arrays: &[(String, usize)], depth: usize) -> Expr {
        if depth == 0 || self.rng.gen_bool(0.35) {
            return match self.rng.gen_range(0..3) {
                0 if !vars.is_empty() => Expr::Var(vars.choose(&mut self.rng).unwrap().clone()),
                1 if !arrays.is_empty() => {
                    let (a, n) = arrays.choose(&mut self.rng).unwrap().clone();
                    Expr::Index(a, Box::new(Expr::Const(self.rng.gen_range(0..n as u32))))
                }
                _ => Expr::Const(self.rng.gen_range(0..4096)),
            };
        }
        let op = self.pick_op();
        // Division/remainder by interesting constants (magic-number food).
        if matches!(op, BinOp::Div | BinOp::Rem) {
            let divisors = [3u32, 7, 10, 255, 1000, 16, 8];
            return Expr::bin(
                op,
                self.expr(vars, arrays, depth - 1),
                Expr::Const(*divisors.choose(&mut self.rng).unwrap()),
            );
        }
        if matches!(op, BinOp::Shl | BinOp::Shr) {
            return Expr::bin(
                op,
                self.expr(vars, arrays, depth - 1),
                Expr::Const(self.rng.gen_range(1..13)),
            );
        }
        Expr::bin(
            op,
            self.expr(vars, arrays, depth - 1),
            self.expr(vars, arrays, depth - 1),
        )
    }

    fn cmp_expr(&mut self, vars: &[String]) -> Expr {
        let ops = [
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
        ];
        let op = *ops.choose(&mut self.rng).unwrap();
        let v = vars.choose(&mut self.rng).unwrap().clone();
        Expr::bin(op, Expr::Var(v), Expr::Const(self.rng.gen_range(0..2048)))
    }

    /// Generate one statement; `scalars` are all defined scalar vars.
    #[allow(clippy::too_many_arguments)]
    fn stmt(
        &mut self,
        scalars: &[String],
        arrays: &[(String, usize)],
        callees: &[FnSpec],
        globals: &[(String, usize)],
        budget: &mut usize,
        depth: usize,
    ) -> Option<Stmt> {
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        let mix = self.profile.mix;
        let total = mix.arith
            + mix.loops
            + mix.vec_loops
            + mix.switches
            + mix.branches
            + mix.strings
            + mix.calls;
        let mut roll = self.rng.gen_range(0..total);
        let mut take = |w: u32| {
            if roll < w {
                true
            } else {
                roll -= w;
                false
            }
        };
        // Nesting limit keeps bodies compilable and runs bounded.
        let can_nest = depth < 2;
        if take(mix.arith) || !can_nest {
            let target = scalars.choose(&mut self.rng).unwrap().clone();
            let e = self.expr(scalars, arrays, 3);
            return Some(Stmt::Assign(LValue::Var(target), e));
        }
        if take(mix.loops) {
            // Counted loop writing an accumulator. ~40% of bodies do not
            // reference the induction variable, making them candidates for
            // `-fbranch-count-reg`'s `loop`-instruction lowering.
            let acc = scalars.choose(&mut self.rng).unwrap().clone();
            let n = self.small(24);
            let i = format!("i{}", self.rng.gen_range(0..4));
            let step_expr = if self.rng.gen_bool(0.4) {
                Expr::bin(
                    BinOp::Xor,
                    Expr::Var(acc.clone()),
                    Expr::Const(self.small(512)),
                )
            } else {
                Expr::bin(
                    BinOp::Add,
                    Expr::Var(i.clone()),
                    Expr::Const(self.small(64)),
                )
            };
            let body = vec![Stmt::Assign(
                LValue::Var(acc.clone()),
                Expr::bin(self.pick_op(), Expr::Var(acc), step_expr),
            )];
            return Some(Stmt::For {
                var: i,
                start: Expr::Const(0),
                end: Expr::Const(n),
                step: 1,
                body,
            });
        }
        if take(mix.vec_loops) {
            // Element-wise map or reduction over arrays.
            if arrays.len() >= 3 && self.rng.gen_bool(0.6) {
                let mut picks = arrays
                    .choose_multiple(&mut self.rng, 3)
                    .cloned()
                    .collect::<Vec<_>>();
                picks.sort_by_key(|(_, n)| *n);
                let n = picks[0].1.min(picks[1].1).min(picks[2].1) as u32;
                let (c, a, b) = (picks[0].0.clone(), picks[1].0.clone(), picks[2].0.clone());
                if c != a && c != b {
                    let op = *[BinOp::Add, BinOp::Sub, BinOp::Mul]
                        .choose(&mut self.rng)
                        .unwrap();
                    let i = "vi".to_string();
                    return Some(Stmt::For {
                        var: i.clone(),
                        start: Expr::Const(0),
                        end: Expr::Const(n),
                        step: 1,
                        body: vec![Stmt::Assign(
                            LValue::Index(c, Expr::Var(i.clone())),
                            Expr::bin(
                                op,
                                Expr::Index(a, Box::new(Expr::Var(i.clone()))),
                                Expr::Index(b, Box::new(Expr::Var(i))),
                            ),
                        )],
                    });
                }
            }
            if let Some((a, n)) = arrays.choose(&mut self.rng).cloned() {
                let acc = scalars.choose(&mut self.rng).unwrap().clone();
                let i = "vi".to_string();
                return Some(Stmt::For {
                    var: i.clone(),
                    start: Expr::Const(0),
                    end: Expr::Const(n as u32),
                    step: 1,
                    body: vec![Stmt::Assign(
                        LValue::Var(acc.clone()),
                        Expr::bin(
                            BinOp::Add,
                            Expr::Var(acc),
                            Expr::Index(a, Box::new(Expr::Var(i))),
                        ),
                    )],
                });
            }
            let target = scalars.choose(&mut self.rng).unwrap().clone();
            return Some(Stmt::Assign(
                LValue::Var(target),
                Expr::Const(self.small(100)),
            ));
        }
        if take(mix.switches) {
            let scrut = scalars.choose(&mut self.rng).unwrap().clone();
            let target = scalars.choose(&mut self.rng).unwrap().clone();
            let dense = self.rng.gen_bool(0.5);
            let ncases = self.rng.gen_range(3..9usize);
            let values: Vec<u32> = if dense {
                (0..ncases as u32).collect()
            } else {
                let mut v: Vec<u32> = (0..ncases)
                    .map(|k| {
                        (k as u32) * self.rng.gen_range(7u32..60) + self.rng.gen_range(0u32..5)
                    })
                    .collect();
                v.sort();
                v.dedup();
                v
            };
            let cases = values
                .iter()
                .map(|&k| {
                    (
                        k,
                        vec![Stmt::Assign(
                            LValue::Var(target.clone()),
                            Expr::bin(
                                self.pick_op(),
                                Expr::Var(target.clone()),
                                Expr::Const(k.wrapping_mul(17).wrapping_add(3)),
                            ),
                        )],
                    )
                })
                .collect();
            return Some(Stmt::Switch {
                scrutinee: Expr::bin(BinOp::Rem, Expr::Var(scrut), Expr::Const(64)),
                cases,
                default: vec![Stmt::Assign(
                    LValue::Var(target.clone()),
                    Expr::vc(BinOp::Add, &target, 1),
                )],
            });
        }
        if take(mix.branches) {
            let cond = self.cmp_expr(scalars);
            let target = scalars.choose(&mut self.rng).unwrap().clone();
            if self.rng.gen_bool(0.45) {
                // Branch-free-convertible diamond.
                let (a, b) = if self.rng.gen_bool(0.5) {
                    (Expr::Const(1), Expr::Const(0))
                } else {
                    (self.expr(scalars, arrays, 1), self.expr(scalars, arrays, 1))
                };
                return Some(Stmt::If {
                    cond,
                    then_body: vec![Stmt::Assign(LValue::Var(target.clone()), a)],
                    else_body: vec![Stmt::Assign(LValue::Var(target), b)],
                });
            }
            let mut then_budget = (*budget).min(3);
            let then_body = self.body(
                scalars,
                arrays,
                callees,
                globals,
                &mut then_budget,
                depth + 1,
            );
            let mut else_budget = (*budget).min(2);
            let else_body = if self.rng.gen_bool(0.5) {
                self.body(
                    scalars,
                    arrays,
                    callees,
                    globals,
                    &mut else_budget,
                    depth + 1,
                )
            } else {
                Vec::new()
            };
            return Some(Stmt::If {
                cond,
                then_body,
                else_body,
            });
        }
        if take(mix.strings) {
            let s = *self.profile.string_pool.choose(&mut self.rng).unwrap();
            if let Some((a, n)) = arrays.iter().find(|(_, n)| *n * 4 >= s.len() + 4).cloned() {
                let _ = n;
                return Some(Stmt::ExprStmt(Expr::CallImport(
                    "strcpy".into(),
                    vec![Expr::AddrOf(a), Expr::Str(s.to_string())],
                )));
            }
            let target = scalars.choose(&mut self.rng).unwrap().clone();
            return Some(Stmt::Assign(
                LValue::Var(target),
                Expr::CallImport("strlen".into(), vec![Expr::Str(s.to_string())]),
            ));
        }
        // Calls.
        if !callees.is_empty() {
            let callee = callees.choose(&mut self.rng).unwrap();
            let args: Vec<Expr> = (0..callee.params)
                .map(|_| self.expr(scalars, &[], 1))
                .collect();
            let target = scalars.choose(&mut self.rng).unwrap().clone();
            let call = Expr::Call(callee.name.clone(), args);
            return Some(if self.rng.gen_bool(0.8) {
                Stmt::Assign(LValue::Var(target), call)
            } else {
                Stmt::ExprStmt(call)
            });
        }
        let target = scalars.choose(&mut self.rng).unwrap().clone();
        let e = self.expr(scalars, arrays, 2);
        Some(Stmt::Assign(LValue::Var(target), e))
    }

    fn body(
        &mut self,
        scalars: &[String],
        arrays: &[(String, usize)],
        callees: &[FnSpec],
        globals: &[(String, usize)],
        budget: &mut usize,
        depth: usize,
    ) -> Vec<Stmt> {
        let n = self.rng.gen_range(1..=4usize);
        let mut out = Vec::new();
        for _ in 0..n {
            if let Some(s) = self.stmt(scalars, arrays, callees, globals, budget, depth) {
                out.push(s);
            }
        }
        out
    }

    fn function(
        &mut self,
        spec: &FnSpec,
        callees: &[FnSpec],
        globals: &[(String, usize)],
    ) -> FuncDef {
        let params: Vec<String> = (0..spec.params).map(|i| format!("p{i}")).collect();
        let mut f = FuncDef::new(spec.name.clone(), params.clone(), vec![]);
        // Locals: accumulators, loop counters, optional local arrays.
        let n_scalars = self.rng.gen_range(2..5usize);
        let mut scalars: Vec<String> = params.clone();
        for k in 0..n_scalars {
            let name = format!("v{k}");
            f.local(name.clone());
            scalars.push(name);
        }
        for k in 0..4 {
            f.local(format!("i{k}"));
        }
        f.local("vi");
        let mut arrays: Vec<(String, usize)> = Vec::new();
        if self.rng.gen_bool(0.5) {
            let n = [8usize, 12, 16].choose(&mut self.rng).copied().unwrap();
            f.local_array("arr", n);
            arrays.push(("arr".into(), n));
        }
        arrays.extend(globals.iter().cloned());

        let mut body = Vec::new();
        // Definite assignment: init every local scalar from params/consts.
        for (k, v) in scalars.iter().enumerate().skip(params.len()) {
            let init = if params.is_empty() || self.rng.gen_bool(0.3) {
                Expr::Const((k as u32) * 37 + 1)
            } else {
                Expr::bin(
                    BinOp::Add,
                    Expr::Var(params.choose(&mut self.rng).unwrap().clone()),
                    Expr::Const(k as u32 + 1),
                )
            };
            body.push(Stmt::Assign(LValue::Var(v.clone()), init));
        }
        // Init local arrays with a fill loop (definite assignment for
        // later reads).
        for (a, n) in &arrays {
            if globals.iter().any(|(g, _)| g == a) {
                continue; // globals are initialized data
            }
            body.push(Stmt::For {
                var: "i3".into(),
                start: Expr::Const(0),
                end: Expr::Const(*n as u32),
                step: 1,
                body: vec![Stmt::Assign(
                    LValue::Index(a.clone(), Expr::Var("i3".into())),
                    Expr::bin(
                        BinOp::Add,
                        Expr::bin(BinOp::Mul, Expr::Var("i3".into()), Expr::Const(5)),
                        Expr::Const(self.small(100)),
                    ),
                )],
            });
        }
        // Early-exit shape on some functions (partial-inline candidates).
        if !params.is_empty() && self.rng.gen_bool(0.25) {
            body.push(Stmt::If {
                cond: Expr::bin(
                    BinOp::Gt,
                    Expr::Var(params[0].clone()),
                    Expr::Const(100_000),
                ),
                then_body: vec![Stmt::Return(Expr::Const(self.small(64)))],
                else_body: vec![],
            });
        }
        let mut budget = self.rng.gen_range(4..12usize);
        body.extend(self.body(&scalars, &arrays, callees, globals, &mut budget, 0));
        // Trailing return: usually a combining expression, sometimes a
        // `return g(..)` trampoline — the `-foptimize-sibling-calls`
        // tail-call shape (paper §3.1.1).
        if !callees.is_empty() && self.rng.gen_bool(0.3) {
            let callee = callees.choose(&mut self.rng).unwrap();
            let args: Vec<Expr> = (0..callee.params)
                .map(|_| Expr::Var(scalars.choose(&mut self.rng).unwrap().clone()))
                .collect();
            body.push(Stmt::Return(Expr::Call(callee.name.clone(), args)));
        } else {
            let mut ret = Expr::Var(scalars.last().unwrap().clone());
            for v in scalars.iter().rev().skip(1).take(2) {
                ret = Expr::bin(BinOp::Add, ret, Expr::Var(v.clone()));
            }
            body.push(Stmt::Return(ret));
        }
        f.body = body;
        f
    }
}

/// Generate a module from a profile. Deterministic in `profile.seed`.
pub fn generate(name: &str, profile: &Profile) -> Module {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(profile.seed),
        profile: profile.clone(),
    };
    let mut m = Module::new(name);
    // Globals.
    let mut globals = Vec::new();
    for k in 0..g.profile.globals {
        let n = [8usize, 16, 16, 32].choose(&mut g.rng).copied().unwrap();
        let name = format!("g{k}");
        let words = (0..n)
            .map(|i| (i as u32).wrapping_mul(2654435761).rotate_left(k as u32) % 10_000)
            .collect();
        m.globals.push(Global {
            name: name.clone(),
            words,
        });
        globals.push((name, n));
    }
    // Function specs in tiers so the call graph is a DAG.
    let n = g.profile.funcs.max(2);
    let tiers = 3usize;
    let specs: Vec<FnSpec> = (0..n)
        .map(|k| FnSpec {
            name: format!("f{k:03}"),
            params: g.rng.gen_range(0..=3usize),
            tier: k * tiers / n,
        })
        .collect();
    let lib_cut = n * g.profile.library_pct as usize / 100;
    for (k, spec) in specs.iter().enumerate() {
        let callees: Vec<FnSpec> = specs
            .iter()
            .filter(|s| s.tier < spec.tier)
            .map(|s| FnSpec {
                name: s.name.clone(),
                params: s.params,
                tier: s.tier,
            })
            .collect();
        let mut f = g.function(spec, &callees, &globals);
        f.is_library = k < lib_cut;
        m.funcs.push(f);
    }
    // main: read inputs, drive the top tier, print a checksum.
    let top: Vec<&FnSpec> = specs.iter().filter(|s| s.tier == tiers - 1).collect();
    let mut main = FuncDef::new("main", vec![], vec![]);
    main.local("x").local("y").local("sum");
    let mut body = vec![
        Stmt::Assign(
            LValue::Var("x".into()),
            Expr::CallImport("read_input".into(), vec![]),
        ),
        Stmt::Assign(
            LValue::Var("y".into()),
            Expr::CallImport("read_input".into(), vec![]),
        ),
        Stmt::Assign(LValue::Var("sum".into()), Expr::Const(0)),
    ];
    for (k, spec) in top.iter().enumerate().take(12) {
        let args: Vec<Expr> = (0..spec.params)
            .map(|j| {
                Expr::bin(
                    BinOp::Add,
                    Expr::Var(if (k + j) % 2 == 0 { "x" } else { "y" }.into()),
                    Expr::Const((k * 13 + j) as u32),
                )
            })
            .collect();
        body.push(Stmt::Assign(
            LValue::Var("y".into()),
            Expr::Call(spec.name.clone(), args),
        ));
        body.push(Stmt::Assign(
            LValue::Var("sum".into()),
            Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, Expr::Var("sum".into()), Expr::Const(31)),
                Expr::Var("y".into()),
            ),
        ));
    }
    body.push(Stmt::ExprStmt(Expr::CallImport(
        "print_u32".into(),
        vec![Expr::Var("sum".into())],
    )));
    body.push(Stmt::Return(Expr::Var("sum".into())));
    main.body = body;
    m.funcs.push(main);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_modules_validate() {
        for seed in [1u64, 7, 99, 4242] {
            let m = generate(
                "t",
                &Profile {
                    seed,
                    funcs: 20,
                    ..Default::default()
                },
            );
            m.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(m.funcs.len() == 21);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = Profile {
            seed: 1234,
            ..Default::default()
        };
        assert_eq!(generate("a", &p), generate("a", &p));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(
            "a",
            &Profile {
                seed: 1,
                ..Default::default()
            },
        );
        let b = generate(
            "a",
            &Profile {
                seed: 2,
                ..Default::default()
            },
        );
        assert_ne!(a, b);
    }
}
