//! # corpus — the benchmark dataset of the BinTuner study
//!
//! Deterministic synthetic programs standing in for the paper's dataset
//! (§5): SPECint 2006, SPECspeed 2017 Integer, Coreutils-8.30, OpenSSL-1.1.1,
//! and the leaked IoT-malware sources (Mirai, LightAidra, BASHLIFE).
//! See `DESIGN.md` for the substitution rationale; sizes are reduced ~20×
//! but the per-benchmark *code-structure mix* follows the traits the paper
//! reports for each program.
//!
//! ## Example
//!
//! ```
//! use minicc::{Compiler, CompilerKind, OptLevel};
//!
//! let bench = corpus::by_name("462.libquantum").unwrap();
//! let cc = Compiler::new(CompilerKind::Llvm);
//! let bin = cc.compile_preset(&bench.module, OptLevel::O3, binrep::Arch::X86).unwrap();
//! assert!(bin.insn_count() > 0);
//! ```

#![warn(missing_docs)]

pub mod gen;
pub mod spec;

pub use gen::{generate, Mix, Profile, CRYPTO_OPS};
pub use spec::{
    all_benign, coreutils, excluded_for, malware, openssl, spec2006, spec2017, Benchmark,
    MalwareFamily, Suite,
};

/// Look up a benign benchmark by its paper name (e.g. `"429.mcf"`,
/// `"Coreutils"`).
pub fn by_name(name: &str) -> Option<Benchmark> {
    all_benign().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emu::Machine;
    use minicc::{Compiler, CompilerKind, OptLevel};

    #[test]
    fn shape_features_separate_benchmark_families() {
        // Prior mining transfers configs between shape-similar modules:
        // the two mcf generations must land nearer each other than
        // either lands to the switch/string-heavy Coreutils blob, and
        // features must be deterministic across regeneration.
        let mcf06 = by_name("429.mcf").unwrap();
        let mcf17 = by_name("605.mcf_s").unwrap();
        let utils = coreutils();
        let within = mcf06.features().distance(&mcf17.features());
        let across = mcf06.features().distance(&utils.features());
        assert!(within < across, "within {within} !< across {across}");
        assert_eq!(
            by_name("429.mcf").unwrap().features(),
            mcf06.features(),
            "regeneration must reproduce features exactly"
        );
    }

    #[test]
    fn content_hashes_are_unique_and_stable() {
        // The persistent fitness store keys on these hashes: collisions
        // would silently cross-contaminate caches between benchmarks,
        // and instability would defeat warm starts. Generation is
        // deterministic, so regenerating the corpus must reproduce the
        // exact hashes.
        let first: Vec<u64> = all_benign().iter().map(Benchmark::content_hash).collect();
        let mut sorted = first.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), first.len(), "content-hash collision");
        let second: Vec<u64> = all_benign().iter().map(Benchmark::content_hash).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn all_benchmarks_validate() {
        for b in all_benign() {
            b.module
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(b.module.funcs.len() >= 10, "{}", b.name);
        }
    }

    #[test]
    fn benchmarks_execute_at_o0() {
        let cc = Compiler::new(CompilerKind::Gcc);
        for b in [
            by_name("429.mcf").unwrap(),
            by_name("462.libquantum").unwrap(),
        ] {
            let bin = cc
                .compile_preset(&b.module, OptLevel::O0, binrep::Arch::X86)
                .unwrap();
            for inputs in &b.test_inputs {
                let r = Machine::new(&bin)
                    .run(&[], inputs, 5_000_000)
                    .unwrap_or_else(|e| panic!("{}: {e}", b.name));
                assert!(!r.output.is_empty(), "{} produced no output", b.name);
            }
        }
    }

    #[test]
    fn semantics_preserved_across_presets_for_sampled_benchmarks() {
        // The full-corpus sweep lives in the integration tests; here we
        // spot-check one small benchmark per compiler.
        for kind in [CompilerKind::Gcc, CompilerKind::Llvm] {
            let cc = Compiler::new(kind);
            let b = by_name("605.mcf_s").unwrap();
            let o0 = cc
                .compile_preset(&b.module, OptLevel::O0, binrep::Arch::X86)
                .unwrap();
            let want: Vec<_> = b
                .test_inputs
                .iter()
                .map(|i| Machine::new(&o0).run(&[], i, 5_000_000).unwrap().output)
                .collect();
            for level in [OptLevel::O2, OptLevel::O3, OptLevel::Os] {
                let bin = cc
                    .compile_preset(&b.module, level, binrep::Arch::X86)
                    .unwrap();
                for (inputs, expect) in b.test_inputs.iter().zip(&want) {
                    let got = Machine::new(&bin)
                        .run(&[], inputs, 5_000_000)
                        .unwrap()
                        .output;
                    assert_eq!(&got, expect, "{kind} {level} {:?}", inputs);
                }
            }
        }
    }

    #[test]
    fn coreutils_has_utility_symbols_and_libraries() {
        let b = coreutils();
        assert!(b.module.func("ls_main").is_some());
        assert!(b.module.func("md5sum_main").is_some());
        let libs = b.module.funcs.iter().filter(|f| f.is_library).count();
        assert!(libs > 20, "{libs}");
    }

    #[test]
    fn malware_variants_share_signatures_but_differ_in_code() {
        let a = malware(MalwareFamily::Mirai, 1);
        let b = malware(MalwareFamily::Mirai, 2);
        assert_ne!(a.module, b.module);
        // The data-section payload (C2 strings) is identical.
        let strings = |m: &minicc::ast::Module| {
            m.globals
                .iter()
                .filter(|g| g.name.starts_with("c2_"))
                .map(|g| g.words.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(strings(&a.module), strings(&b.module));
        // Both carry the malicious API set.
        let cc = Compiler::new(CompilerKind::Gcc);
        let bin = cc
            .compile_preset(&a.module, OptLevel::O2, binrep::Arch::X86)
            .unwrap();
        let imports = bin.referenced_imports();
        for api in ["socket", "connect", "send", "kill"] {
            assert!(imports.iter().any(|i| i == api), "missing {api}");
        }
    }

    #[test]
    fn malware_runs_on_all_arches() {
        let cc = Compiler::new(CompilerKind::Gcc);
        for fam in [
            MalwareFamily::Mirai,
            MalwareFamily::LightAidra,
            MalwareFamily::Bashlife,
        ] {
            let b = malware(fam, 0);
            for arch in binrep::Arch::ALL {
                let bin = cc.compile_preset(&b.module, OptLevel::O2, arch).unwrap();
                Machine::new(&bin)
                    .run(&[], &b.test_inputs[0], 5_000_000)
                    .unwrap_or_else(|e| panic!("{} {arch}: {e}", b.name));
            }
        }
    }

    #[test]
    fn exclusions_match_paper_footnote() {
        assert!(excluded_for(CompilerKind::Llvm).contains(&"403.gcc"));
        assert!(excluded_for(CompilerKind::Gcc).contains(&"401.bzip2"));
        for k in [CompilerKind::Gcc, CompilerKind::Llvm] {
            assert!(excluded_for(k).contains(&"602.gcc_s"));
        }
    }
}
