//! Property tests for the daemon wire (v3): the deadline-bearing
//! `Submit` and the full job-lifecycle reply set must round-trip
//! bit-exactly; every truncation of a valid frame must be rejected as
//! truncated or corrupt — never misread; and a version field that is
//! not exactly `DAEMON_WIRE_VERSION` must be refused with the typed
//! mismatch carrying both sides, so a v2 peer gets a diagnosis instead
//! of garbage.

use bintuner::daemon::wire::{
    decode_daemon_frame, encode_daemon_frame, DaemonFrame, JobState, RejectCode,
    DAEMON_WIRE_VERSION,
};
use evald::EvaldError;
use proptest::collection::vec;
use proptest::prelude::*;

fn tenant_strategy() -> impl Strategy<Value = String> {
    // Arbitrary bytes folded onto a tenant-name-like alphabet (the
    // wire requires valid UTF-8 tenant names).
    vec(any::<u8>(), 0..16).prop_map(|bytes| {
        bytes
            .into_iter()
            .map(|b| char::from(b'a' + b % 26))
            .collect()
    })
}

fn submit_strategy() -> impl Strategy<Value = DaemonFrame> {
    (
        tenant_strategy(),
        vec(any::<u8>(), 0..48),
        (any::<u64>(), any::<u64>(), any::<bool>(), any::<u64>()),
    )
        .prop_map(
            |(tenant, module, (seed, max_evaluations, dedup, deadline_ms))| DaemonFrame::Submit {
                tenant,
                module,
                seed,
                max_evaluations,
                dedup,
                // Any u64 is encodable — the 7-day cap is admission
                // policy, not a wire constraint.
                deadline_ms,
            },
        )
}

fn job_state_strategy() -> impl Strategy<Value = JobState> {
    prop_oneof![
        Just(JobState::Unknown),
        Just(JobState::Queued),
        Just(JobState::Running),
        Just(JobState::Done),
        Just(JobState::Failed),
        Just(JobState::Cancelled),
        Just(JobState::DeadlineExceeded),
    ]
}

fn reject_code_strategy() -> impl Strategy<Value = RejectCode> {
    prop_oneof![
        Just(RejectCode::QueueFull),
        Just(RejectCode::BadModule),
        Just(RejectCode::ShuttingDown),
        Just(RejectCode::BadDeadline),
    ]
}

/// The frames the deadline feature touches, mixed with their lifecycle
/// neighbours so tag dispatch is exercised across the sweep.
fn frame_strategy() -> impl Strategy<Value = DaemonFrame> {
    prop_oneof![
        submit_strategy(),
        any::<u64>().prop_map(|job| DaemonFrame::Accepted { job }),
        (reject_code_strategy(), tenant_strategy())
            .prop_map(|(code, detail)| DaemonFrame::Rejected { code, detail }),
        any::<u64>().prop_map(|job| DaemonFrame::Status { job }),
        (
            any::<u64>(),
            job_state_strategy(),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(job, state, queue_depth, running)| {
                DaemonFrame::StatusReply {
                    job,
                    state,
                    queue_depth,
                    running,
                }
            }),
        any::<u64>().prop_map(|job| DaemonFrame::Cancel { job }),
        (any::<u64>(), any::<bool>())
            .prop_map(|(job, cancelled)| DaemonFrame::CancelReply { job, cancelled }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn deadline_bearing_frames_round_trip_bit_exactly(frame in frame_strategy()) {
        let bytes = encode_daemon_frame(&frame);
        let (decoded, used) = decode_daemon_frame(&bytes).expect("valid frame decodes");
        prop_assert_eq!(decoded, frame);
        prop_assert_eq!(used, bytes.len());
    }

    #[test]
    fn every_truncation_of_a_submit_is_rejected(frame in submit_strategy()) {
        let bytes = encode_daemon_frame(&frame);
        for cut in 0..bytes.len() {
            // A prefix is never a valid frame, and the decoder must say
            // so with a type — never panic, never misread.
            prop_assert!(
                decode_daemon_frame(&bytes[..cut]).is_err(),
                "cut at {} of {} decoded",
                cut,
                bytes.len()
            );
        }
    }

    #[test]
    fn any_foreign_version_is_refused_with_the_typed_mismatch(
        frame in frame_strategy(),
        version in any::<u32>(),
    ) {
        // Dodge the one accepted value; everything else must be refused.
        let version = if version == DAEMON_WIRE_VERSION { version ^ 1 } else { version };
        let mut bytes = encode_daemon_frame(&frame);
        // The version field sits after the length prefix and the magic:
        // bytes[8..12]. It is checked before the checksum, so patching
        // it alone is a faithful stale-peer simulation.
        bytes[8..12].copy_from_slice(&version.to_le_bytes());
        match decode_daemon_frame(&bytes) {
            Err(EvaldError::VersionMismatch { got, want }) => {
                prop_assert_eq!(got, version);
                prop_assert_eq!(want, DAEMON_WIRE_VERSION);
            }
            other => prop_assert!(false, "expected VersionMismatch, got {other:?}"),
        }
    }
}
