//! The deterministic chaos plane, end to end. Every scenario here
//! scripts a fault through [`testutil::ChaosPlan`] — a hung worker, a
//! crash loop, a straggler, a dropped frame, a poison module, a blown
//! job deadline, a cancel racing a running job — and pins the
//! supervision plane's whole contract at once:
//!
//! * **Bounded**: every scenario terminates; detection is by heartbeat
//!   or dispatch deadline, never by waiting for luck.
//! * **Typed**: what can't be absorbed fails with a typed error a
//!   tenant can act on — never a panic, never a hang.
//! * **Deterministic**: what *can* be absorbed (eviction, re-dispatch,
//!   respawn) is pure scheduling — the trajectory stays bit-identical
//!   to the clean run, down to every fitness bit.
//! * **Observable**: each recovery shows up in the telemetry plane
//!   under its `bintuner_farm_*` / `bintuner_daemon_*` family.

use bintuner::daemon::wire::{JobState, RejectCode};
use bintuner::daemon::{Daemon, DaemonClient, DaemonConfig};
use bintuner::{
    Backend, LivenessConfig, ProcessFarm, ServiceConfig, TransportKind, TuneResult, Tuner,
    TunerConfig, WorkerMode,
};
use minicc::ast::Module;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use testutil::{small_tuner, tiny_loop_module, ChaosPlan, ScratchStore};

/// The worker binary the process-farm scenarios re-exec.
fn worker_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_bintuner"))
}

/// Liveness tuned for a test's clock: probes every 100ms, a wedged
/// client is gone after ~300ms of silence or a ~400ms blown dispatch.
/// Tightening the timers is pure scheduling — the differentials below
/// prove it changes no trajectory.
fn fast_liveness() -> LivenessConfig {
    LivenessConfig {
        heartbeat_interval_ms: 100,
        max_missed_heartbeats: 3,
        deadline_multiplier: 4.0,
        min_dispatch_deadline_ms: 400,
    }
}

fn service_config(fault: Option<ChaosPlan>) -> ServiceConfig {
    ServiceConfig {
        clients: 2,
        fault: fault.map(|p| p.fault),
        liveness: fast_liveness(),
        ..ServiceConfig::default()
    }
}

/// The determinism contract from the farm suites: trajectory included,
/// wall-clock excluded.
fn assert_identical_runs(a: &TuneResult, b: &TuneResult, what: &str) {
    assert_eq!(a.best_flags, b.best_flags, "{what}: best genome");
    assert_eq!(
        a.best_ncd.to_bits(),
        b.best_ncd.to_bits(),
        "{what}: best fitness"
    );
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(a.stopped_by, b.stopped_by, "{what}: stop reason");
    assert_eq!(a.db.rows().len(), b.db.rows().len(), "{what}: history");
    for (x, y) in a.db.rows().iter().zip(b.db.rows()) {
        assert_eq!(x.flags, y.flags, "{what}: iteration {}", x.iteration);
        assert_eq!(
            x.ncd.to_bits(),
            y.ncd.to_bits(),
            "{what}: iteration {}",
            x.iteration
        );
        assert_eq!(
            x.cache_hit, y.cache_hit,
            "{what}: iteration {}",
            x.iteration
        );
    }
    assert_eq!(
        a.engine_stats.evaluations, b.engine_stats.evaluations,
        "{what}: evaluations"
    );
    assert_eq!(
        a.engine_stats.compiles, b.engine_stats.compiles,
        "{what}: compiles"
    );
    assert_eq!(
        a.engine_stats.cache_hits, b.engine_stats.cache_hits,
        "{what}: cache hits"
    );
}

/// The tentpole scenario, over real sockets and real address spaces: a
/// worker *process* on the TCP farm wedges mid-run — connection open,
/// answering nothing. Only the liveness plane can tell it from a slow
/// worker; the dispatch deadline must evict it, re-dispatch its shard,
/// and leave the trajectory bit-identical — with the eviction visible
/// in the `bintuner_farm_*` counters a `bintuner metrics` page serves.
#[test]
fn hung_worker_is_evicted_end_to_end_on_the_tcp_process_farm() {
    let module = tiny_loop_module("chaos_hang_mod", 6);
    let farm = |fault: Option<ChaosPlan>| ServiceConfig {
        transport: TransportKind::Tcp,
        workers: WorkerMode::Processes(ProcessFarm {
            worker_binary: Some(worker_binary()),
            ..ProcessFarm::default()
        }),
        ..service_config(fault)
    };
    let run = |cfg: ServiceConfig, telemetry| {
        Tuner::new(TunerConfig {
            backend: Backend::Service(cfg),
            telemetry,
            ..small_tuner(50)
        })
        .tune(&module)
        .expect("a hung worker must never fail the run")
    };

    let clean = run(farm(None), btel::TelemetryMode::Off);
    let chaos = run(
        farm(Some(ChaosPlan::hang_at(1, 1))),
        btel::TelemetryMode::On,
    );
    assert_identical_runs(&clean, &chaos, "hung worker vs clean");

    let summary = chaos.service.as_ref().expect("farm-backed run");
    assert!(
        summary.evicted_clients >= 1,
        "the wedged worker must fall to the liveness plane, not luck"
    );
    let registry = chaos.registry.as_ref().expect("telemetry registry");
    assert!(
        registry
            .counter_value("bintuner_farm_evictions_total", None)
            .unwrap_or(0)
            >= 1,
        "the eviction is counted"
    );
    let text = registry.render_text();
    assert!(text.contains("bintuner_farm_evictions_total"));
    assert!(text.contains("bintuner_farm_heartbeat_misses_total"));
}

/// The differential sweep: every scripted fault the plan language can
/// express, against the same clean trajectory. Crash and hang are
/// absorbed by eviction + re-dispatch; a slow frame under the deadline
/// is just a straggler; a dropped frame is recovered by the dispatch
/// deadline. All four must be *invisible* in the results.
#[test]
fn every_chaos_scenario_matches_the_clean_trajectory_bit_for_bit() {
    let module = tiny_loop_module("chaos_diff_mod", 6);
    let run = |fault: Option<ChaosPlan>| {
        Tuner::new(TunerConfig {
            backend: Backend::Service(service_config(fault)),
            ..small_tuner(60)
        })
        .tune(&module)
        .expect("an absorbable fault must never fail the run")
    };
    let clean = run(None);
    for plan in [
        ChaosPlan::crash_at(1, 1),
        ChaosPlan::hang_at(1, 1),
        ChaosPlan::slow_frame(1, 1, 50),
        ChaosPlan::drop_frame(1, 1),
    ] {
        let chaos = run(Some(plan));
        assert_identical_runs(&clean, &chaos, plan.name);
    }
}

fn daemon_config(transport: TransportKind, store: &ScratchStore, evals: usize) -> DaemonConfig {
    DaemonConfig {
        transport,
        base: small_tuner(evals),
        store_path: Some(store.path_buf()),
        farm: ServiceConfig {
            clients: 2,
            ..ServiceConfig::default()
        },
        queue_limit: 8,
        runners: 1,
        ..DaemonConfig::default()
    }
}

/// A module that kills every fresh farm is *poison*, and the daemon
/// must learn that: after `quarantine_strikes` consecutive failures the
/// module is refused up front — no relaunch, no farm churn — with the
/// typed quarantine error, while every other tenant's jobs sail through
/// on a healthy farm.
#[test]
fn poison_module_is_quarantined_and_other_tenants_are_unharmed() {
    const STRIKES: u32 = 3;
    let store = ScratchStore::new("chaos_poison");
    let poison = tiny_loop_module("chaos_poison_mod", 6);
    let healthy = tiny_loop_module("chaos_healthy_mod", 5);

    let daemon = Daemon::launch(DaemonConfig {
        farm: ServiceConfig {
            // One client, scripted to crash after its first shard: with
            // nobody left, every launch of the poison module dies the
            // all-workers-dead death.
            clients: 1,
            ..ServiceConfig::default()
        },
        farm_fault_once: Some(ChaosPlan::crash_at(0, 1).fault),
        // Exactly enough fault charges to poison `STRIKES` launches;
        // the farm is healthy again afterwards, so the quarantine —
        // not the fault — must be what blocks the fourth attempt.
        farm_fault_launches: STRIKES,
        quarantine_strikes: STRIKES,
        ..daemon_config(TransportKind::Unix, &store, 60)
    })
    .unwrap();
    let mut client = DaemonClient::connect(daemon.addr()).unwrap();

    let mut submit = |module: &Module, seed: u64| -> Result<_, String> {
        let job = client
            .submit("alice", module, seed, 60, false, 0)
            .expect("submit")
            .expect("admitted");
        client.fetch_result(job).expect("fetch")
    };

    for strike in 0..STRIKES {
        let message = submit(&poison, 0xBAD).expect_err("the farm dies under this module");
        assert!(
            message.contains("evaluation service failed"),
            "strike {strike}: {message}"
        );
    }
    // The fourth attempt never reaches the (now healthy) farm: the
    // strike record convicts the module before any launch.
    let message = submit(&poison, 0xBAD).expect_err("quarantined");
    assert!(
        message.contains("quarantined as poison"),
        "the tenant sees the typed quarantine, got: {message}"
    );

    // Another tenant's module is untouched by the quarantine record.
    submit(&healthy, 0x600D).expect("a healthy module tunes on the healthy farm");

    assert_eq!(
        daemon
            .registry()
            .counter_value("bintuner_daemon_quarantined_total", None),
        Some(1),
        "the quarantine is counted"
    );
    // The shared farm's supervision counters ride the same registry the
    // daemon's metrics page serves.
    let text = client.metrics_text().expect("metrics over the wire");
    assert!(text.contains("bintuner_farm_evictions_total"));
    // Honor the CI hook: persist the exposition page (quarantine and
    // farm supervision counters included) as a build artifact.
    if let Ok(path) = std::env::var("CHAOS_METRICS_OUT") {
        std::fs::write(path, &text).expect("write chaos metrics artifact");
    }
    daemon.shutdown();
}

/// Wall-clock deadlines at the daemon: an impossible deadline is a
/// typed admission reject; a too-tight deadline fails the job at the
/// first batch checkpoint with the typed state; a generous one changes
/// nothing.
#[test]
fn job_deadlines_reject_expire_and_pass_with_types() {
    let store = ScratchStore::new("chaos_deadline");
    let module = tiny_loop_module("chaos_deadline_mod", 6);
    let daemon = Daemon::launch(daemon_config(TransportKind::Unix, &store, 60)).unwrap();
    let mut client = DaemonClient::connect(daemon.addr()).unwrap();

    // Beyond the 7-day cap: rejected at admission, typed, never queued.
    let week_ms = 7 * 24 * 60 * 60 * 1000;
    let (code, detail) = client
        .submit("alice", &module, 1, 60, false, week_ms + 1)
        .unwrap()
        .expect_err("an impossible deadline is rejected");
    assert_eq!(code, RejectCode::BadDeadline);
    assert!(detail.contains("deadline"), "{detail}");

    // One millisecond from admission: blown before the first batch
    // checkpoint — the job fails with the typed state, the daemon and
    // the farm shrug it off.
    let job = client
        .submit("alice", &module, 2, 60, false, 1)
        .unwrap()
        .expect("admitted");
    let message = client
        .fetch_result(job)
        .expect("the daemon answered")
        .expect_err("the deadline must fail the job");
    assert!(message.contains("deadline exceeded"), "{message}");
    let (state, _, _) = client.status(job).unwrap();
    assert_eq!(state, JobState::DeadlineExceeded);
    assert_eq!(
        daemon
            .registry()
            .counter_value("bintuner_daemon_deadline_exceeded_total", None),
        Some(1),
        "the expiry is counted"
    );

    // A generous deadline is invisible: the same submission completes.
    let job = client
        .submit("alice", &module, 2, 60, false, 600_000)
        .unwrap()
        .expect("admitted");
    client
        .fetch_result(job)
        .expect("fetch")
        .expect("a generous deadline changes nothing");
    daemon.shutdown();
}

/// Cancellation must reach a job that is already *running*: the flag is
/// latched over the wire, the runner aborts at the next batch
/// checkpoint, and the tenant gets the typed `Cancelled` state — on
/// both stream transports.
fn cancel_reaches_a_running_job(transport: TransportKind, name: &str) {
    let store = ScratchStore::new(name);
    // A long cold job: hundreds of evaluations, every one a compile —
    // minutes of work, so the cancel always lands mid-run.
    let module = tiny_loop_module(name, 8);
    let daemon = Daemon::launch(daemon_config(transport, &store, 600)).unwrap();
    let mut client = DaemonClient::connect(daemon.addr()).unwrap();

    let job = client
        .submit("alice", &module, 0xCA, 600, false, 0)
        .unwrap()
        .expect("admitted");
    let wait_deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (state, _, _) = client.status(job).unwrap();
        if state == JobState::Running {
            break;
        }
        assert_eq!(state, JobState::Queued, "job went terminal before cancel");
        assert!(Instant::now() < wait_deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(5));
    }

    assert!(
        client.cancel(job).unwrap(),
        "cancel must latch onto the running job"
    );
    let message = client
        .fetch_result(job)
        .expect("fetch")
        .expect_err("a cancelled job must not report success");
    assert!(message.contains("cancelled"), "{message}");
    let (state, _, _) = client.status(job).unwrap();
    assert_eq!(state, JobState::Cancelled);
    let snapshot = client.metrics().unwrap();
    assert_eq!(snapshot.cancelled, 1);
    daemon.shutdown();
}

#[test]
fn cancel_reaches_a_running_job_unix() {
    cancel_reaches_a_running_job(TransportKind::Unix, "chaos_cancel_unix");
}

#[test]
fn cancel_reaches_a_running_job_tcp() {
    cancel_reaches_a_running_job(TransportKind::Tcp, "chaos_cancel_tcp");
}
