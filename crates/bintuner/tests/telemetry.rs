//! The btel telemetry plane end to end, and its central contract: turning
//! it on is a pure observation — `TelemetryMode::On` must leave every
//! tuning trajectory bit-identical to `Off` (the seed semantics) on every
//! backend, while the registry fills with real counts, the tracer stitches
//! worker-side stage spans across the farm wire into the server's dispatch
//! spans, and a live `tuned` daemon serves its exposition page and span
//! dump over the v2 wire.

use bintuner::daemon::{Daemon, DaemonClient, DaemonConfig};
use bintuner::{
    Backend, ProcessFarm, ServiceConfig, TransportKind, TuneResult, Tuner, TunerConfig, WorkerMode,
};
use std::path::PathBuf;
use testutil::{small_tuner, tiny_loop_module, ScratchStore};

/// The worker binary process-farm tests re-exec.
fn worker_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_bintuner"))
}

fn with_telemetry(base: TunerConfig) -> TunerConfig {
    TunerConfig {
        telemetry: btel::TelemetryMode::On,
        ..base
    }
}

fn service(max_evals: usize, cfg: ServiceConfig) -> TunerConfig {
    TunerConfig {
        backend: Backend::Service(cfg),
        ..small_tuner(max_evals)
    }
}

/// The determinism contract from the service/farm suites, applied across
/// the telemetry switch: every record, every fitness bit, every cache
/// flag. Measured `wall_seconds` / `ast_produce_seconds` are wall-clock
/// telemetry and deliberately excluded.
fn assert_identical_runs(a: &TuneResult, b: &TuneResult, what: &str) {
    assert_eq!(a.best_flags, b.best_flags, "{what}: best genome");
    assert_eq!(
        a.best_ncd.to_bits(),
        b.best_ncd.to_bits(),
        "{what}: best fitness"
    );
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(a.stopped_by, b.stopped_by, "{what}: stop reason");
    assert_eq!(a.db.rows().len(), b.db.rows().len(), "{what}: history");
    for (x, y) in a.db.rows().iter().zip(b.db.rows()) {
        assert_eq!(x.flags, y.flags, "{what}: iteration {}", x.iteration);
        assert_eq!(
            x.ncd.to_bits(),
            y.ncd.to_bits(),
            "{what}: iteration {}",
            x.iteration
        );
        assert_eq!(x.best_ncd.to_bits(), y.best_ncd.to_bits());
        assert_eq!(x.elapsed_seconds.to_bits(), y.elapsed_seconds.to_bits());
        assert_eq!(
            x.cache_hit, y.cache_hit,
            "{what}: iteration {}",
            x.iteration
        );
        assert_eq!(x.persistent_hit, y.persistent_hit);
        assert_eq!(x.ast_reused, y.ast_reused);
        assert_eq!(x.lower_reused, y.lower_reused);
    }
    assert_eq!(a.engine_stats.evaluations, b.engine_stats.evaluations);
    assert_eq!(a.engine_stats.cache_hits, b.engine_stats.cache_hits);
    assert_eq!(
        a.engine_stats.persistent_hits,
        b.engine_stats.persistent_hits
    );
    assert_eq!(a.engine_stats.compiles, b.engine_stats.compiles);
    assert_eq!(a.engine_stats.full_compiles, b.engine_stats.full_compiles);
    assert_eq!(a.engine_stats.ast_reuse, b.engine_stats.ast_reuse);
    assert_eq!(a.engine_stats.lower_reuse, b.engine_stats.lower_reuse);
}

#[test]
fn telemetry_on_is_bit_identical_to_off_on_every_backend() {
    let bench = corpus::by_name("462.libquantum").unwrap();
    let off = Tuner::new(small_tuner(60)).tune(&bench.module).unwrap();
    assert!(off.registry.is_none(), "Off mode allocates no registry");
    assert!(off.spans.is_empty(), "Off mode records no spans");

    // In-process engine with the full plane live.
    let local = Tuner::new(with_telemetry(small_tuner(60)))
        .tune(&bench.module)
        .unwrap();
    assert_identical_runs(&off, &local, "in-process, telemetry on");

    // Thread-client farm over unix sockets.
    let unix = Tuner::new(with_telemetry(service(
        60,
        ServiceConfig {
            clients: 2,
            transport: TransportKind::Unix,
            ..ServiceConfig::default()
        },
    )))
    .tune(&bench.module)
    .unwrap();
    assert_identical_runs(&off, &unix, "unix service, telemetry on");

    // Process farm over TCP: real address spaces, spans over the wire.
    let tcp = Tuner::new(with_telemetry(service(
        60,
        ServiceConfig {
            clients: 2,
            transport: TransportKind::Tcp,
            workers: WorkerMode::Processes(ProcessFarm {
                worker_binary: Some(worker_binary()),
                ..ProcessFarm::default()
            }),
            ..ServiceConfig::default()
        },
    )))
    .tune(&bench.module)
    .unwrap();
    assert_identical_runs(&off, &tcp, "tcp process farm, telemetry on");

    // The registry saw the run it watched: per-tier cache counters agree
    // with the engine's own logical stats, batch spans were recorded.
    for (run, what) in [(&local, "local"), (&unix, "unix"), (&tcp, "tcp")] {
        let registry = run.registry.as_ref().expect("telemetry registry");
        assert_eq!(
            registry.counter_value("bintuner_engine_evaluations_total", None),
            Some(run.engine_stats.evaluations as u64),
            "{what}: evaluations counter"
        );
        assert_eq!(
            registry.counter_value("bintuner_engine_cache_hits_total", Some("memo")),
            Some(run.engine_stats.cache_hits as u64),
            "{what}: memo-tier hit counter"
        );
        assert!(
            registry
                .counter_value("bintuner_engine_cache_hits_total", Some("memo"))
                .unwrap()
                > 0,
            "{what}: a 10-genome population must repeat genomes"
        );
        let text = registry.render_text();
        assert!(text.contains("bintuner_engine_stage_seconds_bucket"));
        assert!(run.spans.iter().any(|s| s.name == "batch"), "{what}: spans");
    }
}

#[test]
fn process_farm_trace_stitches_worker_spans_into_server_dispatch() {
    let bench = corpus::by_name("473.astar").unwrap();
    let trace_path = std::env::temp_dir().join(format!(
        "bintuner_trace_{}_stitch.jsonl",
        std::process::id()
    ));
    let run = Tuner::new(TunerConfig {
        trace_path: Some(trace_path.clone()),
        ..with_telemetry(service(
            50,
            ServiceConfig {
                clients: 2,
                transport: TransportKind::Tcp,
                workers: WorkerMode::Processes(ProcessFarm {
                    worker_binary: Some(worker_binary()),
                    ..ProcessFarm::default()
                }),
                ..ServiceConfig::default()
            },
        ))
    })
    .tune(&bench.module)
    .unwrap();

    // Server-side dispatch spans are roots recorded by the local tracer.
    let dispatch: std::collections::HashSet<u64> = run
        .spans
        .iter()
        .filter(|s| s.name == "dispatch")
        .map(|s| {
            assert_eq!(s.parent, 0, "dispatch spans are roots");
            assert!(s.id < 1 << 48, "server ids stay below every worker base");
            s.id
        })
        .collect();
    assert!(!dispatch.is_empty(), "the farm dispatched shards");

    // Worker-side stage spans crossed the TCP wire: ids carved from the
    // per-client base, parents pointing straight at a dispatch span.
    let worker_stages: Vec<_> = run
        .spans
        .iter()
        .filter(|s| s.id >= 1 << 48 && matches!(s.name.as_str(), "ast" | "lower" | "mir"))
        .collect();
    assert!(
        !worker_stages.is_empty(),
        "worker compile stages crossed the wire"
    );
    for span in worker_stages {
        assert!(
            dispatch.contains(&span.parent),
            "worker span {} ({}) must parent to a server dispatch span, got {}",
            span.id,
            span.name,
            span.parent
        );
    }

    // The JSONL sink mirrors the stitched trace line for line.
    let jsonl = std::fs::read_to_string(&trace_path).expect("trace sink written");
    assert_eq!(jsonl.lines().count(), run.spans.len());
    assert!(jsonl
        .lines()
        .all(|l| l.starts_with('{') && l.ends_with('}')));
    assert!(jsonl.contains("\"name\":\"dispatch\""));
    let _ = std::fs::remove_file(&trace_path);
}

#[test]
fn daemon_serves_metrics_and_traces_over_the_v2_wire() {
    let store = ScratchStore::new("telemetry_daemon");
    let module = tiny_loop_module("telemetry_daemon_mod", 6);
    let daemon = Daemon::launch(DaemonConfig {
        transport: TransportKind::Unix,
        base: small_tuner(50),
        store_path: Some(store.path_buf()),
        farm: ServiceConfig {
            clients: 2,
            ..ServiceConfig::default()
        },
        queue_limit: 4,
        runners: 1,
        ..DaemonConfig::default()
    })
    .unwrap();
    let mut client = DaemonClient::connect(daemon.addr()).unwrap();

    let job = client
        .submit("alice", &module, 0xBE1, 50, false, 0)
        .expect("submit")
        .expect("admitted");
    client
        .fetch_result(job)
        .expect("fetch")
        .expect("job completed");

    // The exposition page carries live per-tenant throughput and the
    // queue gauges, freshly drained.
    let text = client.metrics_text().expect("metrics over the wire");
    assert!(text.contains("# TYPE bintuner_daemon_queue_depth gauge"));
    assert!(text.contains("bintuner_daemon_queue_depth 0"));
    assert!(text.contains("bintuner_daemon_running 0"));
    assert!(text.contains("bintuner_daemon_jobs_total{tenant=\"alice\"} 1"));
    let compiles = daemon
        .registry()
        .counter_value("bintuner_daemon_compiles_total", Some("alice"))
        .expect("per-tenant compile counter");
    assert!(compiles > 0, "the cold job really compiled");
    assert!(text.contains(&format!(
        "bintuner_daemon_compiles_total{{tenant=\"alice\"}} {compiles}"
    )));
    assert!(text.contains("bintuner_daemon_job_seconds_count 1"));

    // And the span ring has the job's root span, served as JSONL.
    let jsonl = client.trace_dump().expect("trace dump over the wire");
    assert!(jsonl.contains("\"name\":\"job\""));
    daemon.shutdown();
}
