//! Differential harness for the evaluation-service backend: the sharded
//! client–server deployment (`TunerConfig::backend = Service`) must be
//! **bit-identical** to the in-process engine — same best genome, same
//! fitness bits, same full trajectory — on both transports, with cache
//! telemetry preserved, with the persistent store ending up equivalent,
//! and even when a client is killed mid-run (straggler re-dispatch must
//! absorb the loss without moving a single record).
//!
//! This is the reproduction's answer to the paper's §5 deployment: the
//! distributed shape is a pure wall-clock/scale decision, never a
//! semantics decision.

use bintuner::{
    Backend, FaultPlan, FitnessStore, ServiceConfig, TransportKind, TuneResult, Tuner, TunerConfig,
};
use testutil::{small_tuner, ScratchStore};

fn service_config(max_evals: usize, cfg: ServiceConfig) -> TunerConfig {
    TunerConfig {
        backend: Backend::Service(cfg),
        ..small_tuner(max_evals)
    }
}

/// Record-for-record equality of two tuning runs — the strongest form of
/// "the backend changed nothing". Measured `wall_seconds` is telemetry
/// and deliberately excluded (the one field wall-clock may touch).
fn assert_identical_runs(a: &TuneResult, b: &TuneResult, what: &str) {
    assert_eq!(a.best_flags, b.best_flags, "{what}: best genome");
    assert_eq!(
        a.best_ncd.to_bits(),
        b.best_ncd.to_bits(),
        "{what}: best fitness"
    );
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(a.stopped_by, b.stopped_by, "{what}: stop reason");
    assert_eq!(
        a.db.rows().len(),
        b.db.rows().len(),
        "{what}: history length"
    );
    for (x, y) in a.db.rows().iter().zip(b.db.rows()) {
        assert_eq!(x.flags, y.flags, "{what}: iteration {}", x.iteration);
        assert_eq!(
            x.ncd.to_bits(),
            y.ncd.to_bits(),
            "{what}: iteration {}",
            x.iteration
        );
        assert_eq!(x.best_ncd.to_bits(), y.best_ncd.to_bits());
        assert_eq!(x.elapsed_seconds.to_bits(), y.elapsed_seconds.to_bits());
        assert_eq!(
            x.cache_hit, y.cache_hit,
            "{what}: iteration {}",
            x.iteration
        );
        assert_eq!(
            x.persistent_hit, y.persistent_hit,
            "{what}: iteration {}",
            x.iteration
        );
        assert_eq!(x.seeded_from_prior, y.seeded_from_prior);
        // Stage-reuse classification happens at partition time from the
        // deterministic artifact membership model, never from where the
        // compiles physically ran — so it is backend-independent too.
        assert_eq!(
            x.ast_reused, y.ast_reused,
            "{what}: iteration {}",
            x.iteration
        );
        assert_eq!(
            x.lower_reused, y.lower_reused,
            "{what}: iteration {}",
            x.iteration
        );
    }
    // The logical engine telemetry is backend-independent too.
    assert_eq!(a.engine_stats.evaluations, b.engine_stats.evaluations);
    assert_eq!(a.engine_stats.cache_hits, b.engine_stats.cache_hits);
    assert_eq!(
        a.engine_stats.persistent_hits,
        b.engine_stats.persistent_hits
    );
    assert_eq!(a.engine_stats.compiles, b.engine_stats.compiles);
    assert_eq!(a.engine_stats.full_compiles, b.engine_stats.full_compiles);
    assert_eq!(a.engine_stats.ast_reuse, b.engine_stats.ast_reuse);
    assert_eq!(a.engine_stats.lower_reuse, b.engine_stats.lower_reuse);
    assert_eq!(
        a.engine_stats.failed_compiles,
        b.engine_stats.failed_compiles
    );
}

/// Semantic store equality: same entries, same fitness bits, same flag
/// bitmaps, same generations. (Byte equality is not required — record
/// order inside one compaction rewrite follows map iteration order.)
fn assert_same_store(a: &std::path::Path, b: &std::path::Path) {
    let mut sa = FitnessStore::load(a);
    let mut sb = FitnessStore::load(b);
    assert_eq!(sa.len(), sb.len(), "store sizes differ");
    assert_eq!(sa.generation(), sb.generation());
    for (key, va) in sa.entries() {
        let vb = sb
            .get(&key)
            .unwrap_or_else(|| panic!("missing key {key:?}"));
        assert_eq!(va.fitness.to_bits(), vb.fitness.to_bits());
        assert_eq!(va.failed, vb.failed);
        assert_eq!(va.flags, vb.flags);
        assert_eq!(va.generation, vb.generation);
    }
}

#[test]
fn service_backend_is_bit_identical_on_both_transports() {
    let bench = corpus::by_name("462.libquantum").unwrap();
    let local = Tuner::new(small_tuner(70)).tune(&bench.module).unwrap();
    assert!(local.service.is_none());

    let channel = Tuner::new(service_config(
        70,
        ServiceConfig {
            clients: 3,
            transport: TransportKind::Channel,
            ..ServiceConfig::default()
        },
    ))
    .tune(&bench.module)
    .unwrap();
    assert_identical_runs(&local, &channel, "channel transport");

    let unix = Tuner::new(service_config(
        70,
        ServiceConfig {
            clients: 2,
            transport: TransportKind::Unix,
            ..ServiceConfig::default()
        },
    ))
    .tune(&bench.module)
    .unwrap();
    assert_identical_runs(&local, &unix, "unix transport");

    let tcp = Tuner::new(service_config(
        70,
        ServiceConfig {
            clients: 2,
            transport: TransportKind::Tcp,
            ..ServiceConfig::default()
        },
    ))
    .tune(&bench.module)
    .unwrap();
    assert_identical_runs(&local, &tcp, "tcp transport");

    // The service actually ran: shards were dispatched to a live farm
    // and the farm did the compiles the engine accounted for.
    for (result, clients) in [(&channel, 3), (&unix, 2), (&tcp, 2)] {
        let summary = result.service.as_ref().expect("service telemetry");
        assert!(!summary.process_workers, "these farms are thread clients");
        assert_eq!(summary.clients, clients);
        assert_eq!(summary.clients_lost, 0);
        assert!(summary.shards > 0);
        assert!(
            summary.farm_compiles >= result.engine_stats.compiles as u64,
            "farm did at least the logical compiles"
        );
        // The adaptive cost model saw every shard's wall time.
        assert!(summary.cost_observations > 0);
        assert!(!summary.shard_sizes.is_empty());
    }
}

#[test]
fn killing_one_client_mid_run_changes_nothing() {
    let bench = corpus::by_name("473.astar").unwrap();
    let local = Tuner::new(small_tuner(60)).tune(&bench.module).unwrap();
    let killed = Tuner::new(service_config(
        60,
        ServiceConfig {
            clients: 3,
            transport: TransportKind::Channel,
            fault: Some(FaultPlan::crash(1, 2)),
            ..ServiceConfig::default()
        },
    ))
    .tune(&bench.module)
    .unwrap();
    assert_identical_runs(&local, &killed, "kill-one-client");
    let summary = killed.service.as_ref().expect("service telemetry");
    assert_eq!(summary.clients_lost, 1, "exactly the planned death");
    // Duplicate accounting flows into the engine stats (the in-process
    // engine can never have any).
    assert_eq!(
        killed.engine_stats.duplicate_results,
        summary.duplicate_results
    );
    assert_eq!(local.engine_stats.duplicate_results, 0);
}

#[test]
fn service_and_local_build_equivalent_stores_and_warm_starts() {
    let bench = corpus::by_name("429.mcf").unwrap();
    let local_store = ScratchStore::new("svc_local");
    let service_store = ScratchStore::new("svc_remote");
    let with_cache = |base: TunerConfig, path| TunerConfig {
        cache_path: Some(path),
        ..base
    };
    let svc = || {
        service_config(
            60,
            ServiceConfig {
                clients: 2,
                transport: TransportKind::Channel,
                ..ServiceConfig::default()
            },
        )
    };

    // Cold runs on each backend fill their own store.
    let cold_local = Tuner::new(with_cache(small_tuner(60), local_store.path_buf()))
        .tune(&bench.module)
        .unwrap();
    let cold_svc = Tuner::new(with_cache(svc(), service_store.path_buf()))
        .tune(&bench.module)
        .unwrap();
    assert_identical_runs(&cold_local, &cold_svc, "cold with store");
    let persist = cold_svc.persistence.as_ref().expect("persistence summary");
    assert_eq!(persist.save_error, None);
    assert!(!persist.lock_skipped);
    // The client farm shipped its local caches back, and the single
    // writable store ended up equivalent to the in-process run's.
    assert!(cold_svc.service.as_ref().unwrap().merged_records > 0);
    assert_same_store(local_store.path(), service_store.path());

    // Warm runs: the service replays the identical trajectory from
    // persistent hits, same as the in-process engine.
    let warm_local = Tuner::new(with_cache(small_tuner(60), local_store.path_buf()))
        .tune(&bench.module)
        .unwrap();
    let warm_svc = Tuner::new(with_cache(svc(), service_store.path_buf()))
        .tune(&bench.module)
        .unwrap();
    assert_identical_runs(&warm_local, &warm_svc, "warm with store");
    // Across warmth the hit telemetry legitimately differs (that is the
    // point of the store); the search itself must not.
    assert_eq!(cold_local.best_flags, warm_svc.best_flags);
    assert_eq!(cold_local.best_ncd.to_bits(), warm_svc.best_ncd.to_bits());
    assert_eq!(cold_local.iterations, warm_svc.iterations);
    assert!(warm_svc.engine_stats.persistent_hits > 0);
    assert!(warm_svc.engine_stats.compiles < cold_svc.engine_stats.compiles);
}

#[test]
fn invalid_module_fails_promptly_and_tears_the_service_down() {
    // The error path where the baseline cannot compile: the client farm
    // dies at engine construction (no Hello), so launch reports
    // NoClients as a chained TuneError::Service — promptly, and the
    // dropped ServiceHandle severs every unix connection and joins
    // every client/reader thread (the test completing, repeatedly, is
    // the assertion; without the Drop teardown each iteration leaked
    // blocked threads and the socket file).
    use minicc::ast::{Expr, FuncDef, Module, Stmt};
    let mut bad = Module::new("invalid");
    // Two functions with the same name fail validation → every baseline
    // compile (server's and each client's) fails.
    bad.funcs.push(FuncDef::new(
        "main",
        vec![],
        vec![Stmt::Return(Expr::Const(1))],
    ));
    bad.funcs.push(FuncDef::new(
        "main",
        vec![],
        vec![Stmt::Return(Expr::Const(2))],
    ));
    for _ in 0..3 {
        let err = Tuner::new(service_config(
            40,
            ServiceConfig {
                clients: 2,
                transport: TransportKind::Unix,
                ..ServiceConfig::default()
            },
        ))
        .tune(&bad)
        .unwrap_err();
        // Either shape is a prompt, clean failure: Service(NoClients)
        // when the farm dies first (current behavior), Baseline if the
        // server engine ever gets built first.
        assert!(
            matches!(
                err,
                bintuner::TuneError::Service(_) | bintuner::TuneError::Baseline(_)
            ),
            "{err}"
        );
    }
}

#[test]
fn service_launch_failure_is_a_chained_tune_error() {
    // The error type itself must chain: TuneError::Service → EvaldError
    // → io::Error, walkable via std::error::Error::source (the uniform
    // `?` contract).
    let io = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "no socket for you");
    let err = bintuner::TuneError::Service(std::sync::Arc::new(evald::EvaldError::Io(io)));
    assert!(err.to_string().contains("evaluation service"));
    let evald_src = std::error::Error::source(&err).expect("EvaldError source");
    assert!(evald_src.to_string().contains("I/O error"));
    let io_src = std::error::Error::source(evald_src).expect("io::Error source");
    assert!(io_src.to_string().contains("no socket for you"));
    // And it still satisfies the uniform `?`-into-Box<dyn Error> shape.
    fn boxed(e: bintuner::TuneError) -> Result<(), Box<dyn std::error::Error>> {
        Err(e)?
    }
    assert!(boxed(err.clone()).is_err());
    assert_eq!(err.clone(), err);
}
