//! Differential tests for the persistent cross-run fitness store: a warm
//! run must converge to the same best genome as the cold run that filled
//! the store, with strictly fewer real compiles; a damaged store must
//! degrade to a cold run, never an error.

use bintuner::{Tuner, TunerConfig};
use std::fs;
use testutil::{cached_tuner, tiny_loop_module, ScratchStore};

fn config(store: Option<&ScratchStore>) -> TunerConfig {
    cached_tuner(90, store)
}

#[test]
fn warm_run_matches_cold_run_with_fewer_compiles() {
    let store = ScratchStore::new("warm_matches_cold");
    let bench = corpus::by_name("429.mcf").unwrap();

    let cold = Tuner::new(config(Some(&store)))
        .tune(&bench.module)
        .unwrap();
    assert_eq!(cold.engine_stats.persistent_hits, 0);
    assert!(cold.engine_stats.compiles > 0);
    let cold_persist = cold.persistence.as_ref().unwrap();
    assert_eq!(cold_persist.loaded_entries, 0);
    assert!(cold_persist.new_entries > 0);
    assert_eq!(cold_persist.save_error, None);

    let warm = Tuner::new(config(Some(&store)))
        .tune(&bench.module)
        .unwrap();

    // Identical run: same best genome, bit-identical fitness, same
    // trajectory length — warm-starting must not change the search.
    assert_eq!(warm.best_flags, cold.best_flags);
    assert_eq!(warm.best_ncd.to_bits(), cold.best_ncd.to_bits());
    assert_eq!(warm.iterations, cold.iterations);
    assert_eq!(warm.stopped_by, cold.stopped_by);

    // Telemetry must agree run-to-run too (failures counted once per
    // distinct config whether computed fresh or served from the store).
    assert_eq!(
        warm.engine_stats.failed_compiles,
        cold.engine_stats.failed_compiles
    );

    // ...while doing strictly less real work.
    assert!(warm.engine_stats.persistent_hits > 0);
    assert!(
        warm.engine_stats.compiles < cold.engine_stats.compiles,
        "warm {} !< cold {}",
        warm.engine_stats.compiles,
        cold.engine_stats.compiles
    );
    let warm_persist = warm.persistence.as_ref().unwrap();
    assert_eq!(warm_persist.loaded_entries, cold_persist.new_entries);
    // An identical re-run discovers nothing new.
    assert_eq!(warm_persist.new_entries, 0);

    // The warm hits surface in the iteration database and its CSV.
    assert!(warm.db.persistent_hit_rate() > 0.0);
    assert_eq!(cold.db.persistent_hit_rate(), 0.0);
    let header = warm.db.to_csv().lines().next().unwrap().to_string();
    assert!(header.contains("persistent_hit"), "{header}");
}

#[test]
fn corrupt_store_degrades_to_cold_run() {
    let store = ScratchStore::new("corrupt_degrades");
    fs::write(store.path(), b"\x00\x01garbage that is certainly not BTFS").unwrap();
    let bench = corpus::by_name("473.astar").unwrap();

    let from_corrupt = Tuner::new(config(Some(&store)))
        .tune(&bench.module)
        .unwrap();
    let reference = Tuner::new(config(None)).tune(&bench.module).unwrap();

    assert_eq!(from_corrupt.best_flags, reference.best_flags);
    assert_eq!(
        from_corrupt.best_ncd.to_bits(),
        reference.best_ncd.to_bits()
    );
    let persist = from_corrupt.persistence.as_ref().unwrap();
    assert_eq!(persist.loaded_entries, 0);
    assert_eq!(persist.save_error, None);
    assert_eq!(from_corrupt.engine_stats.persistent_hits, 0);

    // The save replaced the garbage with a valid store: a second run now
    // warm-starts.
    let warm = Tuner::new(config(Some(&store)))
        .tune(&bench.module)
        .unwrap();
    assert!(warm.engine_stats.persistent_hits > 0);
    assert_eq!(warm.best_flags, reference.best_flags);
}

#[test]
fn store_separates_modules_profiles_and_arches() {
    let store = ScratchStore::new("key_separation");
    let mcf = corpus::by_name("429.mcf").unwrap();
    let astar = corpus::by_name("473.astar").unwrap();

    let r1 = Tuner::new(config(Some(&store))).tune(&mcf.module).unwrap();
    assert!(r1.persistence.as_ref().unwrap().new_entries > 0);

    // A different module must not hit the first module's entries.
    let r2 = Tuner::new(config(Some(&store)))
        .tune(&astar.module)
        .unwrap();
    assert_eq!(r2.engine_stats.persistent_hits, 0);
    assert!(
        r2.persistence.as_ref().unwrap().loaded_entries
            >= r1.persistence.as_ref().unwrap().new_entries
    );

    // A different arch on the first module is likewise a cold start.
    let mut other_arch = config(Some(&store));
    other_arch.arch = binrep::Arch::Arm;
    let r3 = Tuner::new(other_arch).tune(&mcf.module).unwrap();
    assert_eq!(r3.engine_stats.persistent_hits, 0);

    // Re-tuning the original target still warm-starts through all the
    // unrelated entries.
    let warm = Tuner::new(config(Some(&store))).tune(&mcf.module).unwrap();
    assert!(warm.engine_stats.persistent_hits > 0);
    assert_eq!(warm.best_flags, r1.best_flags);
}

#[test]
fn renamed_module_warm_starts_its_compiles_from_the_artifact_store() {
    // A renamed module invalidates every fitness key (they hash the
    // module *content*, name included) — but the artifact store is
    // keyed by the *body* hash, so the expensive early pipeline stages
    // transfer. The warm run must replay the cold trajectory bit for
    // bit while running strictly fewer full pipelines.
    let store = ScratchStore::new("artifact_warm");
    let first = tiny_loop_module("artifact_warm_a", 6);
    let renamed = tiny_loop_module("artifact_warm_b", 6);

    let cold_reference = Tuner::new(config(None)).tune(&renamed).unwrap();
    Tuner::new(config(Some(&store))).tune(&first).unwrap();

    let warm = Tuner::new(config(Some(&store))).tune(&renamed).unwrap();
    // No fitness key overlaps — all the transfer is artifact-level.
    assert_eq!(warm.engine_stats.persistent_hits, 0);
    assert_eq!(warm.best_flags, cold_reference.best_flags);
    assert_eq!(warm.best_ncd.to_bits(), cold_reference.best_ncd.to_bits());
    assert_eq!(
        warm.engine_stats.compiles,
        cold_reference.engine_stats.compiles
    );
    assert!(
        warm.engine_stats.store_ast_hits > 0,
        "persistent artifacts must serve stage-1 hits"
    );
    assert!(
        warm.engine_stats.full_compiles < cold_reference.engine_stats.full_compiles,
        "warm {} full compiles !< cold {}",
        warm.engine_stats.full_compiles,
        cold_reference.engine_stats.full_compiles
    );
}

#[test]
fn dedup_spends_compile_budget_on_new_configs() {
    let bench = corpus::by_name("462.libquantum").unwrap();
    let plain = Tuner::new(config(None)).tune(&bench.module).unwrap();
    let mut dedup_config = config(None);
    dedup_config.dedup = true;
    let dedup = Tuner::new(dedup_config).tune(&bench.module).unwrap();

    // Re-breeding fired, and the same evaluation budget covered at least
    // as many distinct effect configurations (= real compiles, since
    // each compile is one new config).
    assert!(dedup.skipped_duplicates > 0, "{}", dedup.skipped_duplicates);
    assert_eq!(plain.skipped_duplicates, 0);
    assert!(
        dedup.engine_stats.compiles >= plain.engine_stats.compiles,
        "dedup {} < plain {}",
        dedup.engine_stats.compiles,
        plain.engine_stats.compiles
    );
    // Dedup changes the trajectory but not the quality floor: it still
    // beats or matches the plain run's preset-beating property.
    assert!(dedup.best_ncd > 0.0);
}
