//! Differential harness for the prior subsystem — the PR's central
//! guarantee: **priors never hurt**.
//!
//! Three contracts, each pinned record-for-record:
//!
//! 1. [`PriorMode::Off`] is *bit-identical* to the historical tuner (the
//!    sequential reference path carries no prior plumbing at all).
//! 2. Priors on + an **empty** store degrade exactly to the unseeded
//!    cold run — mining nothing must change nothing.
//! 3. Priors on + a **warm** store reach at least the cold run's best
//!    fitness with no more real compiles (the transferred seeds include
//!    the stored best config, so the floor is structural, not lucky).

use bintuner::{PriorMode, TuneResult, Tuner, TunerConfig};
use testutil::{cached_tuner, ScratchStore};

fn config(max_evals: usize, store: Option<&ScratchStore>, priors: PriorMode) -> TunerConfig {
    TunerConfig {
        priors,
        ..cached_tuner(max_evals, store)
    }
}

/// Identical runs, down to every recorded iteration.
fn assert_identical(a: &TuneResult, b: &TuneResult) {
    assert_eq!(a.best_flags, b.best_flags);
    assert_eq!(a.best_ncd.to_bits(), b.best_ncd.to_bits());
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.stopped_by, b.stopped_by);
    assert_eq!(a.db.rows().len(), b.db.rows().len());
    for (x, y) in a.db.rows().iter().zip(b.db.rows()) {
        assert_eq!(x.flags, y.flags, "iteration {}", x.iteration);
        assert_eq!(
            x.ncd.to_bits(),
            y.ncd.to_bits(),
            "iteration {}",
            x.iteration
        );
        assert_eq!(x.best_ncd.to_bits(), y.best_ncd.to_bits());
        assert_eq!(x.elapsed_seconds.to_bits(), y.elapsed_seconds.to_bits());
    }
}

#[test]
fn prior_mode_off_is_bit_identical_to_the_reference_tuner() {
    // The sequential reference path predates (and never touches) the
    // prior plumbing; PriorMode::Off through the batched engine must
    // reproduce it record for record, warm store and all.
    let bench = corpus::by_name("462.libquantum").unwrap();
    let store = ScratchStore::new("off_identical");

    // Fill the store first so Off is tested against a *warm* store — the
    // case where mining would have material to act on if the gate leaked.
    Tuner::new(config(70, Some(&store), PriorMode::Off))
        .tune(&bench.module)
        .unwrap();

    let off_warm = Tuner::new(config(70, Some(&store), PriorMode::Off))
        .tune(&bench.module)
        .unwrap();
    let reference = Tuner::new(config(70, None, PriorMode::Off))
        .tune_sequential(&bench.module)
        .unwrap();
    assert_identical(&off_warm, &reference);
    assert!(off_warm.prior.is_none(), "Off must not mine");
    assert_eq!(off_warm.db.seeded_count(), 0);
}

#[test]
fn priors_with_empty_store_degrade_to_the_unseeded_cold_run() {
    let bench = corpus::by_name("473.astar").unwrap();
    for mode in [PriorMode::SeedOnly, PriorMode::SeedAndBias] {
        let store = ScratchStore::new("empty_store");
        let with_priors = Tuner::new(config(60, Some(&store), mode))
            .tune(&bench.module)
            .unwrap();
        let cold = Tuner::new(config(60, None, PriorMode::Off))
            .tune(&bench.module)
            .unwrap();
        assert_identical(&with_priors, &cold);

        let prior = with_priors.prior.as_ref().expect("mode on => summary");
        assert_eq!(prior.mode, mode);
        assert_eq!(prior.mined_records, 0);
        assert_eq!(prior.seeds_injected, 0);
        assert_eq!(prior.source_module, None);
        assert_eq!(prior.seed_best_ncd, None);
        assert_eq!(prior.biased_flags, 0);
        assert_eq!(with_priors.db.seeded_count(), 0);
    }
}

#[test]
fn priors_without_a_store_are_inert() {
    let bench = corpus::by_name("429.mcf").unwrap();
    let seeded = Tuner::new(config(60, None, PriorMode::SeedAndBias))
        .tune(&bench.module)
        .unwrap();
    let plain = Tuner::new(config(60, None, PriorMode::Off))
        .tune(&bench.module)
        .unwrap();
    assert_identical(&seeded, &plain);
    assert!(seeded.prior.is_none(), "no store => nothing to mine");
}

#[test]
fn warm_store_seeding_never_hurts_and_saves_compiles() {
    let bench = corpus::by_name("429.mcf").unwrap();
    let store = ScratchStore::new("warm_seed");

    let cold = Tuner::new(config(90, Some(&store), PriorMode::Off))
        .tune(&bench.module)
        .unwrap();

    let seeded = Tuner::new(config(90, Some(&store), PriorMode::SeedOnly))
        .tune(&bench.module)
        .unwrap();

    // The floor is structural: the transferred seeds include the stored
    // best config, so the seeded run can never finish below the cold one.
    assert!(
        seeded.best_ncd >= cold.best_ncd,
        "seeded {} < cold {}",
        seeded.best_ncd,
        cold.best_ncd
    );
    // ... while doing no more real work (everything the cold run
    // compiled is served from the store).
    assert!(
        seeded.engine_stats.compiles <= cold.engine_stats.compiles,
        "seeded {} compiles > cold {}",
        seeded.engine_stats.compiles,
        cold.engine_stats.compiles
    );
    assert!(seeded.engine_stats.persistent_hits > 0);

    // The prior actually fired, from this module itself (distance 0).
    let prior = seeded.prior.as_ref().unwrap();
    assert!(prior.mined_records > 0);
    assert!(prior.seeds_injected > 0);
    assert_eq!(prior.source_module, Some(bench.module.content_hash()));
    assert_eq!(prior.source_distance, Some(0.0));
    let seed_best = prior.seed_best_ncd.expect("seeds were evaluated");
    assert!(
        seed_best >= cold.best_ncd,
        "transferred best {seed_best} below stored best {}",
        cold.best_ncd
    );
    assert_eq!(prior.biased_flags, 0, "SeedOnly must not touch mutation");

    // Seeded iterations surface in the database and its CSV.
    assert_eq!(seeded.db.seeded_count(), prior.seeds_injected);
    let csv = seeded.db.to_csv();
    assert!(csv.lines().next().unwrap().contains("seeded_from_prior"));
    assert!(
        csv.lines()
            .skip(1)
            .any(|l| l.contains(",1,") || l.ends_with(",1")),
        "some row must be marked seeded"
    );
    assert_eq!(cold.db.seeded_count(), 0);
}

#[test]
fn seed_and_bias_is_deterministic_and_reports_bias() {
    let bench = corpus::by_name("473.astar").unwrap();
    let store = ScratchStore::new("seed_and_bias");

    let cold = Tuner::new(config(80, Some(&store), PriorMode::Off))
        .tune(&bench.module)
        .unwrap();

    // A biased run explores new configs and appends them, so two runs
    // against the *same* store would mine different histories. Snapshot
    // the store instead: identical store + config => identical
    // trajectory.
    let snapshot = ScratchStore::snapshot_of("seed_and_bias_copy", store.path());
    let a = Tuner::new(config(80, Some(&store), PriorMode::SeedAndBias))
        .tune(&bench.module)
        .unwrap();
    let b = Tuner::new(config(80, Some(&snapshot), PriorMode::SeedAndBias))
        .tune(&bench.module)
        .unwrap();
    assert_identical(&a, &b);

    let prior = a.prior.as_ref().unwrap();
    assert!(prior.biased_flags > 0, "bias table must move some weights");
    assert!(a.best_ncd >= cold.best_ncd);
    assert!(a.engine_stats.compiles <= cold.engine_stats.compiles);
}

#[test]
fn seeds_transfer_from_the_shape_nearest_module() {
    // Warm the store on 429.mcf, then tune its SPEC2017 counterpart
    // 605.mcf_s: the prior must pick 429.mcf as the transfer source (no
    // exact key overlap — different content hashes — so all value comes
    // through the feature lookup).
    let near = corpus::by_name("429.mcf").unwrap();
    let far = corpus::coreutils();
    let target = corpus::by_name("605.mcf_s").unwrap();
    let store = ScratchStore::new("transfer");

    Tuner::new(config(80, Some(&store), PriorMode::Off))
        .tune(&near.module)
        .unwrap();
    Tuner::new(config(40, Some(&store), PriorMode::Off))
        .tune(&far.module)
        .unwrap();

    let transferred = Tuner::new(config(80, Some(&store), PriorMode::SeedOnly))
        .tune(&target.module)
        .unwrap();
    let prior = transferred.prior.as_ref().unwrap();
    assert_eq!(
        prior.source_module,
        Some(near.module.content_hash()),
        "mcf variant must beat coreutils on shape distance"
    );
    let d = prior.source_distance.unwrap();
    assert!(d > 0.0 && d < 1.0, "cross-module distance: {d}");
    assert!(prior.seeds_injected > 0);
    // Foreign-module configs are fresh keys here: they cost real compiles
    // but enter the population as candidates, not cache hits.
    assert_eq!(transferred.engine_stats.persistent_hits, 0);
    assert!(transferred.best_ncd > 0.0);
}
