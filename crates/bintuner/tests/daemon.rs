//! The tuning daemon end to end, over real sockets: multi-tenant job
//! multiplexing onto one shared farm must preserve the bit-identity
//! contract (every daemon job ≡ the same tune run solo), duplicate
//! submissions must be pure cache hits (zero compiles), admission
//! control must reject with types rather than block unboundedly, and —
//! the PR's reason to exist — losing every farm worker mid-batch must
//! fail *the job*, never the daemon.

use bintuner::daemon::metrics::MetricsSnapshot;
use bintuner::daemon::wire::{JobState, RejectCode, WireTuneOutcome};
use bintuner::daemon::{Daemon, DaemonClient, DaemonConfig, DaemonHandle};
use bintuner::{TuneResult, Tuner, TunerConfig};
use evald::{FaultPlan, ServiceConfig, TransportKind};
use minicc::ast::Module;
use testutil::{small_tuner, tiny_loop_module, ScratchStore};

const EVALS: u64 = 60;

/// The template every daemon in this suite serves jobs from; solo
/// reference runs use the same preset so trajectories are comparable
/// bit for bit.
fn base() -> TunerConfig {
    small_tuner(EVALS as usize)
}

fn daemon_config(transport: TransportKind, store: &ScratchStore) -> DaemonConfig {
    DaemonConfig {
        transport,
        base: base(),
        store_path: Some(store.path_buf()),
        farm: ServiceConfig {
            clients: 2,
            ..ServiceConfig::default()
        },
        queue_limit: 8,
        runners: 1,
        ..DaemonConfig::default()
    }
}

/// The solo (daemon-free, store-free) run a daemon job must be
/// bit-identical to. An empty/absent store never changes a trajectory —
/// that equivalence is pinned by the persistent-cache differentials —
/// so the cold solo run is the reference for warm daemon jobs too.
fn solo(module: &Module, seed: u64) -> TuneResult {
    Tuner::new(TunerConfig { seed, ..base() })
        .tune(module)
        .expect("solo reference run")
}

fn assert_outcome_matches_solo(outcome: &WireTuneOutcome, solo: &TuneResult, what: &str) {
    assert_eq!(outcome.best_flags, solo.best_flags, "{what}: best_flags");
    assert_eq!(
        outcome.best_ncd_bits,
        solo.best_ncd.to_bits(),
        "{what}: best_ncd bits"
    );
    assert_eq!(
        outcome.iterations, solo.iterations as u64,
        "{what}: iterations"
    );
    assert_eq!(outcome.stopped_by, solo.stopped_by, "{what}: stop reason");
}

fn submit_and_fetch(
    client: &mut DaemonClient,
    tenant: &str,
    module: &Module,
    seed: u64,
) -> Result<WireTuneOutcome, String> {
    let job = client
        .submit(tenant, module, seed, EVALS, false, 0)
        .expect("submit over the wire")
        .expect("admitted");
    client.fetch_result(job).expect("fetch over the wire")
}

/// Honor the CI hook: persist a metrics snapshot where the workflow can
/// pick it up as a build artifact.
fn export_metrics(snapshot: &MetricsSnapshot) {
    if let Ok(path) = std::env::var("DAEMON_METRICS_OUT") {
        std::fs::write(path, snapshot.to_string()).expect("write metrics artifact");
    }
}

#[test]
fn duplicate_submission_is_a_pure_cache_hit_bit_identical_across_tenants() {
    let store = ScratchStore::new("daemon_dup");
    let module = tiny_loop_module("daemon_dup_mod", 6);
    let reference = solo(&module, 0x0DAE);

    let daemon = Daemon::launch(daemon_config(TransportKind::Unix, &store)).unwrap();
    let mut client = DaemonClient::connect(daemon.addr()).unwrap();

    let first = submit_and_fetch(&mut client, "alice", &module, 0x0DAE).expect("first job");
    assert_outcome_matches_solo(&first, &reference, "cold daemon job vs solo");
    assert!(first.compiles > 0, "the cold job really compiled");

    // Same module, same seed, *different tenant*: every evaluation is
    // served from the shared store alice already paid for.
    let second = submit_and_fetch(&mut client, "bob", &module, 0x0DAE).expect("duplicate job");
    assert_eq!(
        second.compiles, 0,
        "a duplicate submission must be a pure cache hit"
    );
    assert!(second.persistent_hits > 0, "served from the shared store");
    assert_outcome_matches_solo(&second, &reference, "duplicate daemon job vs solo");

    let snapshot = client.metrics().expect("metrics over the wire");
    assert_eq!(snapshot.submitted, 2);
    assert_eq!(snapshot.accepted, 2);
    assert_eq!(snapshot.completed, 2);
    assert_eq!(snapshot.failed, 0);
    assert_eq!(snapshot.compiles_total, first.compiles);
    assert!(snapshot.persistent_hits_total >= second.persistent_hits);
    assert!(snapshot.ewma_job_seconds.is_some(), "rate estimator seeded");
    let by_tenant: Vec<&str> = snapshot.tenants.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(by_tenant, ["alice", "bob"]);
    assert_eq!(snapshot.tenants[0].1.compiles, first.compiles);
    assert_eq!(
        snapshot.tenants[1].1.compiles, 0,
        "bob rode alice's compiles"
    );
    export_metrics(&snapshot);
    daemon.shutdown();
}

#[test]
fn concurrent_distinct_jobs_each_match_their_solo_runs() {
    let store = ScratchStore::new("daemon_concurrent");
    let module_a = tiny_loop_module("daemon_conc_a", 5);
    let module_b = tiny_loop_module("daemon_conc_b", 7);
    let solo_a = solo(&module_a, 0xA11CE);
    let solo_b = solo(&module_b, 0xB0B);

    let daemon = Daemon::launch(DaemonConfig {
        runners: 2,
        ..daemon_config(TransportKind::Tcp, &store)
    })
    .unwrap();

    // Two tenants, two connections, both jobs in flight at once — their
    // batches interleave on the one shared farm.
    let outcomes = std::thread::scope(|scope| {
        let jobs = [("alice", &module_a, 0xA11CE_u64), ("bob", &module_b, 0xB0B)];
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|(tenant, module, seed)| {
                let addr = daemon.addr().clone();
                scope.spawn(move || {
                    let mut client = DaemonClient::connect(&addr).unwrap();
                    submit_and_fetch(&mut client, tenant, module, seed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect::<Vec<_>>()
    });

    let a = outcomes[0].as_ref().expect("alice's job");
    let b = outcomes[1].as_ref().expect("bob's job");
    assert_outcome_matches_solo(a, &solo_a, "concurrent job A vs solo");
    assert_outcome_matches_solo(b, &solo_b, "concurrent job B vs solo");
    // Distinct modules share the store without cross-talk: neither job
    // hit the other's entries (keys carry the module hash).
    assert_eq!(a.persistent_hits, 0, "no cross-module store pollution");
    assert_eq!(b.persistent_hits, 0, "no cross-module store pollution");

    let snapshot = daemon.metrics_snapshot();
    assert_eq!(snapshot.completed, 2);
    assert!(snapshot.farm_launches >= 2, "the farm swapped modules");
    daemon.shutdown();
}

/// The tentpole's prerequisite, end to end over the wire: every farm
/// worker dies mid-batch; the job fails with the service error, the
/// daemon keeps serving, the store stays sound, and the *next* job on
/// the same daemon relaunches a fresh farm and succeeds bit-identically.
fn farm_loss_fails_the_job_not_the_daemon(transport: TransportKind) {
    let store = ScratchStore::new("daemon_farm_loss");
    let module = tiny_loop_module("daemon_loss_mod", 6);
    let reference = solo(&module, 0x10E);

    let daemon = Daemon::launch(DaemonConfig {
        farm: ServiceConfig {
            // A one-client farm whose only client dies after its first
            // shard: the next dispatch finds no live clients — the
            // all-workers-dead abort, deterministically.
            clients: 1,
            ..ServiceConfig::default()
        },
        farm_fault_once: Some(FaultPlan::crash(0, 1)),
        ..daemon_config(transport, &store)
    })
    .unwrap();
    let mut client = DaemonClient::connect(daemon.addr()).unwrap();

    let job = client
        .submit("alice", &module, 0x10E, EVALS, false, 0)
        .unwrap()
        .expect("admitted");
    let message = client
        .fetch_result(job)
        .expect("the daemon answered — it survived the farm loss")
        .expect_err("the job itself must fail");
    assert!(
        message.contains("evaluation service failed"),
        "the tenant sees the typed service failure, got: {message}"
    );
    let (state, _, _) = client.status(job).unwrap();
    assert_eq!(state, JobState::Failed);

    // Same daemon, same connection: the fault was consumed, so the next
    // job relaunches a healthy farm and completes — bit-identical to
    // solo, proving the shared store wasn't corrupted by the crash.
    let retry = submit_and_fetch(&mut client, "alice", &module, 0x10E).expect("retry succeeds");
    assert_outcome_matches_solo(&retry, &reference, "post-crash retry vs solo");

    let snapshot = client.metrics().unwrap();
    assert_eq!(snapshot.failed, 1);
    assert_eq!(snapshot.completed, 1);
    assert!(snapshot.farm_failures >= 1, "the loss was counted");
    assert!(snapshot.farm_launches >= 2, "the retry got a fresh farm");
    daemon.shutdown();
}

#[test]
fn farm_loss_fails_the_job_not_the_daemon_unix() {
    farm_loss_fails_the_job_not_the_daemon(TransportKind::Unix);
}

#[test]
fn farm_loss_fails_the_job_not_the_daemon_tcp() {
    farm_loss_fails_the_job_not_the_daemon(TransportKind::Tcp);
}

#[test]
fn admission_control_rejects_with_types_not_blocking() {
    let store = ScratchStore::new("daemon_admission");
    let module = tiny_loop_module("daemon_admission_mod", 4);
    // A zero-slot queue rejects every submission — the deterministic
    // way to pin the reject type and that per-tenant accounting sees it.
    let daemon = Daemon::launch(DaemonConfig {
        queue_limit: 0,
        ..daemon_config(TransportKind::Unix, &store)
    })
    .unwrap();
    let mut client = DaemonClient::connect(daemon.addr()).unwrap();

    let (code, detail) = client
        .submit("carol", &module, 1, EVALS, false, 0)
        .unwrap()
        .expect_err("a full queue rejects");
    assert_eq!(code, RejectCode::QueueFull);
    assert!(detail.contains("queue full"), "{detail}");

    // Garbage module bytes are rejected at admission too, not queued.
    // (Reusing the raw frame path the client normally hides.)
    let (state, _, _) = client.status(999).unwrap();
    assert_eq!(state, JobState::Unknown);
    assert!(!client.cancel(999).unwrap(), "nothing queued to cancel");

    let snapshot = client.metrics().unwrap();
    assert_eq!(snapshot.submitted, 1);
    assert_eq!(snapshot.rejected, 1);
    assert_eq!(snapshot.accepted, 0);
    let carol = &snapshot.tenants[0];
    assert_eq!(carol.0, "carol");
    assert_eq!(carol.1.rejected, 1);
    daemon.shutdown();
}

#[test]
fn shutdown_is_clean_with_idle_connections_open() {
    let store = ScratchStore::new("daemon_shutdown");
    let daemon = Daemon::launch(daemon_config(TransportKind::Unix, &store)).unwrap();
    let DaemonHandle { .. } = &daemon;
    let _idle = DaemonClient::connect(daemon.addr()).unwrap();
    // Shutdown with a connected-but-silent client must not hang —
    // returning from this test is the assertion.
    daemon.shutdown();
}
