//! Differential harness for the tier-0 stage-artifact cache.
//!
//! The artifact cache is a pure wall-clock optimization: whether a miss
//! reruns the whole pipeline or reuses a cached optimized-AST /
//! lowered-binary artifact must never change a single bit of the tuning
//! trajectory — on either evaluation backend. These tests pin that, plus
//! the accounting identities the `staged_compile` bench and the CSV
//! columns rely on, plus the eviction bound.

use bintuner::{
    Backend, EngineConfig, FitnessEngine, ServiceConfig, TransportKind, TuneResult, Tuner,
    TunerConfig,
};
use genetic::Evaluator;
use minicc::{Compiler, CompilerKind, OptLevel};
use testutil::small_tuner;

/// Everything except measured wall time and the stage-reuse telemetry
/// (which the cache setting is *supposed* to change) must be
/// bit-identical.
fn assert_same_trajectory(a: &TuneResult, b: &TuneResult, what: &str) {
    assert_eq!(a.best_flags, b.best_flags, "{what}: best genome");
    assert_eq!(
        a.best_ncd.to_bits(),
        b.best_ncd.to_bits(),
        "{what}: best fitness"
    );
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(a.stopped_by, b.stopped_by, "{what}: stop reason");
    assert_eq!(a.db.rows().len(), b.db.rows().len(), "{what}: history");
    for (x, y) in a.db.rows().iter().zip(b.db.rows()) {
        assert_eq!(x.flags, y.flags, "{what}: iteration {}", x.iteration);
        assert_eq!(
            x.ncd.to_bits(),
            y.ncd.to_bits(),
            "{what}: iteration {}",
            x.iteration
        );
        assert_eq!(x.best_ncd.to_bits(), y.best_ncd.to_bits());
        assert_eq!(x.elapsed_seconds.to_bits(), y.elapsed_seconds.to_bits());
        assert_eq!(x.cache_hit, y.cache_hit, "{what}: it {}", x.iteration);
        assert_eq!(x.persistent_hit, y.persistent_hit);
        assert_eq!(x.seeded_from_prior, y.seeded_from_prior);
    }
    assert_eq!(a.engine_stats.evaluations, b.engine_stats.evaluations);
    assert_eq!(a.engine_stats.cache_hits, b.engine_stats.cache_hits);
    assert_eq!(a.engine_stats.compiles, b.engine_stats.compiles);
    assert_eq!(
        a.engine_stats.failed_compiles,
        b.engine_stats.failed_compiles
    );
}

fn tuned(mut config: TunerConfig, artifact_cache: bool) -> TuneResult {
    config.artifact_cache = artifact_cache;
    let bench = corpus::by_name("462.libquantum").unwrap();
    Tuner::new(config).tune(&bench.module).unwrap()
}

#[test]
fn artifact_cache_on_off_is_bit_identical_in_process() {
    let on = tuned(small_tuner(90), true);
    let off = tuned(small_tuner(90), false);
    assert_same_trajectory(&on, &off, "in-process on-vs-off");

    // The cache-off run is the pre-artifact-cache engine: every miss is
    // a full pipeline run.
    assert_eq!(off.engine_stats.full_compiles, off.engine_stats.compiles);
    assert_eq!(off.engine_stats.ast_reuse + off.engine_stats.lower_reuse, 0);

    // The cache-on run must have genuinely shared stages: strictly fewer
    // full pipelines for the same compile count.
    let s = on.engine_stats;
    assert_eq!(s.compiles, s.full_compiles + s.ast_reuse + s.lower_reuse);
    assert!(
        s.full_compiles < s.compiles,
        "no stage reuse: {s:?} (full == compiles)"
    );
    assert!(s.ast_reuse + s.lower_reuse > 0, "{s:?}");
}

#[test]
fn artifact_cache_on_off_is_bit_identical_on_service_backend() {
    let service = |artifact_cache| {
        let config = TunerConfig {
            backend: Backend::Service(ServiceConfig {
                clients: 2,
                transport: TransportKind::Channel,
                ..ServiceConfig::default()
            }),
            ..small_tuner(90)
        };
        tuned(config, artifact_cache)
    };
    let on = service(true);
    let off = service(false);
    assert_same_trajectory(&on, &off, "service on-vs-off");
    // And both match the in-process runs bit-for-bit (the backend is
    // orthogonal to the artifact cache).
    let local = tuned(small_tuner(90), true);
    assert_same_trajectory(&on, &local, "service-vs-local on");
    assert_same_trajectory(&off, &tuned(small_tuner(90), false), "service-vs-local off");
    // Stage classification is partition-side, so the *logical* counters
    // agree with in-process exactly.
    assert_eq!(
        on.engine_stats.full_compiles,
        local.engine_stats.full_compiles
    );
    assert_eq!(on.engine_stats.ast_reuse, local.engine_stats.ast_reuse);
    assert_eq!(on.engine_stats.lower_reuse, local.engine_stats.lower_reuse);
    // The farm measured its own (physical) reuse: client engines carry
    // the same tier-0 cache, so with the cache on, some client compile
    // must have skipped a stage.
    let summary = on.service.expect("service summary");
    assert_eq!(
        summary.farm_compiles,
        summary.farm_full_compiles + summary.farm_ast_reuse + summary.farm_lower_reuse,
        "farm stage counters must partition farm compiles"
    );
    assert!(
        summary.farm_ast_reuse + summary.farm_lower_reuse > 0,
        "{summary:?}"
    );
    let off_summary = off.service.expect("service summary");
    assert_eq!(off_summary.farm_full_compiles, off_summary.farm_compiles);
}

#[test]
fn row_flags_reconcile_with_engine_counters() {
    let on = tuned(small_tuner(90), true);
    let rows = on.db.rows();
    let row_ast = rows.iter().filter(|r| r.ast_reused).count();
    let row_lower = rows.iter().filter(|r| r.lower_reused).count();
    // Stage flags mark exactly the fresh-compile representative of each
    // miss, so the row totals are the engine counters.
    assert_eq!(row_ast, on.engine_stats.ast_reuse);
    assert_eq!(row_lower, on.engine_stats.lower_reuse);
    for r in rows {
        assert!(
            !(r.ast_reused && r.lower_reused),
            "reuse levels are disjoint (iteration {})",
            r.iteration
        );
        if r.ast_reused || r.lower_reused {
            assert!(
                !r.cache_hit && !r.persistent_hit,
                "stage reuse is a property of fresh compiles (iteration {})",
                r.iteration
            );
        }
    }
    // And the CSV carries the columns.
    let csv = on.db.to_csv();
    assert!(csv
        .lines()
        .next()
        .unwrap()
        .contains("ast_reused,lower_reused"));
}

#[test]
fn eviction_bound_is_respected_and_changes_nothing() {
    // A pathologically tiny artifact cache must stay within its bounds
    // and still produce bit-identical fitness for every genome.
    let bench = corpus::by_name("473.astar").unwrap();
    let compiler = Compiler::new(CompilerKind::Gcc);
    let capped = FitnessEngine::new(
        &compiler,
        &bench.module,
        binrep::Arch::X86,
        EngineConfig {
            workers: 2,
            artifact_cache: true,
            max_ast_artifacts: 2,
            max_lower_artifacts: 2,
        },
    )
    .unwrap();
    let uncapped = FitnessEngine::new(
        &compiler,
        &bench.module,
        binrep::Arch::X86,
        EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        },
    )
    .unwrap();

    // Several generations' worth of batches over the presets (plenty of
    // distinct stage keys to overflow a 2-entry cache).
    let profile = compiler.profile();
    let batches: Vec<Vec<Vec<bool>>> = (0..4)
        .map(|i| {
            OptLevel::ALL
                .iter()
                .map(|&l| {
                    let mut f = profile.preset(l);
                    // Perturb a filler flag per round for fresh configs.
                    let idx = (i * 13 + 47) % f.len();
                    f[idx] = !f[idx];
                    profile.constraints().repair(&f, i as u64)
                })
                .collect()
        })
        .collect();
    for batch in &batches {
        let a = capped.evaluate_batch(batch).unwrap();
        let b = uncapped.evaluate_batch(batch).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.fitness.to_bits(), y.fitness.to_bits());
        }
        assert!(capped.ast_artifact_len() <= 2, "ast bound violated");
        assert!(capped.lower_artifact_len() <= 2, "lower bound violated");
    }
    // The capped engine evicted (i.e. it saw more keys than it may
    // keep), otherwise the bound was never exercised.
    assert!(uncapped.ast_artifact_len() > 2 || uncapped.lower_artifact_len() > 2);
}

#[test]
fn within_batch_stage_sharing_is_classified() {
    // Two presets differing only in late-pipeline flags inside ONE
    // batch: the second must be classified as a stage reuse even though
    // the artifact is produced by the same batch.
    let bench = corpus::by_name("429.mcf").unwrap();
    let compiler = Compiler::new(CompilerKind::Gcc);
    let engine = FitnessEngine::new(
        &compiler,
        &bench.module,
        binrep::Arch::X86,
        EngineConfig {
            workers: 4,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let profile = compiler.profile();
    let base = profile.preset(OptLevel::O2);
    let mut late = base.clone();
    // -freorder-functions is a pure machine-level (stage 3) flag; O2
    // already enables it, so *disabling* it changes only the mir key.
    let idx = profile.flag_index("-freorder-functions").unwrap();
    assert!(late[idx]);
    late[idx] = false;
    let evals = engine.evaluate_batch(&[base, late]).unwrap();
    assert!(!evals[0].ast_reused && !evals[0].lower_reused);
    assert!(
        evals[1].lower_reused,
        "late-stage-only sibling must reuse the lowered artifact"
    );
    let s = engine.stats();
    assert_eq!((s.full_compiles, s.ast_reuse, s.lower_reuse), (1, 0, 1));
}
