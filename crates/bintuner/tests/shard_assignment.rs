//! Property suite for the `StoreKey -> shard` routing of the sharded
//! (v4) fitness store.
//!
//! The routing is built on the repo's own [`minicc::StableHasher`], not
//! a std hasher, precisely so these properties can be *pinned*:
//!
//! 1. Assignment never drifts — across runs, platforms, or toolchains
//!    (the pinned-vector test would catch any change to the hash or the
//!    routing seed).
//! 2. It is total and in range for every shard count, including the
//!    degenerate `0`/`1` counts.
//! 3. Corpus-shaped key populations spread usefully over the default
//!    16 shards — no shard starves, none dominates.
//! 4. A v3 record's assigned shard is exactly where migration
//!    physically lands it, record-for-record.

use bintuner::{
    shard_for, shard_for_module, write_v3_file, FitnessStore, StoreKey, StoredFitness,
    DEFAULT_SHARD_COUNT,
};
use proptest::prelude::*;
use std::fs;
use testutil::ScratchStore;

/// v4 shard-file geometry (pinned by the store's own unit tests).
const SHARD_HEADER_LEN: u64 = 12;
const RECORD_LEN: u64 = 70;

fn key(module_hash: u64, digest: u128) -> StoreKey {
    StoreKey {
        module_hash,
        compiler: 0,
        arch: 1,
        effect_digest: digest,
    }
}

#[test]
fn pinned_assignments_never_drift() {
    // Golden vectors: computed once from the stable hash and frozen.
    // A failure here means records written by an older build would be
    // routed to different shards — a silent data-loss bug, not a
    // refactor detail.
    let cases = [
        (key(0, 0), PIN_K0),
        (key(1, 0), PIN_K1),
        (key(0, 1), PIN_K2),
        (
            key(
                0xDEAD_BEEF_CAFE_F00D,
                0x0123_4567_89AB_CDEF_0123_4567_89AB_CDEF,
            ),
            PIN_K3,
        ),
        (
            StoreKey {
                module_hash: 42,
                compiler: 1,
                arch: 2,
                effect_digest: 7,
            },
            PIN_K4,
        ),
    ];
    for (k, want) in cases {
        assert_eq!(shard_for(&k, DEFAULT_SHARD_COUNT), want, "{k:?}");
    }
    assert_eq!(shard_for_module(0, DEFAULT_SHARD_COUNT), PIN_M0);
    assert_eq!(shard_for_module(42, DEFAULT_SHARD_COUNT), PIN_M1);
    assert_eq!(
        shard_for_module(0xDEAD_BEEF_CAFE_F00D, DEFAULT_SHARD_COUNT),
        PIN_M2
    );
}

const PIN_K0: usize = 14;
const PIN_K1: usize = 11;
const PIN_K2: usize = 15;
const PIN_K3: usize = 5;
const PIN_K4: usize = 11;
const PIN_M0: usize = 9;
const PIN_M1: usize = 3;
const PIN_M2: usize = 2;

#[test]
#[ignore]
fn print_pins() {
    panic!(
        "K0={} K1={} K2={} K3={} K4={} M0={} M1={} M2={}",
        shard_for(&key(0, 0), DEFAULT_SHARD_COUNT),
        shard_for(&key(1, 0), DEFAULT_SHARD_COUNT),
        shard_for(&key(0, 1), DEFAULT_SHARD_COUNT),
        shard_for(
            &key(
                0xDEAD_BEEF_CAFE_F00D,
                0x0123_4567_89AB_CDEF_0123_4567_89AB_CDEF
            ),
            DEFAULT_SHARD_COUNT
        ),
        shard_for(
            &StoreKey {
                module_hash: 42,
                compiler: 1,
                arch: 2,
                effect_digest: 7,
            },
            DEFAULT_SHARD_COUNT
        ),
        shard_for_module(0, DEFAULT_SHARD_COUNT),
        shard_for_module(42, DEFAULT_SHARD_COUNT),
        shard_for_module(0xDEAD_BEEF_CAFE_F00D, DEFAULT_SHARD_COUNT),
    );
}

#[test]
fn corpus_keys_spread_over_the_default_shards() {
    // Key population shaped like real use: every benign corpus module,
    // 32 effect digests each (a tuning run stores one record per
    // distinct effect config).
    let mut counts = vec![0usize; DEFAULT_SHARD_COUNT];
    let mut total = 0usize;
    for bench in corpus::all_benign() {
        let m = bench.content_hash();
        for i in 0..32u128 {
            let k = key(m, i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u128::from(m));
            counts[shard_for(&k, DEFAULT_SHARD_COUNT)] += 1;
            total += 1;
        }
    }
    let mean = total / DEFAULT_SHARD_COUNT;
    assert!(mean >= 16, "corpus too small for a meaningful spread");
    for (idx, &c) in counts.iter().enumerate() {
        assert!(c > 0, "shard {idx} starved: {counts:?}");
        assert!(
            c < mean * 3,
            "shard {idx} holds {c} of {total} records (3x the mean): {counts:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn assignment_is_total_deterministic_and_in_range(
        m in any::<u64>(),
        c in any::<u8>(),
        a in any::<u8>(),
        d_hi in any::<u64>(),
        d_lo in any::<u64>(),
        n in 1usize..64,
    ) {
        // The vendored proptest has no `Arbitrary for u128`.
        let d = (u128::from(d_hi) << 64) | u128::from(d_lo);
        let k = StoreKey { module_hash: m, compiler: c, arch: a, effect_digest: d };
        let s = shard_for(&k, n);
        prop_assert!(s < n);
        prop_assert_eq!(s, shard_for(&k, n), "assignment must be pure");
        // Degenerate counts clamp to the single shard.
        prop_assert_eq!(shard_for(&k, 0), 0);
        prop_assert_eq!(shard_for(&k, 1), 0);
        let sm = shard_for_module(m, n);
        prop_assert!(sm < n);
        prop_assert_eq!(sm, shard_for_module(m, n));
        prop_assert_eq!(shard_for_module(m, 0), 0);
    }
}

proptest! {
    // File I/O per case: fewer, fatter cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn v3_records_land_in_their_assigned_shard_after_migration(
        seed in any::<u64>(),
        n in 1usize..24,
    ) {
        let entries: Vec<(StoreKey, StoredFitness)> = (0..n)
            .map(|i| {
                let m = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                (
                    key(m, (u128::from(m) << 64) | i as u128),
                    StoredFitness::new(i as f64 * 0.25, i % 7 == 0),
                )
            })
            .collect();
        let feats_module = seed.rotate_left(17) | 1;
        let feats = testutil::tiny_loop_module("shard_prop", 2).features();
        let scratch = ScratchStore::new("shard_assignment_migration");
        write_v3_file(scratch.path(), &entries, &[(feats_module, feats)]).unwrap();

        // The assignment of every v3 record, computed *before* any v4
        // file exists...
        let mut histogram = [0u64; DEFAULT_SHARD_COUNT];
        for (k, _) in &entries {
            histogram[shard_for(k, DEFAULT_SHARD_COUNT)] += 1;
        }
        histogram[shard_for_module(feats_module, DEFAULT_SHARD_COUNT)] += 1;

        let mut store = FitnessStore::load(scratch.path());
        prop_assert_eq!(store.report().valid_records, entries.len() + 1);
        store.save().unwrap(); // migrates the v3 file into a v4 directory

        // ...must match the physical placement after migration, file by
        // file (absent shard file == zero records).
        for (idx, &want) in histogram.iter().enumerate() {
            let path = scratch.path().join(format!("shard-{idx:02}.log"));
            let got = match fs::metadata(&path) {
                Ok(meta) => (meta.len() - SHARD_HEADER_LEN) / RECORD_LEN,
                Err(_) => 0,
            };
            prop_assert_eq!(got, want, "shard {} record count", idx);
        }

        // And the sharded reload serves every record from that shard.
        let mut reloaded = FitnessStore::load(scratch.path());
        let counts = reloaded.shard_entry_counts();
        for (k, v) in &entries {
            let got = reloaded.get(k);
            prop_assert_eq!(
                got.map(|g| g.fitness.to_bits()),
                Some(v.fitness.to_bits())
            );
        }
        prop_assert!(reloaded.module_features(feats_module).is_some());
        prop_assert_eq!(counts.iter().sum::<usize>(), entries.len());
    }
}
