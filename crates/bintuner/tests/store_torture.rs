//! Torture harness for the sharded (v4) fitness store.
//!
//! The store's contract under fire, pinned four ways:
//!
//! 1. **Torn appends** — a crash mid-`write_all` leaves a prefix of a
//!    shard log. Loading any byte-boundary truncation of any shard must
//!    keep exactly the clean prefix of that shard and every record of
//!    every other shard. Never a panic, never an error.
//! 2. **Compaction crashes** — a stale `shard-NN.log.tmp` (death before
//!    the rename) and a lost or corrupt `manifest` must both load to
//!    the full record set, and the next save/compact must heal the
//!    directory.
//! 3. **Concurrent stress** — readers, an appending writer, and a
//!    compactor race over one directory. No reader may ever observe a
//!    lost seed record or a phantom record.
//! 4. **Differential vs v3** — the sharded layout is a physical
//!    re-arrangement, not a semantics change: same gets, lossless
//!    migration, and bit-identical tuning trajectories whether the warm
//!    start comes from a v3 single file, a v4 directory, or a v4
//!    directory behind the service backend.

use bintuner::{
    write_v3_file, ArtifactStore, Backend, FitnessStore, SaveOutcome, ServiceConfig, StoreKey,
    StoredFitness, TuneResult, Tuner,
};
use std::path::Path;
use std::thread;
use testutil::{cached_tuner, tiny_loop_module, CrashFs, ScratchStore};

/// v4 shard-file geometry (pinned by the store's own unit tests).
const SHARD_HEADER_LEN: u64 = 12;
const RECORD_LEN: u64 = 70;

fn key(module_hash: u64, digest: u128) -> StoreKey {
    StoreKey {
        module_hash,
        compiler: 0,
        arch: 1,
        effect_digest: digest,
    }
}

/// Deterministic seed population spread over many shards: `n` fitness
/// records plus two module-features records.
fn seed_entries(n: u64) -> Vec<(StoreKey, StoredFitness)> {
    (0..n)
        .map(|i| {
            let m = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED;
            (
                key(m, (u128::from(m) << 64) | u128::from(i)),
                StoredFitness::new(i as f64 * 0.125, i % 5 == 0),
            )
        })
        .collect()
}

/// Build a saved v4 directory at `scratch` holding `entries`.
fn build_store(scratch: &ScratchStore, entries: &[(StoreKey, StoredFitness)]) {
    let mut store = FitnessStore::load(scratch.path());
    for (k, v) in entries {
        store.insert(*k, *v);
    }
    let feats = tiny_loop_module("torture_seed", 2).features();
    store.record_module_features(0x0DD5_EED1, feats);
    store.record_module_features(0x0DD5_EED2, feats);
    assert_eq!(store.save().unwrap(), SaveOutcome::Written);
    assert!(scratch.path().is_dir(), "save must migrate to a directory");
}

/// Full (forced) load: total kept records and the report that goes with
/// them.
fn loaded_records(path: &Path) -> (usize, bintuner::LoadReport) {
    let mut store = FitnessStore::load(path);
    store.len(); // force every shard
    store.modules_with_features();
    (store.report().valid_records, store.report())
}

#[test]
fn torn_shard_tails_keep_the_clean_prefix_at_every_byte_boundary() {
    let scratch = ScratchStore::new("torture_torn");
    let entries = seed_entries(40);
    build_store(&scratch, &entries);
    let fs_view = CrashFs::new(scratch.path());

    let shard_files: Vec<String> = fs_view
        .files()
        .into_iter()
        .filter(|f| f.starts_with("shard-") && f.ends_with(".log"))
        .collect();
    assert!(shard_files.len() > 8, "seed must spread: {shard_files:?}");

    let (total, intact) = loaded_records(scratch.path());
    assert_eq!(total, entries.len() + 2);
    assert_eq!(intact.dropped_bytes, 0);

    for file in &shard_files {
        let len = fs_view.len_of(file);
        assert_eq!(
            (len - SHARD_HEADER_LEN) % RECORD_LEN,
            0,
            "{file}: unaligned"
        );
        let whole = ((len - SHARD_HEADER_LEN) / RECORD_LEN) as usize;
        for cut in 0..len {
            let torn = fs_view.torn_at("torture_torn_cut", file, cut);
            let prefix = if cut < SHARD_HEADER_LEN {
                0 // torn header: the whole shard is dropped, nothing else
            } else {
                ((cut - SHARD_HEADER_LEN) / RECORD_LEN) as usize
            };
            let (got, report) = loaded_records(torn.path());
            assert_eq!(
                got,
                total - whole + prefix,
                "{file} torn at {cut}: kept {got}"
            );
            // Damage is visible in the report, never fatal.
            if cut >= SHARD_HEADER_LEN {
                assert_eq!(
                    report.dropped_bytes as u64,
                    cut - SHARD_HEADER_LEN - (prefix as u64) * RECORD_LEN
                );
            } else {
                // A torn header drops the whole file; whether it still
                // starts with our magic decides which flag it raises.
                assert!(
                    report.malformed_header || report.version_mismatch,
                    "{file} torn at {cut}"
                );
                assert_eq!(report.dropped_bytes as u64, cut);
            }
        }

        // Spot-check at the harshest cut (empty file): every record
        // routed to the *other* shards is still served by key.
        let torn = fs_view.torn_at("torture_torn_zero", file, 0);
        let mut store = FitnessStore::load(torn.path());
        let mut lost = 0usize;
        for (k, v) in &entries {
            match store.get(k) {
                Some(got) => assert_eq!(got.fitness.to_bits(), v.fitness.to_bits()),
                None => lost += 1,
            }
        }
        let fit_whole = entries
            .iter()
            .filter(|(k, _)| {
                bintuner::shard_for(k, store.shard_count()) == file[6..8].parse::<usize>().unwrap()
            })
            .count();
        assert_eq!(lost, fit_whole, "{file}: only its own records may go");
    }
}

#[test]
fn torn_artifact_log_loads_the_clean_prefix() {
    // The artifact sibling follows the same degrade-don't-panic rule.
    let scratch = ScratchStore::new("torture_torn_artifacts");
    build_store(&scratch, &seed_entries(4));
    let mut artifacts = ArtifactStore::load(scratch.path());
    let blob = minicc::codec::encode_module(&tiny_loop_module("torture_art", 3));
    for i in 0..6u128 {
        artifacts.insert_ast(
            bintuner::AstArtifactKey {
                body_hash: 0xA11F + i as u64,
                compiler: 0,
                ast_digest: i,
            },
            10.0,
            blob.clone(),
        );
    }
    assert_eq!(artifacts.save().unwrap(), SaveOutcome::Written);

    let fs_view = CrashFs::new(scratch.path());
    let full_len = fs_view.len_of("artifacts.log");
    let full = ArtifactStore::load(scratch.path()).len();
    assert_eq!(full, 6);
    let mut seen_partial = false;
    for cut in (0..full_len).step_by(7) {
        let torn = fs_view.torn_at("torture_art_cut", "artifacts.log", cut);
        let store = ArtifactStore::load(torn.path());
        assert!(store.len() <= full, "cut {cut}");
        seen_partial |= !store.is_empty() && store.len() < full;
    }
    assert!(seen_partial, "cuts must exercise genuine partial loads");
}

#[test]
fn compaction_crash_states_heal_on_the_next_save() {
    let scratch = ScratchStore::new("torture_crash_states");
    let entries = seed_entries(24);
    build_store(&scratch, &entries);
    let fs_view = CrashFs::new(scratch.path());
    let (total, _) = loaded_records(scratch.path());

    // Death between writing a compaction tmp and the rename: the stale
    // tmp must be invisible to loads and swept by the next compaction.
    let victim = fs_view
        .files()
        .into_iter()
        .find(|f| f.starts_with("shard-") && f.ends_with(".log"))
        .unwrap();
    let tmp_name = format!("{victim}.tmp");
    let stale = fs_view.with_file("torture_stale_tmp", &tmp_name, b"half-written garbage");
    assert_eq!(loaded_records(stale.path()).0, total);
    let mut store = FitnessStore::load(stale.path());
    assert_eq!(store.compact().unwrap(), SaveOutcome::Written);
    assert!(
        !stale.path().join(&tmp_name).exists(),
        "compaction must replace the stale tmp"
    );
    assert_eq!(loaded_records(stale.path()).0, total);

    // A lost manifest: geometry is rebuilt from the shard files, and the
    // next save writes a fresh manifest.
    for damaged in [
        fs_view.without_file("torture_no_manifest", "manifest"),
        fs_view.with_file("torture_bad_manifest", "manifest", b"BTFS but wrong"),
    ] {
        let mut store = FitnessStore::load(damaged.path());
        assert_eq!(store.shard_count(), 16, "geometry from shard headers");
        store.len();
        assert_eq!(store.report().valid_records, total);
        for (k, v) in &entries {
            assert_eq!(store.get(k).unwrap().fitness.to_bits(), v.fitness.to_bits());
        }
        assert_eq!(store.save().unwrap(), SaveOutcome::Written);
        drop(store);
        // Healed: the manifest decodes again and nothing was lost.
        let mut healed = FitnessStore::load(damaged.path());
        healed.len();
        assert!(!healed.report().malformed_header);
        assert_eq!(healed.report().valid_records, total);
    }
}

#[test]
fn concurrent_readers_writer_and_compactor_lose_nothing() {
    let scratch = ScratchStore::new("torture_concurrent");
    let seeds = seed_entries(32);
    build_store(&scratch, &seeds);
    let dir = scratch.path_buf();

    const WRITES: u64 = 16;
    let writer_key = |i: u64| key(0xA0A0_0000 ^ i, u128::from(i) | (1 << 100));

    thread::scope(|s| {
        let writer = s.spawn(|| {
            for i in 0..WRITES {
                let mut store = FitnessStore::load(&dir);
                store.insert(writer_key(i), StoredFitness::new(i as f64, false));
                // Contended shards are skipped, never corrupted: retry
                // until this record is durably appended.
                while store.save().unwrap() == SaveOutcome::SkippedLocked {
                    thread::yield_now();
                }
            }
        });
        let compactor = s.spawn(|| {
            for _ in 0..8 {
                let mut store = FitnessStore::load(&dir);
                store.len();
                store.compact().unwrap(); // SkippedLocked is fine
                thread::yield_now();
            }
        });
        let readers: Vec<_> = (0..2)
            .map(|_| {
                s.spawn(|| {
                    for _ in 0..30 {
                        let mut store = FitnessStore::load(&dir);
                        // Seed records can never disappear...
                        for (k, v) in &seeds {
                            let got = store.get(k).expect("lost a seed record");
                            assert_eq!(got.fitness.to_bits(), v.fitness.to_bits());
                        }
                        // ...and nothing appears that nobody wrote.
                        for (k, _) in store.entries() {
                            let known = seeds.iter().any(|(s, _)| *s == k)
                                || (0..WRITES).any(|i| writer_key(i) == k);
                            assert!(known, "phantom record {k:?}");
                        }
                        thread::yield_now();
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        compactor.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    });

    // Quiescent state: exactly the seeds plus every confirmed write.
    let mut store = FitnessStore::load(&dir);
    assert_eq!(store.len(), seeds.len() + WRITES as usize);
    for i in 0..WRITES {
        assert_eq!(
            store.get(&writer_key(i)).unwrap().fitness.to_bits(),
            (i as f64).to_bits()
        );
    }
}

#[test]
fn sharded_gets_are_identical_to_v3_gets() {
    let entries = seed_entries(48);
    let feats = tiny_loop_module("torture_diff", 2).features();

    let v3 = ScratchStore::new("torture_diff_v3");
    write_v3_file(v3.path(), &entries, &[(0xFEA7, feats)]).unwrap();
    let v4 = ScratchStore::snapshot_of("torture_diff_v4", v3.path());
    let mut migrated = FitnessStore::load(v4.path());
    assert_eq!(migrated.save().unwrap(), SaveOutcome::Written);
    assert!(v4.path().is_dir());
    drop(migrated);

    let mut legacy = FitnessStore::load(v3.path());
    let mut sharded = FitnessStore::load(v4.path());
    for (k, _) in &entries {
        let a = legacy.get(k).map(|v| (v.fitness.to_bits(), v.failed));
        let b = sharded.get(k).map(|v| (v.fitness.to_bits(), v.failed));
        assert_eq!(a, b, "{k:?}");
        assert!(a.is_some());
    }
    for miss in [key(0xDEAD, 0), key(1, 99), key(u64::MAX, u128::MAX)] {
        assert_eq!(legacy.get(&miss), None);
        assert_eq!(sharded.get(&miss), None);
    }
    assert_eq!(legacy.len(), sharded.len());
    assert_eq!(
        legacy.module_features(0xFEA7).is_some(),
        sharded.module_features(0xFEA7).is_some()
    );
    // Migration is lossless to the record.
    assert_eq!(
        legacy.report().valid_records,
        sharded.report().valid_records
    );
}

/// Trajectory-and-telemetry equality: the strongest form of "the store
/// layout changed nothing about the search".
fn assert_same_run(a: &TuneResult, b: &TuneResult, what: &str) {
    assert_eq!(a.best_flags, b.best_flags, "{what}: best genome");
    assert_eq!(
        a.best_ncd.to_bits(),
        b.best_ncd.to_bits(),
        "{what}: fitness"
    );
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(a.stopped_by, b.stopped_by, "{what}: stop reason");
    assert_eq!(a.db.rows().len(), b.db.rows().len(), "{what}: history");
    for (x, y) in a.db.rows().iter().zip(b.db.rows()) {
        assert_eq!(x.flags, y.flags, "{what}: iter {}", x.iteration);
        assert_eq!(
            x.ncd.to_bits(),
            y.ncd.to_bits(),
            "{what}: iter {}",
            x.iteration
        );
        assert_eq!(x.cache_hit, y.cache_hit, "{what}: iter {}", x.iteration);
        assert_eq!(
            x.persistent_hit, y.persistent_hit,
            "{what}: iter {}",
            x.iteration
        );
        assert_eq!(x.ast_reused, y.ast_reused, "{what}: iter {}", x.iteration);
        assert_eq!(
            x.lower_reused, y.lower_reused,
            "{what}: iter {}",
            x.iteration
        );
    }
    assert_eq!(
        a.engine_stats.evaluations, b.engine_stats.evaluations,
        "{what}"
    );
    assert_eq!(
        a.engine_stats.cache_hits, b.engine_stats.cache_hits,
        "{what}"
    );
    assert_eq!(
        a.engine_stats.persistent_hits, b.engine_stats.persistent_hits,
        "{what}"
    );
    assert_eq!(a.engine_stats.compiles, b.engine_stats.compiles, "{what}");
    assert_eq!(
        a.engine_stats.full_compiles, b.engine_stats.full_compiles,
        "{what}"
    );
    assert_eq!(
        a.engine_stats.store_ast_hits, b.engine_stats.store_ast_hits,
        "{what}"
    );
    assert_eq!(
        a.engine_stats.store_lower_hits, b.engine_stats.store_lower_hits,
        "{what}"
    );
}

#[test]
fn warm_tune_is_bit_identical_from_v3_file_v4_dir_and_service_backend() {
    let module = tiny_loop_module("torture_warm", 6);

    // Fill a v4 store with one cold run.
    let filled = ScratchStore::new("torture_warm_fill");
    Tuner::new(cached_tuner(60, Some(&filled)))
        .tune(&module)
        .unwrap();
    assert!(filled.path().is_dir());

    // Rebuild the identical record set as a legacy v3 single file, and
    // strip the artifact sibling from the v4 copies so all three warm
    // runs see the same bytes of warm-start state.
    let fs_view = CrashFs::new(filled.path());
    let v4_a = fs_view.without_file("torture_warm_v4a", "artifacts.log");
    let v4_b = fs_view.without_file("torture_warm_v4b", "artifacts.log");
    let mut filled_store = FitnessStore::load(filled.path());
    let entries = filled_store.entries();
    let features = filled_store.modules_with_features();
    assert!(!entries.is_empty());
    let v3 = ScratchStore::new("torture_warm_v3");
    write_v3_file(v3.path(), &entries, &features).unwrap();

    let from_v4 = Tuner::new(cached_tuner(60, Some(&v4_a)))
        .tune(&module)
        .unwrap();
    let from_v3 = Tuner::new(cached_tuner(60, Some(&v3)))
        .tune(&module)
        .unwrap();
    assert!(from_v4.engine_stats.persistent_hits > 0);
    assert_same_run(&from_v4, &from_v3, "v4 dir vs v3 file");

    // And the deployment shape changes nothing either: the same sharded
    // store behind the service backend replays the same run.
    let service = Tuner::new(bintuner::TunerConfig {
        backend: Backend::Service(ServiceConfig::default()),
        ..cached_tuner(60, Some(&v4_b))
    })
    .tune(&module)
    .unwrap();
    assert_same_run(&from_v4, &service, "in-process vs service");
}

#[test]
fn squatted_shard_fails_the_save_with_an_error_and_keeps_every_durable_record() {
    // 5. **ENOSPC mid-append** — the portable stand-in is a directory
    //    squatting a shard log's path: every append and every rewrite
    //    rename against it fails with a genuine `io::Error`, exactly
    //    like a full disk. The contract: the save *reports* the error
    //    (it never panics and never lies `Written`), the in-memory
    //    state survives, and every record that was durable before the
    //    failure is still served afterwards.
    let scratch = ScratchStore::new("torture_enospc");
    let entries = seed_entries(24);
    build_store(&scratch, &entries);
    let fs_view = CrashFs::new(scratch.path());
    let (total, _) = loaded_records(scratch.path());

    // Squat a shard that never materialized (24 seeds over 16 shards
    // leave gaps), so the squat itself destroys no durable data and
    // "clean prefix" means *everything that was there*.
    let count = FitnessStore::load(scratch.path()).shard_count();
    let empty_idx = (0..count)
        .find(|i| !scratch.path().join(format!("shard-{i:02}.log")).exists())
        .expect("the seed population must leave an empty shard");
    let poison_key = (0..4096u128)
        .map(|d| key(0xE05_0000, d))
        .find(|k| bintuner::shard_for(k, count) == empty_idx)
        .expect("4096 digests must hit every shard");

    let damaged = fs_view.with_dir("torture_enospc_squat", &format!("shard-{empty_idx:02}.log"));
    let mut store = FitnessStore::load(damaged.path());
    store.insert(poison_key, StoredFitness::new(0.5, false));
    store
        .save()
        .expect_err("appending into a squatted shard path must error, not lie");
    // The failed save leaves the in-memory store whole — the run that
    // owns it degrades to memory and keeps going.
    assert_eq!(
        store.get(&poison_key).unwrap().fitness.to_bits(),
        0.5f64.to_bits(),
        "in-memory state survives the failed save"
    );

    // On disk: the durable prefix is exactly intact — every seed record
    // served, the never-durable poison record absent, the load clean.
    let (kept, _) = loaded_records(damaged.path());
    assert_eq!(kept, total, "no pre-existing record may be lost");
    let mut reloaded = FitnessStore::load(damaged.path());
    for (k, v) in &entries {
        assert_eq!(
            reloaded.get(k).unwrap().fitness.to_bits(),
            v.fitness.to_bits(),
            "clean prefix record {k:?}"
        );
    }
    assert_eq!(
        reloaded.get(&poison_key),
        None,
        "the lost write stayed lost"
    );
}

#[test]
fn persist_failure_degrades_the_run_to_memory_not_to_an_error() {
    // The same failure through the tuner: a run whose final persist
    // hits the unwritable path must still return `Ok` — fitness
    // results owe nothing to the persistence plane — while flagging
    // `PersistSummary::degraded` so operators see the store fell back
    // to memory. The warm-start data that was already durable keeps
    // serving duplicate runs as pure cache hits.
    let scratch = ScratchStore::new("torture_degrade_run");
    let module = tiny_loop_module("torture_degrade_mod", 6);
    let clean = Tuner::new(cached_tuner(40, Some(&scratch)))
        .tune(&module)
        .expect("warm-up run");
    let summary = clean.persistence.as_ref().expect("store-backed run");
    assert!(!summary.degraded, "healthy save: {:?}", summary.save_error);
    assert!(
        clean.engine_stats.compiles > 0,
        "the warm-up really compiled"
    );
    let (total_before, _) = loaded_records(scratch.path());

    // Squat the manifest: shard appends still land, but the manifest
    // generation bump — part of every record-writing save — fails, so
    // the save reports an error while all prior bytes stay durable.
    let damaged = CrashFs::new(scratch.path()).with_dir("torture_degrade_squat", "manifest");
    let degraded = Tuner::new(bintuner::TunerConfig {
        seed: 0xDE64,
        ..cached_tuner(40, Some(&damaged))
    })
    .tune(&module)
    .expect("a failed persist must not fail the run");
    let summary = degraded.persistence.as_ref().expect("store-backed run");
    assert!(summary.degraded, "the failed save must be flagged");
    assert!(
        summary.save_error.is_some(),
        "the io::Error is carried, not swallowed"
    );

    // Clean prefix: the warm-up's records are all still served — a
    // duplicate of the original run is a pure cache hit, zero compiles.
    let (kept, _) = loaded_records(damaged.path());
    assert!(kept >= total_before, "kept {kept} of {total_before}");
    let replay = Tuner::new(cached_tuner(40, Some(&damaged)))
        .tune(&module)
        .expect("replay on the damaged store");
    assert_eq!(
        replay.engine_stats.compiles, 0,
        "the durable prefix serves the replay entirely from the store"
    );
    assert!(replay.engine_stats.persistent_hits > 0);
}
