//! The process farm end to end: pre-forked worker *processes* (re-execed
//! from the `bintuner` binary, connecting back over TCP or Unix sockets)
//! must be bit-identical to the in-process engine — the same determinism
//! contract the thread-client suite (`service_vs_local.rs`) pins, now
//! across real address spaces, plus the farm-only behaviors: worker
//! death mid-run (SIGKILL, not just a polite disconnect), respawned
//! workers absorbed by the reconnect acceptor, and the adaptive cost
//! model's telemetry flowing end to end.

use bintuner::service::ServiceHandle;
use bintuner::{
    Backend, FaultPlan, MissExecutor, ProcessFarm, ServiceConfig, TransportKind, TuneResult, Tuner,
    TunerConfig, WorkerMode,
};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};
use testutil::{cached_tuner, small_tuner, tiny_loop_module, ScratchStore};

/// The worker binary every farm in this suite re-execs.
fn worker_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_bintuner"))
}

fn process_farm() -> WorkerMode {
    WorkerMode::Processes(ProcessFarm {
        worker_binary: Some(worker_binary()),
        ..ProcessFarm::default()
    })
}

fn process_config(max_evals: usize, cfg: ServiceConfig) -> TunerConfig {
    TunerConfig {
        backend: Backend::Service(cfg),
        ..small_tuner(max_evals)
    }
}

/// The determinism contract, trajectory included (`wall_seconds` is the
/// one field wall-clock may touch).
fn assert_identical_runs(a: &TuneResult, b: &TuneResult, what: &str) {
    assert_eq!(a.best_flags, b.best_flags, "{what}: best genome");
    assert_eq!(
        a.best_ncd.to_bits(),
        b.best_ncd.to_bits(),
        "{what}: best fitness"
    );
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(a.stopped_by, b.stopped_by, "{what}: stop reason");
    assert_eq!(a.db.rows().len(), b.db.rows().len(), "{what}: history");
    for (x, y) in a.db.rows().iter().zip(b.db.rows()) {
        assert_eq!(x.flags, y.flags, "{what}: iteration {}", x.iteration);
        assert_eq!(
            x.ncd.to_bits(),
            y.ncd.to_bits(),
            "{what}: iteration {}",
            x.iteration
        );
        assert_eq!(x.cache_hit, y.cache_hit);
        assert_eq!(x.persistent_hit, y.persistent_hit);
    }
    assert_eq!(a.engine_stats.evaluations, b.engine_stats.evaluations);
    assert_eq!(a.engine_stats.compiles, b.engine_stats.compiles);
    assert_eq!(a.engine_stats.cache_hits, b.engine_stats.cache_hits);
}

#[test]
fn process_farm_is_bit_identical_on_both_stream_transports() {
    let bench = corpus::by_name("462.libquantum").unwrap();
    let local = Tuner::new(small_tuner(60)).tune(&bench.module).unwrap();

    for (transport, clients) in [(TransportKind::Tcp, 2), (TransportKind::Unix, 2)] {
        let run = Tuner::new(process_config(
            60,
            ServiceConfig {
                clients,
                transport,
                workers: process_farm(),
                fault: None,
                liveness: Default::default(),
            },
        ))
        .tune(&bench.module)
        .unwrap();
        assert_identical_runs(&local, &run, &format!("process workers over {transport}"));
        let summary = run.service.as_ref().expect("service telemetry");
        assert!(summary.process_workers);
        assert_eq!(summary.transport, transport);
        assert_eq!(summary.clients, clients);
        assert_eq!(summary.clients_lost, 0, "no worker died");
        assert_eq!(summary.workers_killed, 0, "every worker drained cleanly");
        assert!(summary.shards > 0);
        // The adaptive cost model ran on real farm wall times.
        assert!(summary.cost_observations > 0);
        assert!(
            !summary.shard_sizes.is_empty(),
            "per-batch shard sizes recorded"
        );
    }
}

#[test]
fn killing_a_worker_process_mid_run_changes_nothing() {
    let bench = corpus::by_name("473.astar").unwrap();
    let local = Tuner::new(small_tuner(50)).tune(&bench.module).unwrap();
    let killed = Tuner::new(process_config(
        50,
        ServiceConfig {
            clients: 2,
            transport: TransportKind::Tcp,
            workers: process_farm(),
            fault: Some(FaultPlan::crash(1, 1)),
            liveness: Default::default(),
        },
    ))
    .tune(&bench.module)
    .unwrap();
    assert_identical_runs(&local, &killed, "kill-one-worker-process");
    let summary = killed.service.as_ref().expect("service telemetry");
    assert!(summary.process_workers);
    assert_eq!(summary.clients_lost, 1, "exactly the planned death");
}

#[test]
fn process_farm_persists_stage_artifacts_for_warm_starts() {
    // Farm workers compile in their own address spaces, so their stage
    // artifacts exist nowhere the persistent store can see unless the
    // merge barrier ships them home. Before that fold, a warm start
    // behind `WorkerMode::Processes` silently reran full pipelines the
    // in-process engine would have served from the artifact store. A
    // *renamed* module makes every fitness key miss (keys hash the
    // module content, name included) while the body-hash-keyed
    // artifacts transfer — so the warm run's store hits below are
    // served exclusively by artifacts the cold run persisted.
    let local_store = ScratchStore::new("farm_artifacts_local");
    let farm_store = ScratchStore::new("farm_artifacts_farm");
    let first = tiny_loop_module("farm_artifacts_a", 6);
    let renamed = tiny_loop_module("farm_artifacts_b", 6);
    let with_farm = |store: &ScratchStore| TunerConfig {
        backend: Backend::Service(ServiceConfig {
            clients: 2,
            transport: TransportKind::Unix,
            workers: process_farm(),
            fault: None,
            liveness: Default::default(),
        }),
        ..cached_tuner(90, Some(store))
    };

    let cold_farm = Tuner::new(with_farm(&farm_store)).tune(&first).unwrap();
    Tuner::new(cached_tuner(90, Some(&local_store)))
        .tune(&first)
        .unwrap();
    let summary = cold_farm.service.as_ref().expect("service telemetry");
    assert!(summary.process_workers);
    assert!(
        summary.merged_artifacts > 0,
        "the farm never shipped a stage artifact through the merge barrier"
    );

    let warm_local = Tuner::new(cached_tuner(90, Some(&local_store)))
        .tune(&renamed)
        .unwrap();
    let warm_farm = Tuner::new(with_farm(&farm_store)).tune(&renamed).unwrap();
    assert_identical_runs(&warm_local, &warm_farm, "warm renamed module");
    // All fitness keys miss: the store hits are pure artifact traffic.
    assert_eq!(warm_farm.engine_stats.persistent_hits, 0);
    assert_eq!(
        warm_farm.engine_stats.store_ast_hits, warm_local.engine_stats.store_ast_hits,
        "backends disagree on persisted-AST hits"
    );
    assert_eq!(
        warm_farm.engine_stats.store_lower_hits, warm_local.engine_stats.store_lower_hits,
        "backends disagree on persisted-binary hits"
    );
    assert!(
        warm_local.engine_stats.store_ast_hits > 0,
        "the differential is vacuous without at least one store hit"
    );
    assert!(
        warm_farm.engine_stats.full_compiles < cold_farm.engine_stats.full_compiles,
        "warm farm run reran every full pipeline"
    );
}

/// Deterministic pseudo-random genome batch (pure function of the
/// arguments — the same batch always evaluates to the same fitnesses).
fn batch(n_flags: usize, n: usize, salt: usize) -> Vec<Vec<bool>> {
    (0..n)
        .map(|i| {
            (0..n_flags)
                .map(|j| (i * 31 + j * 7 + salt * 13).is_multiple_of(5))
                .collect()
        })
        .collect()
}

/// Drive the farm directly (no GA) so the chaos hooks are controllable:
/// SIGKILL a worker mid-run, respawn one, and check both the results and
/// the reconnect/cost telemetry.
#[test]
fn sigkill_and_respawn_are_absorbed_without_changing_results() {
    let bench = corpus::by_name("429.mcf").unwrap();
    let kind = minicc::CompilerKind::Gcc;
    let arch = binrep::Arch::X86;
    let n_flags = minicc::CompilerProfile::new(kind).n_flags();
    let cfg = ServiceConfig {
        clients: 2,
        transport: TransportKind::Tcp,
        workers: process_farm(),
        fault: None,
        liveness: Default::default(),
    };

    // Reference results from a healthy farm.
    let reference: Vec<Vec<u64>> = {
        let handle = ServiceHandle::launch(&cfg, kind, &bench.module, arch, true).unwrap();
        let out = (0..3)
            .map(|salt| {
                handle
                    .execute(&batch(n_flags, 10, salt))
                    .unwrap()
                    .into_iter()
                    .map(|r| r.fitness.to_bits())
                    .collect()
            })
            .collect();
        let (summary, _) = handle.finish();
        assert_eq!(summary.clients_lost, 0);
        out
    };

    // Chaos run: kill worker 0 after the first batch, respawn a
    // replacement, and keep evaluating the same batches.
    let handle = ServiceHandle::launch(&cfg, kind, &bench.module, arch, true).unwrap();
    let first: Vec<u64> = handle
        .execute(&batch(n_flags, 10, 0))
        .unwrap()
        .into_iter()
        .map(|r| r.fitness.to_bits())
        .collect();
    assert_eq!(first, reference[0]);

    assert!(handle.kill_worker(0), "worker 0 was alive to kill");
    assert!(!handle.kill_worker(0), "a worker dies once");
    let second: Vec<u64> = handle
        .execute(&batch(n_flags, 10, 1))
        .unwrap()
        .into_iter()
        .map(|r| r.fitness.to_bits())
        .collect();
    assert_eq!(second, reference[1], "SIGKILL mid-run moved a result");

    let respawned_id = handle.spawn_worker().expect("respawn a worker");
    assert!(respawned_id >= 2, "ids continue past the initial farm");
    // Absorption is evented: the joiner is admitted while batches drain
    // the event queue. Loop until the telemetry shows it landed.
    let mut rounds = 0;
    while handle.stats().expect("live server").clients_joined == 0 {
        rounds += 1;
        assert!(rounds < 200, "respawned worker never absorbed");
        let again: Vec<u64> = handle
            .execute(&batch(n_flags, 10, 2))
            .unwrap()
            .into_iter()
            .map(|r| r.fitness.to_bits())
            .collect();
        assert_eq!(again, reference[2], "reconnect mid-run moved a result");
    }

    let (summary, _) = handle.finish();
    assert!(summary.process_workers);
    assert_eq!(summary.clients_joined, 1, "the respawn was absorbed");
    assert!(summary.clients_lost >= 1, "the SIGKILL was observed");
    assert!(summary.workers_killed >= 1, "the kill hook counted");
    assert!(summary.cost_observations > 0);
}

/// The headline bugfix, pinned at the handle level: SIGKILL *every*
/// worker mid-run and the next batch must come back as a clean
/// [`genetic::EvalAbort`] with the transport cause recorded — never a
/// `panic!` (the pre-fix behavior, which would have taken a whole
/// multi-tenant daemon down with one lost farm).
#[test]
fn killing_every_worker_fails_the_batch_not_the_process() {
    let module = tiny_loop_module("farm_total_loss", 5);
    let kind = minicc::CompilerKind::Gcc;
    let n_flags = minicc::CompilerProfile::new(kind).n_flags();
    let cfg = ServiceConfig {
        clients: 2,
        transport: TransportKind::Unix,
        workers: process_farm(),
        fault: None,
        liveness: Default::default(),
    };
    let handle = ServiceHandle::launch(&cfg, kind, &module, binrep::Arch::X86, true).unwrap();
    // A healthy batch first, proving the farm really was up.
    assert_eq!(handle.execute(&batch(n_flags, 8, 0)).unwrap().len(), 8);
    assert!(handle.kill_worker(0), "worker 0 was alive to kill");
    assert!(handle.kill_worker(1), "worker 1 was alive to kill");
    let abort = handle
        .execute(&batch(n_flags, 8, 1))
        .expect_err("a farm with every worker dead must abort the batch, not the process");
    assert!(
        std::error::Error::source(&abort).is_some(),
        "the abort chains its transport cause: {abort}"
    );
    let cause = handle
        .take_failure()
        .expect("the failure is recorded for take_failure");
    assert!(
        matches!(
            *cause,
            evald::EvaldError::NoClients | evald::EvaldError::Disconnected
        ),
        "total worker loss surfaces as a client-loss error, got {cause}"
    );
    // Dropping the dead handle must still tear down cleanly (join every
    // thread, reap both corpses) — returning from this test is the
    // assertion.
    drop(handle);
}

#[test]
fn process_workers_refuse_the_channel_transport() {
    let bench = corpus::by_name("429.mcf").unwrap();
    let err = ServiceHandle::launch(
        &ServiceConfig {
            clients: 1,
            transport: TransportKind::Channel,
            workers: process_farm(),
            fault: None,
            liveness: Default::default(),
        },
        minicc::CompilerKind::Gcc,
        &bench.module,
        binrep::Arch::X86,
        true,
    )
    .unwrap_err();
    assert!(
        matches!(err, evald::EvaldError::Protocol(_)),
        "channel across an exec must be a config error, got {err}"
    );
}

/// Child half of `warm_start_survives_sigkill_during_save`: tune with a
/// persistent store in a tight loop until killed. Rotating module names
/// keeps every save writing fresh records, so a SIGKILL at an arbitrary
/// instant regularly lands inside a store save or migration.
#[test]
#[ignore = "child process of warm_start_survives_sigkill_during_save"]
fn churn_child_tunes_forever() {
    let Ok(dir) = std::env::var("BINTUNER_CHURN_STORE") else {
        return;
    };
    for i in 0usize.. {
        let module = tiny_loop_module(&format!("churn_{}", i % 4), 3 + i % 4);
        let cfg = TunerConfig {
            cache_path: Some(PathBuf::from(&dir)),
            ..small_tuner(30)
        };
        Tuner::new(cfg).tune(&module).expect("churn child tune");
    }
}

/// Warm start under churn: a tune killed by SIGKILL at an arbitrary
/// point — including mid-save and mid-migration — must leave a store
/// the next run can use, cold-start-or-better, never an error.
#[test]
fn warm_start_survives_sigkill_during_save() {
    let store = ScratchStore::new("farm_churn");
    let module = tiny_loop_module("churn_0", 3);
    let reference = Tuner::new(small_tuner(30)).tune(&module).unwrap();

    for round in 0..4u64 {
        let mut child = Command::new(std::env::current_exe().unwrap())
            .args(["--exact", "churn_child_tunes_forever", "--ignored"])
            .env("BINTUNER_CHURN_STORE", store.path())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn churn child");
        // Let it get at least one save in flight, staggering the kill
        // point round to round so it lands in different save phases.
        let deadline = Instant::now() + Duration::from_secs(20);
        while !store.path().exists() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        std::thread::sleep(Duration::from_millis(40 + round * 230));
        if let Some(status) = child.try_wait().unwrap() {
            // It must die by our hand, not by a crash of its own.
            let mut err = String::new();
            use std::io::Read as _;
            child.stderr.take().unwrap().read_to_string(&mut err).ok();
            panic!("churn child exited on its own ({status}): {err}");
        }
        child.kill().unwrap(); // SIGKILL on unix
        child.wait().unwrap();
    }

    // Rerun after the crashes: whatever state the kills left behind must
    // load (or cold-start) and replay the reference trajectory exactly.
    let warm_cfg = || TunerConfig {
        cache_path: Some(store.path_buf()),
        ..small_tuner(30)
    };
    let first = Tuner::new(warm_cfg()).tune(&module).unwrap();
    assert_eq!(first.best_flags, reference.best_flags, "after-crash rerun");
    assert_eq!(first.best_ncd.to_bits(), reference.best_ncd.to_bits());
    assert!(
        first.engine_stats.compiles <= reference.engine_stats.compiles,
        "cold-start-or-better: {} > {}",
        first.engine_stats.compiles,
        reference.engine_stats.compiles
    );
    assert_eq!(first.persistence.as_ref().unwrap().save_error, None);

    // That rerun saved cleanly, so a second one must be genuinely warm.
    let second = Tuner::new(warm_cfg()).tune(&module).unwrap();
    assert!(second.engine_stats.persistent_hits > 0);
    assert_eq!(second.best_flags, reference.best_flags);
    assert!(second.engine_stats.compiles < reference.engine_stats.compiles);
}

#[test]
fn every_corpus_module_round_trips_the_codec() {
    // The job payload must be able to carry any module the reproduction
    // tunes — the whole benign corpus, bit-exactly.
    for bench in corpus::all_benign() {
        let bytes = minicc::codec::encode_module(&bench.module);
        let decoded =
            minicc::codec::decode_module(&bytes).unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert_eq!(decoded, bench.module, "{}", bench.name);
    }
}

#[test]
fn the_binary_without_the_worker_flag_is_a_usage_error() {
    let out = std::process::Command::new(worker_binary())
        .output()
        .expect("run the bintuner binary");
    assert_eq!(out.status.code(), Some(2));
    assert!(!out.stderr.is_empty(), "usage goes to stderr");
}
