//! The batch fitness engine — paper Figure 4's client side, built to
//! scale.
//!
//! BinTuner's architecture is client–server: the GA (server) fans
//! compile-and-measure work out to clients, because fitness evaluation
//! (compile + NCD) dominates wall-clock (the paper's Table 3 is entirely
//! about iteration cost). [`FitnessEngine`] is that client side as an
//! in-process worker pool:
//!
//! * **Batching** — it implements [`genetic::Evaluator`], so the GA hands
//!   it whole generations at once instead of one individual at a time.
//! * **Parallelism** — unique genomes in a batch are compiled and scored
//!   across a configurable pool of scoped threads ([`std::thread::scope`];
//!   no runtime dependency).
//! * **Caching** — results are memoized at three tiers: behind the exact
//!   repaired flag vector, behind the vector's resolved
//!   [`minicc::EffectConfig`], and — when the engine is built with
//!   [`FitnessEngine::with_store`] — behind a *persistent* cross-run
//!   [`FitnessStore`] keyed by `(module content hash, compiler profile,
//!   arch, effect digest)`. The emitted binary is a pure function of
//!   `(module, effect config, arch)`, so two *different* flag vectors
//!   that resolve to the same effects (common: most of the >100 flags are
//!   no-ops for any given module) share one compile + NCD score, and a
//!   re-tuned module starts warm from prior runs' compiles. Cache hits of
//!   any tier still *charge* the modelled compile cost, keeping the GA's
//!   time-budget accounting identical to a cache-free run — only measured
//!   wall-clock shrinks, which is what makes a warm run converge to the
//!   same best genome as a cold one.
//! * **Artifact reuse (tier 0)** — even a genuine miss rarely needs the
//!   *whole* pipeline. The compile is staged
//!   ([`Compiler::stage_ast`] → [`Compiler::stage_lower`] →
//!   [`Compiler::stage_mir`]) and the expensive early artifacts are
//!   cached under their [`minicc::StageKeys`] projections: optimized
//!   ASTs by `AstStageKey` digest, lowered-but-unoptimized binaries by
//!   the `(AstStageKey, LowerStageKey)` digest pair. A generation whose
//!   genomes differ only in late-stage flags (most mutations — paper
//!   Figure 7's long tail) shares the early stages and reruns only the
//!   cheap tail; [`EngineStats::full_compiles`] counts the misses that
//!   truly ran everything. Artifact cache contents and telemetry are
//!   governed by a *deterministic membership model* updated only in the
//!   single-threaded partition/commit phases, so reuse classification is
//!   identical at any worker count and on either evaluation backend
//!   (in-process or service) — worker threads only fill in artifact
//!   *values*, which are pure functions of their keys.
//! * **Shared baseline** — the `-O0` baseline is compiled exactly once and
//!   its compressed length is reused for every NCD score.
//! * **Hoisted validation** — `Module::validate` runs once per engine
//!   (the baseline compile) and constraint checking once per genome
//!   during partition; the miss execution path drives the pipeline
//!   stages directly instead of re-validating module and flags inside
//!   every compile.
//!
//! Failed compiles (flag vectors that defeat repair) are not fatal: they
//! score a fixed penalty fitness and are counted as constraint violations
//! in [`EngineStats`], so one bad genome can't abort a long tuning run.
//!
//! The *other* deployment shape — the paper's actual client–server farm
//! — plugs in underneath via [`MissExecutor`]: the engine still owns
//! partition, caches, store and stats, but ships the deduplicated miss
//! list to the `evald` service instead of its local pool (see
//! `bintuner::service`). Because everything except the raw
//! compile+score moves with the engine, the two shapes are bit-identical
//! by construction — including the stage-reuse telemetry, which is
//! classified at partition time from the membership model and never
//! depends on where the compiles physically ran.

use crate::store::{
    arch_tag, ArtifactStore, AstArtifactKey, FitnessStore, FlagBits, LowerArtifactKey, StoreKey,
    StoredFitness,
};
use binrep::{Arch, Binary};
use genetic::{Eval, EvalAbort, Evaluator};
use lzc::NcdBaseline;
use minicc::ast::Module;
use minicc::{Compiler, EffectConfig, StageKeys};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Fitness assigned to a genome whose compile fails constraint checking.
/// NCD is non-negative, so any successfully compiled genome outranks it.
pub const FAILED_COMPILE_PENALTY: f64 = -1.0;

/// Worker-pool and artifact-cache configuration for [`FitnessEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads per batch. `0` means auto (available parallelism,
    /// capped at 8). `1` evaluates sequentially on the calling thread.
    /// Ignored when a [`MissExecutor`] is installed — the executor's farm
    /// is the parallelism then.
    pub workers: usize,
    /// Tier-0 stage-artifact cache (see module docs). `true` (the
    /// default) shares optimized-AST and lowered-binary artifacts across
    /// misses whose early-stage projections agree; `false` runs every
    /// miss through the full pipeline. Fitness results are bit-identical
    /// either way — only wall-clock and the stage-reuse telemetry
    /// change.
    pub artifact_cache: bool,
    /// Eviction bound on cached optimized-AST artifacts (stage 1).
    /// Oldest-reserved entries are evicted first, deterministically, at
    /// batch commit.
    pub max_ast_artifacts: usize,
    /// Eviction bound on cached lowered-binary artifacts (stage 2).
    pub max_lower_artifacts: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: 0,
            artifact_cache: true,
            max_ast_artifacts: 512,
            max_lower_artifacts: 2048,
        }
    }
}

/// The computed outcome of one dispatched miss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissResult {
    /// Fitness, bit-exact as the worker computed it.
    pub fitness: f64,
    /// Whether the compile failed constraint checking (scored
    /// [`FAILED_COMPILE_PENALTY`]).
    pub failed: bool,
    /// Measured wall-clock seconds on the worker (telemetry).
    pub wall_seconds: f64,
}

/// A pluggable backend for a batch's deduplicated miss list — the seam
/// the evaluation service plugs into.
///
/// The engine keeps everything that makes runs reproducible and cheap —
/// constraint pre-screening, all cache tiers, store recording,
/// stats — and hands an executor only the genomes that genuinely need a
/// compile. An executor must return exactly one [`MissResult`] per miss,
/// in order, and must be a pure function of each genome (bit-identical
/// fitness wherever it runs): that is what makes a service-backed run
/// replay the in-process trajectory exactly.
///
/// An executor that loses its entire substrate mid-batch (e.g. every
/// farm worker dies) returns [`EvalAbort`] instead of panicking: the
/// engine propagates it out of [`Evaluator::evaluate_batch`] so the GA
/// run fails cleanly and the hosting process (a one-shot CLI or the
/// tuning daemon) decides what dies. A failed *compile* is never an
/// abort — it scores [`FAILED_COMPILE_PENALTY`] like any other result.
pub trait MissExecutor: Sync {
    /// Compile + score every miss, preserving order.
    ///
    /// # Errors
    ///
    /// [`EvalAbort`] when the executor can never produce this batch's
    /// results (the evaluation substrate itself is gone).
    fn execute(&self, misses: &[Vec<bool>]) -> Result<Vec<MissResult>, EvalAbort>;
}

impl EngineConfig {
    /// The concrete worker count (resolving `0` to auto).
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    }
}

/// Cumulative engine telemetry (drives the engine-scaling and
/// staged-compile benches and the cache-hit columns of the iteration
/// database).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Total genome evaluations requested (including cache hits).
    pub evaluations: usize,
    /// Evaluations served from the *in-run* memoization cache (within-
    /// and across-batch duplicates first computed by this engine).
    pub cache_hits: usize,
    /// Evaluations whose result was first served from the persistent
    /// cross-run store — each one a real compile some earlier run paid
    /// for. Repeat accesses to the same entry count as in-run
    /// `cache_hits`, so this is exactly the number of compiles
    /// warm-starting saved.
    pub persistent_hits: usize,
    /// Real compiles this engine performed (misses of every cache tier).
    /// Always `full_compiles + ast_reuse + lower_reuse`. Logical: on a
    /// service backend these compiles physically ran on the client farm.
    pub compiles: usize,
    /// Misses that ran the entire pipeline — no stage artifact could be
    /// reused. This is the number the tier-0 cache exists to shrink: a
    /// pre-artifact-cache engine would report `full_compiles ==
    /// compiles`.
    pub full_compiles: usize,
    /// Misses that reused a cached optimized-AST artifact (stage 1
    /// skipped; lowering and machine-level optimization ran).
    pub ast_reuse: usize,
    /// Misses that reused a cached lowered-binary artifact (stages 1–2
    /// skipped; only the cheap machine-level tail ran). Disjoint from
    /// `ast_reuse`.
    pub lower_reuse: usize,
    /// Of `ast_reuse`, misses whose optimized-AST artifact came from the
    /// *persistent* [`ArtifactStore`] rather than this run's in-memory
    /// tier — each one a stage-1 pass some earlier run paid for, served
    /// across runs even when every fitness key is cold (the store is
    /// keyed by module *body* hash, so a renamed module still hits).
    pub store_ast_hits: usize,
    /// Of `lower_reuse`, misses served from the persistent
    /// [`ArtifactStore`] (stage 1–2 both skipped across runs).
    pub store_lower_hits: usize,
    /// Evaluations whose compile failed constraint checking and scored
    /// [`FAILED_COMPILE_PENALTY`], counted once per distinct
    /// configuration per run — including failures first served from the
    /// persistent store, so a warm run reports the same count as the
    /// cold run it replays.
    pub failed_compiles: usize,
    /// Results discarded by the evaluation service's straggler
    /// re-dispatch (a shard answered by more than one client; first
    /// result wins and duplicates are bit-identical). Always 0 for the
    /// in-process pool; filled in from the service telemetry by the
    /// tuner when `TunerConfig::backend` is a service.
    pub duplicate_results: usize,
    /// Measured wall-clock seconds spent inside `evaluate_batch` — the
    /// quantity parallelism reduces (per-item CPU time is on each
    /// [`genetic::EvalRecord::wall_seconds`]).
    pub wall_seconds: f64,
}

impl EngineStats {
    /// Fraction of evaluations served from the in-run cache.
    pub fn cache_hit_rate(&self) -> f64 {
        btel::ratio(self.cache_hits as f64, self.evaluations as f64)
    }

    /// Fraction of evaluations served from the persistent store.
    pub fn persistent_hit_rate(&self) -> f64 {
        btel::ratio(self.persistent_hits as f64, self.evaluations as f64)
    }

    /// Fraction of real compiles that reused at least one stage
    /// artifact (ran less than the full pipeline).
    pub fn stage_reuse_rate(&self) -> f64 {
        btel::ratio(
            (self.ast_reuse + self.lower_reuse) as f64,
            self.compiles as f64,
        )
    }
}

/// Telemetry handles for one [`FitnessEngine`], resolved once from a
/// [`btel::Registry`] and installed with
/// [`FitnessEngine::set_telemetry`]. Without one installed the engine
/// honors the Off-mode purity contract: no extra clock readings, no
/// telemetry state touched — the hot paths are bit-identical to a
/// telemetry-free build.
pub struct EngineTelemetry {
    /// Span recorder. Stage spans (`ast`/`lower`/`mir`) parent to the
    /// id set with [`EngineTelemetry::set_trace_parent`] when one is
    /// set (a farm worker sets it to the server's dispatch-span id
    /// carried on the wire), else to the enclosing `batch` span.
    pub tracer: btel::Tracer,
    trace_parent: AtomicU64,
    evaluations: Arc<btel::Counter>,
    hits_memo: Arc<btel::Counter>,
    hits_persistent: Arc<btel::Counter>,
    compiles_full: Arc<btel::Counter>,
    compiles_ast_reuse: Arc<btel::Counter>,
    compiles_lower_reuse: Arc<btel::Counter>,
    stage_check: Arc<btel::Histogram>,
    stage_ast: Arc<btel::Histogram>,
    stage_lower: Arc<btel::Histogram>,
    stage_mir: Arc<btel::Histogram>,
    miss_seconds: Arc<btel::Histogram>,
    batch_seconds: Arc<btel::Histogram>,
}

impl EngineTelemetry {
    /// Resolve the engine's metric families from `registry` (handles
    /// are cached here; the registry lock never sits on a hot path).
    pub fn from_registry(registry: &btel::Registry, tracer: btel::Tracer) -> EngineTelemetry {
        let hits = |tier| {
            registry.counter_with(
                "bintuner_engine_cache_hits_total",
                "evaluations served from a cache tier",
                "tier",
                tier,
            )
        };
        let compiles = |reuse| {
            registry.counter_with(
                "bintuner_engine_compiles_total",
                "real compiles by stage-reuse class",
                "reuse",
                reuse,
            )
        };
        let stage = |stage| {
            registry.histogram_with(
                "bintuner_engine_stage_seconds",
                "per-stage compile wall clock",
                "stage",
                stage,
            )
        };
        EngineTelemetry {
            tracer,
            trace_parent: AtomicU64::new(0),
            evaluations: registry.counter(
                "bintuner_engine_evaluations_total",
                "genome evaluations requested (cache hits included)",
            ),
            hits_memo: hits("memo"),
            hits_persistent: hits("persistent"),
            compiles_full: compiles("full"),
            compiles_ast_reuse: compiles("ast"),
            compiles_lower_reuse: compiles("lower"),
            stage_check: stage("check"),
            stage_ast: stage("ast"),
            stage_lower: stage("lower"),
            stage_mir: stage("mir"),
            miss_seconds: registry.histogram(
                "bintuner_engine_miss_seconds",
                "wall clock of one compiled-and-scored miss",
            ),
            batch_seconds: registry.histogram(
                "bintuner_engine_batch_seconds",
                "wall clock of one evaluate_batch call",
            ),
        }
    }

    /// Set the parent span id for the next batches' stage spans (`0`
    /// clears it). A farm worker calls this with the dispatch-span id
    /// from the `Work` frame so its stage spans stitch into the
    /// server's trace.
    pub fn set_trace_parent(&self, parent: u64) {
        self.trace_parent.store(parent, Ordering::Relaxed);
    }
}

/// One memoized evaluation. The modelled compile cost is *not* cached:
/// it depends on the raw flag vector (per-enabled-flag pass cost), not
/// the effect config, so it is recomputed per genome.
#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    fitness: f64,
    failed: bool,
}

/// How much of the pipeline a miss actually ran, decided at partition
/// time from the artifact membership model (deterministic — see module
/// docs).
#[derive(Debug, Clone, Copy, PartialEq)]
enum StageReuse {
    /// No artifact available: all three stages ran.
    Full,
    /// Optimized AST reused: lowering + machine-level stages ran.
    Ast,
    /// Lowered binary reused: only the machine-level stage ran.
    Lower,
}

/// The execution plan for one miss: its stage digests, the reuse
/// classification, and whether its lowered artifact is worth keeping.
#[derive(Debug, Clone, Copy)]
struct MissPlan {
    ast_digest: u128,
    lower_digest: u128,
    reuse: StageReuse,
    /// Retain the stage-2 artifact in the cache. Retention costs a deep
    /// clone of the lowered binary (the machine-level stage consumes
    /// its input), so it is only paid where it can pay off: keys
    /// already in the cache, or keys at least two misses of this batch
    /// share. A single-use lowered binary is consumed by the mir stage
    /// directly, clone-free — on large modules that clone would cost
    /// more than the rare cross-batch stage-2 hit saves.
    retain_lower: bool,
    /// The AST artifact is expected from the persistent store (the
    /// reuse classification was upgraded to [`StageReuse::Ast`] on its
    /// membership). A failed fetch recomputes — identical bytes, so the
    /// classification stands either way.
    store_ast: bool,
    /// The lowered artifact is expected from the persistent store
    /// ([`StageReuse::Lower`] across runs), same fallback contract.
    store_lower: bool,
}

/// Deterministic membership + FIFO-age model of the tier-0 artifact
/// cache. Updated *only* during partition (reservations) and batch
/// commit (evictions), both single-threaded under the cache lock, so
/// cache membership — and with it the reuse telemetry and eviction
/// sequence — is a pure function of the miss sequence, independent of
/// worker scheduling and of whether compiles run locally or on the
/// service farm.
#[derive(Default)]
struct ArtifactIndex {
    ast: HashSet<u128>,
    ast_order: VecDeque<u128>,
    lower: HashSet<(u128, u128)>,
    lower_order: VecDeque<(u128, u128)>,
}

/// The artifact *values*: filled in lazily by whichever worker first
/// compiles a member key (values are pure functions of their keys, so
/// a racy double-compute yields identical bytes and the first insert
/// wins). Keys are always a subset of the membership model; with a
/// [`MissExecutor`] installed this map stays empty — the artifacts live
/// in the clients' own engines.
#[derive(Default)]
struct ArtifactValues {
    ast: HashMap<u128, Arc<Module>>,
    lower: HashMap<(u128, u128), Arc<Binary>>,
    /// Measured stage-2 seconds for lowered artifacts this run computed
    /// fresh — the persistent store's retention currency; drained into
    /// it at batch commit.
    lower_cost: HashMap<(u128, u128), f64>,
}

/// Interior cache state (one lock: the partition phase touches all
/// levels together).
#[derive(Default)]
struct CacheState {
    /// Exact repaired-flag-vector memo (front level).
    by_flags: HashMap<Vec<bool>, CacheEntry>,
    /// Effect-config memo (back level): distinct flag vectors resolving
    /// to the same effects share one compile.
    by_effect: HashMap<EffectConfig, CacheEntry>,
    /// Tier-0 artifact membership model (see [`ArtifactIndex`]).
    artifacts: ArtifactIndex,
    /// AST digests already queued into (or known live in) the
    /// persistent artifact store — prevents re-encoding a blob every
    /// batch.
    persisted_ast: HashSet<u128>,
    /// Lowered-artifact keys already queued into the persistent store.
    persisted_lower: HashSet<(u128, u128)>,
}

/// The batch fitness engine: compiles genomes, scores them against the
/// shared `-O0` baseline with NCD, in parallel, with memoization.
///
/// Construction compiles the baseline once ([`FitnessEngine::new`]); the
/// engine is then shared immutably across the GA run — all interior
/// state (cache, stats) is behind mutexes, and the hot compile/score path
/// runs lock-free on worker threads apart from brief artifact-cache
/// lookups.
pub struct FitnessEngine<'a> {
    compiler: &'a Compiler,
    module: &'a Module,
    /// Stable content hash of `module` — the persistent store's key
    /// component, computed once at construction.
    module_hash: u64,
    /// Name-independent body hash of `module` — the persistent
    /// *artifact* store's key component (a renamed module keeps its
    /// artifacts even though every fitness key changes).
    body_hash: u64,
    arch: Arch,
    config: EngineConfig,
    baseline_bin: Binary,
    baseline: NcdBaseline,
    cache: Mutex<CacheState>,
    /// Tier-0 artifact values (separate lock from the bookkeeping: the
    /// partition phase never touches values, workers never touch the
    /// model).
    artifact_values: Mutex<ArtifactValues>,
    stats: Mutex<EngineStats>,
    /// Third fitness cache tier: the cross-run store. Consulted during
    /// batch partition (under the partition's store lock, not
    /// per-worker) and fed every fresh result; recovered with
    /// [`FitnessEngine::into_store`] for the end-of-run save.
    store: Option<Mutex<FitnessStore>>,
    /// Persistent sibling of the tier-0 artifact cache: optimized ASTs
    /// and lowered binaries from *earlier runs*, keyed by stage digests
    /// plus the module body hash. Consulted at partition time (miss
    /// classification) and on the miss path (fetch before recompute);
    /// fed fresh artifacts at batch commit when compiles run locally.
    artifact_store: Option<Mutex<ArtifactStore>>,
    /// When set, the deduplicated miss list is dispatched here (the
    /// evaluation service) instead of the local worker pool.
    executor: Option<&'a dyn MissExecutor>,
    /// Telemetry handles ([`FitnessEngine::set_telemetry`]); `None` is
    /// the Off-mode purity contract — no clock readings beyond the
    /// pre-instrumentation ones, no telemetry state touched.
    tel: Option<EngineTelemetry>,
}

// The engine is shared by reference across scoped worker threads; keep
// that property checked at compile time. `Compiler`, `Module`,
// `NcdBaseline` are all plain data.
const _: fn() = || {
    fn assert_sync<T: Sync>() {}
    assert_sync::<FitnessEngine<'_>>();
    assert_sync::<Compiler>();
    assert_sync::<NcdBaseline>();
    assert_sync::<Module>();
};

impl<'a> FitnessEngine<'a> {
    /// Build an engine for `module`: compiles the `-O0` baseline once and
    /// pre-compresses it for NCD scoring.
    ///
    /// # Errors
    ///
    /// [`crate::TuneError::Baseline`] when the baseline itself fails to
    /// compile (an invalid module; nothing downstream can recover).
    pub fn new(
        compiler: &'a Compiler,
        module: &'a Module,
        arch: Arch,
        config: EngineConfig,
    ) -> Result<FitnessEngine<'a>, crate::TuneError> {
        Self::build(compiler, module, arch, config, None)
    }

    /// Build an engine backed by a persistent cross-run store
    /// (warm-start): entries for this `(module, profile, arch)` serve as
    /// a third fitness cache tier, and every fresh compile is recorded
    /// into the store. Recover it with [`FitnessEngine::into_store`] and
    /// call [`FitnessStore::save`] to persist the run's new results.
    ///
    /// # Errors
    ///
    /// See [`FitnessEngine::new`].
    pub fn with_store(
        compiler: &'a Compiler,
        module: &'a Module,
        arch: Arch,
        config: EngineConfig,
        store: FitnessStore,
    ) -> Result<FitnessEngine<'a>, crate::TuneError> {
        Self::build(compiler, module, arch, config, Some(store))
    }

    fn build(
        compiler: &'a Compiler,
        module: &'a Module,
        arch: Arch,
        config: EngineConfig,
        mut store: Option<FitnessStore>,
    ) -> Result<FitnessEngine<'a>, crate::TuneError> {
        // The one place the module is validated: the baseline preset
        // compile goes through the full checked `compile` path. Every
        // later miss drives the stages directly on the already-validated
        // module.
        let baseline_bin = compiler
            .compile_preset(module, minicc::OptLevel::O0, arch)
            .map_err(crate::TuneError::Baseline)?;
        let baseline = NcdBaseline::new(binrep::encode_binary(&baseline_bin));
        if let Some(store) = &mut store {
            // Record the module's shape signature so future runs on
            // *other* modules can find this one as a transfer source
            // (prior mining; unchanged features never grow the log).
            store.record_module_features(module.content_hash(), module.features());
        }
        Ok(FitnessEngine {
            compiler,
            module,
            module_hash: module.content_hash(),
            body_hash: module.body_hash(),
            arch,
            config,
            baseline_bin,
            baseline,
            cache: Mutex::new(CacheState::default()),
            artifact_values: Mutex::new(ArtifactValues::default()),
            stats: Mutex::new(EngineStats::default()),
            store: store.map(Mutex::new),
            artifact_store: None,
            executor: None,
            tel: None,
        })
    }

    /// Route the miss list through `executor` (the evaluation service)
    /// instead of the local worker pool. Partition, caching, store
    /// recording and stats are unchanged — which is exactly why a
    /// service-backed run is bit-identical to an in-process one.
    pub fn set_executor(&mut self, executor: &'a dyn MissExecutor) {
        self.executor = Some(executor);
    }

    /// Install telemetry handles: per-tier cache counters, per-stage
    /// wall histograms and trace spans from here on. Fitness results
    /// and every cache/store decision are unaffected — telemetry only
    /// observes.
    pub fn set_telemetry(&mut self, tel: EngineTelemetry) {
        self.tel = Some(tel);
    }

    /// The installed telemetry handles, if any (the farm worker uses
    /// this to re-parent stage spans per dispatched shard).
    pub fn telemetry(&self) -> Option<&EngineTelemetry> {
        self.tel.as_ref()
    }

    /// Attach the persistent artifact store (see the `artifact_store`
    /// field docs). Classification consults it identically on every
    /// backend; fresh artifacts are recorded back only when compiles
    /// run on the local pool (with an executor the artifact values live
    /// in the clients' own engines). Recover it with
    /// [`FitnessEngine::into_stores`] for the end-of-run save.
    pub fn set_artifact_store(&mut self, store: ArtifactStore) {
        self.artifact_store = Some(Mutex::new(store));
    }

    /// Drain the fitness results recorded into the engine's store since
    /// the last drain (the client side of the evaluation service ships
    /// these back for the server-side store; see
    /// [`FitnessStore::drain_pending_fitness`]). Empty for store-less
    /// engines.
    pub fn drain_pending_store(&self) -> Vec<(StoreKey, StoredFitness)> {
        self.store
            .as_ref()
            .map_or_else(Vec::new, |s| s.lock().unwrap().drain_pending_fitness())
    }

    /// Drain the stage artifacts queued into the engine's artifact store
    /// since the last drain — the artifact half of the service's merge
    /// barrier: a farm worker's engine carries an in-memory artifact
    /// store purely so its freshly computed artifacts accumulate
    /// somewhere drainable, and this ships them back to the server's
    /// persistent log. Empty for engines without an artifact store.
    pub fn drain_pending_artifacts(&self) -> crate::store::PendingArtifacts {
        self.artifact_store
            .as_ref()
            .map_or_else(Default::default, |s| s.lock().unwrap().drain_pending())
    }

    /// The persistent-store key for an effect configuration of this
    /// engine's `(module, profile, arch)`.
    fn store_key(&self, eff: &EffectConfig) -> StoreKey {
        StoreKey::new(
            self.module_hash,
            self.compiler.profile().kind(),
            self.arch,
            eff.stable_digest(),
        )
    }

    /// Recover the persistent store (with this run's fresh results
    /// pending) for the end-of-run save.
    pub fn into_store(self) -> Option<FitnessStore> {
        self.into_stores().0
    }

    /// Recover both persistent stores — fitness and artifacts — for the
    /// end-of-run save. Save the fitness store *first*: a v3→v4
    /// migration creates the directory the artifact log lives in.
    pub fn into_stores(self) -> (Option<FitnessStore>, Option<ArtifactStore>) {
        (
            self.store.map(|s| s.into_inner().unwrap()),
            self.artifact_store.map(|s| s.into_inner().unwrap()),
        )
    }

    /// The persistent-artifact key of a stage-1 digest for this
    /// engine's `(module body, compiler)`.
    fn ast_key(&self, ast_digest: u128) -> AstArtifactKey {
        AstArtifactKey {
            body_hash: self.body_hash,
            compiler: self.compiler.profile().kind().stable_id(),
            ast_digest,
        }
    }

    /// The persistent-artifact key of a stage-2 digest pair for this
    /// engine's `(module body, compiler, arch)`.
    fn lower_key(&self, ast_digest: u128, lower_digest: u128) -> LowerArtifactKey {
        LowerArtifactKey {
            body_hash: self.body_hash,
            compiler: self.compiler.profile().kind().stable_id(),
            arch: arch_tag(self.arch),
            ast_digest,
            lower_digest,
        }
    }

    /// The `-O0` baseline binary the engine scores against.
    pub fn baseline_binary(&self) -> &Binary {
        &self.baseline_bin
    }

    /// A snapshot of the engine's telemetry.
    pub fn stats(&self) -> EngineStats {
        *self.stats.lock().unwrap()
    }

    /// Number of distinct flag vectors memoized so far (the exact-vector
    /// front level).
    pub fn cache_len(&self) -> usize {
        self.cache.lock().unwrap().by_flags.len()
    }

    /// Number of distinct effect configurations compiled so far — the
    /// number of *actual* compiles a cold run would have needed.
    pub fn effect_cache_len(&self) -> usize {
        self.cache.lock().unwrap().by_effect.len()
    }

    /// Number of optimized-AST artifacts currently cached (tier 0,
    /// stage 1) — bounded by [`EngineConfig::max_ast_artifacts`].
    pub fn ast_artifact_len(&self) -> usize {
        self.cache.lock().unwrap().artifacts.ast.len()
    }

    /// Number of lowered-binary artifacts currently cached (tier 0,
    /// stage 2) — bounded by [`EngineConfig::max_lower_artifacts`].
    pub fn lower_artifact_len(&self) -> usize {
        self.cache.lock().unwrap().artifacts.lower.len()
    }

    /// Fetch-or-compute the stage-1 artifact for `plan`'s AST digest:
    /// in-memory value first, then the persistent store, then a fresh
    /// `stage_ast` pass.
    fn artifact_ast(&self, digest: u128, eff: &EffectConfig) -> Arc<Module> {
        if let Some(m) = self.artifact_values.lock().unwrap().ast.get(&digest) {
            return m.clone();
        }
        if let Some(m) = self.store_ast(digest) {
            return m;
        }
        // Computed outside the lock: stage_ast is the expensive part and
        // a pure function of the digest's projection, so a concurrent
        // duplicate compute is wasted work at worst, never a wrong
        // value (first insert wins).
        let m = Arc::new(self.compiler.stage_ast(self.module, eff));
        self.artifact_values
            .lock()
            .unwrap()
            .ast
            .entry(digest)
            .or_insert(m)
            .clone()
    }

    /// Decode a persisted optimized-AST artifact. The blob was produced
    /// from a module with the same *body* but possibly another name, so
    /// the name is rewritten to this engine's module — the one part of
    /// the AST the stage pipeline carries through untouched. `None` on
    /// any miss, verification failure or decode error: callers
    /// recompute, bit-identically.
    fn store_ast(&self, digest: u128) -> Option<Arc<Module>> {
        let astore = self.artifact_store.as_ref()?;
        let bytes = astore.lock().unwrap().fetch_ast(&self.ast_key(digest))?;
        let mut m = minicc::codec::decode_module(&bytes).ok()?;
        m.name = self.module.name.clone();
        Some(
            self.artifact_values
                .lock()
                .unwrap()
                .ast
                .entry(digest)
                .or_insert(Arc::new(m))
                .clone(),
        )
    }

    /// Decode a persisted lowered-binary artifact ([`Self::store_ast`]
    /// contract). Retained fetches land in the in-memory tier so later
    /// misses of the same key stay off disk.
    fn store_lower(&self, plan: &MissPlan) -> Option<Arc<Binary>> {
        let astore = self.artifact_store.as_ref()?;
        let key = self.lower_key(plan.ast_digest, plan.lower_digest);
        let bytes = astore.lock().unwrap().fetch_lower(&key)?;
        let mut b = binrep::codec::decode_binary(&bytes).ok()?;
        b.name = self.module.name.clone();
        let b = Arc::new(b);
        if !plan.retain_lower {
            return Some(b);
        }
        Some(
            self.artifact_values
                .lock()
                .unwrap()
                .lower
                .entry((plan.ast_digest, plan.lower_digest))
                .or_insert(b)
                .clone(),
        )
    }

    /// Run the machine-level stage, observing its wall clock into the
    /// installed telemetry (Off mode: a plain `stage_mir` call, no
    /// clock read). `stage_parent != 0` additionally records a `mir`
    /// span under that parent.
    fn mir_timed(&self, lowered: Binary, eff: &EffectConfig, stage_parent: u64) -> Binary {
        let Some(tel) = &self.tel else {
            return self.compiler.stage_mir(lowered, eff);
        };
        let t = Instant::now();
        let bin = self.compiler.stage_mir(lowered, eff);
        tel.stage_mir.observe_seconds(t.elapsed().as_secs_f64());
        if stage_parent != 0 {
            tel.tracer.record("mir", stage_parent, t);
        }
        bin
    }

    /// Compile + score one miss according to its plan (run on workers).
    /// Misses are constraint-valid by partition and the module was
    /// validated at construction, so the staged pipeline cannot fail.
    fn evaluate_miss(&self, eff: &EffectConfig, plan: &MissPlan, stage_parent: u64) -> CacheEntry {
        let lower_key = (plan.ast_digest, plan.lower_digest);
        // Only retained keys can have (or deserve) a cached stage-2
        // artifact; a store-classified miss fetches across runs.
        let mut cached = if plan.retain_lower {
            self.artifact_values
                .lock()
                .unwrap()
                .lower
                .get(&lower_key)
                .cloned()
        } else {
            None
        };
        if cached.is_none() && plan.store_lower {
            cached = self.store_lower(plan);
        }
        let bin = match cached {
            // The artifact must outlive this miss: mir runs on a clone.
            Some(b) => self.mir_timed((*b).clone(), eff, stage_parent),
            None => {
                // The production phase ran every fresh AST for this
                // batch, so this is a cache fetch; the compute fallback
                // inside artifact_ast is only reachable as a
                // recompute-over-block safety valve.
                let ast = self.artifact_ast(plan.ast_digest, eff);
                let t = Instant::now();
                let lowered = self.compiler.stage_lower(&ast, eff, self.arch);
                let lower_secs = t.elapsed().as_secs_f64();
                if let Some(tel) = &self.tel {
                    tel.stage_lower.observe_seconds(lower_secs);
                    if stage_parent != 0 {
                        tel.tracer.record("lower", stage_parent, t);
                    }
                }
                if plan.retain_lower {
                    let mut values = self.artifact_values.lock().unwrap();
                    let b = values
                        .lower
                        .entry(lower_key)
                        .or_insert(Arc::new(lowered))
                        .clone();
                    // Record the measured stage cost — the persistent
                    // store's retention currency — for the commit-time
                    // drain.
                    values.lower_cost.entry(lower_key).or_insert(lower_secs);
                    drop(values);
                    self.mir_timed((*b).clone(), eff, stage_parent)
                } else {
                    // Single-use lowered binary: the mir stage consumes
                    // it in place, no clone, nothing retained.
                    self.mir_timed(lowered, eff, stage_parent)
                }
            }
        };
        CacheEntry {
            fitness: self.baseline.score(&binrep::encode_binary(&bin)),
            failed: false,
        }
    }

    /// Compile + score one miss with the artifact cache disabled: the
    /// full staged pipeline, nothing shared, nothing retained.
    fn evaluate_full(&self, eff: &EffectConfig, stage_parent: u64) -> CacheEntry {
        let bin = match &self.tel {
            None => {
                let optimized = self.compiler.stage_ast(self.module, eff);
                let lowered = self.compiler.stage_lower(&optimized, eff, self.arch);
                self.compiler.stage_mir(lowered, eff)
            }
            Some(tel) => {
                let t = Instant::now();
                let optimized = self.compiler.stage_ast(self.module, eff);
                tel.stage_ast.observe_seconds(t.elapsed().as_secs_f64());
                if stage_parent != 0 {
                    tel.tracer.record("ast", stage_parent, t);
                }
                let t = Instant::now();
                let lowered = self.compiler.stage_lower(&optimized, eff, self.arch);
                tel.stage_lower.observe_seconds(t.elapsed().as_secs_f64());
                if stage_parent != 0 {
                    tel.tracer.record("lower", stage_parent, t);
                }
                self.mir_timed(lowered, eff, stage_parent)
            }
        };
        CacheEntry {
            fitness: self.baseline.score(&binrep::encode_binary(&bin)),
            failed: false,
        }
    }
}

/// Which tier resolved a genome during partition.
#[derive(Clone, Copy, PartialEq)]
enum Hit {
    /// Not a cache hit: a fresh constraint penalty that needed no
    /// compile.
    Fresh,
    /// Served from the in-run memo (exact vector or effect config).
    InRun,
    /// First served from the persistent cross-run store.
    Persistent,
}

/// Where a genome's result comes from within one batch.
enum Source {
    /// Resolved during partition: a cache hit, or a fresh constraint
    /// penalty that needed no compile.
    Ready { entry: CacheEntry, hit: Hit },
    /// To be computed: index into the batch's miss list.
    Slot(usize),
}

impl Evaluator for FitnessEngine<'_> {
    fn evaluate_batch(&self, genomes: &[Vec<bool>]) -> Result<Vec<Eval>, EvalAbort> {
        let batch_start = Instant::now();
        let profile = self.compiler.profile();
        // Per-batch span context: the batch span's id is allocated up
        // front so stage spans can hang off it; it is recorded (closed)
        // at the end. `stage_parent == 0` exactly when tracing is off —
        // the farm worker's wire convention, reused in-process.
        let (batch_span, trace_parent, stage_parent) = match &self.tel {
            Some(t) if t.tracer.is_enabled() => {
                let parent = t.trace_parent.load(Ordering::Relaxed);
                let id = t.tracer.alloc_id();
                (id, parent, if parent != 0 { parent } else { id })
            }
            _ => (0, 0, 0),
        };

        // Resolve each genome's effect config up front (cheap, lock-free).
        // Invalid vectors get `None`: they must not share the effect cache
        // with a valid vector resolving to the same effects. This is the
        // one constraint check a genome pays — the staged miss path never
        // re-checks.
        let check_start = self.tel.as_ref().map(|_| Instant::now());
        let effects: Vec<Option<EffectConfig>> = genomes
            .iter()
            .map(|g| {
                profile
                    .constraints()
                    .check(g)
                    .is_empty()
                    .then(|| EffectConfig::from_flags(profile, g))
            })
            .collect();
        if let (Some(tel), Some(t)) = (&self.tel, check_start) {
            tel.stage_check.observe_seconds(t.elapsed().as_secs_f64());
            if stage_parent != 0 {
                tel.tracer.record("check", stage_parent, t);
            }
        }

        // Partition against the cache tiers: exact flag vector first,
        // then effect config, then the persistent cross-run store. The
        // first effect config unseen by every tier becomes a "miss" to
        // compile; everything else is a hit. Each new miss is then
        // planned against the tier-0 artifact model: its stage digests
        // are classified (full / ast-reuse / lower-reuse) and reserved,
        // all under the single cache lock so the classification is
        // deterministic.
        let mut misses: Vec<(&Vec<bool>, &EffectConfig)> = Vec::new();
        let mut digests: Vec<(u128, u128)> = Vec::new();
        let mut plans: Vec<MissPlan> = Vec::new();
        let mut miss_by_eff: HashMap<&EffectConfig, usize> = HashMap::new();
        let mut fresh_failures = 0usize;
        let sources: Vec<Source> = {
            let mut cache = self.cache.lock().unwrap();
            let sources: Vec<Source> = genomes
                .iter()
                .zip(&effects)
                .map(|(g, eff)| {
                    if let Some(entry) = cache.by_flags.get(g) {
                        return Source::Ready {
                            entry: *entry,
                            hit: Hit::InRun,
                        };
                    }
                    let Some(eff) = eff else {
                        // Constraint violation: penalize without compiling
                        // (the compiler would reject it anyway).
                        let entry = CacheEntry {
                            fitness: FAILED_COMPILE_PENALTY,
                            failed: true,
                        };
                        cache.by_flags.insert(g.clone(), entry);
                        fresh_failures += 1;
                        return Source::Ready {
                            entry,
                            hit: Hit::Fresh,
                        };
                    };
                    if let Some(entry) = cache.by_effect.get(eff) {
                        let entry = *entry;
                        cache.by_flags.insert(g.clone(), entry);
                        return Source::Ready {
                            entry,
                            hit: Hit::InRun,
                        };
                    }
                    if let Some(store) = &self.store {
                        // Persistent tier: a hit is promoted into the
                        // in-run memo, so only this first serve counts as
                        // persistent — persistent_hits stays equal to the
                        // number of compiles warm-starting saved.
                        let persisted = store.lock().unwrap().get(&self.store_key(eff));
                        if let Some(hit) = persisted {
                            let entry = CacheEntry {
                                fitness: hit.fitness,
                                failed: hit.failed,
                            };
                            cache.by_effect.insert(eff.clone(), entry);
                            cache.by_flags.insert(g.clone(), entry);
                            return Source::Ready {
                                entry,
                                hit: Hit::Persistent,
                            };
                        }
                    }
                    if let Some(&slot) = miss_by_eff.get(eff) {
                        return Source::Slot(slot);
                    }
                    let slot = misses.len();
                    miss_by_eff.insert(eff, slot);
                    if self.config.artifact_cache {
                        let keys = StageKeys::project(eff);
                        digests.push((keys.ast.stable_digest(), keys.lower.stable_digest()));
                    }
                    misses.push((g, eff));
                    Source::Slot(slot)
                })
                .collect();

            // Plan the misses against the artifact model — a second,
            // whole-batch pass (still under the same lock, still
            // single-threaded) because the retention decision needs
            // batch-level knowledge: each miss's classification sees
            // earlier misses' artifacts as available — AST artifacts
            // are guaranteed by the phase-1 production barrier below;
            // a same-batch lowered artifact may still be in flight on
            // another worker, in which case the consumer recomputes
            // the lowering (identical bytes, classification
            // unaffected) — and a lowered artifact is reserved only
            // when a second miss will actually want it.
            if self.config.artifact_cache {
                let mut lower_mult: HashMap<(u128, u128), usize> = HashMap::new();
                for k in &digests {
                    *lower_mult.entry(*k).or_default() += 1;
                }
                // Persistent-artifact membership is part of the
                // deterministic classification input: the store's index
                // is fixed at load (pending inserts are not queryable),
                // so a warm artifact log upgrades the same misses on
                // every backend and at every worker count.
                let astore = self.artifact_store.as_ref().map(|s| s.lock().unwrap());
                let art = &mut cache.artifacts;
                let mut new_ast: HashSet<u128> = HashSet::new();
                let mut new_lower: HashSet<(u128, u128)> = HashSet::new();
                for &(ad, ld) in &digests {
                    let k = (ad, ld);
                    let mut store_ast = false;
                    let mut store_lower = false;
                    let reuse = if art.lower.contains(&k) || new_lower.contains(&k) {
                        StageReuse::Lower
                    } else if astore
                        .as_ref()
                        .is_some_and(|s| s.has_lower(&self.lower_key(ad, ld)))
                    {
                        store_lower = true;
                        StageReuse::Lower
                    } else if art.ast.contains(&ad) || new_ast.contains(&ad) {
                        StageReuse::Ast
                    } else if astore
                        .as_ref()
                        .is_some_and(|s| s.has_ast(&self.ast_key(ad)))
                    {
                        store_ast = true;
                        StageReuse::Ast
                    } else {
                        StageReuse::Full
                    };
                    // Reserve the AST key only for misses that will
                    // actually run stage 1: a Lower-classified miss
                    // never computes (or needs) the AST artifact, and a
                    // membership entry without a value would let later
                    // misses be counted as ast_reuse while physically
                    // rerunning the stage.
                    if reuse != StageReuse::Lower && !art.ast.contains(&ad) && new_ast.insert(ad) {
                        art.ast_order.push_back(ad);
                    }
                    let retain_lower = art.lower.contains(&k) || lower_mult[&k] >= 2;
                    if retain_lower && !art.lower.contains(&k) && new_lower.insert(k) {
                        art.lower_order.push_back(k);
                    }
                    plans.push(MissPlan {
                        ast_digest: ad,
                        lower_digest: ld,
                        reuse,
                        retain_lower,
                        store_ast,
                        store_lower,
                    });
                }
                art.ast.extend(new_ast);
                art.lower.extend(new_lower);
            } else {
                plans.extend((0..misses.len()).map(|_| MissPlan {
                    ast_digest: 0,
                    lower_digest: 0,
                    reuse: StageReuse::Full,
                    retain_lower: false,
                    store_ast: false,
                    store_lower: false,
                }));
            }
            sources
        };

        // Compile + score the misses: on the installed executor (the
        // evaluation service's client farm) when present, else on the
        // local worker pool in two phases. Phase 1 produces each fresh
        // stage-1 artifact exactly once, in parallel across distinct
        // AST digests; phase 2 then strides *all* misses across the
        // workers (the pre-staging scheduling), each fetching its
        // artifacts from the cache. Without the production phase, the
        // common all-late-stage generation — one AST digest shared by
        // every miss — would collapse onto a single worker; with it,
        // the serial section is only the one stage-1 pass, and the
        // dominant lower+mir work stays fully parallel.
        let mut computed: Vec<Option<(CacheEntry, f64)>> = vec![None; misses.len()];
        // Fresh stage-1 artifacts this batch produced locally, with
        // their measured wall time — the persistent store's retention
        // currency, recorded at commit. Stays empty with an executor:
        // the artifacts then live in the clients' own engines.
        let mut persist_ast: Vec<(u128, f64)> = Vec::new();
        // Phase-1 producer wall per miss slot: the representative miss
        // that produced a shared stage-1 artifact reports this
        // separately as [`Eval::ast_produce_seconds`] instead of having
        // it folded into its own `wall_seconds` (which would overstate
        // that genome's compile cost by the whole family's shared
        // work). All zeros with an executor — producer wall is then
        // inside the clients' own measured walls.
        let mut ast_wall = vec![0.0f64; misses.len()];
        if let Some(executor) = self.executor {
            let flags: Vec<Vec<bool>> = misses.iter().map(|(f, _)| (*f).clone()).collect();
            // An abort here is safe to propagate mid-batch: the misses
            // were planned and their artifact keys reserved, but no
            // result has been committed to any cache tier — reserved
            // membership without a value is the documented
            // recompute-over-block safety valve, so a later engine (or
            // none) sees consistent state.
            let results = executor.execute(&flags)?;
            assert_eq!(
                results.len(),
                misses.len(),
                "executor must return one result per miss"
            );
            for (slot, r) in results.into_iter().enumerate() {
                computed[slot] = Some((
                    CacheEntry {
                        fitness: r.fitness,
                        failed: r.failed,
                    },
                    r.wall_seconds,
                ));
            }
        } else {
            // Phase 1: one producer task per AST digest this batch
            // introduces (the representative is its first Full-classified
            // miss, which reports the artifact's wall time as its
            // `ast_produce_seconds`).
            if self.config.artifact_cache {
                let mut fresh_ast: Vec<(u128, usize)> = Vec::new();
                let mut seen: HashSet<u128> = HashSet::new();
                for (slot, plan) in plans.iter().enumerate() {
                    if plan.reuse == StageReuse::Full && seen.insert(plan.ast_digest) {
                        fresh_ast.push((plan.ast_digest, slot));
                    }
                }
                let producers = self.config.resolved_workers().min(fresh_ast.len().max(1));
                if producers <= 1 {
                    for &(digest, slot) in &fresh_ast {
                        let t = Instant::now();
                        let _ = self.artifact_ast(digest, misses[slot].1);
                        ast_wall[slot] = t.elapsed().as_secs_f64();
                        if let Some(tel) = &self.tel {
                            tel.stage_ast.observe_seconds(ast_wall[slot]);
                            if stage_parent != 0 {
                                tel.tracer.record("ast", stage_parent, t);
                            }
                        }
                    }
                } else {
                    let fresh_ref = &fresh_ast;
                    let misses_ref = &misses;
                    let walls: Vec<(usize, f64)> = std::thread::scope(|scope| {
                        let handles: Vec<_> = (0..producers)
                            .map(|w| {
                                scope.spawn(move || {
                                    let mut part = Vec::new();
                                    let mut i = w;
                                    while i < fresh_ref.len() {
                                        let (digest, slot) = fresh_ref[i];
                                        let t = Instant::now();
                                        let _ = self.artifact_ast(digest, misses_ref[slot].1);
                                        let wall = t.elapsed().as_secs_f64();
                                        if let Some(tel) = &self.tel {
                                            tel.stage_ast.observe_seconds(wall);
                                            if stage_parent != 0 {
                                                tel.tracer.record("ast", stage_parent, t);
                                            }
                                        }
                                        part.push((slot, wall));
                                        i += producers;
                                    }
                                    part
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .flat_map(|h| h.join().expect("ast producer panicked"))
                            .collect()
                    });
                    for (slot, wall) in walls {
                        ast_wall[slot] = wall;
                    }
                }
                persist_ast.extend(fresh_ast.iter().map(|&(d, slot)| (d, ast_wall[slot])));
            }
            // Phase 2: every miss, strided. A miss that reaches a
            // retained-but-not-yet-filled lower artifact (its producer
            // running concurrently on another worker) recomputes the
            // lowering — wasted work at worst, never a different value,
            // and the partition-time telemetry is unaffected.
            let workers = self.config.resolved_workers().min(misses.len().max(1));
            let run_miss = |i: usize| -> (CacheEntry, f64) {
                let t = Instant::now();
                let eff = misses[i].1;
                let entry = if self.config.artifact_cache {
                    self.evaluate_miss(eff, &plans[i], stage_parent)
                } else {
                    self.evaluate_full(eff, stage_parent)
                };
                let wall = t.elapsed().as_secs_f64();
                if let Some(tel) = &self.tel {
                    tel.miss_seconds.observe_seconds(wall);
                }
                (entry, wall)
            };
            if workers <= 1 {
                for (i, out) in computed.iter_mut().enumerate() {
                    *out = Some(run_miss(i));
                }
            } else {
                let run_miss_ref = &run_miss;
                let n_misses = misses.len();
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|w| {
                            scope.spawn(move || {
                                let mut part = Vec::new();
                                let mut i = w;
                                while i < n_misses {
                                    let (entry, wall) = run_miss_ref(i);
                                    part.push((i, entry, wall));
                                    i += workers;
                                }
                                part
                            })
                        })
                        .collect();
                    for h in handles {
                        for (i, entry, wall) in h.join().expect("engine worker panicked") {
                            computed[i] = Some((entry, wall));
                        }
                    }
                });
            }
        }

        // Memoize the fresh results at both in-run levels (including the
        // within-batch duplicate vectors that mapped to the same slot),
        // record them into the persistent store for future runs, and
        // commit the artifact model: evict oldest-reserved artifacts
        // beyond the configured bounds (deterministically — membership
        // and order were fixed at partition time).
        {
            if let Some(store) = &self.store {
                let mut store = store.lock().unwrap();
                for ((flags, eff), result) in misses.iter().zip(&computed) {
                    let (entry, _) = result.expect("every miss slot computed");
                    store.insert(
                        self.store_key(eff),
                        StoredFitness {
                            fitness: entry.fitness,
                            failed: entry.failed,
                            // The representative vector makes the record
                            // minable (per-flag priors, config transfer).
                            flags: FlagBits::from_bools(flags),
                            // Stamped by the store at insertion.
                            generation: 0,
                        },
                    );
                }
            }
            let mut cache = self.cache.lock().unwrap();
            for ((flags, eff), result) in misses.iter().zip(&computed) {
                let (entry, _) = result.expect("every miss slot computed");
                cache.by_effect.insert((*eff).clone(), entry);
                cache.by_flags.insert((*flags).clone(), entry);
            }
            for (g, src) in genomes.iter().zip(&sources) {
                if let Source::Slot(slot) = src {
                    // Representatives were inserted above; only clone the
                    // key for duplicate vectors not yet memoized.
                    if !cache.by_flags.contains_key(g) {
                        let (entry, _) = computed[*slot].expect("miss computed");
                        cache.by_flags.insert(g.clone(), entry);
                    }
                }
            }
            if self.config.artifact_cache {
                let state = &mut *cache;
                let art = &mut state.artifacts;
                let mut values = self.artifact_values.lock().unwrap();
                // Queue this batch's freshly computed artifacts into the
                // persistent store (local compiles only), before
                // eviction can drop their values. `persisted_*` keeps
                // the encode work once-per-key; the store itself applies
                // the cost floor and budget at save time.
                if let Some(astore) = &self.artifact_store {
                    let mut astore = astore.lock().unwrap();
                    for (digest, cost) in persist_ast {
                        if state.persisted_ast.insert(digest) {
                            if let Some(m) = values.ast.get(&digest) {
                                astore.insert_ast(
                                    self.ast_key(digest),
                                    cost,
                                    minicc::codec::encode_module(m),
                                );
                            }
                        }
                    }
                    let costs: Vec<((u128, u128), f64)> = values.lower_cost.drain().collect();
                    for ((ad, ld), cost) in costs {
                        if state.persisted_lower.insert((ad, ld)) {
                            if let Some(b) = values.lower.get(&(ad, ld)) {
                                astore.insert_lower(
                                    self.lower_key(ad, ld),
                                    cost,
                                    binrep::codec::encode_binary(b),
                                );
                            }
                        }
                    }
                } else {
                    values.lower_cost.clear();
                }
                while art.ast_order.len() > self.config.max_ast_artifacts {
                    let d = art.ast_order.pop_front().expect("order tracks membership");
                    art.ast.remove(&d);
                    values.ast.remove(&d);
                }
                while art.lower_order.len() > self.config.max_lower_artifacts {
                    let k = art
                        .lower_order
                        .pop_front()
                        .expect("order tracks membership");
                    art.lower.remove(&k);
                    values.lower.remove(&k);
                }
            }
        }

        // Assemble in input order. Cache hits (in-run or persistent)
        // charge the same modelled cost as a recompile (so the GA's
        // budget accounting is cache-agnostic) but report zero measured
        // wall time; within-batch duplicates pay the compile wall time
        // once, on first occurrence — which also carries the miss's
        // stage-reuse classification.
        let mut first_use = vec![true; misses.len()];
        let mut hits = 0usize;
        let mut persistent = 0usize;
        let mut cold_failures = 0usize;
        let results: Vec<Eval> = genomes
            .iter()
            .zip(sources)
            .map(|(g, src)| {
                let (entry, wall, ast_produce, hit, reuse) = match src {
                    Source::Ready { entry, hit } => {
                        if hit == Hit::Persistent {
                            // A failure first served from the store is the
                            // warm analog of a fresh failed compile: count
                            // it once so cold and warm telemetry agree.
                            cold_failures += entry.failed as usize;
                        }
                        (entry, 0.0, 0.0, hit, None)
                    }
                    Source::Slot(slot) => {
                        let (entry, wall) = computed[slot].expect("miss computed");
                        if first_use[slot] {
                            first_use[slot] = false;
                            cold_failures += entry.failed as usize;
                            // The representative also reports any shared
                            // stage-1 production it performed for its
                            // effect family — separately, so its own
                            // wall stays truthful.
                            (
                                entry,
                                wall,
                                ast_wall[slot],
                                Hit::Fresh,
                                Some(plans[slot].reuse),
                            )
                        } else {
                            (entry, 0.0, 0.0, Hit::InRun, None)
                        }
                    }
                };
                hits += (hit == Hit::InRun) as usize;
                persistent += (hit == Hit::Persistent) as usize;
                Eval {
                    fitness: entry.fitness,
                    cost_seconds: self.compiler.simulated_compile_seconds(self.module, g),
                    wall_seconds: wall,
                    ast_produce_seconds: ast_produce,
                    cache_hit: hit == Hit::InRun,
                    persistent_hit: hit == Hit::Persistent,
                    ast_reused: reuse == Some(StageReuse::Ast),
                    lower_reused: reuse == Some(StageReuse::Lower),
                }
            })
            .collect();

        let mut stats = self.stats.lock().unwrap();
        stats.evaluations += genomes.len();
        stats.cache_hits += hits;
        stats.persistent_hits += persistent;
        stats.compiles += misses.len();
        for plan in &plans {
            match plan.reuse {
                StageReuse::Full => stats.full_compiles += 1,
                StageReuse::Ast => stats.ast_reuse += 1,
                StageReuse::Lower => stats.lower_reuse += 1,
            }
            stats.store_ast_hits += plan.store_ast as usize;
            stats.store_lower_hits += plan.store_lower as usize;
        }
        stats.failed_compiles += fresh_failures + cold_failures;
        let batch_wall = batch_start.elapsed().as_secs_f64();
        stats.wall_seconds += batch_wall;
        drop(stats);
        if let Some(tel) = &self.tel {
            tel.evaluations.add(genomes.len() as u64);
            tel.hits_memo.add(hits as u64);
            tel.hits_persistent.add(persistent as u64);
            for plan in &plans {
                match plan.reuse {
                    StageReuse::Full => tel.compiles_full.inc(),
                    StageReuse::Ast => tel.compiles_ast_reuse.inc(),
                    StageReuse::Lower => tel.compiles_lower_reuse.inc(),
                }
            }
            tel.batch_seconds.observe_seconds(batch_wall);
            if batch_span != 0 {
                tel.tracer
                    .record_with_id(batch_span, "batch", trace_parent, batch_start);
            }
        }
        Ok(results)
    }
}
