//! The batch fitness engine — paper Figure 4's client side, built to
//! scale.
//!
//! BinTuner's architecture is client–server: the GA (server) fans
//! compile-and-measure work out to clients, because fitness evaluation
//! (compile + NCD) dominates wall-clock (the paper's Table 3 is entirely
//! about iteration cost). [`FitnessEngine`] is that client side as an
//! in-process worker pool:
//!
//! * **Batching** — it implements [`genetic::Evaluator`], so the GA hands
//!   it whole generations at once instead of one individual at a time.
//! * **Parallelism** — unique genomes in a batch are compiled and scored
//!   across a configurable pool of scoped threads ([`std::thread::scope`];
//!   no runtime dependency).
//! * **Caching** — results are memoized at three tiers: behind the exact
//!   repaired flag vector, behind the vector's resolved
//!   [`minicc::EffectConfig`], and — when the engine is built with
//!   [`FitnessEngine::with_store`] — behind a *persistent* cross-run
//!   [`FitnessStore`] keyed by `(module content hash, compiler profile,
//!   arch, effect digest)`. The emitted binary is a pure function of
//!   `(module, effect config, arch)`, so two *different* flag vectors
//!   that resolve to the same effects (common: most of the >100 flags are
//!   no-ops for any given module) share one compile + NCD score, and a
//!   re-tuned module starts warm from prior runs' compiles. Cache hits of
//!   any tier still *charge* the modelled compile cost, keeping the GA's
//!   time-budget accounting identical to a cache-free run — only measured
//!   wall-clock shrinks, which is what makes a warm run converge to the
//!   same best genome as a cold one.
//! * **Shared baseline** — the `-O0` baseline is compiled exactly once and
//!   its compressed length is reused for every NCD score.
//!
//! Failed compiles (flag vectors that defeat repair) are not fatal: they
//! score a fixed penalty fitness and are counted as constraint violations
//! in [`EngineStats`], so one bad genome can't abort a long tuning run.
//!
//! The *other* deployment shape — the paper's actual client–server farm
//! — plugs in underneath via [`MissExecutor`]: the engine still owns
//! partition, caches, store and stats, but ships the deduplicated miss
//! list to the `evald` service instead of its local pool (see
//! `bintuner::service`). Because everything except the raw
//! compile+score moves with the engine, the two shapes are bit-identical
//! by construction.

use crate::store::{FitnessStore, FlagBits, StoreKey, StoredFitness};
use binrep::{Arch, Binary};
use genetic::{Eval, Evaluator};
use lzc::NcdBaseline;
use minicc::ast::Module;
use minicc::{Compiler, EffectConfig};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Fitness assigned to a genome whose compile fails constraint checking.
/// NCD is non-negative, so any successfully compiled genome outranks it.
pub const FAILED_COMPILE_PENALTY: f64 = -1.0;

/// Worker-pool configuration for [`FitnessEngine`].
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Worker threads per batch. `0` means auto (available parallelism,
    /// capped at 8). `1` evaluates sequentially on the calling thread.
    /// Ignored when a [`MissExecutor`] is installed — the executor's farm
    /// is the parallelism then.
    pub workers: usize,
}

/// The computed outcome of one dispatched miss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissResult {
    /// Fitness, bit-exact as the worker computed it.
    pub fitness: f64,
    /// Whether the compile failed constraint checking (scored
    /// [`FAILED_COMPILE_PENALTY`]).
    pub failed: bool,
    /// Measured wall-clock seconds on the worker (telemetry).
    pub wall_seconds: f64,
}

/// A pluggable backend for a batch's deduplicated miss list — the seam
/// the evaluation service plugs into.
///
/// The engine keeps everything that makes runs reproducible and cheap —
/// constraint pre-screening, all three cache tiers, store recording,
/// stats — and hands an executor only the genomes that genuinely need a
/// compile. An executor must return exactly one [`MissResult`] per miss,
/// in order, and must be a pure function of each genome (bit-identical
/// fitness wherever it runs): that is what makes a service-backed run
/// replay the in-process trajectory exactly.
pub trait MissExecutor: Sync {
    /// Compile + score every miss, preserving order.
    fn execute(&self, misses: &[Vec<bool>]) -> Vec<MissResult>;
}

impl EngineConfig {
    /// The concrete worker count (resolving `0` to auto).
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    }
}

/// Cumulative engine telemetry (drives the engine-scaling bench and the
/// cache-hit column of the iteration database).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Total genome evaluations requested (including cache hits).
    pub evaluations: usize,
    /// Evaluations served from the *in-run* memoization cache (within-
    /// and across-batch duplicates first computed by this engine).
    pub cache_hits: usize,
    /// Evaluations whose result was first served from the persistent
    /// cross-run store — each one a real compile some earlier run paid
    /// for. Repeat accesses to the same entry count as in-run
    /// `cache_hits`, so this is exactly the number of compiles
    /// warm-starting saved.
    pub persistent_hits: usize,
    /// Real compiles this engine performed (misses of every cache tier).
    pub compiles: usize,
    /// Evaluations whose compile failed constraint checking and scored
    /// [`FAILED_COMPILE_PENALTY`], counted once per distinct
    /// configuration per run — including failures first served from the
    /// persistent store, so a warm run reports the same count as the
    /// cold run it replays.
    pub failed_compiles: usize,
    /// Results discarded by the evaluation service's straggler
    /// re-dispatch (a shard answered by more than one client; first
    /// result wins and duplicates are bit-identical). Always 0 for the
    /// in-process pool; filled in from the service telemetry by the
    /// tuner when `TunerConfig::backend` is a service.
    pub duplicate_results: usize,
    /// Measured wall-clock seconds spent inside `evaluate_batch` — the
    /// quantity parallelism reduces (per-item CPU time is on each
    /// [`genetic::EvalRecord::wall_seconds`]).
    pub wall_seconds: f64,
}

impl EngineStats {
    /// Fraction of evaluations served from the in-run cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.evaluations == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.evaluations as f64
        }
    }

    /// Fraction of evaluations served from the persistent store.
    pub fn persistent_hit_rate(&self) -> f64 {
        if self.evaluations == 0 {
            0.0
        } else {
            self.persistent_hits as f64 / self.evaluations as f64
        }
    }
}

/// One memoized evaluation. The modelled compile cost is *not* cached:
/// it depends on the raw flag vector (per-enabled-flag pass cost), not
/// the effect config, so it is recomputed per genome.
#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    fitness: f64,
    failed: bool,
}

/// Interior cache state (one lock: the partition phase touches both
/// levels together).
#[derive(Default)]
struct CacheState {
    /// Exact repaired-flag-vector memo (front level).
    by_flags: HashMap<Vec<bool>, CacheEntry>,
    /// Effect-config memo (back level): distinct flag vectors resolving
    /// to the same effects share one compile.
    by_effect: HashMap<EffectConfig, CacheEntry>,
}

/// The batch fitness engine: compiles genomes, scores them against the
/// shared `-O0` baseline with NCD, in parallel, with memoization.
///
/// Construction compiles the baseline once ([`FitnessEngine::new`]); the
/// engine is then shared immutably across the GA run — all interior
/// state (cache, stats) is behind mutexes, and the hot compile/score path
/// runs lock-free on worker threads.
pub struct FitnessEngine<'a> {
    compiler: &'a Compiler,
    module: &'a Module,
    /// Stable content hash of `module` — the persistent store's key
    /// component, computed once at construction.
    module_hash: u64,
    arch: Arch,
    config: EngineConfig,
    baseline_bin: Binary,
    baseline: NcdBaseline,
    cache: Mutex<CacheState>,
    stats: Mutex<EngineStats>,
    /// Third cache tier: the cross-run store. Consulted during batch
    /// partition (under the partition's store lock, not per-worker) and
    /// fed every fresh result; recovered with
    /// [`FitnessEngine::into_store`] for the end-of-run save.
    store: Option<Mutex<FitnessStore>>,
    /// When set, the deduplicated miss list is dispatched here (the
    /// evaluation service) instead of the local worker pool.
    executor: Option<&'a dyn MissExecutor>,
}

// The engine is shared by reference across scoped worker threads; keep
// that property checked at compile time. `Compiler`, `Module`,
// `NcdBaseline` are all plain data.
const _: fn() = || {
    fn assert_sync<T: Sync>() {}
    assert_sync::<FitnessEngine<'_>>();
    assert_sync::<Compiler>();
    assert_sync::<NcdBaseline>();
    assert_sync::<Module>();
};

impl<'a> FitnessEngine<'a> {
    /// Build an engine for `module`: compiles the `-O0` baseline once and
    /// pre-compresses it for NCD scoring.
    ///
    /// # Errors
    ///
    /// [`crate::TuneError::Baseline`] when the baseline itself fails to
    /// compile (an invalid module; nothing downstream can recover).
    pub fn new(
        compiler: &'a Compiler,
        module: &'a Module,
        arch: Arch,
        config: EngineConfig,
    ) -> Result<FitnessEngine<'a>, crate::TuneError> {
        Self::build(compiler, module, arch, config, None)
    }

    /// Build an engine backed by a persistent cross-run store
    /// (warm-start): entries for this `(module, profile, arch)` serve as
    /// a third cache tier, and every fresh compile is recorded into the
    /// store. Recover it with [`FitnessEngine::into_store`] and call
    /// [`FitnessStore::save`] to persist the run's new results.
    ///
    /// # Errors
    ///
    /// See [`FitnessEngine::new`].
    pub fn with_store(
        compiler: &'a Compiler,
        module: &'a Module,
        arch: Arch,
        config: EngineConfig,
        store: FitnessStore,
    ) -> Result<FitnessEngine<'a>, crate::TuneError> {
        Self::build(compiler, module, arch, config, Some(store))
    }

    fn build(
        compiler: &'a Compiler,
        module: &'a Module,
        arch: Arch,
        config: EngineConfig,
        mut store: Option<FitnessStore>,
    ) -> Result<FitnessEngine<'a>, crate::TuneError> {
        let baseline_bin = compiler
            .compile_preset(module, minicc::OptLevel::O0, arch)
            .map_err(crate::TuneError::Baseline)?;
        let baseline = NcdBaseline::new(binrep::encode_binary(&baseline_bin));
        if let Some(store) = &mut store {
            // Record the module's shape signature so future runs on
            // *other* modules can find this one as a transfer source
            // (prior mining; unchanged features never grow the log).
            store.record_module_features(module.content_hash(), module.features());
        }
        Ok(FitnessEngine {
            compiler,
            module,
            module_hash: module.content_hash(),
            arch,
            config,
            baseline_bin,
            baseline,
            cache: Mutex::new(CacheState::default()),
            stats: Mutex::new(EngineStats::default()),
            store: store.map(Mutex::new),
            executor: None,
        })
    }

    /// Route the miss list through `executor` (the evaluation service)
    /// instead of the local worker pool. Partition, caching, store
    /// recording and stats are unchanged — which is exactly why a
    /// service-backed run is bit-identical to an in-process one.
    pub fn set_executor(&mut self, executor: &'a dyn MissExecutor) {
        self.executor = Some(executor);
    }

    /// Drain the fitness results recorded into the engine's store since
    /// the last drain (the client side of the evaluation service ships
    /// these back for the server-side store; see
    /// [`FitnessStore::drain_pending_fitness`]). Empty for store-less
    /// engines.
    pub fn drain_pending_store(&self) -> Vec<(StoreKey, StoredFitness)> {
        self.store
            .as_ref()
            .map_or_else(Vec::new, |s| s.lock().unwrap().drain_pending_fitness())
    }

    /// The persistent-store key for an effect configuration of this
    /// engine's `(module, profile, arch)`.
    fn store_key(&self, eff: &EffectConfig) -> StoreKey {
        StoreKey::new(
            self.module_hash,
            self.compiler.profile().kind(),
            self.arch,
            eff.stable_digest(),
        )
    }

    /// Recover the persistent store (with this run's fresh results
    /// pending) for the end-of-run save.
    pub fn into_store(self) -> Option<FitnessStore> {
        self.store.map(|s| s.into_inner().unwrap())
    }

    /// The `-O0` baseline binary the engine scores against.
    pub fn baseline_binary(&self) -> &Binary {
        &self.baseline_bin
    }

    /// A snapshot of the engine's telemetry.
    pub fn stats(&self) -> EngineStats {
        *self.stats.lock().unwrap()
    }

    /// Number of distinct flag vectors memoized so far (the exact-vector
    /// front level).
    pub fn cache_len(&self) -> usize {
        self.cache.lock().unwrap().by_flags.len()
    }

    /// Number of distinct effect configurations compiled so far — the
    /// number of *actual* compiles a cold run would have needed.
    pub fn effect_cache_len(&self) -> usize {
        self.cache.lock().unwrap().by_effect.len()
    }

    /// Compile + score one genome (the cold path, run on workers).
    fn evaluate_cold(&self, flags: &[bool]) -> CacheEntry {
        match self.compiler.compile(self.module, flags, self.arch) {
            Ok(bin) => CacheEntry {
                fitness: self.baseline.score(&binrep::encode_binary(&bin)),
                failed: false,
            },
            // A constraint violation that survived repair (or an invalid
            // module): penalize, don't abort — the GA selects against it.
            Err(_) => CacheEntry {
                fitness: FAILED_COMPILE_PENALTY,
                failed: true,
            },
        }
    }
}

/// Which tier resolved a genome during partition.
#[derive(Clone, Copy, PartialEq)]
enum Hit {
    /// Not a cache hit: a fresh constraint penalty that needed no
    /// compile.
    Fresh,
    /// Served from the in-run memo (exact vector or effect config).
    InRun,
    /// First served from the persistent cross-run store.
    Persistent,
}

/// Where a genome's result comes from within one batch.
enum Source {
    /// Resolved during partition: a cache hit, or a fresh constraint
    /// penalty that needed no compile.
    Ready { entry: CacheEntry, hit: Hit },
    /// To be computed: index into the batch's miss list.
    Slot(usize),
}

impl Evaluator for FitnessEngine<'_> {
    fn evaluate_batch(&self, genomes: &[Vec<bool>]) -> Vec<Eval> {
        let batch_start = Instant::now();
        let profile = self.compiler.profile();

        // Resolve each genome's effect config up front (cheap, lock-free).
        // Invalid vectors get `None`: they must not share the effect cache
        // with a valid vector resolving to the same effects.
        let effects: Vec<Option<EffectConfig>> = genomes
            .iter()
            .map(|g| {
                profile
                    .constraints()
                    .check(g)
                    .is_empty()
                    .then(|| EffectConfig::from_flags(profile, g))
            })
            .collect();

        // Partition against the cache tiers: exact flag vector first,
        // then effect config, then the persistent cross-run store. The
        // first effect config unseen by every tier becomes a "miss" to
        // compile; everything else is a hit.
        let mut misses: Vec<(&Vec<bool>, &EffectConfig)> = Vec::new();
        let mut miss_by_eff: HashMap<&EffectConfig, usize> = HashMap::new();
        let mut fresh_failures = 0usize;
        let sources: Vec<Source> = {
            let mut cache = self.cache.lock().unwrap();
            genomes
                .iter()
                .zip(&effects)
                .map(|(g, eff)| {
                    if let Some(entry) = cache.by_flags.get(g) {
                        return Source::Ready {
                            entry: *entry,
                            hit: Hit::InRun,
                        };
                    }
                    let Some(eff) = eff else {
                        // Constraint violation: penalize without compiling
                        // (the compiler would reject it anyway).
                        let entry = CacheEntry {
                            fitness: FAILED_COMPILE_PENALTY,
                            failed: true,
                        };
                        cache.by_flags.insert(g.clone(), entry);
                        fresh_failures += 1;
                        return Source::Ready {
                            entry,
                            hit: Hit::Fresh,
                        };
                    };
                    if let Some(entry) = cache.by_effect.get(eff) {
                        let entry = *entry;
                        cache.by_flags.insert(g.clone(), entry);
                        return Source::Ready {
                            entry,
                            hit: Hit::InRun,
                        };
                    }
                    if let Some(store) = &self.store {
                        // Persistent tier: a hit is promoted into the
                        // in-run memo, so only this first serve counts as
                        // persistent — persistent_hits stays equal to the
                        // number of compiles warm-starting saved.
                        let persisted = store.lock().unwrap().get(&self.store_key(eff));
                        if let Some(hit) = persisted {
                            let entry = CacheEntry {
                                fitness: hit.fitness,
                                failed: hit.failed,
                            };
                            cache.by_effect.insert(eff.clone(), entry);
                            cache.by_flags.insert(g.clone(), entry);
                            return Source::Ready {
                                entry,
                                hit: Hit::Persistent,
                            };
                        }
                    }
                    if let Some(&slot) = miss_by_eff.get(eff) {
                        return Source::Slot(slot);
                    }
                    let slot = misses.len();
                    miss_by_eff.insert(eff, slot);
                    misses.push((g, eff));
                    Source::Slot(slot)
                })
                .collect()
        };

        // Compile + score the misses: on the installed executor (the
        // evaluation service's client farm) when present, else on the
        // local worker pool (strided split: batch items have near-uniform
        // cost, so static scheduling is fine and keeps the hot path
        // allocation-free and lock-free).
        let workers = self.config.resolved_workers().min(misses.len().max(1));
        let mut computed: Vec<Option<(CacheEntry, f64)>> = vec![None; misses.len()];
        if let Some(executor) = self.executor {
            let flags: Vec<Vec<bool>> = misses.iter().map(|(f, _)| (*f).clone()).collect();
            let results = executor.execute(&flags);
            assert_eq!(
                results.len(),
                misses.len(),
                "executor must return one result per miss"
            );
            for (slot, r) in results.into_iter().enumerate() {
                computed[slot] = Some((
                    CacheEntry {
                        fitness: r.fitness,
                        failed: r.failed,
                    },
                    r.wall_seconds,
                ));
            }
        } else if workers <= 1 {
            for (slot, (flags, _)) in misses.iter().enumerate() {
                let t = Instant::now();
                let entry = self.evaluate_cold(flags);
                computed[slot] = Some((entry, t.elapsed().as_secs_f64()));
            }
        } else {
            let misses_ref = &misses;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        scope.spawn(move || {
                            let mut part = Vec::new();
                            let mut i = w;
                            while i < misses_ref.len() {
                                let t = Instant::now();
                                let entry = self.evaluate_cold(misses_ref[i].0);
                                part.push((i, entry, t.elapsed().as_secs_f64()));
                                i += workers;
                            }
                            part
                        })
                    })
                    .collect();
                for h in handles {
                    for (i, entry, wall) in h.join().expect("engine worker panicked") {
                        computed[i] = Some((entry, wall));
                    }
                }
            });
        }

        // Memoize the fresh results at both in-run levels (including the
        // within-batch duplicate vectors that mapped to the same slot),
        // and record them into the persistent store for future runs.
        {
            if let Some(store) = &self.store {
                let mut store = store.lock().unwrap();
                for ((flags, eff), result) in misses.iter().zip(&computed) {
                    let (entry, _) = result.expect("every miss slot computed");
                    store.insert(
                        self.store_key(eff),
                        StoredFitness {
                            fitness: entry.fitness,
                            failed: entry.failed,
                            // The representative vector makes the record
                            // minable (per-flag priors, config transfer).
                            flags: FlagBits::from_bools(flags),
                            // Stamped by the store at insertion.
                            generation: 0,
                        },
                    );
                }
            }
            let mut cache = self.cache.lock().unwrap();
            for ((flags, eff), result) in misses.iter().zip(&computed) {
                let (entry, _) = result.expect("every miss slot computed");
                cache.by_effect.insert((*eff).clone(), entry);
                cache.by_flags.insert((*flags).clone(), entry);
            }
            for (g, src) in genomes.iter().zip(&sources) {
                if let Source::Slot(slot) = src {
                    // Representatives were inserted above; only clone the
                    // key for duplicate vectors not yet memoized.
                    if !cache.by_flags.contains_key(g) {
                        let (entry, _) = computed[*slot].expect("miss computed");
                        cache.by_flags.insert(g.clone(), entry);
                    }
                }
            }
        }

        // Assemble in input order. Cache hits (in-run or persistent)
        // charge the same modelled cost as a recompile (so the GA's
        // budget accounting is cache-agnostic) but report zero measured
        // wall time; within-batch duplicates pay the compile wall time
        // once, on first occurrence.
        let mut first_use = vec![true; misses.len()];
        let mut hits = 0usize;
        let mut persistent = 0usize;
        let mut cold_failures = 0usize;
        let results: Vec<Eval> = genomes
            .iter()
            .zip(sources)
            .map(|(g, src)| {
                let (entry, wall, hit) = match src {
                    Source::Ready { entry, hit } => {
                        if hit == Hit::Persistent {
                            // A failure first served from the store is the
                            // warm analog of a fresh failed compile: count
                            // it once so cold and warm telemetry agree.
                            cold_failures += entry.failed as usize;
                        }
                        (entry, 0.0, hit)
                    }
                    Source::Slot(slot) => {
                        let (entry, wall) = computed[slot].expect("miss computed");
                        if first_use[slot] {
                            first_use[slot] = false;
                            cold_failures += entry.failed as usize;
                            (entry, wall, Hit::Fresh)
                        } else {
                            (entry, 0.0, Hit::InRun)
                        }
                    }
                };
                hits += (hit == Hit::InRun) as usize;
                persistent += (hit == Hit::Persistent) as usize;
                Eval {
                    fitness: entry.fitness,
                    cost_seconds: self.compiler.simulated_compile_seconds(self.module, g),
                    wall_seconds: wall,
                    cache_hit: hit == Hit::InRun,
                    persistent_hit: hit == Hit::Persistent,
                }
            })
            .collect();

        let mut stats = self.stats.lock().unwrap();
        stats.evaluations += genomes.len();
        stats.cache_hits += hits;
        stats.persistent_hits += persistent;
        stats.compiles += misses.len();
        stats.failed_compiles += fresh_failures + cold_failures;
        stats.wall_seconds += batch_start.elapsed().as_secs_f64();
        results
    }
}
