//! # bintuner — auto-tuning binary code difference via iterative compilation
//!
//! The paper's primary contribution (§4): a search-based iterative-
//! compilation framework that drives a genetic algorithm over a compiler's
//! optimization-flag space to *maximize* the binary code difference from
//! the `-O0` baseline, using Normalized Compression Distance as the
//! fitness function, a constraint solver to keep flag sequences valid, and
//! a per-iteration database.
//!
//! Also here: the flag-potency analysis of Figure 7 ([`potency`]), the
//! Obfuscator-LLVM analog used in Figure 8(b) ([`obfuscator`]), and the
//! Pearson-correlation utility behind Figure 10.
//!
//! ## Example
//!
//! ```no_run
//! use bintuner::{Tuner, TunerConfig};
//!
//! let bench = corpus::by_name("462.libquantum").unwrap();
//! let result = Tuner::new(TunerConfig::default()).tune(&bench.module);
//! println!(
//!     "{}: NCD {:.3} after {} iterations",
//!     bench.name, result.best_ncd, result.iterations
//! );
//! ```

#![warn(missing_docs)]

pub mod db;
pub mod obfuscator;
pub mod potency;
pub mod tuner;

pub use db::{Database, IterationRow};
pub use obfuscator::{obfuscate, ObfuscatorConfig};
pub use potency::{flag_potency, pearson, FlagPotency};
pub use tuner::{TuneResult, Tuner, TunerConfig};
