//! # bintuner — auto-tuning binary code difference via iterative compilation
//!
//! The paper's primary contribution (§4): a search-based iterative-
//! compilation framework that drives a genetic algorithm over a compiler's
//! optimization-flag space to *maximize* the binary code difference from
//! the `-O0` baseline, using Normalized Compression Distance as the
//! fitness function, a constraint solver to keep flag sequences valid, and
//! a per-iteration database.
//!
//! Also here: the flag-potency analysis of Figure 7 ([`potency`]), the
//! Obfuscator-LLVM analog used in Figure 8(b) ([`obfuscator`]), and the
//! Pearson-correlation utility behind Figure 10.
//!
//! Fitness evaluation — the hot path — runs through the batch
//! [`engine::FitnessEngine`]: whole GA generations are compiled and
//! NCD-scored in parallel across a worker pool, duplicate genomes are
//! served from a memoization cache, and the `-O0` baseline is shared by
//! every evaluation (the paper's client–server split of Figure 4, as an
//! in-process pool). With [`TunerConfig::cache_path`] set, results also
//! persist across runs in a [`store::FitnessStore`] (Figure 4's
//! database, "stored for future exploration"), so re-tuning the same
//! target starts warm; see `docs/ARCHITECTURE.md` for the full map.
//!
//! ## Example
//!
//! ```no_run
//! use bintuner::{Tuner, TunerConfig};
//!
//! let bench = corpus::by_name("462.libquantum").unwrap();
//! let result = Tuner::new(TunerConfig::default())
//!     .tune(&bench.module)
//!     .expect("tuning run");
//! println!(
//!     "{}: NCD {:.3} after {} iterations ({:.0}% cache hits)",
//!     bench.name,
//!     result.best_ncd,
//!     result.iterations,
//!     100.0 * result.db.cache_hit_rate()
//! );
//! ```

#![warn(missing_docs)]

pub mod daemon;
pub mod db;
pub mod engine;
pub mod farm;
pub mod obfuscator;
pub mod potency;
pub mod priors;
pub mod service;
pub mod store;
pub mod tuner;

pub use daemon::{Daemon, DaemonAddr, DaemonClient, DaemonConfig, DaemonHandle};
pub use db::{Database, IterationRow};
pub use engine::{
    EngineConfig, EngineStats, EngineTelemetry, FitnessEngine, MissExecutor, MissResult,
    FAILED_COMPILE_PENALTY,
};
pub use farm::{BackoffSchedule, Supervisor, SupervisorVerdict};
pub use obfuscator::{obfuscate, ObfuscatorConfig};
pub use potency::{
    flag_potency, marginal_potency, marginal_potency_weighted, pearson, FlagMarginal, FlagPotency,
};
pub use priors::{mine_prior, PotencyPrior, PriorConfig, PriorMode};
pub use service::{
    FarmTelemetry, FaultKind, FaultPlan, LivenessConfig, ProcessFarm, ServiceConfig,
    ServiceSummary, TransportKind, WorkerMode,
};
pub use store::{
    arch_tag, shard_for, shard_for_module, write_v3_file, ArtifactRetention, ArtifactStore,
    AstArtifactKey, FitnessStore, FlagBits, LoadReport, LowerArtifactKey, PendingArtifacts,
    SaveOutcome, StoreKey, StoreLock, StoreTelemetry, StoredFitness, DEFAULT_SHARD_COUNT,
};
pub use tuner::{Backend, PersistSummary, PriorSummary, TuneError, TuneResult, Tuner, TunerConfig};
