//! Flag-potency analysis (paper §5.3, Figure 7): approximate each flag's
//! contribution by removing it from the tuned sequence and measuring the
//! BinHunt difference-score drop, normalizing all drops to sum to 100%.

use binrep::Arch;
use minicc::ast::Module;
use minicc::Compiler;

/// One flag's measured potency.
#[derive(Debug, Clone, PartialEq)]
pub struct FlagPotency {
    /// Flag name.
    pub name: &'static str,
    /// Normalized potency share (all shares sum to ~1.0).
    pub share: f64,
    /// Raw BinHunt score drop when the flag is removed.
    pub raw_drop: f64,
}

/// Compute leave-one-out potencies of the enabled flags in `tuned_flags`.
///
/// Returns flags sorted by descending share, plus the residual share of
/// the remaining flags (Figure 7's "N other flags" row is
/// `1 − Σ top-k shares`).
pub fn flag_potency(
    compiler: &Compiler,
    module: &Module,
    tuned_flags: &[bool],
    arch: Arch,
    beam: usize,
) -> Vec<FlagPotency> {
    let baseline = compiler
        .compile_preset(module, minicc::OptLevel::O0, arch)
        .expect("O0");
    let tuned = compiler
        .compile(module, tuned_flags, arch)
        .expect("tuned flags compile");
    let tuned_score = binhunt::diff_binaries_with_beam(&baseline, &tuned, beam).difference;
    let profile = compiler.profile();
    let mut drops: Vec<(usize, f64)> = Vec::new();
    for (i, &on) in tuned_flags.iter().enumerate() {
        if !on {
            continue;
        }
        let mut flags = tuned_flags.to_vec();
        flags[i] = false;
        // Removing a flag can orphan dependent flags: repair (which only
        // needs to *disable* dependents, keeping the ablation local).
        let flags = profile.constraints().repair(&flags, i as u64);
        let bin = match compiler.compile(module, &flags, arch) {
            Ok(b) => b,
            Err(_) => continue,
        };
        let score = binhunt::diff_binaries_with_beam(&baseline, &bin, beam).difference;
        drops.push((i, (tuned_score - score).max(0.0)));
    }
    let total: f64 = drops.iter().map(|(_, d)| d).sum();
    let mut out: Vec<FlagPotency> = drops
        .into_iter()
        .map(|(i, d)| FlagPotency {
            name: profile.flags()[i].name,
            share: if total > 0.0 { d / total } else { 0.0 },
            raw_drop: d,
        })
        .collect();
    out.sort_by(|a, b| b.share.partial_cmp(&a.share).unwrap());
    out
}

/// Pearson correlation coefficient between two equal-length samples
/// (paper Figure 10: NCD vs BinHunt score correlation).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use minicc::{CompilerKind, OptLevel};

    #[test]
    fn potency_shares_normalize() {
        let bench = corpus::by_name("429.mcf").unwrap();
        let cc = Compiler::new(CompilerKind::Gcc);
        let flags = cc.profile().preset(OptLevel::O3);
        let pot = flag_potency(&cc, &bench.module, &flags, Arch::X86, 4);
        assert!(!pot.is_empty());
        let total: f64 = pot.iter().map(|p| p.share).sum();
        assert!((total - 1.0).abs() < 1e-6 || total == 0.0, "{total}");
        // Sorted descending.
        for w in pot.windows(2) {
            assert!(w[0].share >= w[1].share);
        }
    }

    #[test]
    fn pearson_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[5.0, 5.0, 5.0, 5.0]), 0.0);
    }
}
