//! Flag-potency analysis (paper §5.3, Figure 7): approximate each flag's
//! contribution by removing it from the tuned sequence and measuring the
//! BinHunt difference-score drop, normalizing all drops to sum to 100%.
//!
//! Two potency estimators live here:
//!
//! * [`flag_potency`] — the paper's *leave-one-out* ablation on one tuned
//!   sequence (expensive: one recompile + BinHunt diff per enabled flag).
//! * [`FlagMarginal`] / [`marginal_potency`] — *observational* marginal
//!   potency aggregated over many already-scored `(flag vector, fitness)`
//!   samples, e.g. everything the persistent fitness store accumulated
//!   across runs. Free at mining time (no compiles), and the statistical
//!   substrate `bintuner::priors` turns into search priors.

use binrep::Arch;
use minicc::ast::Module;
use minicc::Compiler;

/// One flag's measured potency.
#[derive(Debug, Clone, PartialEq)]
pub struct FlagPotency {
    /// Flag name.
    pub name: &'static str,
    /// Normalized potency share (all shares sum to ~1.0).
    pub share: f64,
    /// Raw BinHunt score drop when the flag is removed.
    pub raw_drop: f64,
}

/// Compute leave-one-out potencies of the enabled flags in `tuned_flags`.
///
/// Returns flags sorted by descending share, plus the residual share of
/// the remaining flags (Figure 7's "N other flags" row is
/// `1 − Σ top-k shares`).
pub fn flag_potency(
    compiler: &Compiler,
    module: &Module,
    tuned_flags: &[bool],
    arch: Arch,
    beam: usize,
) -> Vec<FlagPotency> {
    let baseline = compiler
        .compile_preset(module, minicc::OptLevel::O0, arch)
        .expect("O0");
    let tuned = compiler
        .compile(module, tuned_flags, arch)
        .expect("tuned flags compile");
    let tuned_score = binhunt::diff_binaries_with_beam(&baseline, &tuned, beam).difference;
    let profile = compiler.profile();
    let mut drops: Vec<(usize, f64)> = Vec::new();
    for (i, &on) in tuned_flags.iter().enumerate() {
        if !on {
            continue;
        }
        let mut flags = tuned_flags.to_vec();
        flags[i] = false;
        // Removing a flag can orphan dependent flags: repair (which only
        // needs to *disable* dependents, keeping the ablation local).
        let flags = profile.constraints().repair(&flags, i as u64);
        let bin = match compiler.compile(module, &flags, arch) {
            Ok(b) => b,
            Err(_) => continue,
        };
        let score = binhunt::diff_binaries_with_beam(&baseline, &bin, beam).difference;
        drops.push((i, (tuned_score - score).max(0.0)));
    }
    let total: f64 = drops.iter().map(|(_, d)| d).sum();
    let mut out: Vec<FlagPotency> = drops
        .into_iter()
        .map(|(i, d)| FlagPotency {
            name: profile.flags()[i].name,
            share: if total > 0.0 { d / total } else { 0.0 },
            raw_drop: d,
        })
        .collect();
    out.sort_by(|a, b| b.share.partial_cmp(&a.share).unwrap());
    out
}

/// Running marginal-potency statistics for one flag, accumulated over
/// scored (and optionally *weighted*) flag vectors.
///
/// The marginal potency of a flag is the weighted mean fitness of the
/// samples that had it enabled minus that of those that did not — a
/// cheap observational estimate of Figure 7's ablation signal, computable
/// from stored records alone. It is confounded by co-occurring flags
/// (presets enable groups together), which is why consumers weight it by
/// [`FlagMarginal::confidence`] instead of trusting it outright.
///
/// Weights are how age decay enters: the prior miner down-weights stale
/// store records ([`crate::PriorConfig::decay_half_life`]), shrinking
/// both their pull on the mean *and* their contribution to support. Unit
/// weights reproduce the unweighted statistics **bit-for-bit** (summing
/// `1.0` per sample is exact integer arithmetic in an f64 at any
/// realistic store size) — the differential guarantee the default
/// configuration rests on.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FlagMarginal {
    /// Samples with the flag enabled (raw count, undecayed).
    pub n_on: usize,
    /// Samples with the flag disabled (raw count, undecayed).
    pub n_off: usize,
    /// Weighted fitness sum over enabled samples.
    pub sum_on: f64,
    /// Weighted fitness sum over disabled samples.
    pub sum_off: f64,
    /// Weight sum over enabled samples (equals `n_on` at unit weight).
    pub w_on: f64,
    /// Weight sum over disabled samples (equals `n_off` at unit weight).
    pub w_off: f64,
}

impl FlagMarginal {
    /// Fold in one sample at unit weight.
    pub fn add(&mut self, enabled: bool, fitness: f64) {
        self.add_weighted(enabled, fitness, 1.0);
    }

    /// Fold in one sample with an explicit weight (age decay). Weights
    /// must be in `(0, 1]`; non-finite or non-positive weights are
    /// dropped (a fully decayed sample teaches nothing).
    pub fn add_weighted(&mut self, enabled: bool, fitness: f64, weight: f64) {
        if !(weight.is_finite() && weight > 0.0) {
            return;
        }
        if enabled {
            self.n_on += 1;
            self.sum_on += weight * fitness;
            self.w_on += weight;
        } else {
            self.n_off += 1;
            self.sum_off += weight * fitness;
            self.w_off += weight;
        }
    }

    /// Weighted mean fitness with the flag on (0 without on-support).
    pub fn mean_on(&self) -> f64 {
        if self.w_on <= 0.0 {
            0.0
        } else {
            self.sum_on / self.w_on
        }
    }

    /// Weighted mean fitness with the flag off (0 without off-support).
    pub fn mean_off(&self) -> f64 {
        if self.w_off <= 0.0 {
            0.0
        } else {
            self.sum_off / self.w_off
        }
    }

    /// Marginal potency: `mean_on − mean_off`. Zero unless both sides
    /// have support (a one-sided flag carries no contrast).
    pub fn potency(&self) -> f64 {
        if self.w_on <= 0.0 || self.w_off <= 0.0 {
            0.0
        } else {
            self.mean_on() - self.mean_off()
        }
    }

    /// Confidence weight in `[0, 1]`: the balanced *weighted* support
    /// ramp `min(w_on, w_off) / min_support`, saturating at 1. A flag
    /// seen only ever on (or only ever off) has zero confidence — its
    /// potency is not identified by the data — and decayed old records
    /// count proportionally less toward support.
    pub fn confidence(&self, min_support: usize) -> f64 {
        let balanced = self.w_on.min(self.w_off);
        if balanced <= 0.0 {
            0.0
        } else {
            (balanced / min_support.max(1) as f64).min(1.0)
        }
    }
}

/// Aggregate per-flag [`FlagMarginal`]s over `(flag vector, fitness)`
/// samples at unit weight. Vectors whose width differs from `n_flags`
/// are skipped (they were recorded against a different profile).
pub fn marginal_potency<'a>(
    n_flags: usize,
    samples: impl IntoIterator<Item = (&'a [bool], f64)>,
) -> Vec<FlagMarginal> {
    marginal_potency_weighted(n_flags, samples.into_iter().map(|(f, v)| (f, v, 1.0)))
}

/// Aggregate per-flag [`FlagMarginal`]s over weighted
/// `(flag vector, fitness, weight)` samples — the age-decayed mining
/// path. Unit weights make this identical (bit-for-bit) to
/// [`marginal_potency`].
pub fn marginal_potency_weighted<'a>(
    n_flags: usize,
    samples: impl IntoIterator<Item = (&'a [bool], f64, f64)>,
) -> Vec<FlagMarginal> {
    let mut stats = vec![FlagMarginal::default(); n_flags];
    for (flags, fitness, weight) in samples {
        if flags.len() != n_flags {
            continue;
        }
        for (stat, &on) in stats.iter_mut().zip(flags) {
            stat.add_weighted(on, fitness, weight);
        }
    }
    stats
}

/// Pearson correlation coefficient between two equal-length samples
/// (paper Figure 10: NCD vs BinHunt score correlation).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use minicc::{CompilerKind, OptLevel};

    #[test]
    fn potency_shares_normalize() {
        let bench = corpus::by_name("429.mcf").unwrap();
        let cc = Compiler::new(CompilerKind::Gcc);
        let flags = cc.profile().preset(OptLevel::O3);
        let pot = flag_potency(&cc, &bench.module, &flags, Arch::X86, 4);
        assert!(!pot.is_empty());
        let total: f64 = pot.iter().map(|p| p.share).sum();
        assert!((total - 1.0).abs() < 1e-6 || total == 0.0, "{total}");
        // Sorted descending.
        for w in pot.windows(2) {
            assert!(w[0].share >= w[1].share);
        }
    }

    #[test]
    fn marginal_potency_recovers_a_planted_signal() {
        // Flag 0 adds +0.3 to fitness, flag 1 is pure noise-free neutral,
        // flag 2 subtracts 0.2. The marginals must recover the signs and
        // magnitudes exactly on this noiseless design.
        let mut samples: Vec<(Vec<bool>, f64)> = Vec::new();
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let fitness = 0.5 + if a { 0.3 } else { 0.0 } - if c { 0.2 } else { 0.0 };
                    samples.push((vec![a, b, c], fitness));
                }
            }
        }
        let stats = marginal_potency(3, samples.iter().map(|(f, v)| (f.as_slice(), *v)));
        assert!(
            (stats[0].potency() - 0.3).abs() < 1e-12,
            "{}",
            stats[0].potency()
        );
        assert!(stats[1].potency().abs() < 1e-12);
        assert!((stats[2].potency() + 0.2).abs() < 1e-12);
        assert_eq!(stats[0].n_on, 4);
        assert_eq!(stats[0].n_off, 4);
        assert_eq!(stats[0].confidence(4), 1.0);
        assert_eq!(stats[0].confidence(8), 0.5);
    }

    #[test]
    fn one_sided_flags_have_no_identified_potency() {
        let samples = [(vec![true, false], 0.9), (vec![true, false], 0.4)];
        let stats = marginal_potency(2, samples.iter().map(|(f, v)| (f.as_slice(), *v)));
        // Flag 0 always on, flag 1 always off: no contrast either way.
        assert_eq!(stats[0].potency(), 0.0);
        assert_eq!(stats[1].potency(), 0.0);
        assert_eq!(stats[0].confidence(1), 0.0);
        assert_eq!(stats[1].confidence(1), 0.0);
    }

    #[test]
    fn mismatched_sample_widths_are_skipped() {
        let samples = [
            (vec![true, true], 1.0),
            (vec![true], 100.0), // foreign profile: ignored
        ];
        let stats = marginal_potency(2, samples.iter().map(|(f, v)| (f.as_slice(), *v)));
        assert_eq!(stats[0].n_on, 1);
        assert_eq!(stats[0].sum_on, 1.0);
    }

    #[test]
    fn unit_weights_reproduce_unweighted_stats_bit_for_bit() {
        let samples: Vec<(Vec<bool>, f64)> = (0..37)
            .map(|i| (vec![i % 2 == 0, i % 3 == 0, i % 5 == 0], 0.1 * i as f64))
            .collect();
        let plain = marginal_potency(3, samples.iter().map(|(f, v)| (f.as_slice(), *v)));
        let weighted =
            marginal_potency_weighted(3, samples.iter().map(|(f, v)| (f.as_slice(), *v, 1.0)));
        for (a, b) in plain.iter().zip(&weighted) {
            assert_eq!(a, b);
            assert_eq!(a.potency().to_bits(), b.potency().to_bits());
            assert_eq!(a.confidence(8).to_bits(), b.confidence(8).to_bits());
            assert_eq!(a.w_on, a.n_on as f64);
        }
    }

    #[test]
    fn decayed_samples_lose_pull_and_support() {
        // Two eras disagree about flag 0: old records say it is great,
        // recent ones say it is useless. Down-weighting the old era must
        // flip the sign toward the recent evidence and shrink confidence.
        let mut fresh_only = FlagMarginal::default();
        let mut mixed = FlagMarginal::default();
        for _ in 0..4 {
            // Old era, weight 0.1: flag on => high fitness.
            mixed.add_weighted(true, 0.9, 0.1);
            mixed.add_weighted(false, 0.1, 0.1);
            // Recent era, weight 1.0: flag on => slightly *worse*.
            for m in [&mut fresh_only, &mut mixed] {
                m.add_weighted(true, 0.4, 1.0);
                m.add_weighted(false, 0.5, 1.0);
            }
        }
        assert!(mixed.potency() < 0.0, "recent evidence dominates");
        assert!(mixed.potency() > fresh_only.potency(), "old era still tugs");
        // Weighted support: 4*0.1 + 4*1.0 per side.
        assert!((mixed.w_on - 4.4).abs() < 1e-12);
        assert!(mixed.confidence(8) < 1.0);
        // Degenerate weights are dropped, not poison.
        let mut m = FlagMarginal::default();
        m.add_weighted(true, 1.0, 0.0);
        m.add_weighted(true, 1.0, f64::NAN);
        m.add_weighted(true, 1.0, -2.0);
        assert_eq!(m, FlagMarginal::default());
    }

    #[test]
    fn pearson_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[5.0, 5.0, 5.0, 5.0]), 0.0);
    }
}
