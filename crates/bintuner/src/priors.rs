//! Flag-potency priors mined from the persistent fitness store — the
//! paper's "future exploration" made operational.
//!
//! Ren et al. close by proposing to *learn* which optimization flags
//! actually move binary difference instead of searching blindly each run,
//! and Brown et al.'s compiler-impact study (PAPERS.md) observes that
//! per-flag effects are stable enough across programs to transfer. The
//! [`crate::store::FitnessStore`] accumulates exactly the raw material:
//! every compiled variant's `(module, flag vector, fitness)` across all
//! prior runs. This module distills it into a [`PotencyPrior`]:
//!
//! * **Per-flag marginal potency** — [`crate::potency::marginal_potency`]
//!   aggregated over every stored record for the same compiler profile
//!   and architecture, each flag weighted by a balanced-support
//!   confidence (a flag the store only ever saw enabled teaches nothing).
//! * **Nearest-module config transfer** — stored modules are compared to
//!   the tuning target by their [`minicc::ModuleFeatures`] shape
//!   signature (the perturbation-tolerant cousin of
//!   [`minicc::ast::Module::content_hash`]); the top-k best-scoring
//!   stored configs of the nearest module become seeds for the GA's
//!   initial population ([`genetic::GaParams::seeded_initial`]).
//! * **Mutation bias** — the confidence-weighted potency profile becomes
//!   a [`genetic::MutationBias`] table: historically potent flags mutate
//!   more, historically inert ones less.
//!
//! The subsystem is differential-by-construction: an **empty** store
//! mines to an empty prior — no seeds, uniform bias — so a priors-on run
//! over a fresh store is *bit-identical* to a cold unseeded run (the
//! harness in `tests/priors.rs` pins this, alongside
//! [`PriorMode::Off`]'s bit-identity to the historical tuner).

use crate::potency::{marginal_potency_weighted, FlagMarginal};
use crate::store::{arch_tag, FitnessStore};
use binrep::Arch;
use genetic::MutationBias;
use minicc::ast::Module;
use minicc::{CompilerProfile, ModuleFeatures};

/// How the tuner uses a mined prior (see [`crate::TunerConfig::priors`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PriorMode {
    /// No mining: the tuner is bit-identical to a prior-free build.
    #[default]
    Off,
    /// Seed the initial population with transferred configs; leave
    /// mutation untouched.
    SeedOnly,
    /// Seed the initial population *and* bias per-flag mutation rates by
    /// mined potency.
    SeedAndBias,
}

impl std::fmt::Display for PriorMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PriorMode::Off => "off",
            PriorMode::SeedOnly => "seed-only",
            PriorMode::SeedAndBias => "seed+bias",
        })
    }
}

/// Mining and application knobs.
#[derive(Debug, Clone)]
pub struct PriorConfig {
    /// Seeds transferred from the nearest module (distinct best-scoring
    /// configs; fewer if the module has fewer stored successes).
    pub top_k_seeds: usize,
    /// Balanced samples per side at which a flag's potency reaches full
    /// confidence (see [`FlagMarginal::confidence`]).
    pub min_support: usize,
    /// Half-width of the mutation-weight band: weights span
    /// `[1 − bias_span, 1 + bias_span]`, scaled by per-flag confidence.
    pub bias_span: f64,
    /// Age decay of mined records, in store *generations* (one
    /// generation = one load→save cycle of the store; see
    /// [`FitnessStore::generation`]): a record `age` generations old
    /// contributes weight `0.5^(age / decay_half_life)` to the per-flag
    /// marginals — both its pull on the mean *and* its support — so a
    /// store polluted by a long-gone compiler era stops steering
    /// mutation. `0.0` (the default) disables decay and is **bit-for-bit
    /// identical** to pre-decay mining; seeds are never decayed (a
    /// stored best config is a fact, not a trend).
    pub decay_half_life: f64,
}

impl Default for PriorConfig {
    fn default() -> PriorConfig {
        PriorConfig {
            top_k_seeds: 6,
            min_support: 8,
            bias_span: 0.5,
            decay_half_life: 0.0,
        }
    }
}

/// A prior mined from the store: per-flag statistics plus transferable
/// seed configurations (see module docs).
#[derive(Debug, Clone)]
pub struct PotencyPrior {
    /// Chromosome width the prior was mined against.
    pub n_flags: usize,
    /// Per-flag marginal statistics, index-aligned with the profile.
    pub marginals: Vec<FlagMarginal>,
    /// Top-k stored configs of the nearest module, best first — the GA's
    /// initial-population seeds.
    pub seeds: Vec<Vec<bool>>,
    /// Best stored fitness among [`PotencyPrior::seeds`] (what the
    /// transfer "promises"; `None` without seeds).
    pub seed_best_fitness: Option<f64>,
    /// Content hash of the module the seeds came from.
    pub source_module: Option<u64>,
    /// Shape distance from the tuning target to the source module
    /// (0 = the same module; `None` without a source).
    pub source_distance: Option<f64>,
    /// Store records that matched the profile/arch and carried a usable
    /// flag vector.
    pub mined_records: usize,
}

impl PotencyPrior {
    /// Whether the store taught nothing (no matching records): an empty
    /// prior seeds nothing and biases nothing, by construction.
    pub fn is_empty(&self) -> bool {
        self.mined_records == 0
    }

    /// The confidence-weighted mutation-weight table (see
    /// [`PriorConfig::bias_span`]): flags at the top of the mined
    /// |potency| range mutate up to `1 + span` times the base rate,
    /// flags with no measured effect down to `1 − span`, and flags with
    /// no confidence stay at exactly `1.0`. An empty prior yields
    /// [`MutationBias::uniform`], keeping the GA bit-identical.
    pub fn mutation_bias(&self, cfg: &PriorConfig) -> MutationBias {
        if self.is_empty() {
            return MutationBias::uniform();
        }
        let max_abs = self
            .marginals
            .iter()
            .map(|m| m.potency().abs())
            .fold(0.0f64, f64::max);
        if max_abs <= 0.0 {
            return MutationBias::uniform();
        }
        let weights = self
            .marginals
            .iter()
            .map(|m| {
                let norm = m.potency().abs() / max_abs; // in [0, 1]
                let conf = m.confidence(cfg.min_support);
                1.0 + cfg.bias_span * conf * (2.0 * norm - 1.0)
            })
            .collect();
        MutationBias::from_weights(weights)
    }

    /// How many flags the bias table moves off neutral (reporting).
    pub fn biased_flag_count(&self, cfg: &PriorConfig) -> usize {
        self.mutation_bias(cfg)
            .weights()
            .map_or(0, |w| w.iter().filter(|&&x| x != 1.0).count())
    }
}

/// Mine `store` into a [`PotencyPrior`] for tuning `module` with
/// `profile` on `arch`.
///
/// Only records written by the same compiler profile and architecture
/// participate; failed compiles and records without a same-width flag
/// vector are skipped. All tie-breaks are deterministic (sorted by
/// fitness bits, then flag vector, then module hash), so mining the same
/// store always yields the same prior — the property the differential
/// harness rests on.
pub fn mine_prior(
    store: &mut FitnessStore,
    profile: &CompilerProfile,
    arch: Arch,
    module: &Module,
    cfg: &PriorConfig,
) -> PotencyPrior {
    let n_flags = profile.n_flags();
    let compiler = profile.kind().stable_id();
    let arch = arch_tag(arch);

    // Usable samples: (module hash, flag vector, fitness, age weight),
    // deterministic order (the store's map iteration order is not).
    let current_gen = store.generation();
    let age_weight = |record_gen: u32| -> f64 {
        if cfg.decay_half_life > 0.0 {
            let age = f64::from(current_gen.saturating_sub(record_gen));
            0.5f64.powf(age / cfg.decay_half_life)
        } else {
            // Exactly 1.0: the unit-weight path is bit-identical to
            // unweighted mining (the default's differential guarantee).
            1.0
        }
    };
    let mut samples: Vec<(u64, Vec<bool>, f64, f64)> = store
        .entries()
        .into_iter()
        .filter(|(k, v)| {
            k.compiler == compiler && k.arch == arch && !v.failed && v.flags.len() == n_flags
        })
        .map(|(k, v)| {
            (
                k.module_hash,
                v.flags.to_bools(),
                v.fitness,
                age_weight(v.generation),
            )
        })
        .collect();
    samples.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then_with(|| b.2.total_cmp(&a.2))
            .then_with(|| a.1.cmp(&b.1))
    });

    let marginals = marginal_potency_weighted(
        n_flags,
        samples.iter().map(|(_, f, v, w)| (f.as_slice(), *v, *w)),
    );

    // Nearest module by shape features, among modules that actually have
    // usable samples. Ties break toward the lower hash.
    let target = module.features();
    let mut candidates: Vec<(f64, u64, ModuleFeatures)> = store
        .modules_with_features()
        .into_iter()
        .filter(|(h, _)| samples.iter().any(|(sh, ..)| sh == h))
        .map(|(h, f)| (target.distance(&f), h, f))
        .collect();
    candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let source = candidates.first();

    // Top-k distinct configs of the source module, by stored fitness.
    let mut seeds: Vec<Vec<bool>> = Vec::new();
    let mut seed_best_fitness = None;
    if let Some(&(_, source_hash, _)) = source {
        let mut of_source: Vec<&(u64, Vec<bool>, f64, f64)> =
            samples.iter().filter(|(h, ..)| *h == source_hash).collect();
        of_source.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.1.cmp(&b.1)));
        for (_, flags, fitness, _) in of_source {
            if seeds.len() >= cfg.top_k_seeds {
                break;
            }
            if seeds.contains(flags) {
                continue;
            }
            seed_best_fitness.get_or_insert(*fitness);
            seeds.push(flags.clone());
        }
    }

    PotencyPrior {
        n_flags,
        marginals,
        seeds,
        seed_best_fitness,
        source_module: source.map(|&(_, h, _)| h),
        source_distance: source.map(|&(d, _, _)| d),
        mined_records: samples.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{FlagBits, StoreKey, StoredFitness};
    use minicc::CompilerKind;

    fn profile() -> CompilerProfile {
        CompilerProfile::new(CompilerKind::Gcc)
    }

    fn module(name: &str) -> Module {
        corpus::by_name(name).unwrap().module
    }

    fn stored(profile: &CompilerProfile, flags: &[bool], fitness: f64) -> StoredFitness {
        let _ = profile;
        StoredFitness {
            fitness,
            failed: false,
            flags: FlagBits::from_bools(flags),
            generation: 0,
        }
    }

    fn key_for(profile: &CompilerProfile, module: &Module, flags: &[bool], salt: u128) -> StoreKey {
        // A unique digest per distinct vector is all mining needs; reuse
        // the real one where convenient but salt to avoid collisions in
        // hand-built fixtures.
        let _ = flags;
        StoreKey::new(module.content_hash(), profile.kind(), Arch::X86, salt)
    }

    #[test]
    fn empty_store_mines_an_empty_prior() {
        let p = profile();
        let m = module("429.mcf");
        let prior = mine_prior(
            &mut FitnessStore::in_memory(),
            &p,
            Arch::X86,
            &m,
            &PriorConfig::default(),
        );
        assert!(prior.is_empty());
        assert!(prior.seeds.is_empty());
        assert_eq!(prior.source_module, None);
        assert_eq!(prior.seed_best_fitness, None);
        assert!(prior.mutation_bias(&PriorConfig::default()).is_uniform());
        assert_eq!(prior.biased_flag_count(&PriorConfig::default()), 0);
    }

    #[test]
    fn mining_is_deterministic_and_filters_foreign_records() {
        let p = profile();
        let m = module("429.mcf");
        let other = module("473.astar");
        let mut store = FitnessStore::in_memory();
        store.record_module_features(m.content_hash(), m.features());
        store.record_module_features(other.content_hash(), other.features());

        let mut flags_a = vec![false; p.n_flags()];
        flags_a[0] = true;
        let mut flags_b = vec![false; p.n_flags()];
        flags_b[1] = true;
        store.insert(key_for(&p, &m, &flags_a, 1), stored(&p, &flags_a, 0.8));
        store.insert(key_for(&p, &m, &flags_b, 2), stored(&p, &flags_b, 0.6));
        // Foreign arch, failed compile, and wrong-width records must all
        // be invisible to mining.
        store.insert(
            StoreKey::new(m.content_hash(), CompilerKind::Gcc, Arch::Arm, 3),
            stored(&p, &flags_a, 9.0),
        );
        store.insert(
            key_for(&p, &m, &flags_a, 4),
            StoredFitness {
                fitness: 9.0,
                failed: true,
                flags: FlagBits::from_bools(&flags_a),
                generation: 0,
            },
        );
        store.insert(
            key_for(&p, &m, &flags_a, 5),
            StoredFitness {
                fitness: 9.0,
                failed: false,
                flags: FlagBits::from_bools(&[true, false]),
                generation: 0,
            },
        );

        let cfg = PriorConfig::default();
        let prior = mine_prior(&mut store, &p, Arch::X86, &m, &cfg);
        assert_eq!(prior.mined_records, 2);
        // Same module present in the store: it is its own nearest source.
        assert_eq!(prior.source_module, Some(m.content_hash()));
        assert_eq!(prior.source_distance, Some(0.0));
        // Seeds are the stored configs, best fitness first.
        assert_eq!(prior.seeds, vec![flags_a.clone(), flags_b.clone()]);
        assert_eq!(prior.seed_best_fitness, Some(0.8));

        let again = mine_prior(&mut store, &p, Arch::X86, &m, &cfg);
        assert_eq!(prior.seeds, again.seeds);
        assert_eq!(prior.source_module, again.source_module);
    }

    #[test]
    fn transfer_picks_the_shape_nearest_module() {
        let p = profile();
        // Tune 605.mcf_s (a scaled variant of 429.mcf's profile) against
        // a store holding 429.mcf (shape-near) and Coreutils
        // (switch/string-heavy, shape-far).
        let target = module("605.mcf_s");
        let near = module("429.mcf");
        let far = corpus::coreutils().module;
        assert!(
            target.features().distance(&near.features())
                < target.features().distance(&far.features())
        );

        let mut store = FitnessStore::in_memory();
        store.record_module_features(near.content_hash(), near.features());
        store.record_module_features(far.content_hash(), far.features());
        let mut near_flags = vec![false; p.n_flags()];
        near_flags[2] = true;
        let far_flags = vec![false; p.n_flags()];
        store.insert(
            key_for(&p, &near, &near_flags, 1),
            stored(&p, &near_flags, 0.5),
        );
        store.insert(
            key_for(&p, &far, &far_flags, 2),
            stored(&p, &far_flags, 0.9),
        );

        let prior = mine_prior(&mut store, &p, Arch::X86, &target, &PriorConfig::default());
        assert_eq!(prior.source_module, Some(near.content_hash()));
        assert_eq!(prior.seeds, vec![near_flags]);
        // The far module's higher score must not override shape proximity
        // (its configs are tuned to a different program).
        assert_eq!(prior.seed_best_fitness, Some(0.5));
    }

    #[test]
    fn age_decay_shifts_mining_toward_recent_generations() {
        // Two store generations disagree about flag 0: the old era says
        // it helps, the recent era says it hurts. Undecayed mining
        // averages them; decayed mining must side with the recent era.
        // Generations are planted the only way real stores get them:
        // load→insert→save cycles against a file.
        let path =
            std::env::temp_dir().join(format!("bintuner_priors_decay_{}.btfs", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        let p = profile();
        let m = module("429.mcf");
        let mut on = vec![false; p.n_flags()];
        on[0] = true;
        let off = vec![false; p.n_flags()];

        // Generation 0: flag 0 on => great (two samples per side).
        let mut era0 = FitnessStore::load(&path);
        era0.record_module_features(m.content_hash(), m.features());
        era0.insert(key_for(&p, &m, &on, 1), stored(&p, &on, 0.9));
        era0.insert(key_for(&p, &m, &on, 2), stored(&p, &on, 0.8));
        era0.insert(key_for(&p, &m, &off, 3), stored(&p, &off, 0.1));
        era0.insert(key_for(&p, &m, &off, 4), stored(&p, &off, 0.2));
        era0.save().unwrap();
        // Generation 1: flag 0 on => worse.
        let mut era1 = FitnessStore::load(&path);
        assert_eq!(era1.generation(), 1);
        era1.insert(key_for(&p, &m, &on, 5), stored(&p, &on, 0.3));
        era1.insert(key_for(&p, &m, &on, 6), stored(&p, &on, 0.25));
        era1.insert(key_for(&p, &m, &off, 7), stored(&p, &off, 0.5));
        era1.insert(key_for(&p, &m, &off, 8), stored(&p, &off, 0.55));
        era1.save().unwrap();

        let mut store = FitnessStore::load(&path);
        assert_eq!(store.generation(), 2);
        let no_decay = PriorConfig::default();
        let prior_plain = mine_prior(&mut store, &p, Arch::X86, &m, &no_decay);
        // Default: no decay — weighted support equals raw counts exactly
        // (the bit-for-bit guarantee at the statistics level; run-level
        // equality is pinned by the differential harness).
        assert_eq!(
            prior_plain.marginals[0].w_on,
            prior_plain.marginals[0].n_on as f64
        );
        // Old era dominates the undecayed average (bigger contrast).
        assert!(prior_plain.marginals[0].potency() > 0.0);

        let decay = PriorConfig {
            decay_half_life: 0.25, // era 0 is 8 half-lives old
            ..PriorConfig::default()
        };
        let prior_decayed = mine_prior(&mut store, &p, Arch::X86, &m, &decay);
        assert!(
            prior_decayed.marginals[0].potency() < 0.0,
            "recent era must win under decay: {}",
            prior_decayed.marginals[0].potency()
        );
        assert!(prior_decayed.marginals[0].w_on < prior_plain.marginals[0].w_on);
        // Seeds are never decayed: the stored best config (an old-era
        // 0.9) still transfers.
        assert_eq!(prior_decayed.seeds, prior_plain.seeds);
        assert_eq!(prior_decayed.seed_best_fitness, Some(0.9));
        // Same records mined either way.
        assert_eq!(prior_decayed.mined_records, prior_plain.mined_records);
        std::fs::remove_dir_all(&path).unwrap();
    }

    #[test]
    fn bias_weights_are_confident_potency_scaled_and_bounded() {
        let p = profile();
        let m = module("429.mcf");
        let cfg = PriorConfig {
            min_support: 2,
            bias_span: 0.5,
            ..Default::default()
        };
        let mut store = FitnessStore::in_memory();
        store.record_module_features(m.content_hash(), m.features());
        // Flag 0 on => fitness high; flag 0 off => low. Everything else
        // constant: flag 0 should get the top weight.
        for (i, (on, fit)) in [(true, 0.9), (true, 0.8), (false, 0.2), (false, 0.3)]
            .into_iter()
            .enumerate()
        {
            let mut flags = vec![false; p.n_flags()];
            flags[0] = on;
            store.insert(
                key_for(&p, &m, &flags, i as u128 + 1),
                stored(&p, &flags, fit),
            );
        }
        let prior = mine_prior(&mut store, &p, Arch::X86, &m, &cfg);
        let bias = prior.mutation_bias(&cfg);
        let w = bias.weights().expect("non-uniform");
        assert_eq!(w.len(), p.n_flags());
        let span_ok = w.iter().all(|&x| (0.5..=1.5).contains(&x));
        assert!(span_ok, "weights escape the configured band");
        let max = w.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(w[0], max, "the planted potent flag gets the top weight");
        assert!(w[0] > 1.0);
        assert!(prior.biased_flag_count(&cfg) > 0);
    }
}
