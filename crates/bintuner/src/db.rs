//! Iteration database (paper Figure 4's "Database" box).
//!
//! Every compilation iteration's flags and scores are stored "for future
//! exploration" — and to regenerate the NCD-variation plots (Figure 6).

/// One compilation iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRow {
    /// 1-based iteration number.
    pub iteration: usize,
    /// NCD of this iteration's binary against `-O0`.
    pub ncd: f64,
    /// Best NCD so far.
    pub best_ncd: f64,
    /// Accumulated modelled compile time, seconds.
    pub elapsed_seconds: f64,
    /// Flag vector compiled.
    pub flags: Vec<bool>,
    /// Whether the fitness came from the engine's in-run memoization
    /// cache.
    pub cache_hit: bool,
    /// Whether the fitness came from the persistent cross-run store (a
    /// warm-start hit; disjoint from `cache_hit`).
    pub persistent_hit: bool,
    /// Fresh compile that reused a cached stage-1 artifact (optimized
    /// AST) and ran only the lowering + machine-level stages. Always
    /// `false` on cache hits. Disjoint from `lower_reused`.
    pub ast_reused: bool,
    /// Fresh compile that reused a cached stage-2 artifact (lowered
    /// binary) and ran only the cheap machine-level tail.
    pub lower_reused: bool,
    /// Whether this iteration's flag vector was injected into the
    /// initial population by a mined prior (config transfer) rather than
    /// bred or randomly generated.
    pub seeded_from_prior: bool,
    /// Measured wall-clock seconds for this evaluation (0 for cache hits
    /// and for the sequential compat path, which does not measure).
    pub wall_seconds: f64,
    /// Wall-clock seconds this evaluation spent producing the shared
    /// optimized-AST artifact for its effect family (phase 1 of the
    /// staged miss pipeline). Nonzero only on the first-use
    /// representative of each family; kept separate from
    /// [`IterationRow::wall_seconds`] so per-genome compile cost is not
    /// inflated by shared artifact production.
    pub ast_produce_seconds: f64,
}

/// An append-only record of a tuning run.
#[derive(Debug, Clone, Default)]
pub struct Database {
    rows: Vec<IterationRow>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Append a row.
    pub fn push(&mut self, row: IterationRow) {
        self.rows.push(row);
    }

    /// All rows, in iteration order.
    pub fn rows(&self) -> &[IterationRow] {
        &self.rows
    }

    /// The NCD trajectory `(iteration, ncd, best_ncd)` for plotting.
    pub fn trajectory(&self) -> Vec<(usize, f64, f64)> {
        self.rows
            .iter()
            .map(|r| (r.iteration, r.ncd, r.best_ncd))
            .collect()
    }

    /// Iterations achieving the final best score (the paper selects "the
    /// last one" of these as BinTuner's output).
    pub fn best_iterations(&self) -> Vec<usize> {
        let best = self
            .rows
            .iter()
            .map(|r| r.best_ncd)
            .fold(f64::NEG_INFINITY, f64::max);
        self.rows
            .iter()
            .filter(|r| (r.ncd - best).abs() < 1e-12)
            .map(|r| r.iteration)
            .collect()
    }

    /// Fraction of recorded iterations served from the in-run fitness
    /// cache.
    pub fn cache_hit_rate(&self) -> f64 {
        btel::ratio(
            self.rows.iter().filter(|r| r.cache_hit).count() as f64,
            self.rows.len() as f64,
        )
    }

    /// Fraction of recorded iterations served from the persistent
    /// cross-run store.
    pub fn persistent_hit_rate(&self) -> f64 {
        btel::ratio(
            self.rows.iter().filter(|r| r.persistent_hit).count() as f64,
            self.rows.len() as f64,
        )
    }

    /// Total measured wall-clock seconds across recorded iterations.
    pub fn wall_seconds(&self) -> f64 {
        self.rows.iter().map(|r| r.wall_seconds).sum()
    }

    /// Iterations whose flag vector was injected by a mined prior.
    pub fn seeded_count(&self) -> usize {
        self.rows.iter().filter(|r| r.seeded_from_prior).count()
    }

    /// Fraction of recorded iterations whose fresh compile reused a
    /// stage artifact (either tier-0 level) instead of running the full
    /// pipeline.
    pub fn stage_reuse_rate(&self) -> f64 {
        btel::ratio(
            self.rows
                .iter()
                .filter(|r| r.ast_reused || r.lower_reused)
                .count() as f64,
            self.rows.len() as f64,
        )
    }

    /// Export as CSV
    /// (`iteration,ncd,best_ncd,elapsed_seconds,flags_enabled,cache_hit,persistent_hit,ast_reused,lower_reused,seeded_from_prior,wall_seconds,ast_produce_seconds`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "iteration,ncd,best_ncd,elapsed_seconds,flags_enabled,cache_hit,persistent_hit,ast_reused,lower_reused,seeded_from_prior,wall_seconds,ast_produce_seconds\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.3},{},{},{},{},{},{},{:.6},{:.6}\n",
                r.iteration,
                r.ncd,
                r.best_ncd,
                r.elapsed_seconds,
                r.flags.iter().filter(|&&b| b).count(),
                r.cache_hit as u8,
                r.persistent_hit as u8,
                r.ast_reused as u8,
                r.lower_reused as u8,
                r.seeded_from_prior as u8,
                r.wall_seconds,
                r.ast_produce_seconds
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Database {
        let mut db = Database::new();
        for (i, ncd) in [0.4, 0.6, 0.5, 0.7].iter().enumerate() {
            db.push(IterationRow {
                iteration: i + 1,
                ncd: *ncd,
                best_ncd: [0.4, 0.6, 0.6, 0.7][i],
                elapsed_seconds: i as f64,
                flags: vec![i % 2 == 0; 4],
                cache_hit: i == 2,
                persistent_hit: i == 3,
                ast_reused: i == 0,
                lower_reused: i == 1,
                seeded_from_prior: i == 1,
                wall_seconds: 0.001 * i as f64,
                ast_produce_seconds: if i == 0 { 0.002 } else { 0.0 },
            });
        }
        db
    }

    #[test]
    fn trajectory_and_best() {
        let db = sample();
        assert_eq!(db.trajectory().len(), 4);
        assert_eq!(db.best_iterations(), vec![4]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample().to_csv();
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.starts_with("iteration,"));
        assert!(csv.lines().next().unwrap().ends_with(
            "cache_hit,persistent_hit,ast_reused,lower_reused,seeded_from_prior,wall_seconds,ast_produce_seconds"
        ));
    }

    #[test]
    fn cache_and_wall_aggregates() {
        let db = sample();
        assert!((db.cache_hit_rate() - 0.25).abs() < 1e-12);
        assert!((db.persistent_hit_rate() - 0.25).abs() < 1e-12);
        assert!((db.wall_seconds() - 0.006).abs() < 1e-12);
        assert_eq!(db.seeded_count(), 1);
        assert!((db.stage_reuse_rate() - 0.5).abs() < 1e-12);
        assert_eq!(Database::new().stage_reuse_rate(), 0.0);
        assert_eq!(Database::new().cache_hit_rate(), 0.0);
        assert_eq!(Database::new().persistent_hit_rate(), 0.0);
        assert_eq!(Database::new().seeded_count(), 0);
    }
}
