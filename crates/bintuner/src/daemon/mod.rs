//! `tuned`: a multi-tenant tuning daemon over the shared evaluation farm
//! (the paper's §5 deployment, long-lived).
//!
//! One process owns one client farm ([`ServiceHandle`]), one persistent
//! [`FitnessStore`](crate::FitnessStore)/[`ArtifactStore`] pair, and a
//! versioned job-control wire ([`wire`]). Tenants submit tuning jobs over
//! Unix or TCP stream transports (the same `evald::transport` stack the
//! farm itself uses); the daemon multiplexes every job onto the shared
//! farm with fair-share batch interleaving, serves duplicate work from
//! the shared stores (a resubmitted module is a pure cache hit: zero
//! compiles, bit-identical result), and exports a metrics plane
//! ([`metrics`]) off the hot path.
//!
//! ## Fault containment — the contract this module exists to prove
//!
//! A farm loss (every worker dead mid-batch) aborts *the job*, never the
//! daemon: the abort travels [`genetic::EvalAbort`] →
//! [`TuneError::Service`] → a Failed job with the transport error in its
//! result frame, the dead farm is torn down, and the next job relaunches
//! a fresh one. The pre-daemon code panicked on this path — a single
//! lost batch would have taken every tenant down with it.
//!
//! ## Scheduling
//!
//! Admission control is a bounded queue with a typed reject
//! ([`wire::RejectCode::QueueFull`]) — back-pressure is explicit, not an
//! unbounded memory obligation. Admitted jobs run on a small pool of
//! runner threads; their evaluation batches interleave on the farm in
//! round-robin rotation order (fair share at batch granularity — one
//! giant job cannot starve a small one for longer than a single batch).

pub mod metrics;
pub mod wire;

use crate::service::{FarmTelemetry, ServiceExecutor, ServiceHandle, SharedEvaldError};
use crate::store::{ArtifactStore, AstArtifactKey, LowerArtifactKey};
use crate::tuner::{Backend, TuneError, TuneResult, Tuner, TunerConfig};
use crate::{MissExecutor, MissResult};
use evald::transport::{
    tcp_connect, tcp_listener, unix_connect, unix_listener, BoundUnixListener, Duplex,
};
use evald::{
    EvaldError, FaultPlan, ServiceConfig, TransportKind, WireAstArtifact, WireLowerArtifact,
};
use genetic::{EvalAbort, Termination};
use metrics::{DaemonMetrics, MetricsSnapshot};
use minicc::ast::Module;
use minicc::codec::decode_module;
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};
use wire::{
    decode_daemon_frame, encode_daemon_frame, DaemonFrame, JobState, RejectCode, WireTuneOutcome,
};

/// How often blocked waits (queue pop, result fetch, accept fallback)
/// re-check the shutdown flag.
const WAIT_TICK: Duration = Duration::from_millis(100);

/// Submit-time deadlines beyond this are rejected with
/// [`RejectCode::BadDeadline`] — a week covers any sane batch job and
/// keeps `Instant + Duration` arithmetic far from overflow.
const MAX_DEADLINE_MS: u64 = 7 * 24 * 60 * 60 * 1000;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Client-facing transport. Must be a stream transport
    /// ([`TransportKind::Unix`] or [`TransportKind::Tcp`]) — a channel
    /// cannot outlive the call that created it, so there is nothing for
    /// a later tenant to connect to.
    pub transport: TransportKind,
    /// Socket path for [`TransportKind::Unix`] (`None`: a fresh path
    /// under the system temp dir). Ignored for TCP.
    pub unix_path: Option<PathBuf>,
    /// Template tuner configuration for every job. Per-job fields
    /// (seed, evaluation budget, dedup) come from the Submit frame;
    /// `backend` and `cache_path` are owned by the daemon and
    /// overridden.
    pub base: TunerConfig,
    /// The shared persistent store directory (fitness + artifacts)
    /// every job loads before and saves after its run — the
    /// multi-tenant payoff: one tenant's compiles warm-start every
    /// other tenant's. `None` disables cross-job caching.
    pub store_path: Option<PathBuf>,
    /// The shared farm's shape (client count, farm-side transport,
    /// thread vs process workers). Its `fault` field is ignored — use
    /// [`DaemonConfig::farm_fault_once`].
    pub farm: ServiceConfig,
    /// Admission-control bound: jobs waiting in the queue beyond this
    /// are rejected with [`RejectCode::QueueFull`].
    pub queue_limit: usize,
    /// Runner threads (jobs executing concurrently). Their batches
    /// interleave on the one shared farm.
    pub runners: usize,
    /// Chaos hook: inject this [`FaultPlan`] into the first
    /// [`DaemonConfig::farm_fault_launches`] farm launches (consumed
    /// thereafter), so a test can kill the farm under one job and watch
    /// the next job's relaunch succeed — or, with a repeat count at the
    /// quarantine threshold, prove a poison module is quarantined.
    pub farm_fault_once: Option<FaultPlan>,
    /// How many consecutive farm launches [`DaemonConfig::farm_fault_once`]
    /// poisons (clamped to at least 1 when a plan is set).
    pub farm_fault_launches: u32,
    /// Poison-job quarantine threshold: a module whose farm launches or
    /// batches fail this many *consecutive* times stops being allowed
    /// near fresh workers — its jobs fail fast with
    /// [`TuneError::Quarantined`] while other tenants' modules keep
    /// running. `0` disables quarantine.
    pub quarantine_strikes: u32,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            transport: TransportKind::Unix,
            unix_path: None,
            base: TunerConfig::default(),
            store_path: None,
            farm: ServiceConfig::default(),
            queue_limit: 16,
            runners: 2,
            farm_fault_once: None,
            farm_fault_launches: 1,
            quarantine_strikes: 3,
        }
    }
}

/// Where a running daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DaemonAddr {
    /// A Unix-domain socket path.
    Unix(PathBuf),
    /// A TCP loopback address.
    Tcp(SocketAddr),
}

impl std::fmt::Display for DaemonAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonAddr::Unix(p) => write!(f, "unix:{}", p.display()),
            DaemonAddr::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

// ---------------------------------------------------------------- farm

struct FarmSlot {
    module_hash: u64,
    handle: ServiceHandle,
}

#[derive(Default)]
struct FarmState {
    /// Round-robin rotation of attached job ids; the front owns the
    /// next batch.
    rotation: VecDeque<u64>,
    /// The live farm, keyed by the module it was launched for.
    slot: Option<FarmSlot>,
}

/// The one farm every job's batches multiplex onto.
struct SharedFarm {
    cfg: ServiceConfig,
    base: TunerConfig,
    /// Remaining chaos-injected launches: the plan plus how many more
    /// launches it poisons.
    fault: Mutex<(Option<FaultPlan>, u32)>,
    metrics: Arc<DaemonMetrics>,
    /// Farm-side btel families (`bintuner_farm_*`) resolved into the
    /// daemon's always-on registry, so evictions, heartbeat misses and
    /// respawns under *any* tenant's job show up in `bintuner metrics`.
    tel: FarmTelemetry,
    state: Mutex<FarmState>,
    turn: Condvar,
    /// Consecutive farm failures per module hash — the poison-job
    /// score. Reset by any successful batch of that module; at
    /// `quarantine_strikes` the module is barred from fresh workers.
    strikes: Mutex<HashMap<u64, u32>>,
    /// `DaemonConfig::quarantine_strikes` (0 = disabled).
    quarantine_strikes: u32,
    /// Stage artifacts drained from farms torn down mid-daemon (module
    /// switches, failures), awaiting the next persist.
    pending: Mutex<(Vec<WireAstArtifact>, Vec<WireLowerArtifact>)>,
}

impl SharedFarm {
    /// Enter `job` into the batch rotation.
    fn attach(&self, job: u64) {
        self.state.lock().unwrap().rotation.push_back(job);
        self.turn.notify_all();
    }

    /// Remove `job` from the rotation (idempotent).
    fn detach(&self, job: u64) {
        let mut state = self.state.lock().unwrap();
        state.rotation.retain(|&j| j != job);
        drop(state);
        self.turn.notify_all();
    }

    fn rotate(&self, state: &mut FarmState) {
        if let Some(front) = state.rotation.pop_front() {
            state.rotation.push_back(front);
        }
        self.turn.notify_all();
    }

    /// Tear the live farm down, parking its merged artifacts for the
    /// next persist. Returns whether a farm was live.
    fn teardown_slot(&self, state: &mut FarmState) -> bool {
        let Some(slot) = state.slot.take() else {
            return false;
        };
        let (ast, lower) = slot.handle.take_artifacts();
        let mut pending = self.pending.lock().unwrap();
        pending.0.extend(ast);
        pending.1.extend(lower);
        drop(pending);
        let _ = slot.handle.finish();
        true
    }

    /// Record one farm failure against `module_hash`; returns the new
    /// consecutive-strike count.
    fn note_strike(&self, module_hash: u64) -> u32 {
        let mut strikes = self.strikes.lock().unwrap();
        let n = strikes.entry(module_hash).or_insert(0);
        *n += 1;
        *n
    }

    /// Run one batch of `job`'s misses on the shared farm, waiting for
    /// the job's rotation turn, (re)launching the farm for `module` if
    /// needed. On a farm loss the recorded cause lands in `failure`
    /// (for [`ServiceExecutor::take_failure`]) and the dead farm is
    /// torn down so the next batch — this job's or another's —
    /// relaunches fresh. A module whose launches/batches have failed
    /// `quarantine_strikes` consecutive times is refused up front
    /// (poison-job quarantine): its abort is typed via `control`, it
    /// never waits for a rotation turn, and the live farm — some other
    /// tenant's — is untouched.
    fn execute(
        &self,
        job: u64,
        module: &Module,
        misses: &[Vec<bool>],
        failure: &Mutex<Option<Arc<EvaldError>>>,
        control: &JobControl,
    ) -> Result<Vec<MissResult>, EvalAbort> {
        let module_hash = module.content_hash();
        if self.quarantine_strikes > 0 {
            let strikes = self
                .strikes
                .lock()
                .unwrap()
                .get(&module_hash)
                .copied()
                .unwrap_or(0);
            if strikes >= self.quarantine_strikes {
                control.latch_abort(AbortKind::Quarantined { strikes });
                return Err(EvalAbort::new(format!(
                    "module quarantined as poison after {strikes} consecutive farm failures"
                )));
            }
        }
        let mut state = self.state.lock().unwrap();
        while state.rotation.front() != Some(&job) {
            state = self.turn.wait(state).unwrap();
        }
        if state
            .slot
            .as_ref()
            .is_none_or(|s| s.module_hash != module_hash)
        {
            self.teardown_slot(&mut state);
            let mut cfg = self.cfg.clone();
            {
                let mut fault = self.fault.lock().unwrap();
                cfg.fault = if fault.1 > 0 {
                    fault.1 -= 1;
                    fault.0
                } else {
                    None
                };
            }
            match ServiceHandle::launch_with(
                &cfg,
                self.base.compiler,
                module,
                self.base.arch,
                self.base.artifact_cache,
                Some(self.tel.clone()),
            ) {
                Ok(handle) => {
                    self.metrics.farm_launches.fetch_add(1, Ordering::Relaxed);
                    state.slot = Some(FarmSlot {
                        module_hash,
                        handle,
                    });
                }
                Err(e) => {
                    self.metrics.farm_failures.fetch_add(1, Ordering::Relaxed);
                    self.note_strike(module_hash);
                    let cause = Arc::new(e);
                    *failure.lock().unwrap() = Some(cause.clone());
                    self.rotate(&mut state);
                    return Err(EvalAbort::with_source(
                        format!("shared farm failed to launch: {cause}"),
                        SharedEvaldError(cause),
                    ));
                }
            }
        }
        let result = state
            .slot
            .as_ref()
            .expect("slot just ensured")
            .handle
            .execute(misses);
        match &result {
            Ok(_) => {
                // A healthy batch clears the module's strike streak —
                // only *consecutive* failures spell poison.
                self.strikes.lock().unwrap().remove(&module_hash);
            }
            Err(_) => {
                // The farm is gone (every worker lost mid-batch). Record
                // the transport-level cause for the job's TuneError, bury
                // the corpse, and let the rotation move on — the daemon
                // itself never dies here.
                if let Some(slot) = &state.slot {
                    *failure.lock().unwrap() = slot.handle.take_failure();
                }
                self.teardown_slot(&mut state);
                self.metrics.farm_failures.fetch_add(1, Ordering::Relaxed);
                self.note_strike(module_hash);
            }
        }
        self.rotate(&mut state);
        result
    }

    /// Fold every farm-produced stage artifact (live farm + parked
    /// pending) into the persistent [`ArtifactStore`] — the daemon-side
    /// analog of the tuner's own service-artifact fold: farm workers
    /// compile in their own address spaces, so without this fold a
    /// process-worker daemon would persist no artifacts.
    fn persist_artifacts(&self, store_path: &Option<PathBuf>) {
        let Some(path) = store_path else { return };
        let state = self.state.lock().unwrap();
        let (mut ast, mut lower) = std::mem::take(&mut *self.pending.lock().unwrap());
        if let Some(slot) = &state.slot {
            let (a, l) = slot.handle.take_artifacts();
            ast.extend(a);
            lower.extend(l);
        }
        drop(state);
        if ast.is_empty() && lower.is_empty() {
            return;
        }
        let mut store = ArtifactStore::load(path);
        for a in ast {
            store.insert_ast(
                AstArtifactKey {
                    body_hash: a.body_hash,
                    compiler: a.compiler,
                    ast_digest: a.ast_digest,
                },
                f64::from_bits(a.cost_bits),
                a.blob,
            );
        }
        for a in lower {
            store.insert_lower(
                LowerArtifactKey {
                    body_hash: a.body_hash,
                    compiler: a.compiler,
                    arch: a.arch,
                    ast_digest: a.ast_digest,
                    lower_digest: a.lower_digest,
                },
                f64::from_bits(a.cost_bits),
                a.blob,
            );
        }
        // A skipped save (lock contended) only costs future warm
        // starts, never correctness — same contract as the tuner's.
        let _ = store.save();
    }
}

/// Why a job was aborted at a batch checkpoint, latched into its
/// [`JobControl`] so the runner can map the abort to the right terminal
/// [`JobState`] (and the right typed [`TuneError`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbortKind {
    /// A Cancel frame reached it while running.
    Cancelled,
    /// Its submit-time wall-clock deadline passed.
    DeadlineExceeded,
    /// Its module hit the poison-job quarantine threshold.
    Quarantined { strikes: u32 },
}

/// The daemon's handle into a *running* job: the cancellation latch and
/// the wall-clock deadline, observed between evaluation batches (the
/// natural checkpoints — a batch in flight is never torn mid-way, so
/// trajectories stay deterministic up to the abort).
struct JobControl {
    cancel: AtomicBool,
    /// Absolute deadline computed at admission (`None`: no deadline).
    deadline: Option<Instant>,
    abort: Mutex<Option<AbortKind>>,
}

impl JobControl {
    fn new(deadline: Option<Instant>) -> Arc<JobControl> {
        Arc::new(JobControl {
            cancel: AtomicBool::new(false),
            deadline,
            abort: Mutex::new(None),
        })
    }

    /// Record the first abort cause; later causes lose the race and are
    /// dropped (one job, one terminal reason).
    fn latch_abort(&self, kind: AbortKind) {
        let mut abort = self.abort.lock().unwrap();
        if abort.is_none() {
            *abort = Some(kind);
        }
    }

    fn take_abort(&self) -> Option<AbortKind> {
        self.abort.lock().unwrap().take()
    }
}

/// One job's view of the shared farm: a [`MissExecutor`] the tuner
/// drives exactly as it would a private [`ServiceHandle`].
struct FarmExecutor {
    farm: Arc<SharedFarm>,
    job: u64,
    module: Module,
    failure: Mutex<Option<Arc<EvaldError>>>,
    control: Arc<JobControl>,
}

impl MissExecutor for FarmExecutor {
    fn execute(&self, misses: &[Vec<bool>]) -> Result<Vec<MissResult>, EvalAbort> {
        // Batch checkpoint: cancellation and the deadline are observed
        // here, *between* generations — never mid-batch.
        if self.control.cancel.load(Ordering::Relaxed) {
            self.control.latch_abort(AbortKind::Cancelled);
            return Err(EvalAbort::new("job cancelled while running"));
        }
        if self.control.deadline.is_some_and(|d| Instant::now() >= d) {
            self.control.latch_abort(AbortKind::DeadlineExceeded);
            return Err(EvalAbort::new("job deadline exceeded"));
        }
        self.farm
            .execute(self.job, &self.module, misses, &self.failure, &self.control)
    }
}

impl ServiceExecutor for FarmExecutor {
    fn take_failure(&self) -> Option<Arc<EvaldError>> {
        self.failure.lock().unwrap().take()
    }
}

// ------------------------------------------------------------ telemetry

/// The daemon's always-on btel plane. Unlike the per-run tuner
/// telemetry (opt-in, bound by the Off-mode purity contract), a
/// long-lived multi-tenant service wants its registry live from boot;
/// every update below runs off the job hot path — admission, cancel,
/// and completion, once per job.
struct DaemonTelemetry {
    registry: Arc<btel::Registry>,
    /// Job-level spans (one per completed job), served by TraceDump.
    tracer: btel::Tracer,
    queue_depth: Arc<btel::Gauge>,
    running: Arc<btel::Gauge>,
    job_seconds: Arc<btel::Histogram>,
    /// Jobs aborted past their submit-time deadline.
    deadline_exceeded: Arc<btel::Counter>,
    /// Jobs refused (or aborted) under poison-module quarantine.
    quarantined: Arc<btel::Counter>,
}

impl DaemonTelemetry {
    fn new() -> DaemonTelemetry {
        let registry = Arc::new(btel::Registry::new());
        let queue_depth = registry.gauge(
            "bintuner_daemon_queue_depth",
            "Jobs waiting in the admission queue.",
        );
        let running = registry.gauge(
            "bintuner_daemon_running",
            "Jobs currently executing on a runner.",
        );
        let job_seconds = registry.histogram(
            "bintuner_daemon_job_seconds",
            "Wall time of each job from claim to terminal state.",
        );
        let deadline_exceeded = registry.counter(
            "bintuner_daemon_deadline_exceeded_total",
            "Jobs aborted because their submit-time deadline passed.",
        );
        let quarantined = registry.counter(
            "bintuner_daemon_quarantined_total",
            "Jobs failed fast under poison-module quarantine.",
        );
        DaemonTelemetry {
            registry,
            tracer: btel::Tracer::enabled(1024),
            queue_depth,
            running,
            job_seconds,
            deadline_exceeded,
            quarantined,
        }
    }

    /// Farm-side telemetry wiring that shares the daemon's registry, so
    /// `bintuner_farm_*` counters (evictions, heartbeat misses,
    /// respawns, backoff) land in the same exposition the MetricsText
    /// frame serves. The farm's span tracer stays disabled — the daemon
    /// records job-level spans itself.
    fn farm_telemetry(&self) -> FarmTelemetry {
        FarmTelemetry {
            registry: self.registry.clone(),
            tracer: btel::Tracer::disabled(),
        }
    }

    fn tenant_jobs(&self, tenant: &str) -> Arc<btel::Counter> {
        self.registry.counter_with(
            "bintuner_daemon_jobs_total",
            "Jobs submitted, by tenant (accepted or rejected).",
            "tenant",
            tenant,
        )
    }

    fn tenant_rejects(&self, tenant: &str) -> Arc<btel::Counter> {
        self.registry.counter_with(
            "bintuner_daemon_rejects_total",
            "Jobs refused at admission, by tenant.",
            "tenant",
            tenant,
        )
    }

    fn tenant_compiles(&self, tenant: &str) -> Arc<btel::Counter> {
        self.registry.counter_with(
            "bintuner_daemon_compiles_total",
            "Real compiles performed by completed jobs, by tenant.",
            "tenant",
            tenant,
        )
    }
}

// ---------------------------------------------------------------- jobs

struct JobSpec {
    module: Module,
    seed: u64,
    max_evaluations: u64,
    dedup: bool,
}

struct JobEntry {
    tenant: String,
    state: JobState,
    spec: Option<JobSpec>,
    outcome: Option<Result<WireTuneOutcome, String>>,
    /// Cancellation latch + deadline, shared with the runner executing
    /// the job (if any) — how a Cancel frame reaches a *running* job.
    control: Arc<JobControl>,
}

struct DaemonShared {
    config: DaemonConfig,
    metrics: Arc<DaemonMetrics>,
    tel: DaemonTelemetry,
    farm: Arc<SharedFarm>,
    /// Job table. Lock order where both are needed: `queue` before
    /// `jobs` (admission and cancel take them in that order).
    jobs: Mutex<HashMap<u64, JobEntry>>,
    /// Signals job state transitions to blocked FetchResult handlers.
    done: Condvar,
    /// Admitted-but-unclaimed job ids, bounded by `config.queue_limit`.
    queue: Mutex<VecDeque<u64>>,
    /// Signals queue pushes to idle runners.
    queue_cv: Condvar,
    stop: AtomicBool,
    next_job: AtomicU64,
}

fn outcome_of(result: &Result<TuneResult, TuneError>) -> Result<WireTuneOutcome, String> {
    match result {
        Ok(r) => Ok(WireTuneOutcome {
            best_flags: r.best_flags.clone(),
            best_ncd_bits: r.best_ncd.to_bits(),
            iterations: r.iterations as u64,
            stopped_by: r.stopped_by,
            compiles: r.engine_stats.compiles as u64,
            persistent_hits: r.engine_stats.persistent_hits as u64,
            store_ast_hits: r.engine_stats.store_ast_hits as u64,
            store_lower_hits: r.engine_stats.store_lower_hits as u64,
        }),
        Err(e) => Err(e.to_string()),
    }
}

fn run_job(
    shared: &DaemonShared,
    job: u64,
    spec: &JobSpec,
    control: &Arc<JobControl>,
) -> Result<TuneResult, TuneError> {
    let config = TunerConfig {
        seed: spec.seed,
        termination: Termination {
            max_evaluations: spec.max_evaluations as usize,
            ..shared.config.base.termination.clone()
        },
        dedup: spec.dedup,
        cache_path: shared.config.store_path.clone(),
        // The farm is injected as an executor below; the job's own
        // backend stays in-process so the tuner launches nothing.
        backend: Backend::InProcess,
        ..shared.config.base.clone()
    };
    let executor = FarmExecutor {
        farm: shared.farm.clone(),
        job,
        module: spec.module.clone(),
        failure: Mutex::new(None),
        control: control.clone(),
    };
    shared.farm.attach(job);
    let result = Tuner::new(config).tune_with_executor(&spec.module, &executor);
    shared.farm.detach(job);
    shared.farm.persist_artifacts(&shared.config.store_path);
    result
}

fn runner_loop(shared: Arc<DaemonShared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if shared.stop.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared.queue_cv.wait_timeout(queue, WAIT_TICK).unwrap().0;
            }
        };
        shared.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
        shared.tel.queue_depth.add(-1);
        let Some((tenant, spec, control)) = ({
            let mut jobs = shared.jobs.lock().unwrap();
            jobs.get_mut(&job).and_then(|entry| {
                entry.state = JobState::Running;
                entry
                    .spec
                    .take()
                    .map(|s| (entry.tenant.clone(), s, entry.control.clone()))
            })
        }) else {
            continue;
        };
        shared.metrics.running.fetch_add(1, Ordering::Relaxed);
        shared.tel.running.add(1);
        let start = Instant::now();
        let result = run_job(&shared, job, &spec, &control);
        let wall = start.elapsed().as_secs_f64();
        shared.metrics.running.fetch_sub(1, Ordering::Relaxed);
        shared.tel.running.add(-1);
        // An abort latched at a batch checkpoint overrides the generic
        // service error with the typed terminal state the client asked
        // for (Cancelled / DeadlineExceeded) or the typed poison error.
        let abort = control.take_abort().filter(|_| result.is_err());
        let result = match abort {
            Some(AbortKind::Quarantined { strikes }) => Err(TuneError::Quarantined { strikes }),
            _ => result,
        };
        let outcome = match abort {
            Some(AbortKind::Cancelled) => Err("job cancelled while running".to_string()),
            Some(AbortKind::DeadlineExceeded) => {
                Err("job deadline exceeded while running".to_string())
            }
            _ => outcome_of(&result),
        };
        let (succeeded, compiles, hits) = match &outcome {
            Ok(o) => (true, o.compiles, o.persistent_hits),
            Err(_) => (false, 0, 0),
        };
        shared
            .metrics
            .on_job_done(&tenant, succeeded, compiles, hits, wall);
        match abort {
            Some(AbortKind::Cancelled) => {
                shared.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            Some(AbortKind::DeadlineExceeded) => shared.tel.deadline_exceeded.inc(),
            Some(AbortKind::Quarantined { .. }) => shared.tel.quarantined.inc(),
            None => {}
        }
        shared.tel.tenant_compiles(&tenant).add(compiles);
        shared.tel.job_seconds.observe_seconds(wall);
        shared.tel.tracer.record("job", 0, start);
        let mut jobs = shared.jobs.lock().unwrap();
        if let Some(entry) = jobs.get_mut(&job) {
            entry.state = match abort {
                _ if succeeded => JobState::Done,
                Some(AbortKind::Cancelled) => JobState::Cancelled,
                Some(AbortKind::DeadlineExceeded) => JobState::DeadlineExceeded,
                _ => JobState::Failed,
            };
            entry.outcome = Some(outcome);
        }
        shared.done.notify_all();
    }
}

// ---------------------------------------------------------------- serve

fn handle_submit(
    shared: &DaemonShared,
    tenant: String,
    module: Vec<u8>,
    seed: u64,
    max_evaluations: u64,
    dedup: bool,
    deadline_ms: u64,
) -> DaemonFrame {
    shared.metrics.on_submit(&tenant);
    shared.tel.tenant_jobs(&tenant).inc();
    let reject = |code, detail: String| {
        shared.metrics.on_reject(&tenant);
        shared.tel.tenant_rejects(&tenant).inc();
        DaemonFrame::Rejected { code, detail }
    };
    if shared.stop.load(Ordering::Relaxed) {
        return reject(RejectCode::ShuttingDown, "daemon is shutting down".into());
    }
    if deadline_ms > MAX_DEADLINE_MS {
        return reject(
            RejectCode::BadDeadline,
            format!("deadline {deadline_ms}ms exceeds the {MAX_DEADLINE_MS}ms cap"),
        );
    }
    let module = match decode_module(&module) {
        Ok(m) => m,
        Err(e) => return reject(RejectCode::BadModule, format!("module decode failed: {e}")),
    };
    // The deadline clock starts at admission — queue time counts
    // against it, so an overloaded daemon fails a tight-deadline job
    // fast instead of running it late.
    let deadline = (deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(deadline_ms));
    let mut queue = shared.queue.lock().unwrap();
    if queue.len() >= shared.config.queue_limit {
        return reject(
            RejectCode::QueueFull,
            format!("admission queue full ({} waiting)", queue.len()),
        );
    }
    let job = shared.next_job.fetch_add(1, Ordering::Relaxed);
    shared.jobs.lock().unwrap().insert(
        job,
        JobEntry {
            tenant,
            state: JobState::Queued,
            spec: Some(JobSpec {
                module,
                seed,
                max_evaluations,
                dedup,
            }),
            outcome: None,
            control: JobControl::new(deadline),
        },
    );
    queue.push_back(job);
    shared.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
    shared.tel.queue_depth.add(1);
    shared.metrics.accepted.fetch_add(1, Ordering::Relaxed);
    drop(queue);
    shared.queue_cv.notify_one();
    DaemonFrame::Accepted { job }
}

fn handle_cancel(shared: &DaemonShared, job: u64) -> DaemonFrame {
    let mut queue = shared.queue.lock().unwrap();
    if let Some(pos) = queue.iter().position(|&j| j == job) {
        // Still queued: dequeue and settle it right here.
        queue.remove(pos);
        shared.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
        shared.tel.queue_depth.add(-1);
        shared.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
        let mut jobs = shared.jobs.lock().unwrap();
        if let Some(entry) = jobs.get_mut(&job) {
            entry.state = JobState::Cancelled;
            entry.spec = None;
            entry.outcome = Some(Err("job cancelled while queued".into()));
        }
        drop(jobs);
        drop(queue);
        shared.done.notify_all();
        return DaemonFrame::CancelReply {
            job,
            cancelled: true,
        };
    }
    drop(queue);
    // Already claimed: latch the cancel flag for a *running* job; its
    // runner observes it at the next batch checkpoint and settles the
    // job as Cancelled (the runner owns the terminal transition and the
    // cancelled counter on this path).
    let jobs = shared.jobs.lock().unwrap();
    let cancelled = jobs.get(&job).is_some_and(|entry| {
        entry.state == JobState::Running && {
            entry.control.cancel.store(true, Ordering::Relaxed);
            true
        }
    });
    DaemonFrame::CancelReply { job, cancelled }
}

fn handle_fetch(shared: &DaemonShared, job: u64) -> DaemonFrame {
    let mut jobs = shared.jobs.lock().unwrap();
    loop {
        match jobs.get(&job) {
            None => {
                return DaemonFrame::ResultReply {
                    job,
                    outcome: Err("unknown job id".into()),
                }
            }
            Some(entry) => {
                if let Some(outcome) = &entry.outcome {
                    return DaemonFrame::ResultReply {
                        job,
                        outcome: outcome.clone(),
                    };
                }
            }
        }
        if shared.stop.load(Ordering::Relaxed) {
            return DaemonFrame::ResultReply {
                job,
                outcome: Err("daemon is shutting down".into()),
            };
        }
        jobs = shared.done.wait_timeout(jobs, WAIT_TICK).unwrap().0;
    }
}

/// One reply per request; `None` means the client spoke a server-only
/// frame and the connection is dropped.
fn handle_frame(shared: &DaemonShared, frame: DaemonFrame) -> Option<DaemonFrame> {
    Some(match frame {
        DaemonFrame::Submit {
            tenant,
            module,
            seed,
            max_evaluations,
            dedup,
            deadline_ms,
        } => handle_submit(
            shared,
            tenant,
            module,
            seed,
            max_evaluations,
            dedup,
            deadline_ms,
        ),
        DaemonFrame::Status { job } => {
            let state = shared
                .jobs
                .lock()
                .unwrap()
                .get(&job)
                .map_or(JobState::Unknown, |e| e.state);
            DaemonFrame::StatusReply {
                job,
                state,
                queue_depth: shared.metrics.queue_depth.load(Ordering::Relaxed),
                running: shared.metrics.running.load(Ordering::Relaxed),
            }
        }
        DaemonFrame::Cancel { job } => handle_cancel(shared, job),
        DaemonFrame::FetchResult { job } => handle_fetch(shared, job),
        DaemonFrame::Metrics => DaemonFrame::MetricsReply {
            snapshot: shared.metrics.snapshot(),
        },
        DaemonFrame::MetricsText => DaemonFrame::MetricsTextReply {
            text: shared.tel.registry.render_text(),
        },
        DaemonFrame::TraceDump => DaemonFrame::TraceDumpReply {
            jsonl: btel::spans_to_jsonl(&shared.tel.tracer.snapshot()),
        },
        _ => return None,
    })
}

fn connection_loop(shared: Arc<DaemonShared>, mut duplex: Duplex) {
    loop {
        let Ok(bytes) = duplex.rx.recv_frame() else {
            return;
        };
        let Ok((frame, _)) = decode_daemon_frame(&bytes) else {
            return; // a client speaking another protocol is dropped
        };
        let Some(reply) = handle_frame(&shared, frame) else {
            return;
        };
        if duplex.tx.send_frame(&encode_daemon_frame(&reply)).is_err() {
            return;
        }
    }
}

enum Listener {
    Unix(BoundUnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> Result<Duplex, EvaldError> {
        match self {
            Listener::Unix(l) => evald::transport::unix_accept(l),
            Listener::Tcp(l) => evald::transport::tcp_accept(l),
        }
    }
}

fn acceptor_loop(shared: Arc<DaemonShared>, listener: Listener) {
    loop {
        let Ok(duplex) = listener.accept() else {
            if shared.stop.load(Ordering::Relaxed) {
                return;
            }
            continue;
        };
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        // Connection threads are detached: they exit when their client
        // disconnects (or on the next WAIT_TICK after shutdown), and
        // hold only `Arc`s — joining them would let one silent client
        // block shutdown.
        let shared = shared.clone();
        thread::spawn(move || connection_loop(shared, duplex));
    }
}

// --------------------------------------------------------------- handle

/// The daemon entry point.
pub struct Daemon;

static SOCKET_SEQ: AtomicU64 = AtomicU64::new(0);

impl Daemon {
    /// Bind the client-facing listener and start the acceptor and
    /// runner threads.
    ///
    /// # Errors
    ///
    /// [`EvaldError::Protocol`] for [`TransportKind::Channel`] (no
    /// stream to listen on), otherwise transport bind failures.
    pub fn launch(config: DaemonConfig) -> Result<DaemonHandle, EvaldError> {
        let (listener, addr) = match config.transport {
            TransportKind::Channel => {
                return Err(EvaldError::Protocol(
                    "the daemon requires a stream transport (unix or tcp)",
                ))
            }
            TransportKind::Unix => {
                let path = config.unix_path.clone().unwrap_or_else(|| {
                    std::env::temp_dir().join(format!(
                        "bintuner-daemon-{}-{}.sock",
                        std::process::id(),
                        SOCKET_SEQ.fetch_add(1, Ordering::Relaxed)
                    ))
                });
                let bound = unix_listener(&path)?;
                let addr = DaemonAddr::Unix(bound.path().to_path_buf());
                (Listener::Unix(bound), addr)
            }
            TransportKind::Tcp => {
                let (listener, addr) = tcp_listener()?;
                (Listener::Tcp(listener), addr.into())
            }
        };
        let metrics = Arc::new(DaemonMetrics::default());
        let tel = DaemonTelemetry::new();
        let mut farm_cfg = config.farm.clone();
        farm_cfg.fault = None;
        let fault_launches = if config.farm_fault_once.is_some() {
            config.farm_fault_launches.max(1)
        } else {
            0
        };
        let farm = Arc::new(SharedFarm {
            cfg: farm_cfg,
            base: config.base.clone(),
            fault: Mutex::new((config.farm_fault_once, fault_launches)),
            metrics: metrics.clone(),
            tel: tel.farm_telemetry(),
            state: Mutex::new(FarmState::default()),
            turn: Condvar::new(),
            strikes: Mutex::new(HashMap::new()),
            quarantine_strikes: config.quarantine_strikes,
            pending: Mutex::new(Default::default()),
        });
        let runners = config.runners.max(1);
        let shared = Arc::new(DaemonShared {
            config,
            metrics,
            tel,
            farm,
            jobs: Mutex::new(HashMap::new()),
            done: Condvar::new(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            next_job: AtomicU64::new(1),
        });
        let acceptor = {
            let shared = shared.clone();
            thread::spawn(move || acceptor_loop(shared, listener))
        };
        let runner_threads = (0..runners)
            .map(|_| {
                let shared = shared.clone();
                thread::spawn(move || runner_loop(shared))
            })
            .collect();
        Ok(DaemonHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            runners: runner_threads,
        })
    }
}

impl From<SocketAddr> for DaemonAddr {
    fn from(addr: SocketAddr) -> DaemonAddr {
        DaemonAddr::Tcp(addr)
    }
}

/// A running daemon. Dropping it shuts it down.
pub struct DaemonHandle {
    addr: DaemonAddr,
    shared: Arc<DaemonShared>,
    acceptor: Option<thread::JoinHandle<()>>,
    runners: Vec<thread::JoinHandle<()>>,
}

impl DaemonHandle {
    /// Where clients connect.
    pub fn addr(&self) -> &DaemonAddr {
        &self.addr
    }

    /// A local (wire-free) metrics snapshot.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// The daemon's always-on btel registry (queue-depth gauge,
    /// admission rejects, per-tenant compile throughput) — what the
    /// MetricsText frame and `bintuner metrics` render.
    pub fn registry(&self) -> Arc<btel::Registry> {
        self.shared.tel.registry.clone()
    }

    /// Stop accepting, finish running jobs, cancel queued ones, tear
    /// the farm down, join every owned thread. Idempotent (also runs on
    /// drop).
    pub fn shutdown(mut self) {
        self.stop_impl();
    }

    fn stop_impl(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.queue_cv.notify_all();
        self.shared.done.notify_all();
        // Unblock the acceptor with a throwaway connection.
        match &self.addr {
            DaemonAddr::Unix(path) => drop(unix_connect(path)),
            DaemonAddr::Tcp(addr) => drop(tcp_connect(*addr)),
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for runner in self.runners.drain(..) {
            let _ = runner.join();
        }
        // Every job still queued dies Cancelled, visibly.
        let drained: Vec<u64> = self.shared.queue.lock().unwrap().drain(..).collect();
        if !drained.is_empty() {
            let mut jobs = self.shared.jobs.lock().unwrap();
            for job in drained {
                self.shared
                    .metrics
                    .queue_depth
                    .fetch_sub(1, Ordering::Relaxed);
                self.shared.tel.queue_depth.add(-1);
                self.shared
                    .metrics
                    .cancelled
                    .fetch_add(1, Ordering::Relaxed);
                if let Some(entry) = jobs.get_mut(&job) {
                    entry.state = JobState::Cancelled;
                    entry.spec = None;
                    entry.outcome = Some(Err("daemon shut down".into()));
                }
            }
            drop(jobs);
            self.shared.done.notify_all();
        }
        self.shared
            .farm
            .persist_artifacts(&self.shared.config.store_path);
        let mut state = self.shared.farm.state.lock().unwrap();
        self.shared.farm.teardown_slot(&mut state);
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.stop_impl();
    }
}

// --------------------------------------------------------------- client

/// A blocking daemon client: one connection, request-reply.
///
/// Calls serialize on the connection, and a [`DaemonClient::fetch_result`]
/// blocks it until the job is terminal — open one client per concurrent
/// job (connections are cheap; the daemon spawns one thread each).
pub struct DaemonClient {
    duplex: Duplex,
}

impl DaemonClient {
    /// Connect to a daemon at `addr`.
    ///
    /// # Errors
    ///
    /// Transport connect failures.
    pub fn connect(addr: &DaemonAddr) -> Result<DaemonClient, EvaldError> {
        let duplex = match addr {
            DaemonAddr::Unix(path) => unix_connect(path)?,
            DaemonAddr::Tcp(addr) => tcp_connect(*addr)?,
        };
        Ok(DaemonClient { duplex })
    }

    fn call(&mut self, frame: &DaemonFrame) -> Result<DaemonFrame, EvaldError> {
        self.duplex.tx.send_frame(&encode_daemon_frame(frame))?;
        let bytes = self.duplex.rx.recv_frame()?;
        Ok(decode_daemon_frame(&bytes)?.0)
    }

    /// Submit a tuning job: `Ok(Ok(job_id))` when admitted,
    /// `Ok(Err((code, detail)))` when rejected. `deadline_ms` is a
    /// wall-clock budget from submission (`0`: none); a job that blows
    /// it is aborted between evaluation batches with
    /// [`JobState::DeadlineExceeded`].
    ///
    /// # Errors
    ///
    /// Transport/protocol failures only — an admission reject is a
    /// value, not an error.
    pub fn submit(
        &mut self,
        tenant: &str,
        module: &Module,
        seed: u64,
        max_evaluations: u64,
        dedup: bool,
        deadline_ms: u64,
    ) -> Result<Result<u64, (RejectCode, String)>, EvaldError> {
        let reply = self.call(&DaemonFrame::Submit {
            tenant: tenant.to_string(),
            module: minicc::codec::encode_module(module),
            seed,
            max_evaluations,
            dedup,
            deadline_ms,
        })?;
        match reply {
            DaemonFrame::Accepted { job } => Ok(Ok(job)),
            DaemonFrame::Rejected { code, detail } => Ok(Err((code, detail))),
            _ => Err(EvaldError::Protocol("unexpected reply to Submit")),
        }
    }

    /// Query a job's state; also returns `(queue_depth, running)`.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn status(&mut self, job: u64) -> Result<(JobState, u64, u64), EvaldError> {
        match self.call(&DaemonFrame::Status { job })? {
            DaemonFrame::StatusReply {
                state,
                queue_depth,
                running,
                ..
            } => Ok((state, queue_depth, running)),
            _ => Err(EvaldError::Protocol("unexpected reply to Status")),
        }
    }

    /// Cancel a job. A queued job is dequeued and settled immediately;
    /// a *running* job has its cancel flag latched and aborts at the
    /// next batch checkpoint. `false` when the job is already terminal
    /// or unknown.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn cancel(&mut self, job: u64) -> Result<bool, EvaldError> {
        match self.call(&DaemonFrame::Cancel { job })? {
            DaemonFrame::CancelReply { cancelled, .. } => Ok(cancelled),
            _ => Err(EvaldError::Protocol("unexpected reply to Cancel")),
        }
    }

    /// Block until `job` is terminal and return its outcome.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures; a *failed job* is `Ok(Err(message))`.
    pub fn fetch_result(
        &mut self,
        job: u64,
    ) -> Result<Result<WireTuneOutcome, String>, EvaldError> {
        match self.call(&DaemonFrame::FetchResult { job })? {
            DaemonFrame::ResultReply { outcome, .. } => Ok(outcome),
            _ => Err(EvaldError::Protocol("unexpected reply to FetchResult")),
        }
    }

    /// Fetch a metrics snapshot.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, EvaldError> {
        match self.call(&DaemonFrame::Metrics)? {
            DaemonFrame::MetricsReply { snapshot } => Ok(snapshot),
            _ => Err(EvaldError::Protocol("unexpected reply to Metrics")),
        }
    }

    /// Fetch the Prometheus-style text exposition of the daemon's btel
    /// registry (what `bintuner metrics` prints).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn metrics_text(&mut self) -> Result<String, EvaldError> {
        match self.call(&DaemonFrame::MetricsText)? {
            DaemonFrame::MetricsTextReply { text } => Ok(text),
            _ => Err(EvaldError::Protocol("unexpected reply to MetricsText")),
        }
    }

    /// Fetch the daemon's recent job spans as JSONL.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn trace_dump(&mut self) -> Result<String, EvaldError> {
        match self.call(&DaemonFrame::TraceDump)? {
            DaemonFrame::TraceDumpReply { jsonl } => Ok(jsonl),
            _ => Err(EvaldError::Protocol("unexpected reply to TraceDump")),
        }
    }
}
