//! The daemon's client-facing wire format.
//!
//! Same discipline as `evald::wire`, same physical framing — so the
//! daemon reuses the evald stream transports unchanged — but its own
//! magic and version: the job-control plane and the farm data plane
//! evolve independently, and a worker accidentally pointed at a daemon
//! socket (or vice versa) is rejected by magic, not misparsed.
//!
//! ```text
//! [len: u32]                        length of everything after this field
//! [magic: "TUND"][version: u32]     format identification, checked per frame
//! [tag: u8][payload ...]            canonical little-endian
//! [checksum: u32]                   FNV-1a over magic..payload
//! ```
//!
//! Floats cross as raw bits ([`f64::to_bits`]): a fetched result must
//! be *bit-identical* to the solo-run `TuneResult`, checksum included.

use bytes::BufMut;
use evald::wire::{put_genome, Reader};
use evald::EvaldError;
use genetic::StopReason;
use minicc::fnv1a32 as checksum;

use super::metrics::{MetricsSnapshot, TenantCounters};

/// Frame magic: `TUND`.
pub const DAEMON_MAGIC: [u8; 4] = *b"TUND";

/// Daemon wire-format version; bump on any layout change.
///
/// History: v1 job control + MetricsSnapshot; v2 added the btel
/// exposition frames (`MetricsText`/`TraceDump`); v3 added
/// `Submit::deadline_ms`, [`JobState::DeadlineExceeded`] and
/// [`RejectCode::BadDeadline`].
pub const DAEMON_WIRE_VERSION: u32 = 3;

/// Frame length cap, shared with the farm wire (one transport stack).
pub const MAX_FRAME_LEN: usize = evald::wire::MAX_FRAME_LEN;

const TAG_SUBMIT: u8 = 0;
const TAG_ACCEPTED: u8 = 1;
const TAG_REJECTED: u8 = 2;
const TAG_STATUS: u8 = 3;
const TAG_STATUS_REPLY: u8 = 4;
const TAG_CANCEL: u8 = 5;
const TAG_CANCEL_REPLY: u8 = 6;
const TAG_FETCH_RESULT: u8 = 7;
const TAG_RESULT_REPLY: u8 = 8;
const TAG_METRICS: u8 = 9;
const TAG_METRICS_REPLY: u8 = 10;
const TAG_METRICS_TEXT: u8 = 11;
const TAG_METRICS_TEXT_REPLY: u8 = 12;
const TAG_TRACE_DUMP: u8 = 13;
const TAG_TRACE_DUMP_REPLY: u8 = 14;

/// Why a submission was refused at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCode {
    /// The bounded admission queue is full — resubmit later. Typed so
    /// clients can distinguish back-pressure from a broken request.
    QueueFull,
    /// The daemon is shutting down.
    ShuttingDown,
    /// The submitted module bytes failed to decode.
    BadModule,
    /// The submitted deadline is unusable (beyond the daemon's cap) —
    /// typed so a fat-fingered deadline reads as a request bug, not
    /// back-pressure.
    BadDeadline,
}

impl RejectCode {
    fn to_u8(self) -> u8 {
        match self {
            RejectCode::QueueFull => 0,
            RejectCode::ShuttingDown => 1,
            RejectCode::BadModule => 2,
            RejectCode::BadDeadline => 3,
        }
    }

    fn from_u8(b: u8) -> Result<RejectCode, EvaldError> {
        Ok(match b {
            0 => RejectCode::QueueFull,
            1 => RejectCode::ShuttingDown,
            2 => RejectCode::BadModule,
            3 => RejectCode::BadDeadline,
            _ => return Err(EvaldError::Corrupt("unknown reject code")),
        })
    }
}

/// A job's lifecycle state as reported by Status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a runner.
    Queued,
    /// Executing on a runner.
    Running,
    /// Finished with a result (fetch it).
    Done,
    /// Finished with an error (fetch carries the message).
    Failed,
    /// Cancelled — while queued, or while running (the cancel flag is
    /// observed between evaluation batches).
    Cancelled,
    /// The daemon has no such job id.
    Unknown,
    /// Aborted because its submit-time wall-clock deadline passed
    /// before it finished.
    DeadlineExceeded,
}

impl JobState {
    fn to_u8(self) -> u8 {
        match self {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Done => 2,
            JobState::Failed => 3,
            JobState::Cancelled => 4,
            JobState::Unknown => 5,
            JobState::DeadlineExceeded => 6,
        }
    }

    fn from_u8(b: u8) -> Result<JobState, EvaldError> {
        Ok(match b {
            0 => JobState::Queued,
            1 => JobState::Running,
            2 => JobState::Done,
            3 => JobState::Failed,
            4 => JobState::Cancelled,
            5 => JobState::Unknown,
            6 => JobState::DeadlineExceeded,
            _ => return Err(EvaldError::Corrupt("unknown job state")),
        })
    }
}

/// The trajectory-defining fields of a completed job's `TuneResult`,
/// plus the cache telemetry the duplicate-submission differential
/// asserts on. Fitness travels as raw bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireTuneOutcome {
    /// Best (constraint-valid) flag vector.
    pub best_flags: Vec<bool>,
    /// `f64::to_bits` of the best NCD.
    pub best_ncd_bits: u64,
    /// Compilation iterations performed.
    pub iterations: u64,
    /// Why the search stopped.
    pub stopped_by: StopReason,
    /// Real compiles the job performed (0 for a pure duplicate hit).
    pub compiles: u64,
    /// Persistent fitness-store hits.
    pub persistent_hits: u64,
    /// Persistent AST-artifact hits.
    pub store_ast_hits: u64,
    /// Persistent lowered-binary-artifact hits.
    pub store_lower_hits: u64,
}

fn stop_reason_to_u8(s: StopReason) -> u8 {
    match s {
        StopReason::MaxEvaluations => 0,
        StopReason::TimeBudget => 1,
        StopReason::Plateau => 2,
    }
}

fn stop_reason_from_u8(b: u8) -> Result<StopReason, EvaldError> {
    Ok(match b {
        0 => StopReason::MaxEvaluations,
        1 => StopReason::TimeBudget,
        2 => StopReason::Plateau,
        _ => return Err(EvaldError::Corrupt("unknown stop reason")),
    })
}

/// One daemon-protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum DaemonFrame {
    /// Client → daemon: run a tuning job.
    Submit {
        /// Free-form tenant name (per-tenant metrics key).
        tenant: String,
        /// `minicc::codec::encode_module` bytes of the module to tune.
        module: Vec<u8>,
        /// GA seed.
        seed: u64,
        /// Evaluation budget (`Termination::max_evaluations`).
        max_evaluations: u64,
        /// Population-level dedup flag.
        dedup: bool,
        /// Wall-clock deadline in milliseconds from submission; `0`
        /// means no deadline. A running job that blows it is aborted
        /// between evaluation batches with
        /// [`JobState::DeadlineExceeded`].
        deadline_ms: u64,
    },
    /// Daemon → client: admitted; poll/fetch with this id.
    Accepted {
        /// The assigned job id.
        job: u64,
    },
    /// Daemon → client: refused at admission.
    Rejected {
        /// Typed reason.
        code: RejectCode,
        /// Human-readable detail.
        detail: String,
    },
    /// Client → daemon: query a job's state.
    Status {
        /// The job id.
        job: u64,
    },
    /// Daemon → client: the job's state plus queue telemetry.
    StatusReply {
        /// The job id echoed.
        job: u64,
        /// Lifecycle state.
        state: JobState,
        /// Jobs waiting in the admission queue.
        queue_depth: u64,
        /// Jobs currently running.
        running: u64,
    },
    /// Client → daemon: cancel a job. A queued job is dequeued and
    /// settled immediately; a running job aborts at its next
    /// evaluation-batch checkpoint.
    Cancel {
        /// The job id.
        job: u64,
    },
    /// Daemon → client: whether the cancel landed.
    CancelReply {
        /// The job id echoed.
        job: u64,
        /// `true` iff the job was queued (now cancelled) or running
        /// (cancellation latched); `false` for terminal/unknown jobs.
        cancelled: bool,
    },
    /// Client → daemon: block until the job reaches a terminal state,
    /// then return its outcome.
    FetchResult {
        /// The job id.
        job: u64,
    },
    /// Daemon → client: the terminal outcome.
    ResultReply {
        /// The job id echoed.
        job: u64,
        /// `Ok` for Done, `Err(message)` for Failed/Cancelled/Unknown.
        outcome: Result<WireTuneOutcome, String>,
    },
    /// Client → daemon: request a metrics snapshot.
    Metrics,
    /// Daemon → client: the snapshot.
    MetricsReply {
        /// Every counter, consistently read.
        snapshot: MetricsSnapshot,
    },
    /// Client → daemon: request the Prometheus-style text exposition of
    /// the daemon's btel registry (what `bintuner metrics` renders).
    MetricsText,
    /// Daemon → client: the rendered exposition.
    MetricsTextReply {
        /// `btel::Registry::render_text` output, UTF-8.
        text: String,
    },
    /// Client → daemon: request the recent trace spans.
    TraceDump,
    /// Daemon → client: the spans as JSONL (one span object per line).
    TraceDumpReply {
        /// `btel::spans_to_jsonl` output, UTF-8.
        jsonl: String,
    },
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
}

fn read_str(r: &mut Reader<'_>) -> Result<String, EvaldError> {
    String::from_utf8(r.bytes()?).map_err(|_| EvaldError::Corrupt("string is not UTF-8"))
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        None => out.put_u8(0),
        Some(v) => {
            out.put_u8(1);
            out.put_u64_le(v.to_bits());
        }
    }
}

fn read_opt_f64(r: &mut Reader<'_>) -> Result<Option<f64>, EvaldError> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(f64::from_bits(r.u64()?)),
        _ => return Err(EvaldError::Corrupt("option tag out of range")),
    })
}

/// Encode one daemon frame, length prefix included — ready for any
/// `evald::transport` sender.
pub fn encode_daemon_frame(frame: &DaemonFrame) -> Vec<u8> {
    let mut body: Vec<u8> = Vec::with_capacity(64);
    body.put_slice(&DAEMON_MAGIC);
    body.put_u32_le(DAEMON_WIRE_VERSION);
    match frame {
        DaemonFrame::Submit {
            tenant,
            module,
            seed,
            max_evaluations,
            dedup,
            deadline_ms,
        } => {
            body.put_u8(TAG_SUBMIT);
            put_str(&mut body, tenant);
            body.put_u32_le(module.len() as u32);
            body.put_slice(module);
            body.put_u64_le(*seed);
            body.put_u64_le(*max_evaluations);
            body.put_u8(u8::from(*dedup));
            body.put_u64_le(*deadline_ms);
        }
        DaemonFrame::Accepted { job } => {
            body.put_u8(TAG_ACCEPTED);
            body.put_u64_le(*job);
        }
        DaemonFrame::Rejected { code, detail } => {
            body.put_u8(TAG_REJECTED);
            body.put_u8(code.to_u8());
            put_str(&mut body, detail);
        }
        DaemonFrame::Status { job } => {
            body.put_u8(TAG_STATUS);
            body.put_u64_le(*job);
        }
        DaemonFrame::StatusReply {
            job,
            state,
            queue_depth,
            running,
        } => {
            body.put_u8(TAG_STATUS_REPLY);
            body.put_u64_le(*job);
            body.put_u8(state.to_u8());
            body.put_u64_le(*queue_depth);
            body.put_u64_le(*running);
        }
        DaemonFrame::Cancel { job } => {
            body.put_u8(TAG_CANCEL);
            body.put_u64_le(*job);
        }
        DaemonFrame::CancelReply { job, cancelled } => {
            body.put_u8(TAG_CANCEL_REPLY);
            body.put_u64_le(*job);
            body.put_u8(u8::from(*cancelled));
        }
        DaemonFrame::FetchResult { job } => {
            body.put_u8(TAG_FETCH_RESULT);
            body.put_u64_le(*job);
        }
        DaemonFrame::ResultReply { job, outcome } => {
            body.put_u8(TAG_RESULT_REPLY);
            body.put_u64_le(*job);
            match outcome {
                Ok(o) => {
                    body.put_u8(1);
                    put_genome(&mut body, &o.best_flags);
                    body.put_u64_le(o.best_ncd_bits);
                    body.put_u64_le(o.iterations);
                    body.put_u8(stop_reason_to_u8(o.stopped_by));
                    body.put_u64_le(o.compiles);
                    body.put_u64_le(o.persistent_hits);
                    body.put_u64_le(o.store_ast_hits);
                    body.put_u64_le(o.store_lower_hits);
                }
                Err(message) => {
                    body.put_u8(0);
                    put_str(&mut body, message);
                }
            }
        }
        DaemonFrame::Metrics => {
            body.put_u8(TAG_METRICS);
        }
        DaemonFrame::MetricsReply { snapshot } => {
            body.put_u8(TAG_METRICS_REPLY);
            body.put_u64_le(snapshot.submitted);
            body.put_u64_le(snapshot.accepted);
            body.put_u64_le(snapshot.rejected);
            body.put_u64_le(snapshot.completed);
            body.put_u64_le(snapshot.failed);
            body.put_u64_le(snapshot.cancelled);
            body.put_u64_le(snapshot.queue_depth);
            body.put_u64_le(snapshot.running);
            body.put_u64_le(snapshot.compiles_total);
            body.put_u64_le(snapshot.persistent_hits_total);
            body.put_u64_le(snapshot.farm_launches);
            body.put_u64_le(snapshot.farm_failures);
            put_opt_f64(&mut body, snapshot.ewma_job_seconds);
            put_opt_f64(&mut body, snapshot.ewma_compiles_per_second);
            body.put_u32_le(snapshot.tenants.len() as u32);
            for (tenant, t) in &snapshot.tenants {
                put_str(&mut body, tenant);
                body.put_u64_le(t.submitted);
                body.put_u64_le(t.rejected);
                body.put_u64_le(t.completed);
                body.put_u64_le(t.failed);
                body.put_u64_le(t.compiles);
            }
        }
        DaemonFrame::MetricsText => {
            body.put_u8(TAG_METRICS_TEXT);
        }
        DaemonFrame::MetricsTextReply { text } => {
            body.put_u8(TAG_METRICS_TEXT_REPLY);
            put_str(&mut body, text);
        }
        DaemonFrame::TraceDump => {
            body.put_u8(TAG_TRACE_DUMP);
        }
        DaemonFrame::TraceDumpReply { jsonl } => {
            body.put_u8(TAG_TRACE_DUMP_REPLY);
            put_str(&mut body, jsonl);
        }
    }
    let ck = checksum(&body);
    let mut out = Vec::with_capacity(4 + body.len() + 4);
    out.put_u32_le((body.len() + 4) as u32);
    out.put_slice(&body);
    out.put_u32_le(ck);
    out
}

/// Decode one daemon frame from the head of `buf`, returning it with
/// the byte count consumed.
///
/// # Errors
///
/// As `evald::wire::decode_frame`: `Truncated` for a partial frame,
/// `BadMagic` / `VersionMismatch` / `Corrupt` for frames that cannot be
/// trusted.
pub fn decode_daemon_frame(buf: &[u8]) -> Result<(DaemonFrame, usize), EvaldError> {
    if buf.len() < 4 {
        return Err(EvaldError::Truncated {
            needed: 4,
            got: buf.len(),
        });
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME_LEN {
        return Err(EvaldError::Corrupt("frame length exceeds the cap"));
    }
    if len < 4 + 4 + 1 + 4 {
        return Err(EvaldError::Corrupt("frame shorter than its fixed header"));
    }
    let total = 4 + len;
    if buf.len() < total {
        return Err(EvaldError::Truncated {
            needed: total,
            got: buf.len(),
        });
    }
    let body = &buf[4..total];
    if body[..4] != DAEMON_MAGIC {
        return Err(EvaldError::BadMagic);
    }
    let version = u32::from_le_bytes(body[4..8].try_into().unwrap());
    if version != DAEMON_WIRE_VERSION {
        return Err(EvaldError::VersionMismatch {
            got: version,
            want: DAEMON_WIRE_VERSION,
        });
    }
    let (payload, ck_bytes) = body.split_at(body.len() - 4);
    let stored = u32::from_le_bytes(ck_bytes.try_into().unwrap());
    if checksum(payload) != stored {
        return Err(EvaldError::Corrupt("checksum mismatch"));
    }
    let mut r = Reader::new(&payload[9..]); // past magic+version+tag
    let frame = match payload[8] {
        TAG_SUBMIT => {
            let tenant = read_str(&mut r)?;
            let module = r.bytes()?;
            DaemonFrame::Submit {
                tenant,
                module,
                seed: r.u64()?,
                max_evaluations: r.u64()?,
                dedup: r.u8()? != 0,
                deadline_ms: r.u64()?,
            }
        }
        TAG_ACCEPTED => DaemonFrame::Accepted { job: r.u64()? },
        TAG_REJECTED => DaemonFrame::Rejected {
            code: RejectCode::from_u8(r.u8()?)?,
            detail: read_str(&mut r)?,
        },
        TAG_STATUS => DaemonFrame::Status { job: r.u64()? },
        TAG_STATUS_REPLY => DaemonFrame::StatusReply {
            job: r.u64()?,
            state: JobState::from_u8(r.u8()?)?,
            queue_depth: r.u64()?,
            running: r.u64()?,
        },
        TAG_CANCEL => DaemonFrame::Cancel { job: r.u64()? },
        TAG_CANCEL_REPLY => DaemonFrame::CancelReply {
            job: r.u64()?,
            cancelled: r.u8()? != 0,
        },
        TAG_FETCH_RESULT => DaemonFrame::FetchResult { job: r.u64()? },
        TAG_RESULT_REPLY => {
            let job = r.u64()?;
            let outcome = match r.u8()? {
                1 => Ok(WireTuneOutcome {
                    best_flags: r.genome()?,
                    best_ncd_bits: r.u64()?,
                    iterations: r.u64()?,
                    stopped_by: stop_reason_from_u8(r.u8()?)?,
                    compiles: r.u64()?,
                    persistent_hits: r.u64()?,
                    store_ast_hits: r.u64()?,
                    store_lower_hits: r.u64()?,
                }),
                0 => Err(read_str(&mut r)?),
                _ => return Err(EvaldError::Corrupt("outcome tag out of range")),
            };
            DaemonFrame::ResultReply { job, outcome }
        }
        TAG_METRICS => DaemonFrame::Metrics,
        TAG_METRICS_REPLY => {
            let (submitted, accepted, rejected) = (r.u64()?, r.u64()?, r.u64()?);
            let (completed, failed, cancelled) = (r.u64()?, r.u64()?, r.u64()?);
            let (queue_depth, running) = (r.u64()?, r.u64()?);
            let (compiles_total, persistent_hits_total) = (r.u64()?, r.u64()?);
            let (farm_launches, farm_failures) = (r.u64()?, r.u64()?);
            let ewma_job_seconds = read_opt_f64(&mut r)?;
            let ewma_compiles_per_second = read_opt_f64(&mut r)?;
            let n = r.u32()? as usize;
            let mut tenants = Vec::with_capacity(n.min(1 << 12));
            for _ in 0..n {
                let tenant = read_str(&mut r)?;
                tenants.push((
                    tenant,
                    TenantCounters {
                        submitted: r.u64()?,
                        rejected: r.u64()?,
                        completed: r.u64()?,
                        failed: r.u64()?,
                        compiles: r.u64()?,
                    },
                ));
            }
            DaemonFrame::MetricsReply {
                snapshot: MetricsSnapshot {
                    submitted,
                    accepted,
                    rejected,
                    completed,
                    failed,
                    cancelled,
                    queue_depth,
                    running,
                    compiles_total,
                    persistent_hits_total,
                    farm_launches,
                    farm_failures,
                    ewma_job_seconds,
                    ewma_compiles_per_second,
                    tenants,
                },
            }
        }
        TAG_METRICS_TEXT => DaemonFrame::MetricsText,
        TAG_METRICS_TEXT_REPLY => DaemonFrame::MetricsTextReply {
            text: read_str(&mut r)?,
        },
        TAG_TRACE_DUMP => DaemonFrame::TraceDump,
        TAG_TRACE_DUMP_REPLY => DaemonFrame::TraceDumpReply {
            jsonl: read_str(&mut r)?,
        },
        _ => return Err(EvaldError::Corrupt("unknown frame tag")),
    };
    r.done()?;
    Ok((frame, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<DaemonFrame> {
        vec![
            DaemonFrame::Submit {
                tenant: "ci".into(),
                module: vec![1, 2, 3, 255],
                seed: 0xB147,
                max_evaluations: 90,
                dedup: true,
                deadline_ms: 0,
            },
            DaemonFrame::Submit {
                tenant: "batch".into(),
                module: vec![9],
                seed: 1,
                max_evaluations: 4,
                dedup: false,
                deadline_ms: 45_000,
            },
            DaemonFrame::Accepted { job: 7 },
            DaemonFrame::Rejected {
                code: RejectCode::QueueFull,
                detail: "queue full (4 waiting)".into(),
            },
            DaemonFrame::Rejected {
                code: RejectCode::BadDeadline,
                detail: "deadline beyond the daemon cap".into(),
            },
            DaemonFrame::Status { job: 7 },
            DaemonFrame::StatusReply {
                job: 7,
                state: JobState::Running,
                queue_depth: 3,
                running: 2,
            },
            DaemonFrame::StatusReply {
                job: 11,
                state: JobState::DeadlineExceeded,
                queue_depth: 0,
                running: 1,
            },
            DaemonFrame::Cancel { job: 9 },
            DaemonFrame::CancelReply {
                job: 9,
                cancelled: false,
            },
            DaemonFrame::FetchResult { job: 7 },
            DaemonFrame::ResultReply {
                job: 7,
                outcome: Ok(WireTuneOutcome {
                    best_flags: vec![true, false, true, true],
                    best_ncd_bits: f64::to_bits(0.734),
                    iterations: 90,
                    stopped_by: StopReason::MaxEvaluations,
                    compiles: 0,
                    persistent_hits: 41,
                    store_ast_hits: 2,
                    store_lower_hits: 1,
                }),
            },
            DaemonFrame::ResultReply {
                job: 8,
                outcome: Err("evaluation service failed: no live clients".into()),
            },
            DaemonFrame::Metrics,
            DaemonFrame::MetricsReply {
                snapshot: MetricsSnapshot {
                    submitted: 5,
                    accepted: 4,
                    rejected: 1,
                    completed: 3,
                    failed: 1,
                    cancelled: 0,
                    queue_depth: 0,
                    running: 0,
                    compiles_total: 120,
                    persistent_hits_total: 60,
                    farm_launches: 2,
                    farm_failures: 1,
                    ewma_job_seconds: Some(1.25),
                    ewma_compiles_per_second: None,
                    tenants: vec![(
                        "ci".into(),
                        TenantCounters {
                            submitted: 5,
                            rejected: 1,
                            completed: 3,
                            failed: 1,
                            compiles: 120,
                        },
                    )],
                },
            },
            DaemonFrame::MetricsText,
            DaemonFrame::MetricsTextReply {
                text: "# TYPE bintuner_daemon_jobs_total counter\n\
                       bintuner_daemon_jobs_total{tenant=\"ci\"} 5\n"
                    .into(),
            },
            DaemonFrame::TraceDump,
            DaemonFrame::TraceDumpReply {
                jsonl: "{\"id\":1,\"parent\":0,\"name\":\"batch\",\
                        \"start_us\":10,\"dur_us\":42,\"client\":0}\n"
                    .into(),
            },
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for frame in sample_frames() {
            let bytes = encode_daemon_frame(&frame);
            let (decoded, used) = decode_daemon_frame(&bytes).expect("valid frame decodes");
            assert_eq!(decoded, frame);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn truncation_version_magic_and_checksum_are_rejected() {
        let bytes = encode_daemon_frame(&DaemonFrame::Accepted { job: 3 });
        for cut in 0..bytes.len() {
            assert!(
                matches!(
                    decode_daemon_frame(&bytes[..cut]),
                    Err(EvaldError::Truncated { .. })
                ),
                "cut {cut}"
            );
        }
        let mut wrong_version = bytes.clone();
        wrong_version[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode_daemon_frame(&wrong_version),
            Err(EvaldError::VersionMismatch { got: 99, want: 3 })
        ));
        // A v2 peer (no deadline field on Submit) is told exactly what
        // the daemon speaks now, not misparsed.
        let mut v2 = bytes.clone();
        v2[8..12].copy_from_slice(&2u32.to_le_bytes());
        assert!(matches!(
            decode_daemon_frame(&v2),
            Err(EvaldError::VersionMismatch { got: 2, want: 3 })
        ));
        // A farm frame sent to the daemon port: rejected by magic, not
        // misparsed (and symmetrically, TUND magic fails EVLD decode).
        let farm = evald::wire::encode_frame(&evald::wire::Frame::EndBatch { batch: 1 });
        assert!(matches!(
            decode_daemon_frame(&farm),
            Err(EvaldError::BadMagic)
        ));
        assert!(matches!(
            evald::wire::decode_frame(&bytes),
            Err(EvaldError::BadMagic)
        ));
        let mut corrupt = bytes;
        let last = corrupt.len() - 5; // inside the payload, before checksum
        corrupt[last] ^= 0xFF;
        assert!(matches!(
            decode_daemon_frame(&corrupt),
            Err(EvaldError::Corrupt(_))
        ));
    }
}
