//! The daemon's metrics plane: per-daemon and per-tenant counters plus
//! EWMA rate estimators, exported as one consistent snapshot frame.
//!
//! Everything on the job hot path is a relaxed atomic increment; the
//! only locks are taken at job *completion* (rate estimators, tenant
//! map) and at snapshot time — the metrics plane never serializes two
//! running jobs against each other.

use btel::Ewma;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-tenant accounting (a tenant is the free-form string on Submit).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TenantCounters {
    /// Jobs this tenant submitted (accepted or rejected).
    pub submitted: u64,
    /// Jobs rejected at admission (queue full).
    pub rejected: u64,
    /// Jobs that completed successfully.
    pub completed: u64,
    /// Jobs that failed (service loss, invalid module).
    pub failed: u64,
    /// Real compiles this tenant's completed jobs performed.
    pub compiles: u64,
}

/// The daemon-wide counters. Hot-path increments are relaxed atomics;
/// see the module docs for the locking discipline.
#[derive(Debug)]
pub struct DaemonMetrics {
    /// Submit frames received.
    pub submitted: AtomicU64,
    /// Jobs admitted to the queue.
    pub accepted: AtomicU64,
    /// Jobs refused at admission (bounded queue full, or shutdown).
    pub rejected: AtomicU64,
    /// Jobs that finished with a result.
    pub completed: AtomicU64,
    /// Jobs that finished with an error.
    pub failed: AtomicU64,
    /// Jobs cancelled — dequeued while queued, or aborted at a batch
    /// checkpoint while running.
    pub cancelled: AtomicU64,
    /// Jobs currently waiting in the admission queue.
    pub queue_depth: AtomicU64,
    /// Jobs currently executing on a runner.
    pub running: AtomicU64,
    /// Real compiles across all completed jobs.
    pub compiles_total: AtomicU64,
    /// Persistent fitness-store hits across all completed jobs — the
    /// multi-tenant payoff counter: a duplicate submission is all hits,
    /// zero compiles.
    pub persistent_hits_total: AtomicU64,
    /// Shared-farm launches (first job, module switches, relaunches
    /// after a farm loss).
    pub farm_launches: AtomicU64,
    /// Shared-farm failures (a batch aborted because every worker was
    /// lost, or a relaunch failed).
    pub farm_failures: AtomicU64,
    rates: Mutex<Rates>,
    tenants: Mutex<HashMap<String, TenantCounters>>,
}

#[derive(Debug)]
struct Rates {
    job_seconds: Ewma,
    compiles_per_second: Ewma,
}

impl Default for DaemonMetrics {
    fn default() -> DaemonMetrics {
        DaemonMetrics {
            submitted: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            running: AtomicU64::new(0),
            compiles_total: AtomicU64::new(0),
            persistent_hits_total: AtomicU64::new(0),
            farm_launches: AtomicU64::new(0),
            farm_failures: AtomicU64::new(0),
            rates: Mutex::new(Rates {
                job_seconds: Ewma::new(0.3),
                compiles_per_second: Ewma::new(0.3),
            }),
            tenants: Mutex::new(HashMap::new()),
        }
    }
}

impl DaemonMetrics {
    /// Record a submission attempt for `tenant` (before admission).
    pub fn on_submit(&self, tenant: &str) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.tenant_mut(tenant, |t| t.submitted += 1);
    }

    /// Record an admission rejection for `tenant`.
    pub fn on_reject(&self, tenant: &str) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        self.tenant_mut(tenant, |t| t.rejected += 1);
    }

    /// Record a job completing. Runs off the hot path (once per job):
    /// updates the EWMA rate estimators and the tenant map.
    pub fn on_job_done(
        &self,
        tenant: &str,
        succeeded: bool,
        compiles: u64,
        persistent_hits: u64,
        wall_seconds: f64,
    ) {
        if succeeded {
            self.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        self.compiles_total.fetch_add(compiles, Ordering::Relaxed);
        self.persistent_hits_total
            .fetch_add(persistent_hits, Ordering::Relaxed);
        {
            // btel::Ewma rejects non-finite and negative samples itself
            // (`observe` returns false) — the edge cases the former
            // private copy here ignored — so a clock hiccup can no
            // longer poison the rate estimate.
            let mut rates = self.rates.lock().unwrap();
            rates.job_seconds.observe(wall_seconds);
            if wall_seconds > 0.0 {
                rates
                    .compiles_per_second
                    .observe(compiles as f64 / wall_seconds);
            }
        }
        self.tenant_mut(tenant, |t| {
            if succeeded {
                t.completed += 1;
            } else {
                t.failed += 1;
            }
            t.compiles += compiles;
        });
    }

    fn tenant_mut(&self, tenant: &str, f: impl FnOnce(&mut TenantCounters)) {
        let mut tenants = self.tenants.lock().unwrap();
        f(tenants.entry(tenant.to_string()).or_default());
    }

    /// One consistent snapshot (the payload of the Metrics frame).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let rates = self.rates.lock().unwrap();
        let mut tenants: Vec<(String, TenantCounters)> = self
            .tenants
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        tenants.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            running: self.running.load(Ordering::Relaxed),
            compiles_total: self.compiles_total.load(Ordering::Relaxed),
            persistent_hits_total: self.persistent_hits_total.load(Ordering::Relaxed),
            farm_launches: self.farm_launches.load(Ordering::Relaxed),
            farm_failures: self.farm_failures.load(Ordering::Relaxed),
            ewma_job_seconds: rates.job_seconds.value(),
            ewma_compiles_per_second: rates.compiles_per_second.value(),
            tenants,
        }
    }
}

/// A point-in-time copy of every daemon counter — what the Metrics wire
/// frame carries and what the CI artifact records.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// See [`DaemonMetrics::submitted`].
    pub submitted: u64,
    /// See [`DaemonMetrics::accepted`].
    pub accepted: u64,
    /// See [`DaemonMetrics::rejected`].
    pub rejected: u64,
    /// See [`DaemonMetrics::completed`].
    pub completed: u64,
    /// See [`DaemonMetrics::failed`].
    pub failed: u64,
    /// See [`DaemonMetrics::cancelled`].
    pub cancelled: u64,
    /// See [`DaemonMetrics::queue_depth`].
    pub queue_depth: u64,
    /// See [`DaemonMetrics::running`].
    pub running: u64,
    /// See [`DaemonMetrics::compiles_total`].
    pub compiles_total: u64,
    /// See [`DaemonMetrics::persistent_hits_total`].
    pub persistent_hits_total: u64,
    /// See [`DaemonMetrics::farm_launches`].
    pub farm_launches: u64,
    /// See [`DaemonMetrics::farm_failures`].
    pub farm_failures: u64,
    /// EWMA of per-job wall seconds (`None` before the first job).
    pub ewma_job_seconds: Option<f64>,
    /// EWMA of compile throughput (`None` until a job with nonzero
    /// wall time completes).
    pub ewma_compiles_per_second: Option<f64>,
    /// Per-tenant counters, sorted by tenant name.
    pub tenants: Vec<(String, TenantCounters)>,
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "jobs.submitted {}", self.submitted)?;
        writeln!(f, "jobs.accepted {}", self.accepted)?;
        writeln!(f, "jobs.rejected {}", self.rejected)?;
        writeln!(f, "jobs.completed {}", self.completed)?;
        writeln!(f, "jobs.failed {}", self.failed)?;
        writeln!(f, "jobs.cancelled {}", self.cancelled)?;
        writeln!(f, "queue.depth {}", self.queue_depth)?;
        writeln!(f, "jobs.running {}", self.running)?;
        writeln!(f, "compiles.total {}", self.compiles_total)?;
        writeln!(f, "store.persistent_hits {}", self.persistent_hits_total)?;
        writeln!(f, "farm.launches {}", self.farm_launches)?;
        writeln!(f, "farm.failures {}", self.farm_failures)?;
        if let Some(s) = self.ewma_job_seconds {
            writeln!(f, "ewma.job_seconds {s:.6}")?;
        }
        if let Some(c) = self.ewma_compiles_per_second {
            writeln!(f, "ewma.compiles_per_second {c:.6}")?;
        }
        for (tenant, t) in &self.tenants {
            writeln!(
                f,
                "tenant.{tenant} submitted={} rejected={} completed={} failed={} compiles={}",
                t.submitted, t.rejected, t.completed, t.failed, t.compiles
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_seeds_then_smooths() {
        // The pinned α=0.5 trajectory of the former private estimator,
        // now required of the shared btel::Ewma it migrated to.
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert!(e.observe(10.0));
        assert_eq!(e.value(), Some(10.0));
        assert!(e.observe(20.0));
        assert_eq!(e.value(), Some(15.0));
        assert!(e.observe(15.0));
        assert_eq!(e.value(), Some(15.0));
    }

    #[test]
    fn ewma_rejects_poison_samples() {
        // The edge cases the private copy ignored: NaN, ±inf, and
        // negative wall clocks are dropped instead of folded in.
        let mut e = Ewma::new(0.5);
        assert!(!e.observe(f64::NAN));
        assert!(!e.observe(f64::INFINITY));
        assert!(!e.observe(-1.0));
        assert_eq!(e.value(), None);
        assert!(e.observe(4.0));
        assert!(!e.observe(f64::NAN));
        assert_eq!(e.value(), Some(4.0));
    }

    #[test]
    fn snapshot_aggregates_tenants_sorted_and_display_is_parseable() {
        let m = DaemonMetrics::default();
        m.on_submit("zeta");
        m.on_submit("alpha");
        m.on_reject("zeta");
        m.accepted.fetch_add(1, Ordering::Relaxed);
        m.on_job_done("alpha", true, 40, 3, 2.0);
        m.on_job_done("alpha", false, 0, 0, 0.0);
        let snap = m.snapshot();
        assert_eq!(snap.submitted, 2);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.compiles_total, 40);
        assert_eq!(snap.ewma_compiles_per_second, Some(20.0));
        let names: Vec<&str> = snap.tenants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"], "sorted by tenant");
        let text = snap.to_string();
        assert!(text.contains("compiles.total 40"));
        assert!(
            text.contains("tenant.alpha submitted=1 rejected=0 completed=1 failed=1 compiles=40")
        );
    }
}
