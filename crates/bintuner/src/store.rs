//! Persistent cross-run fitness store — paper Figure 4's server-side
//! database, "stored for future exploration".
//!
//! BinTuner records every compiled variant's fitness in a database so
//! that re-tuning the same target starts warm. This module is that
//! database as a single-file, append-only log:
//!
//! * **Key** — `(module content hash, compiler profile, arch,
//!   effect-config digest)`: exactly the tuple the emitted binary is a
//!   pure function of. All components come from `minicc`'s stable
//!   canonical hashing ([`minicc::StableHasher`]), never from
//!   `std`'s process-seeded hashers, so keys survive restarts.
//! * **Minable records** — besides the fitness itself, each record
//!   carries the *representative flag vector* that produced it (as a
//!   fixed-width bitmap, [`FlagBits`]), and the store additionally keeps
//!   one [`ModuleFeatures`] record per module. Together these are what
//!   `bintuner::priors` mines into per-flag potency priors and
//!   cross-module config transfer — the paper's "future exploration" —
//!   without needing the original sources at mining time.
//! * **Append-only log + compaction** — each run appends only the
//!   configurations it actually compiled, as fixed-size checksummed
//!   records, in one `write_all`. When dead records (overwritten keys)
//!   dominate, [`FitnessStore::save`] compacts: the live set is rewritten
//!   to a sibling temp file and atomically `rename`d over the log.
//! * **Corruption tolerance** — loading never fails and never panics: a
//!   bad magic/version yields a clean cold start (the file is rewritten
//!   wholesale on the next save), and a truncated or checksum-corrupt
//!   tail drops exactly the damaged suffix, keeping the valid prefix.
//!   A torn append therefore loses at most the interrupted run's new
//!   entries.
//!
//! The on-disk encoding is hand-rolled little-endian via the vendored
//! [`bytes::BufMut`] surface (the vendored `serde` is derive-markers
//! only — it has no serialization runtime), and is versioned: bump
//! [`FORMAT_VERSION`] whenever the record layout *or* any canonical hash
//! encoding changes, so stale files degrade to a cold start instead of
//! being misread. Version 2 added the flag bitmap and module-features
//! records; version 3 added the per-record generation counter (see
//! below); older files load as a clean cold start.
//!
//! * **Generations** — every fitness record carries the store's
//!   monotonic generation at insertion time, and the store's own
//!   generation is `max(stored) + 1` at load. One load→save cycle is one
//!   generation, so `store.generation() − record.generation` is the
//!   record's age in runs — the input to the prior miner's age decay
//!   (`PriorConfig::decay_half_life`).
//!
//! Concurrency: one store value is owned by one tuning run at a time
//! (the engine wraps it in a `Mutex`), and *within* a service run the
//! evaluation server is the single writer — clients only ship results
//! back. Two *processes* sharing one `cache_path` are coordinated by an
//! advisory lock file (`<path>.lock`) held across
//! [`FitnessStore::save`]'s append/compaction: the loser of the race
//! degrades to skipping its save ([`SaveOutcome::SkippedLocked`],
//! surfaced through `PersistSummary`), never to interleaved writes. A
//! lock left by a crashed process is reclaimed when its pid is dead.

use binrep::Arch;
use bytes::BufMut;
use minicc::fnv1a32 as checksum;
use minicc::{CompilerKind, ModuleFeatures};
use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File magic: `BTFS` (BinTuner Fitness Store).
pub const MAGIC: [u8; 4] = *b"BTFS";

/// On-disk format version. Covers the header/record layout *and* the
/// canonical encodings behind [`minicc::ast::Module::content_hash`],
/// [`minicc::EffectConfig::stable_digest`], and the
/// [`minicc::ModuleFeatures`] component meanings — a mismatch is a clean
/// cold start, never a misread.
pub const FORMAT_VERSION: u32 = 3;

/// Widest flag vector a stored bitmap can represent. Both modelled
/// profiles are well under this; a hypothetical wider profile stores an
/// empty bitmap (the fitness entry itself is unaffected — only prior
/// mining skips it).
pub const MAX_STORED_FLAGS: usize = 192;

const FLAG_BYTES: usize = MAX_STORED_FLAGS / 8;

const HEADER_LEN: usize = 8;
/// Tagged record payload: 1 tag byte + 65 body bytes (the fitness body:
/// module_hash(8) + compiler(1) + arch(1) + digest(16) + fitness(8) +
/// failed(1) + n_flags(2) + flag bitmap(24) + generation(4); the
/// features body is shorter and zero-padded to the same width), plus a
/// 4-byte FNV-1a checksum.
const RECORD_BODY_LEN: usize = 65;
const RECORD_PAYLOAD_LEN: usize = 1 + RECORD_BODY_LEN;
const RECORD_LEN: usize = RECORD_PAYLOAD_LEN + 4;
/// Compaction floor: below this many disk records, dead entries are not
/// worth a rewrite.
const COMPACT_MIN_RECORDS: usize = 64;

const TAG_FITNESS: u8 = 0;
const TAG_MODULE_FEATURES: u8 = 1;

// The features body (module_hash + N u32 counts) must fit the fixed
// record body; growing ModuleFeatures::N past this is a format change.
const _: () = assert!(8 + 4 * ModuleFeatures::N <= RECORD_BODY_LEN);

/// The cache key a fitness result is filed under.
///
/// `compiler` and `arch` are stored as stable one-byte tags (see
/// [`CompilerKind::stable_id`]) rather than enums, so records written by
/// a future version with more variants load as never-matching keys
/// instead of failing to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoreKey {
    /// [`minicc::ast::Module::content_hash`] of the tuned module.
    pub module_hash: u64,
    /// [`CompilerKind::stable_id`] tag.
    pub compiler: u8,
    /// Stable architecture tag (see [`arch_tag`]).
    pub arch: u8,
    /// [`minicc::EffectConfig::stable_digest`] of the resolved config.
    pub effect_digest: u128,
}

impl StoreKey {
    /// Build a key from the typed components.
    pub fn new(module_hash: u64, compiler: CompilerKind, arch: Arch, effect_digest: u128) -> Self {
        StoreKey {
            module_hash,
            compiler: compiler.stable_id(),
            arch: arch_tag(arch),
            effect_digest,
        }
    }
}

/// Stable one-byte tag for an architecture — part of the on-disk format;
/// assignments must never be reordered or reused.
pub fn arch_tag(arch: Arch) -> u8 {
    match arch {
        Arch::X86 => 0,
        Arch::X8664 => 1,
        Arch::Arm => 2,
        Arch::Mips => 3,
    }
}

/// A fixed-width bitmap of a flag vector — the minable "which flags were
/// on" half of a stored fitness record.
///
/// Width-checked: the bitmap remembers how many flags the source vector
/// had, so a prior miner can reject records written against a different
/// profile width instead of misreading them.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct FlagBits {
    n: u16,
    bits: [u8; FLAG_BYTES],
}

impl FlagBits {
    /// The empty bitmap (no flag vector recorded).
    pub fn empty() -> FlagBits {
        FlagBits {
            n: 0,
            bits: [0; FLAG_BYTES],
        }
    }

    /// Capture a flag vector. Vectors wider than [`MAX_STORED_FLAGS`]
    /// cannot be represented and yield the empty bitmap (the caller's
    /// fitness entry is still stored; only mining skips it).
    pub fn from_bools(flags: &[bool]) -> FlagBits {
        if flags.is_empty() || flags.len() > MAX_STORED_FLAGS {
            return FlagBits::empty();
        }
        let mut out = FlagBits {
            n: flags.len() as u16,
            bits: [0; FLAG_BYTES],
        };
        for (i, &on) in flags.iter().enumerate() {
            if on {
                out.bits[i / 8] |= 1 << (i % 8);
            }
        }
        out
    }

    /// Number of flags the source vector had (0 = nothing recorded).
    pub fn len(&self) -> usize {
        usize::from(self.n)
    }

    /// Whether no flag vector was recorded.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether flag `i` was enabled (false out of range).
    pub fn get(&self, i: usize) -> bool {
        i < self.len() && self.bits[i / 8] & (1 << (i % 8)) != 0
    }

    /// Reconstruct the flag vector.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

impl std::fmt::Debug for FlagBits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FlagBits({}/{} on)",
            (0..self.len()).filter(|&i| self.get(i)).count(),
            self.len()
        )
    }
}

/// One persisted fitness result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoredFitness {
    /// NCD against the `-O0` baseline (bit-exact as computed), or the
    /// failure penalty when `failed`.
    pub fitness: f64,
    /// Whether the compile failed constraint checking.
    pub failed: bool,
    /// Representative flag vector that produced this result (empty when
    /// unknown, e.g. records written before the vector was captured).
    pub flags: FlagBits,
    /// Store generation at insertion time (stamped by
    /// [`FitnessStore::insert`]; the value supplied by the caller is
    /// overwritten). Age in runs is `store.generation() − generation` —
    /// the prior miner's decay input.
    pub generation: u32,
}

impl StoredFitness {
    /// A result with no recorded flag vector (generation stamped at
    /// insertion).
    pub fn new(fitness: f64, failed: bool) -> StoredFitness {
        StoredFitness {
            fitness,
            failed,
            flags: FlagBits::empty(),
            generation: 0,
        }
    }
}

/// What [`FitnessStore::load`] found on disk — telemetry for warm-start
/// reporting and the recovery tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Records decoded and kept (fitness and module-features records).
    pub valid_records: usize,
    /// Trailing bytes dropped (truncation or checksum corruption).
    pub dropped_bytes: usize,
    /// The file carried a different [`FORMAT_VERSION`] — cold start.
    pub version_mismatch: bool,
    /// The file did not start with [`MAGIC`] — cold start.
    pub malformed_header: bool,
    /// No file existed at the path — clean first run.
    pub missing: bool,
}

/// A record queued for the next save, in insertion order.
#[derive(Debug, Clone, Copy)]
enum PendingRecord {
    Fitness(StoreKey, StoredFitness),
    Features(u64, ModuleFeatures),
}

/// A disk-backed map from [`StoreKey`] to [`StoredFitness`], plus one
/// [`ModuleFeatures`] entry per module for prior mining.
///
/// All mutation is in-memory until [`FitnessStore::save`]; the engine
/// inserts fresh results as it compiles, and the tuner saves once at the
/// end of a run.
#[derive(Debug, Default)]
pub struct FitnessStore {
    path: Option<PathBuf>,
    entries: HashMap<StoreKey, StoredFitness>,
    /// Per-module shape features (see [`minicc::ModuleFeatures`]).
    features: HashMap<u64, ModuleFeatures>,
    /// Records inserted since the last save, in insertion order.
    pending: Vec<PendingRecord>,
    /// Records currently in the file, including dead (overwritten) ones.
    disk_records: usize,
    /// The file must be rewritten wholesale (corrupt/foreign/missing
    /// content that cannot be appended to).
    needs_rewrite: bool,
    /// Monotonic generation stamped on inserts: `max(loaded) + 1`, so
    /// each load→save cycle is one generation.
    generation: u32,
    report: LoadReport,
}

impl FitnessStore {
    /// A store with no backing file: [`FitnessStore::save`] is a no-op.
    /// Useful for tests and for engines that only want in-run sharing.
    pub fn in_memory() -> FitnessStore {
        FitnessStore::default()
    }

    /// Load a store from `path`. Never fails: a missing file is a clean
    /// first run, a foreign or version-mismatched file is a cold start
    /// (rewritten on the next save), and a damaged tail is dropped while
    /// the valid prefix is kept. Inspect [`FitnessStore::report`] for
    /// what happened.
    pub fn load(path: impl Into<PathBuf>) -> FitnessStore {
        let path = path.into();
        let mut store = FitnessStore {
            path: Some(path.clone()),
            ..FitnessStore::default()
        };
        match fs::read(&path) {
            Ok(bytes) => store.parse(&bytes),
            Err(_) => store.report.missing = true,
        }
        store.generation = store
            .entries
            .values()
            .map(|v| v.generation)
            .max()
            .map_or(0, |g| g.saturating_add(1));
        store
    }

    fn parse(&mut self, bytes: &[u8]) {
        if bytes.len() < HEADER_LEN || bytes[..4] != MAGIC {
            self.report.malformed_header = true;
            self.report.dropped_bytes = bytes.len();
            self.needs_rewrite = true;
            return;
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != FORMAT_VERSION {
            self.report.version_mismatch = true;
            self.report.dropped_bytes = bytes.len();
            self.needs_rewrite = true;
            return;
        }
        let mut off = HEADER_LEN;
        while off + RECORD_LEN <= bytes.len() {
            let payload = &bytes[off..off + RECORD_PAYLOAD_LEN];
            let stored = u32::from_le_bytes(
                bytes[off + RECORD_PAYLOAD_LEN..off + RECORD_LEN]
                    .try_into()
                    .unwrap(),
            );
            if checksum(payload) != stored || !self.decode_record(payload) {
                break;
            }
            self.disk_records += 1;
            off += RECORD_LEN;
        }
        self.report.valid_records = self.disk_records;
        if off != bytes.len() {
            // Truncated or corrupt tail: appending after it would
            // misalign every future record, so force a rewrite.
            self.report.dropped_bytes = bytes.len() - off;
            self.needs_rewrite = true;
        }
    }

    /// Decode one checksum-verified payload into the in-memory maps.
    /// Returns false for an unknown tag (treated as a corrupt tail —
    /// same-version files only ever carry known tags).
    fn decode_record(&mut self, payload: &[u8]) -> bool {
        let body = &payload[1..];
        match payload[0] {
            TAG_FITNESS => {
                let (key, value) = decode_fitness(body);
                self.entries.insert(key, value);
                true
            }
            TAG_MODULE_FEATURES => {
                let (hash, feats) = decode_features(body);
                self.features.insert(hash, feats);
                true
            }
            _ => false,
        }
    }

    /// The backing path, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// What loading found on disk.
    pub fn report(&self) -> LoadReport {
        self.report
    }

    /// Number of live fitness entries (module-features records are
    /// bookkeeping and not counted).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no fitness entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fitness entries inserted since the last [`FitnessStore::save`]
    /// (module-features records piggyback on the save but are not
    /// counted — they are identity metadata, not results).
    pub fn pending_len(&self) -> usize {
        self.pending
            .iter()
            .filter(|r| matches!(r, PendingRecord::Fitness(..)))
            .count()
    }

    /// Look up a persisted result.
    pub fn get(&self, key: &StoreKey) -> Option<StoredFitness> {
        self.entries.get(key).copied()
    }

    /// Iterate all live fitness entries (mining input; arbitrary order —
    /// consumers that need determinism must sort).
    pub fn entries(&self) -> impl Iterator<Item = (&StoreKey, &StoredFitness)> {
        self.entries.iter()
    }

    /// The generation stamped on new inserts (0 for a fresh or empty
    /// store; advances by one per load→save cycle).
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Insert (or overwrite) a result; queued for the next save and
    /// stamped with the current [`FitnessStore::generation`]. An insert
    /// whose fitness and failure bit match the stored value bit-for-bit
    /// is a no-op (the flag bitmap and generation are advisory
    /// metadata), so re-tuning a warm target never grows the log — and
    /// never refreshes record ages, keeping decay honest.
    pub fn insert(&mut self, key: StoreKey, value: StoredFitness) {
        if self.entries.get(&key).is_some_and(|v| {
            v.fitness.to_bits() == value.fitness.to_bits() && v.failed == value.failed
        }) {
            return;
        }
        let value = StoredFitness {
            generation: self.generation,
            ..value
        };
        self.entries.insert(key, value);
        self.pending.push(PendingRecord::Fitness(key, value));
    }

    /// Drain the fitness results queued since the last save (or drain),
    /// *removing* them from the save queue — the client-side path of the
    /// evaluation service, where an in-memory store accumulates a
    /// shard's results to ship back for the server's single writable
    /// store instead of saving anything itself. Queued module-features
    /// records stay queued (they are identity metadata, not results).
    pub fn drain_pending_fitness(&mut self) -> Vec<(StoreKey, StoredFitness)> {
        let mut out = Vec::new();
        self.pending.retain(|rec| match rec {
            PendingRecord::Fitness(key, value) => {
                out.push((*key, *value));
                false
            }
            PendingRecord::Features(..) => true,
        });
        out
    }

    /// Record a module's shape features (queued for the next save;
    /// unchanged features are a no-op so warm re-runs never grow the
    /// log). The engine calls this once per run for the tuned module.
    pub fn record_module_features(&mut self, module_hash: u64, feats: ModuleFeatures) {
        if self.features.get(&module_hash) == Some(&feats) {
            return;
        }
        self.features.insert(module_hash, feats);
        self.pending
            .push(PendingRecord::Features(module_hash, feats));
    }

    /// A module's recorded shape features, if any.
    pub fn module_features(&self, module_hash: u64) -> Option<ModuleFeatures> {
        self.features.get(&module_hash).copied()
    }

    /// Iterate all modules with recorded features (arbitrary order —
    /// consumers that need determinism must sort).
    pub fn modules_with_features(&self) -> impl Iterator<Item = (u64, ModuleFeatures)> + '_ {
        self.features.iter().map(|(&h, &f)| (h, f))
    }

    /// Flush pending entries to disk, under the advisory file lock.
    ///
    /// Fast path: one appended `write_all` of the new records. The file
    /// is rewritten wholesale — to a temp file, then atomically
    /// `rename`d into place — when it was corrupt/foreign/missing, or
    /// when dead records make compaction worthwhile (the live set is at
    /// most half the log and the log is non-trivial).
    ///
    /// Both paths run with `<path>.lock` held ([`StoreLock`]), so two
    /// local tuner processes sharing one `cache_path` cannot interleave
    /// appends or race the compaction's tmp+rename. When another live
    /// process holds the lock, the save *degrades to a skip* —
    /// [`SaveOutcome::SkippedLocked`], with the pending entries kept in
    /// memory for a retry — rather than blocking or corrupting.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the in-memory state is unchanged by a
    /// failed (or skipped) save, so it can be retried.
    pub fn save(&mut self) -> io::Result<SaveOutcome> {
        let Some(path) = self.path.clone() else {
            self.pending.clear();
            return Ok(SaveOutcome::Written);
        };
        if self.pending.is_empty() && !self.needs_rewrite {
            return Ok(SaveOutcome::Written);
        }
        let Some(_lock) = StoreLock::acquire(&path)? else {
            return Ok(SaveOutcome::SkippedLocked);
        };
        let future_records = self.disk_records + self.pending.len();
        let live = self.entries.len() + self.features.len();
        let compact = self.needs_rewrite
            || !path.exists()
            || (future_records >= COMPACT_MIN_RECORDS && live * 2 <= future_records);
        if compact {
            self.rewrite(&path)?;
        } else {
            self.append(&path)?;
        }
        Ok(SaveOutcome::Written)
    }

    fn rewrite(&mut self, path: &Path) -> io::Result<()> {
        let live = self.entries.len() + self.features.len();
        let mut buf: Vec<u8> = Vec::with_capacity(HEADER_LEN + live * RECORD_LEN);
        buf.put_slice(&MAGIC);
        buf.put_u32_le(FORMAT_VERSION);
        for (&hash, feats) in &self.features {
            encode_features_record(hash, feats, &mut buf);
        }
        for (key, value) in &self.entries {
            encode_fitness_record(key, value, &mut buf);
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        fs::write(&tmp, &buf)?;
        fs::rename(&tmp, path)?;
        self.disk_records = live;
        self.pending.clear();
        self.needs_rewrite = false;
        Ok(())
    }

    fn append(&mut self, path: &Path) -> io::Result<()> {
        let mut buf: Vec<u8> = Vec::with_capacity(self.pending.len() * RECORD_LEN);
        for rec in &self.pending {
            match rec {
                PendingRecord::Fitness(key, value) => encode_fitness_record(key, value, &mut buf),
                PendingRecord::Features(hash, feats) => {
                    encode_features_record(*hash, feats, &mut buf)
                }
            }
        }
        let mut file = fs::OpenOptions::new().append(true).open(path)?;
        file.write_all(&buf)?;
        self.disk_records += self.pending.len();
        self.pending.clear();
        Ok(())
    }
}

/// What [`FitnessStore::save`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaveOutcome {
    /// The store on disk is current (records written, or nothing was
    /// pending, or the store has no backing file).
    Written,
    /// Another live process holds the advisory lock: this save was
    /// skipped and the pending entries remain queued for a retry. Only
    /// the warm start for future runs is deferred — never an error, per
    /// the degrade-don't-panic contract.
    SkippedLocked,
}

/// Advisory cross-process lock on a store file: a `<path>.lock` sibling
/// created with `O_EXCL` and holding the owner's pid. Released on drop;
/// a lock whose owner pid is no longer alive (crashed run) is reclaimed.
///
/// Advisory means cooperative: only [`FitnessStore::save`] honors it,
/// which is enough because saving is the store's only file mutation.
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
}

impl StoreLock {
    /// Path of the lock file guarding `store_path`.
    pub fn lock_path(store_path: &Path) -> PathBuf {
        let mut p = store_path.as_os_str().to_owned();
        p.push(".lock");
        PathBuf::from(p)
    }

    /// Try to take the lock. `Ok(None)` means another live process holds
    /// it (the caller should degrade, not block). A stale lock — owner
    /// pid dead — is reclaimed once.
    ///
    /// Reclamation is check-then-unlink and therefore racy in principle
    /// (`O_EXCL` is the only atomic primitive std offers here), so two
    /// guards shrink the window to a pair of adjacent syscalls: the
    /// holder pid is re-read immediately before the unlink (a racing
    /// reclaimer's *fresh* lock is seen and respected), and after
    /// creating our own lock we re-read it to confirm we still own it
    /// (losing that verification degrades to `Ok(None)` — a skipped
    /// save, the same safe fallback as plain contention). A lost race
    /// that slips both guards costs what the pre-lock code always
    /// risked: a torn append the corruption-tolerant loader truncates.
    ///
    /// # Errors
    ///
    /// Unexpected I/O failures creating the lock file (permissions, a
    /// vanished parent directory).
    pub fn acquire(store_path: &Path) -> io::Result<Option<StoreLock>> {
        let path = StoreLock::lock_path(store_path);
        let my_pid = std::process::id().to_string();
        let read_holder = |path: &Path| fs::read_to_string(path).ok();
        for attempt in 0..2 {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    if let Err(e) = f.write_all(my_pid.as_bytes()) {
                        // A lock file we created but could not stamp
                        // (disk full) must not wedge every future save:
                        // remove it and surface the failure.
                        drop(f);
                        let _ = fs::remove_file(&path);
                        return Err(e);
                    }
                    drop(f);
                    // Ownership verification: a racing stale-reclaimer
                    // may have unlinked and replaced our fresh lock.
                    if read_holder(&path).as_deref().map(str::trim) == Some(my_pid.as_str()) {
                        return Ok(Some(StoreLock { path }));
                    }
                    return Ok(None);
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let first = read_holder(&path);
                    let stale = match first.as_deref().map(str::trim).map(str::parse::<u32>) {
                        Some(Ok(pid)) => pid != std::process::id() && !pid_alive(pid),
                        // Empty content: a torn acquire (killed between
                        // create and pid write) — no live owner can be
                        // identified, reclaim it. A racing acquirer whose
                        // file is momentarily empty is protected by its
                        // own ownership verification above.
                        Some(Err(_)) if first.as_deref().is_some_and(|s| s.trim().is_empty()) => {
                            true
                        }
                        // Garbled non-empty owner: written by something
                        // else entirely — leave it alone.
                        _ => false,
                    };
                    if !stale || attempt == 1 {
                        return Ok(None);
                    }
                    // Re-read right before unlinking: if the content
                    // changed, another process already reclaimed and
                    // re-locked — back off instead of deleting its lock.
                    if read_holder(&path) != first {
                        return Ok(None);
                    }
                    let _ = fs::remove_file(&path);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        // Release only a lock file we still own — never a fresh lock a
        // racing reclaimer put in its place.
        let owned = fs::read_to_string(&self.path)
            .ok()
            .is_some_and(|s| s.trim() == std::process::id().to_string());
        if owned {
            let _ = fs::remove_file(&self.path);
        }
    }
}

/// Whether a process with this pid exists (Linux: `/proc/<pid>`).
#[cfg(target_os = "linux")]
fn pid_alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{pid}")).exists()
}

/// Without a portable liveness probe, treat every lock holder as alive
/// (locks are then only released by their owner's drop — conservative).
#[cfg(not(target_os = "linux"))]
fn pid_alive(_pid: u32) -> bool {
    true
}

/// Append the checksum over the record payload written since `start`,
/// after zero-padding the body to its fixed width.
fn finish_record(start: usize, out: &mut Vec<u8>) {
    while out.len() - start < RECORD_PAYLOAD_LEN {
        out.put_u8(0);
    }
    debug_assert_eq!(out.len() - start, RECORD_PAYLOAD_LEN);
    let ck = checksum(&out[start..]);
    out.put_u32_le(ck);
}

fn encode_fitness_record(key: &StoreKey, value: &StoredFitness, out: &mut Vec<u8>) {
    let start = out.len();
    out.put_u8(TAG_FITNESS);
    out.put_u64_le(key.module_hash);
    out.put_u8(key.compiler);
    out.put_u8(key.arch);
    out.put_u64_le((key.effect_digest >> 64) as u64);
    out.put_u64_le(key.effect_digest as u64);
    out.put_u64_le(value.fitness.to_bits());
    out.put_u8(value.failed as u8);
    out.put_u16_le(value.flags.n);
    out.put_slice(&value.flags.bits);
    out.put_u32_le(value.generation);
    finish_record(start, out);
}

fn encode_features_record(module_hash: u64, feats: &ModuleFeatures, out: &mut Vec<u8>) {
    let start = out.len();
    out.put_u8(TAG_MODULE_FEATURES);
    out.put_u64_le(module_hash);
    for &c in &feats.counts {
        out.put_u32_le(c);
    }
    finish_record(start, out);
}

fn decode_fitness(body: &[u8]) -> (StoreKey, StoredFitness) {
    let u64_at = |off: usize| u64::from_le_bytes(body[off..off + 8].try_into().unwrap());
    let key = StoreKey {
        module_hash: u64_at(0),
        compiler: body[8],
        arch: body[9],
        effect_digest: (u128::from(u64_at(10)) << 64) | u128::from(u64_at(18)),
    };
    let n = u16::from_le_bytes(body[35..37].try_into().unwrap());
    let mut flags = FlagBits {
        n: n.min(MAX_STORED_FLAGS as u16),
        bits: [0; FLAG_BYTES],
    };
    flags.bits.copy_from_slice(&body[37..37 + FLAG_BYTES]);
    let value = StoredFitness {
        fitness: f64::from_bits(u64_at(26)),
        failed: body[34] != 0,
        flags,
        generation: u32::from_le_bytes(body[37 + FLAG_BYTES..41 + FLAG_BYTES].try_into().unwrap()),
    };
    (key, value)
}

fn decode_features(body: &[u8]) -> (u64, ModuleFeatures) {
    let hash = u64::from_le_bytes(body[0..8].try_into().unwrap());
    let mut feats = ModuleFeatures::default();
    for (i, c) in feats.counts.iter_mut().enumerate() {
        let off = 8 + 4 * i;
        *c = u32::from_le_bytes(body[off..off + 4].try_into().unwrap());
    }
    (hash, feats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unique scratch path per test (no tempfile crate in the container).
    fn scratch(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "bintuner_store_{}_{}.btfs",
            std::process::id(),
            name
        ));
        let _ = fs::remove_file(&p);
        p
    }

    fn key(i: u64) -> StoreKey {
        StoreKey::new(
            0xAA00 + i,
            CompilerKind::Gcc,
            Arch::X86,
            u128::from(i) << 64 | 0x5EED,
        )
    }

    fn value(i: u64) -> StoredFitness {
        StoredFitness {
            fitness: i as f64 * 0.125 + 0.25,
            failed: i.is_multiple_of(7),
            flags: FlagBits::from_bools(
                &(0..140)
                    .map(|b| (b as u64 + i).is_multiple_of(3))
                    .collect::<Vec<_>>(),
            ),
            generation: 0,
        }
    }

    fn feats(i: u32) -> ModuleFeatures {
        let mut f = ModuleFeatures::default();
        for (j, c) in f.counts.iter_mut().enumerate() {
            *c = i * 10 + j as u32;
        }
        f
    }

    #[test]
    fn round_trip() {
        let path = scratch("round_trip");
        let mut store = FitnessStore::load(&path);
        assert!(store.report().missing);
        for i in 0..20 {
            store.insert(key(i), value(i));
        }
        store.record_module_features(0xFEA7, feats(3));
        store.save().unwrap();

        let reloaded = FitnessStore::load(&path);
        assert_eq!(reloaded.len(), 20);
        assert_eq!(reloaded.report().valid_records, 21);
        assert_eq!(reloaded.report().dropped_bytes, 0);
        for i in 0..20 {
            let got = reloaded.get(&key(i)).unwrap();
            assert_eq!(got.fitness.to_bits(), value(i).fitness.to_bits());
            assert_eq!(got.failed, value(i).failed);
            assert_eq!(got.flags, value(i).flags);
            assert_eq!(got.flags.to_bools().len(), 140);
        }
        assert_eq!(reloaded.get(&key(99)), None);
        assert_eq!(reloaded.module_features(0xFEA7), Some(feats(3)));
        assert_eq!(reloaded.module_features(0xDEAD), None);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn flag_bits_round_trip_and_bounds() {
        let v: Vec<bool> = (0..137).map(|i| i % 5 == 0).collect();
        let bits = FlagBits::from_bools(&v);
        assert_eq!(bits.len(), 137);
        assert_eq!(bits.to_bools(), v);
        assert!(!bits.get(500), "out of range reads false");

        assert!(FlagBits::from_bools(&[]).is_empty());
        let too_wide = vec![true; MAX_STORED_FLAGS + 1];
        assert!(FlagBits::from_bools(&too_wide).is_empty());
        let exactly = vec![true; MAX_STORED_FLAGS];
        assert_eq!(FlagBits::from_bools(&exactly).to_bools(), exactly);
    }

    #[test]
    fn appends_accumulate_across_runs() {
        let path = scratch("append");
        let mut first = FitnessStore::load(&path);
        first.insert(key(1), value(1));
        first.save().unwrap();
        let len_one = fs::metadata(&path).unwrap().len();

        let mut second = FitnessStore::load(&path);
        assert_eq!(second.len(), 1);
        second.insert(key(2), value(2));
        // Re-inserting an identical entry must not grow the log.
        second.insert(key(1), value(1));
        assert_eq!(second.pending_len(), 1);
        second.save().unwrap();
        assert_eq!(
            fs::metadata(&path).unwrap().len(),
            len_one + RECORD_LEN as u64
        );
        assert_eq!(FitnessStore::load(&path).len(), 2);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unchanged_module_features_do_not_grow_the_log() {
        let path = scratch("feat_noop");
        let mut first = FitnessStore::load(&path);
        first.record_module_features(7, feats(1));
        first.save().unwrap();
        let len_one = fs::metadata(&path).unwrap().len();

        let mut second = FitnessStore::load(&path);
        second.record_module_features(7, feats(1));
        assert!(second.pending.is_empty());
        second.save().unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), len_one);

        // Changed features do append (and win on reload).
        let mut third = FitnessStore::load(&path);
        third.record_module_features(7, feats(9));
        third.save().unwrap();
        assert_eq!(FitnessStore::load(&path).module_features(7), Some(feats(9)));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_log_keeps_valid_prefix() {
        let path = scratch("truncated");
        let mut store = FitnessStore::load(&path);
        for i in 0..5 {
            store.insert(key(i), value(i));
        }
        store.save().unwrap();
        // Tear the last record: a torn append loses only the tail.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();

        let recovered = FitnessStore::load(&path);
        assert_eq!(recovered.len(), 4);
        assert_eq!(recovered.report().dropped_bytes, RECORD_LEN - 10);
        // The next save rewrites a clean file rather than appending after
        // the torn tail.
        let mut recovered = recovered;
        recovered.insert(key(9), value(9));
        recovered.save().unwrap();
        let clean = FitnessStore::load(&path);
        assert_eq!(clean.len(), 5);
        assert_eq!(clean.report().dropped_bytes, 0);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checksum_corruption_drops_damaged_suffix() {
        let path = scratch("corrupt");
        let mut store = FitnessStore::load(&path);
        for i in 0..6 {
            store.insert(key(i), value(i));
        }
        store.save().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip one payload byte in the third record.
        bytes[HEADER_LEN + 2 * RECORD_LEN + 5] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let recovered = FitnessStore::load(&path);
        assert_eq!(recovered.len(), 2);
        assert!(recovered.report().dropped_bytes > 0);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unknown_record_tag_is_treated_as_corrupt_tail() {
        let path = scratch("unknown_tag");
        let mut store = FitnessStore::load(&path);
        for i in 0..4 {
            store.insert(key(i), value(i));
        }
        store.save().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Corrupt the third record's tag and re-checksum it so only the
        // tag-dispatch path (not the checksum) rejects it.
        let off = HEADER_LEN + 2 * RECORD_LEN;
        bytes[off] = 0xEE;
        let ck = checksum(&bytes[off..off + RECORD_PAYLOAD_LEN]);
        bytes[off + RECORD_PAYLOAD_LEN..off + RECORD_LEN].copy_from_slice(&ck.to_le_bytes());
        fs::write(&path, &bytes).unwrap();

        let recovered = FitnessStore::load(&path);
        assert_eq!(recovered.len(), 2);
        assert!(recovered.report().dropped_bytes > 0);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn version_mismatch_is_a_cold_start() {
        let path = scratch("version");
        let mut bytes = Vec::new();
        bytes.put_slice(&MAGIC);
        bytes.put_u32_le(FORMAT_VERSION + 1);
        let mut dummy = Vec::new();
        encode_fitness_record(&key(0), &value(0), &mut dummy);
        bytes.extend_from_slice(&dummy);
        fs::write(&path, &bytes).unwrap();

        let mut store = FitnessStore::load(&path);
        assert!(store.is_empty());
        assert!(store.report().version_mismatch);
        // Saving replaces the stale file with a current-version one.
        store.insert(key(3), value(3));
        store.save().unwrap();
        let reloaded = FitnessStore::load(&path);
        assert!(!reloaded.report().version_mismatch);
        assert_eq!(reloaded.len(), 1);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbage_file_is_a_cold_start() {
        let path = scratch("garbage");
        fs::write(&path, b"definitely not a fitness store").unwrap();
        let store = FitnessStore::load(&path);
        assert!(store.is_empty());
        assert!(store.report().malformed_header);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_shrinks_a_log_dominated_by_dead_records() {
        let path = scratch("compact");
        // Overwrite the same key with changing values across many saves:
        // the log accumulates dead records until compaction rewrites it.
        for round in 0..(COMPACT_MIN_RECORDS as u64 + 8) {
            let mut store = FitnessStore::load(&path);
            store.insert(key(0), StoredFitness::new(round as f64, false));
            store.record_module_features(0xC0, feats(0));
            store.save().unwrap();
        }
        let final_store = FitnessStore::load(&path);
        assert_eq!(final_store.len(), 1);
        assert_eq!(final_store.module_features(0xC0), Some(feats(0)));
        let size = fs::metadata(&path).unwrap().len() as usize;
        assert!(
            size < HEADER_LEN + COMPACT_MIN_RECORDS / 2 * RECORD_LEN,
            "log never compacted: {size} bytes"
        );
        // Atomic rewrite leaves no temp droppings.
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!PathBuf::from(tmp).exists());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn in_memory_store_save_is_a_noop() {
        let mut store = FitnessStore::in_memory();
        store.insert(key(1), value(1));
        assert_eq!(store.save().unwrap(), SaveOutcome::Written);
        assert_eq!(store.pending_len(), 0);
        assert_eq!(store.len(), 1);
        assert!(store.path().is_none());
    }

    #[test]
    fn generation_advances_one_per_load_save_cycle() {
        let path = scratch("generation");
        // Run 0: fresh store stamps generation 0.
        let mut run0 = FitnessStore::load(&path);
        assert_eq!(run0.generation(), 0);
        run0.insert(key(0), value(0));
        run0.save().unwrap();
        // Run 1: generation is max(stored)+1; old records keep their age.
        let mut run1 = FitnessStore::load(&path);
        assert_eq!(run1.generation(), 1);
        run1.insert(key(1), value(1));
        // Re-inserting an identical value must NOT refresh its age.
        run1.insert(key(0), value(0));
        run1.save().unwrap();

        let run2 = FitnessStore::load(&path);
        assert_eq!(run2.generation(), 2);
        assert_eq!(run2.get(&key(0)).unwrap().generation, 0);
        assert_eq!(run2.get(&key(1)).unwrap().generation, 1);
        // A caller-supplied generation is overwritten by the stamp.
        let mut run2 = run2;
        run2.insert(
            key(7),
            StoredFitness {
                generation: 999,
                ..value(7)
            },
        );
        assert_eq!(run2.get(&key(7)).unwrap().generation, 2);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn contended_lock_degrades_save_to_a_skip() {
        let path = scratch("locked");
        let mut store = FitnessStore::load(&path);
        store.insert(key(1), value(1));

        let held = StoreLock::acquire(&path).unwrap().expect("lock free");
        // A second acquire (same path, lock held by a live pid — ours)
        // reports busy instead of stealing.
        assert!(StoreLock::acquire(&path).unwrap().is_none());
        assert_eq!(store.save().unwrap(), SaveOutcome::SkippedLocked);
        // Nothing reached disk; the pending queue survived for a retry.
        assert!(!path.exists());
        assert_eq!(store.pending_len(), 1);

        drop(held);
        assert_eq!(store.save().unwrap(), SaveOutcome::Written);
        assert_eq!(store.pending_len(), 0);
        assert_eq!(FitnessStore::load(&path).len(), 1);
        // The lock file does not outlive the save.
        assert!(!StoreLock::lock_path(&path).exists());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_lock_of_a_dead_process_is_reclaimed() {
        let path = scratch("stale_lock");
        // No live process has this pid (pid_max is far below u32::MAX).
        fs::write(StoreLock::lock_path(&path), b"4294967294").unwrap();
        let mut store = FitnessStore::load(&path);
        store.insert(key(2), value(2));
        assert_eq!(store.save().unwrap(), SaveOutcome::Written);
        assert_eq!(FitnessStore::load(&path).len(), 1);
        assert!(!StoreLock::lock_path(&path).exists());

        // An *empty* lock file — an acquire killed between create and
        // pid write — is a torn lock with no identifiable owner:
        // reclaimed, not a permanent wedge.
        fs::write(StoreLock::lock_path(&path), b"").unwrap();
        store.insert(key(3), value(3));
        assert_eq!(store.save().unwrap(), SaveOutcome::Written);
        assert!(!StoreLock::lock_path(&path).exists());

        // A lock file with garbled non-empty content is foreign: left
        // alone.
        fs::write(StoreLock::lock_path(&path), b"not a pid").unwrap();
        store.insert(key(4), value(4));
        assert_eq!(store.save().unwrap(), SaveOutcome::SkippedLocked);
        fs::remove_file(StoreLock::lock_path(&path)).unwrap();
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn drain_pending_fitness_reroutes_results_away_from_save() {
        let path = scratch("drain");
        let mut client_side = FitnessStore::in_memory();
        client_side.insert(key(1), value(1));
        client_side.insert(key(2), value(2));
        client_side.record_module_features(0xF, feats(1));
        let drained = client_side.drain_pending_fitness();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].0, key(1));
        assert_eq!(client_side.pending_len(), 0);
        assert_eq!(client_side.drain_pending_fitness(), vec![]);
        // The in-memory map still serves lookups (client-side cache).
        assert!(client_side.get(&key(1)).is_some());

        // Server side: draining into a real store persists exactly the
        // shipped records (single-writer merge path).
        let mut server_side = FitnessStore::load(&path);
        for (k, v) in drained {
            server_side.insert(k, v);
        }
        server_side.save().unwrap();
        assert_eq!(FitnessStore::load(&path).len(), 2);
        fs::remove_file(&path).unwrap();
    }
}
