//! Persistent cross-run fitness store — paper Figure 4's server-side
//! database, "stored for future exploration".
//!
//! BinTuner records every compiled variant's fitness in a database so
//! that re-tuning the same target starts warm. This module is that
//! database as a single-file, append-only log:
//!
//! * **Key** — `(module content hash, compiler profile, arch,
//!   effect-config digest)`: exactly the tuple the emitted binary is a
//!   pure function of. All components come from `minicc`'s stable
//!   canonical hashing ([`minicc::StableHasher`]), never from
//!   `std`'s process-seeded hashers, so keys survive restarts.
//! * **Append-only log + compaction** — each run appends only the
//!   configurations it actually compiled, as fixed-size checksummed
//!   records, in one `write_all`. When dead records (overwritten keys)
//!   dominate, [`FitnessStore::save`] compacts: the live set is rewritten
//!   to a sibling temp file and atomically `rename`d over the log.
//! * **Corruption tolerance** — loading never fails and never panics: a
//!   bad magic/version yields a clean cold start (the file is rewritten
//!   wholesale on the next save), and a truncated or checksum-corrupt
//!   tail drops exactly the damaged suffix, keeping the valid prefix.
//!   A torn append therefore loses at most the interrupted run's new
//!   entries.
//!
//! The on-disk encoding is hand-rolled little-endian via the vendored
//! [`bytes::BufMut`] surface (the vendored `serde` is derive-markers
//! only — it has no serialization runtime), and is versioned: bump
//! [`FORMAT_VERSION`] whenever the record layout *or* any canonical hash
//! encoding changes, so stale files degrade to a cold start instead of
//! being misread.
//!
//! Concurrency: one store value is owned by one tuning run at a time
//! (the engine wraps it in a `Mutex`). Two *processes* appending to the
//! same file concurrently are not coordinated — the corruption-tolerant
//! loader bounds the damage, but a shared server-side database (the
//! paper's real deployment) needs the remote-evaluation backend on the
//! roadmap.

use binrep::Arch;
use bytes::BufMut;
use minicc::CompilerKind;
use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File magic: `BTFS` (BinTuner Fitness Store).
pub const MAGIC: [u8; 4] = *b"BTFS";

/// On-disk format version. Covers the header/record layout *and* the
/// canonical encodings behind [`minicc::ast::Module::content_hash`] and
/// [`minicc::EffectConfig::stable_digest`] — a mismatch is a clean cold
/// start, never a misread.
pub const FORMAT_VERSION: u32 = 1;

const HEADER_LEN: usize = 8;
/// module_hash(8) + compiler(1) + arch(1) + digest(16) + fitness(8) +
/// failed(1) payload, plus a 4-byte FNV-1a checksum.
const RECORD_PAYLOAD_LEN: usize = 35;
const RECORD_LEN: usize = RECORD_PAYLOAD_LEN + 4;
/// Compaction floor: below this many disk records, dead entries are not
/// worth a rewrite.
const COMPACT_MIN_RECORDS: usize = 64;

/// The cache key a fitness result is filed under.
///
/// `compiler` and `arch` are stored as stable one-byte tags (see
/// [`CompilerKind::stable_id`]) rather than enums, so records written by
/// a future version with more variants load as never-matching keys
/// instead of failing to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoreKey {
    /// [`minicc::ast::Module::content_hash`] of the tuned module.
    pub module_hash: u64,
    /// [`CompilerKind::stable_id`] tag.
    pub compiler: u8,
    /// Stable architecture tag (see [`arch_tag`]).
    pub arch: u8,
    /// [`minicc::EffectConfig::stable_digest`] of the resolved config.
    pub effect_digest: u128,
}

impl StoreKey {
    /// Build a key from the typed components.
    pub fn new(module_hash: u64, compiler: CompilerKind, arch: Arch, effect_digest: u128) -> Self {
        StoreKey {
            module_hash,
            compiler: compiler.stable_id(),
            arch: arch_tag(arch),
            effect_digest,
        }
    }
}

/// Stable one-byte tag for an architecture — part of the on-disk format;
/// assignments must never be reordered or reused.
pub fn arch_tag(arch: Arch) -> u8 {
    match arch {
        Arch::X86 => 0,
        Arch::X8664 => 1,
        Arch::Arm => 2,
        Arch::Mips => 3,
    }
}

/// One persisted fitness result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoredFitness {
    /// NCD against the `-O0` baseline (bit-exact as computed), or the
    /// failure penalty when `failed`.
    pub fitness: f64,
    /// Whether the compile failed constraint checking.
    pub failed: bool,
}

/// What [`FitnessStore::load`] found on disk — telemetry for warm-start
/// reporting and the recovery tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Records decoded and kept.
    pub valid_records: usize,
    /// Trailing bytes dropped (truncation or checksum corruption).
    pub dropped_bytes: usize,
    /// The file carried a different [`FORMAT_VERSION`] — cold start.
    pub version_mismatch: bool,
    /// The file did not start with [`MAGIC`] — cold start.
    pub malformed_header: bool,
    /// No file existed at the path — clean first run.
    pub missing: bool,
}

/// A disk-backed map from [`StoreKey`] to [`StoredFitness`].
///
/// All mutation is in-memory until [`FitnessStore::save`]; the engine
/// inserts fresh results as it compiles, and the tuner saves once at the
/// end of a run.
#[derive(Debug, Default)]
pub struct FitnessStore {
    path: Option<PathBuf>,
    entries: HashMap<StoreKey, StoredFitness>,
    /// Entries inserted since the last save, in insertion order.
    pending: Vec<(StoreKey, StoredFitness)>,
    /// Records currently in the file, including dead (overwritten) ones.
    disk_records: usize,
    /// The file must be rewritten wholesale (corrupt/foreign/missing
    /// content that cannot be appended to).
    needs_rewrite: bool,
    report: LoadReport,
}

impl FitnessStore {
    /// A store with no backing file: [`FitnessStore::save`] is a no-op.
    /// Useful for tests and for engines that only want in-run sharing.
    pub fn in_memory() -> FitnessStore {
        FitnessStore::default()
    }

    /// Load a store from `path`. Never fails: a missing file is a clean
    /// first run, a foreign or version-mismatched file is a cold start
    /// (rewritten on the next save), and a damaged tail is dropped while
    /// the valid prefix is kept. Inspect [`FitnessStore::report`] for
    /// what happened.
    pub fn load(path: impl Into<PathBuf>) -> FitnessStore {
        let path = path.into();
        let mut store = FitnessStore {
            path: Some(path.clone()),
            ..FitnessStore::default()
        };
        match fs::read(&path) {
            Ok(bytes) => store.parse(&bytes),
            Err(_) => store.report.missing = true,
        }
        store
    }

    fn parse(&mut self, bytes: &[u8]) {
        if bytes.len() < HEADER_LEN || bytes[..4] != MAGIC {
            self.report.malformed_header = true;
            self.report.dropped_bytes = bytes.len();
            self.needs_rewrite = true;
            return;
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != FORMAT_VERSION {
            self.report.version_mismatch = true;
            self.report.dropped_bytes = bytes.len();
            self.needs_rewrite = true;
            return;
        }
        let mut off = HEADER_LEN;
        while off + RECORD_LEN <= bytes.len() {
            let payload = &bytes[off..off + RECORD_PAYLOAD_LEN];
            let stored = u32::from_le_bytes(
                bytes[off + RECORD_PAYLOAD_LEN..off + RECORD_LEN]
                    .try_into()
                    .unwrap(),
            );
            if checksum(payload) != stored {
                break;
            }
            let (key, value) = decode_payload(payload);
            self.entries.insert(key, value);
            self.disk_records += 1;
            off += RECORD_LEN;
        }
        self.report.valid_records = self.disk_records;
        if off != bytes.len() {
            // Truncated or corrupt tail: appending after it would
            // misalign every future record, so force a rewrite.
            self.report.dropped_bytes = bytes.len() - off;
            self.needs_rewrite = true;
        }
    }

    /// The backing path, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// What loading found on disk.
    pub fn report(&self) -> LoadReport {
        self.report
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries inserted since the last [`FitnessStore::save`].
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Look up a persisted result.
    pub fn get(&self, key: &StoreKey) -> Option<StoredFitness> {
        self.entries.get(key).copied()
    }

    /// Insert (or overwrite) a result; queued for the next save. An
    /// insert that matches the stored value bit-for-bit is a no-op, so
    /// re-tuning a warm target never grows the log.
    pub fn insert(&mut self, key: StoreKey, value: StoredFitness) {
        if self.entries.get(&key).is_some_and(|v| {
            v.fitness.to_bits() == value.fitness.to_bits() && v.failed == value.failed
        }) {
            return;
        }
        self.entries.insert(key, value);
        self.pending.push((key, value));
    }

    /// Flush pending entries to disk.
    ///
    /// Fast path: one appended `write_all` of the new records. The file
    /// is rewritten wholesale — to a temp file, then atomically
    /// `rename`d into place — when it was corrupt/foreign/missing, or
    /// when dead records make compaction worthwhile (the live set is at
    /// most half the log and the log is non-trivial).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the in-memory state is unchanged by a
    /// failed save, so it can be retried.
    pub fn save(&mut self) -> io::Result<()> {
        let Some(path) = self.path.clone() else {
            self.pending.clear();
            return Ok(());
        };
        if self.pending.is_empty() && !self.needs_rewrite {
            return Ok(());
        }
        let future_records = self.disk_records + self.pending.len();
        let compact = self.needs_rewrite
            || !path.exists()
            || (future_records >= COMPACT_MIN_RECORDS && self.entries.len() * 2 <= future_records);
        if compact {
            self.rewrite(&path)
        } else {
            self.append(&path)
        }
    }

    fn rewrite(&mut self, path: &Path) -> io::Result<()> {
        let mut buf: Vec<u8> = Vec::with_capacity(HEADER_LEN + self.entries.len() * RECORD_LEN);
        buf.put_slice(&MAGIC);
        buf.put_u32_le(FORMAT_VERSION);
        for (key, value) in &self.entries {
            encode_record(key, value, &mut buf);
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        fs::write(&tmp, &buf)?;
        fs::rename(&tmp, path)?;
        self.disk_records = self.entries.len();
        self.pending.clear();
        self.needs_rewrite = false;
        Ok(())
    }

    fn append(&mut self, path: &Path) -> io::Result<()> {
        let mut buf: Vec<u8> = Vec::with_capacity(self.pending.len() * RECORD_LEN);
        for (key, value) in &self.pending {
            encode_record(key, value, &mut buf);
        }
        let mut file = fs::OpenOptions::new().append(true).open(path)?;
        file.write_all(&buf)?;
        self.disk_records += self.pending.len();
        self.pending.clear();
        Ok(())
    }
}

/// FNV-1a 32-bit over a record payload.
fn checksum(payload: &[u8]) -> u32 {
    let mut state: u32 = 0x811c_9dc5;
    for &b in payload {
        state ^= u32::from(b);
        state = state.wrapping_mul(0x0100_0193);
    }
    state
}

fn encode_record(key: &StoreKey, value: &StoredFitness, out: &mut Vec<u8>) {
    let start = out.len();
    out.put_u64_le(key.module_hash);
    out.put_u8(key.compiler);
    out.put_u8(key.arch);
    out.put_u64_le((key.effect_digest >> 64) as u64);
    out.put_u64_le(key.effect_digest as u64);
    out.put_u64_le(value.fitness.to_bits());
    out.put_u8(value.failed as u8);
    debug_assert_eq!(out.len() - start, RECORD_PAYLOAD_LEN);
    let ck = checksum(&out[start..]);
    out.put_u32_le(ck);
}

fn decode_payload(payload: &[u8]) -> (StoreKey, StoredFitness) {
    let u64_at = |off: usize| u64::from_le_bytes(payload[off..off + 8].try_into().unwrap());
    let key = StoreKey {
        module_hash: u64_at(0),
        compiler: payload[8],
        arch: payload[9],
        effect_digest: (u128::from(u64_at(10)) << 64) | u128::from(u64_at(18)),
    };
    let value = StoredFitness {
        fitness: f64::from_bits(u64_at(26)),
        failed: payload[34] != 0,
    };
    (key, value)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unique scratch path per test (no tempfile crate in the container).
    fn scratch(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "bintuner_store_{}_{}.btfs",
            std::process::id(),
            name
        ));
        let _ = fs::remove_file(&p);
        p
    }

    fn key(i: u64) -> StoreKey {
        StoreKey::new(
            0xAA00 + i,
            CompilerKind::Gcc,
            Arch::X86,
            u128::from(i) << 64 | 0x5EED,
        )
    }

    fn value(i: u64) -> StoredFitness {
        StoredFitness {
            fitness: i as f64 * 0.125 + 0.25,
            failed: i.is_multiple_of(7),
        }
    }

    #[test]
    fn round_trip() {
        let path = scratch("round_trip");
        let mut store = FitnessStore::load(&path);
        assert!(store.report().missing);
        for i in 0..20 {
            store.insert(key(i), value(i));
        }
        store.save().unwrap();

        let reloaded = FitnessStore::load(&path);
        assert_eq!(reloaded.len(), 20);
        assert_eq!(reloaded.report().valid_records, 20);
        assert_eq!(reloaded.report().dropped_bytes, 0);
        for i in 0..20 {
            let got = reloaded.get(&key(i)).unwrap();
            assert_eq!(got.fitness.to_bits(), value(i).fitness.to_bits());
            assert_eq!(got.failed, value(i).failed);
        }
        assert_eq!(reloaded.get(&key(99)), None);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn appends_accumulate_across_runs() {
        let path = scratch("append");
        let mut first = FitnessStore::load(&path);
        first.insert(key(1), value(1));
        first.save().unwrap();
        let len_one = fs::metadata(&path).unwrap().len();

        let mut second = FitnessStore::load(&path);
        assert_eq!(second.len(), 1);
        second.insert(key(2), value(2));
        // Re-inserting an identical entry must not grow the log.
        second.insert(key(1), value(1));
        assert_eq!(second.pending_len(), 1);
        second.save().unwrap();
        assert_eq!(
            fs::metadata(&path).unwrap().len(),
            len_one + RECORD_LEN as u64
        );
        assert_eq!(FitnessStore::load(&path).len(), 2);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_log_keeps_valid_prefix() {
        let path = scratch("truncated");
        let mut store = FitnessStore::load(&path);
        for i in 0..5 {
            store.insert(key(i), value(i));
        }
        store.save().unwrap();
        // Tear the last record: a torn append loses only the tail.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();

        let recovered = FitnessStore::load(&path);
        assert_eq!(recovered.len(), 4);
        assert_eq!(recovered.report().dropped_bytes, RECORD_LEN - 10);
        // The next save rewrites a clean file rather than appending after
        // the torn tail.
        let mut recovered = recovered;
        recovered.insert(key(9), value(9));
        recovered.save().unwrap();
        let clean = FitnessStore::load(&path);
        assert_eq!(clean.len(), 5);
        assert_eq!(clean.report().dropped_bytes, 0);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checksum_corruption_drops_damaged_suffix() {
        let path = scratch("corrupt");
        let mut store = FitnessStore::load(&path);
        for i in 0..6 {
            store.insert(key(i), value(i));
        }
        store.save().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip one payload byte in the third record.
        bytes[HEADER_LEN + 2 * RECORD_LEN + 5] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let recovered = FitnessStore::load(&path);
        assert_eq!(recovered.len(), 2);
        assert!(recovered.report().dropped_bytes > 0);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn version_mismatch_is_a_cold_start() {
        let path = scratch("version");
        let mut bytes = Vec::new();
        bytes.put_slice(&MAGIC);
        bytes.put_u32_le(FORMAT_VERSION + 1);
        let mut dummy = Vec::new();
        encode_record(&key(0), &value(0), &mut dummy);
        bytes.extend_from_slice(&dummy);
        fs::write(&path, &bytes).unwrap();

        let mut store = FitnessStore::load(&path);
        assert!(store.is_empty());
        assert!(store.report().version_mismatch);
        // Saving replaces the stale file with a current-version one.
        store.insert(key(3), value(3));
        store.save().unwrap();
        let reloaded = FitnessStore::load(&path);
        assert!(!reloaded.report().version_mismatch);
        assert_eq!(reloaded.len(), 1);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbage_file_is_a_cold_start() {
        let path = scratch("garbage");
        fs::write(&path, b"definitely not a fitness store").unwrap();
        let store = FitnessStore::load(&path);
        assert!(store.is_empty());
        assert!(store.report().malformed_header);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_shrinks_a_log_dominated_by_dead_records() {
        let path = scratch("compact");
        // Overwrite the same key with changing values across many saves:
        // the log accumulates dead records until compaction rewrites it.
        for round in 0..(COMPACT_MIN_RECORDS as u64 + 8) {
            let mut store = FitnessStore::load(&path);
            store.insert(
                key(0),
                StoredFitness {
                    fitness: round as f64,
                    failed: false,
                },
            );
            store.save().unwrap();
        }
        let final_store = FitnessStore::load(&path);
        assert_eq!(final_store.len(), 1);
        let size = fs::metadata(&path).unwrap().len() as usize;
        assert!(
            size < HEADER_LEN + COMPACT_MIN_RECORDS / 2 * RECORD_LEN,
            "log never compacted: {size} bytes"
        );
        // Atomic rewrite leaves no temp droppings.
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!PathBuf::from(tmp).exists());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn in_memory_store_save_is_a_noop() {
        let mut store = FitnessStore::in_memory();
        store.insert(key(1), value(1));
        store.save().unwrap();
        assert_eq!(store.pending_len(), 0);
        assert_eq!(store.len(), 1);
        assert!(store.path().is_none());
    }
}
