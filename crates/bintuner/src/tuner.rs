//! The auto-tuning loop (paper Figure 4): genetic algorithm on the server
//! side, compiler + fitness computation on the client side, a constraint
//! solver rejecting/repairing invalid optimization sequences, and a
//! database recording every iteration.

use crate::db::{Database, IterationRow};
use crate::engine::{EngineConfig, EngineStats, FitnessEngine, FAILED_COMPILE_PENALTY};
use crate::priors::{mine_prior, PriorConfig, PriorMode};
use crate::service::{ServiceConfig, ServiceHandle, ServiceSummary};
use crate::store::{
    ArtifactStore, AstArtifactKey, FitnessStore, FlagBits, LowerArtifactKey, SaveOutcome, StoreKey,
    StoredFitness,
};
use binrep::{Arch, Binary};
use genetic::{Ga, GaParams, GaRun, StopReason, Termination};
use lzc::NcdBaseline;
use minicc::ast::Module;
use minicc::{CompileError, Compiler, CompilerKind, EffectConfig, OptLevel};
use std::path::PathBuf;

/// Where fitness evaluation runs.
#[derive(Debug, Clone, Default)]
pub enum Backend {
    /// The in-process worker pool ([`FitnessEngine`]'s own threads) —
    /// the default, and the reference semantics.
    #[default]
    InProcess,
    /// The sharded client–server evaluation service (`evald`): the
    /// engine's deduplicated miss lists are dispatched to a farm of
    /// worker clients with work stealing and straggler re-dispatch,
    /// while this process keeps the GA, every cache tier, and the single
    /// writable store. Bit-identical results to [`Backend::InProcess`]
    /// on the same seed — only the deployment shape changes.
    Service(ServiceConfig),
}

/// Tuner configuration.
#[derive(Debug, Clone)]
pub struct TunerConfig {
    /// Compiler family to drive.
    pub compiler: CompilerKind,
    /// Target architecture.
    pub arch: Arch,
    /// GA parameters.
    pub ga: GaParams,
    /// Termination criteria.
    pub termination: Termination,
    /// RNG seed.
    pub seed: u64,
    /// Fitness-engine worker threads (`0` = auto; `1` = sequential).
    /// The tuned result is identical at any worker count — only
    /// wall-clock changes.
    pub workers: usize,
    /// Path of the persistent cross-run fitness store (paper Figure 4's
    /// database). `Some(path)`: results are loaded before the run
    /// (warm start — previously compiled configurations are served
    /// without recompiling, and the run converges to the same best
    /// genome as a cold one) and this run's fresh compiles are saved
    /// after it. A missing, stale-version, or corrupt file degrades to a
    /// cold start, never an error. `None`: caching stays in-process.
    pub cache_path: Option<PathBuf>,
    /// Population-level dedup: when `true`, breeding consults a
    /// seen-digest set of resolved [`EffectConfig`]s and re-breeds
    /// offspring that collapse to an already-evaluated configuration, so
    /// the evaluation budget goes to genuinely new ones. Changes the
    /// search trajectory (still deterministic in the seed), so it
    /// defaults to `false`, under which [`Tuner::tune`] stays
    /// bit-identical to [`Tuner::tune_sequential`].
    pub dedup: bool,
    /// Prior mining over the persistent store (requires
    /// [`TunerConfig::cache_path`]; a configured mode without a store is
    /// inert). [`PriorMode::Off`] (the default) is bit-identical to a
    /// prior-free tuner; `SeedOnly`/`SeedAndBias` mine the loaded store
    /// into a [`crate::PotencyPrior`] that seeds the initial population
    /// (and, for `SeedAndBias`, biases per-flag mutation). An *empty*
    /// store mines an empty prior, so the run degrades exactly to the
    /// unseeded cold run — differentially tested.
    pub priors: PriorMode,
    /// Mining knobs (seed count, confidence support, bias band, age
    /// decay) applied whenever [`TunerConfig::priors`] is on. The
    /// default preserves the differential guarantees above.
    pub prior_config: PriorConfig,
    /// Evaluation backend: the in-process pool (default) or the sharded
    /// client–server service (see [`Backend`]). The tuned result is
    /// identical either way; only wall-clock and deployment shape
    /// change.
    pub backend: Backend,
    /// Tier-0 stage-artifact cache in the fitness engine (and, on a
    /// service backend, in every client engine): misses that differ
    /// from an earlier compile only in late-pipeline flags reuse the
    /// cached optimized-AST / lowered-binary artifacts and rerun only
    /// the cheap tail. `true` (the default) is bit-identical to `false`
    /// in everything but wall-clock and the stage-reuse telemetry
    /// (differentially tested on both backends).
    pub artifact_cache: bool,
    /// The telemetry plane ([`btel::TelemetryMode::Off`] by default).
    /// `On` builds a [`btel::Registry`] and a bounded [`btel::Tracer`],
    /// installs them in the fitness engine (and, on a service backend,
    /// in the eval server and every worker client, whose spans stitch
    /// back over the wire), and returns them in
    /// [`TuneResult::registry`] / [`TuneResult::spans`]. `Off` is a
    /// hard purity contract — no extra clock reads, no telemetry state,
    /// a run bit-identical to a pre-telemetry tuner (differentially
    /// tested on every backend).
    pub telemetry: btel::TelemetryMode,
    /// Where to write the run's trace spans as JSONL (one object per
    /// line), if anywhere. Only written when [`TunerConfig::telemetry`]
    /// is `On`; a failed write is ignored — telemetry must never fail a
    /// run.
    pub trace_path: Option<PathBuf>,
}

impl Default for TunerConfig {
    fn default() -> TunerConfig {
        TunerConfig {
            compiler: CompilerKind::Gcc,
            arch: Arch::X86,
            ga: GaParams::default(),
            termination: Termination {
                max_evaluations: 700,
                min_evaluations: 220,
                plateau_window: 150,
                plateau_growth: 0.0035,
                ..Default::default()
            },
            seed: 0xB147,
            workers: 0,
            cache_path: None,
            dedup: false,
            priors: PriorMode::Off,
            prior_config: PriorConfig::default(),
            backend: Backend::InProcess,
            artifact_cache: true,
            telemetry: btel::TelemetryMode::Off,
            trace_path: None,
        }
    }
}

/// Unrecoverable tuning failures.
///
/// Candidate flag vectors that fail to compile are *not* errors: the
/// engine scores them with [`FAILED_COMPILE_PENALTY`] and the GA selects
/// against them (BinTuner's constraint-violation handling). Only the
/// compiles the run cannot proceed without — and a service backend that
/// cannot even start — surface here.
///
/// Implements [`std::error::Error`] with full source chaining (e.g.
/// `Service → evald::EvaldError → std::io::Error`), so callers can `?`
/// it into `Box<dyn Error>` and walk the chain uniformly.
#[derive(Debug, Clone)]
pub enum TuneError {
    /// The `-O0` baseline failed to compile — the module itself is
    /// invalid, so there is nothing to diff against.
    Baseline(CompileError),
    /// The winning flag vector failed to recompile at the end of the run
    /// (would indicate a constraint-repair bug; recorded, not panicked).
    BestRecompile(CompileError),
    /// The evaluation service failed: it could not be launched
    /// (transport setup, no client survived the handshake), or every
    /// client was lost mid-batch with work outstanding (the batch
    /// aborted through [`genetic::EvalAbort`] — the run stops but the
    /// hosting process, e.g. a multi-tenant daemon, lives on).
    /// `Arc`-wrapped so `TuneError` stays cheaply cloneable; the
    /// underlying [`evald::EvaldError`] — and through it any I/O error
    /// — is reachable via [`std::error::Error::source`].
    Service(std::sync::Arc<evald::EvaldError>),
    /// The job was quarantined as poison: the *same* module killed or
    /// hung freshly spawned workers this many consecutive times, so the
    /// supervisor failed the job instead of burning the farm in a crash
    /// loop. Other tenants on the shared farm are unharmed.
    Quarantined {
        /// Consecutive worker-fatal launches before giving up.
        strikes: u32,
    },
}

impl PartialEq for TuneError {
    fn eq(&self, other: &TuneError) -> bool {
        match (self, other) {
            (TuneError::Baseline(a), TuneError::Baseline(b)) => a == b,
            (TuneError::BestRecompile(a), TuneError::BestRecompile(b)) => a == b,
            // EvaldError carries io::Error (not comparable); same
            // rendering is the honest equivalence for tests/logging.
            (TuneError::Service(a), TuneError::Service(b)) => {
                std::sync::Arc::ptr_eq(a, b) || a.to_string() == b.to_string()
            }
            (TuneError::Quarantined { strikes: a }, TuneError::Quarantined { strikes: b }) => {
                a == b
            }
            _ => false,
        }
    }
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::Baseline(e) => write!(f, "baseline -O0 compile failed: {e}"),
            TuneError::BestRecompile(e) => {
                write!(f, "best flag vector failed to recompile: {e}")
            }
            TuneError::Service(e) => write!(f, "evaluation service failed: {e}"),
            TuneError::Quarantined { strikes } => write!(
                f,
                "job quarantined as poison: fresh workers died or hung \
                 {strikes} consecutive times on this module"
            ),
        }
    }
}

impl std::error::Error for TuneError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TuneError::Baseline(e) | TuneError::BestRecompile(e) => Some(e),
            TuneError::Service(e) => Some(&**e),
            TuneError::Quarantined { .. } => None,
        }
    }
}

/// What happened to the persistent store over one run (present iff
/// [`TunerConfig::cache_path`] was set).
///
/// A failed save is reported here rather than as a [`TuneError`]: the
/// tuning result itself is complete and valid — only the warm start for
/// *future* runs was lost.
#[derive(Debug, Clone)]
pub struct PersistSummary {
    /// The store file.
    pub path: PathBuf,
    /// Entries loaded from disk before the run (0 on a cold start).
    pub loaded_entries: usize,
    /// Fresh results this run added to the store.
    pub new_entries: usize,
    /// The error message if saving the store failed.
    pub save_error: Option<String>,
    /// The persistence plane *degraded to in-memory*: the save failed
    /// (ENOSPC, an obstructed path, a torn disk) but the job itself
    /// completed normally on the in-memory store — only the warm start
    /// for future runs was lost. `true` iff `save_error` is `Some`.
    pub degraded: bool,
    /// The save was skipped because another live process holds the
    /// store's advisory lock (two tuners sharing one `cache_path`): the
    /// run's results are intact, only the warm start for future runs was
    /// deferred. See [`crate::store::SaveOutcome::SkippedLocked`].
    pub lock_skipped: bool,
}

/// What a mined prior contributed to one run (present iff
/// [`TunerConfig::priors`] was not [`PriorMode::Off`] and a store was
/// configured).
#[derive(Debug, Clone)]
pub struct PriorSummary {
    /// The mode the run used.
    pub mode: PriorMode,
    /// Store records mined (profile/arch-matching, flag-carrying).
    pub mined_records: usize,
    /// Seeds actually evaluated in the initial population (clipped by
    /// population size; 0 for an empty prior).
    pub seeds_injected: usize,
    /// Content hash of the module the seeds were transferred from
    /// (`None` for an empty prior).
    pub source_module: Option<u64>,
    /// Shape distance from the tuned module to the source (0 = itself).
    pub source_distance: Option<f64>,
    /// Best fitness among the evaluated seeds (prior hit quality;
    /// `None` when nothing was seeded).
    pub seed_best_ncd: Option<f64>,
    /// Whether a transferred seed achieved the run's final best fitness
    /// — the strongest form of a prior "hit".
    pub seed_matched_best: bool,
    /// Flags whose mutation weight the prior moved off neutral (0 in
    /// [`PriorMode::SeedOnly`]).
    pub biased_flags: usize,
}

/// The outcome of one tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Best (constraint-valid) flag vector found.
    pub best_flags: Vec<bool>,
    /// Its NCD against the `-O0` baseline.
    pub best_ncd: f64,
    /// Number of compilation iterations performed.
    pub iterations: usize,
    /// Why the search stopped.
    pub stopped_by: StopReason,
    /// Modelled compilation wall-clock total, in hours (Table 1 scale).
    pub simulated_hours: f64,
    /// The tuned binary (recompiled from `best_flags`).
    pub best_binary: Binary,
    /// The `-O0` baseline binary.
    pub baseline: Binary,
    /// Per-iteration records.
    pub db: Database,
    /// Fitness-engine telemetry: cache hits (in-run and persistent),
    /// real compiles, failed compiles, measured wall-clock (all zeros on
    /// the sequential compat path).
    pub engine_stats: EngineStats,
    /// Offspring re-bred by population-level dedup
    /// ([`TunerConfig::dedup`]; 0 when disabled).
    pub skipped_duplicates: usize,
    /// Persistent-store activity ([`TunerConfig::cache_path`]; `None`
    /// when no store is configured).
    pub persistence: Option<PersistSummary>,
    /// What the mined prior contributed ([`TunerConfig::priors`];
    /// `None` when priors are off or no store is configured).
    pub prior: Option<PriorSummary>,
    /// Evaluation-service telemetry ([`TunerConfig::backend`]; `None`
    /// for the in-process backend).
    pub service: Option<ServiceSummary>,
    /// The metric registry behind this run, for exposition via
    /// [`btel::Registry::render_text`]. `None` when
    /// [`TunerConfig::telemetry`] was `Off`.
    pub registry: Option<std::sync::Arc<btel::Registry>>,
    /// The run's trace spans — engine batches, per-stage compile
    /// timings, farm dispatches, with worker-side spans stitched in
    /// over the wire. Empty when telemetry was off.
    pub spans: Vec<btel::SpanRecord>,
}

/// BinTuner: tunes a module's optimization flags to maximize binary code
/// difference from `-O0`.
#[derive(Debug)]
pub struct Tuner {
    config: TunerConfig,
    compiler: Compiler,
}

impl Tuner {
    /// Build a tuner.
    pub fn new(config: TunerConfig) -> Tuner {
        let compiler = Compiler::new(config.compiler);
        Tuner { config, compiler }
    }

    /// The compiler profile in use.
    pub fn compiler(&self) -> &Compiler {
        &self.compiler
    }

    /// Run iterative compilation on `module` through the batch fitness
    /// engine: generations are compiled + NCD-scored in parallel across
    /// the configured worker pool, duplicate genomes are served from the
    /// memoization cache, and the `-O0` baseline is compiled exactly once.
    ///
    /// The fitness of a flag vector is `NCD(code(flags), code(-O0))`
    /// (§4.2); constraint violations are repaired before compilation, and
    /// the rare genome that still fails to compile scores
    /// [`FAILED_COMPILE_PENALTY`] rather than aborting the run.
    ///
    /// The result is deterministic in the seed and identical at any
    /// worker count (and, with [`TunerConfig::dedup`] off, to
    /// [`Tuner::tune_sequential`]). With [`TunerConfig::cache_path`]
    /// set, a warm run also converges to the same best genome and
    /// fitness as the cold run that filled the store — persistent hits
    /// return bit-identical fitness and charge the same modelled cost,
    /// so the GA follows the same trajectory while skipping the real
    /// compiles.
    ///
    /// # Errors
    ///
    /// See [`TuneError`] — only the baseline compile and the final
    /// recompile of the winning flag vector can fail the run.
    pub fn tune(&self, module: &Module) -> Result<TuneResult, TuneError> {
        self.tune_impl(module, None)
    }

    /// Like [`Tuner::tune`], but dispatching the deduplicated miss
    /// lists to a caller-supplied executor instead of launching (or
    /// embedding) an evaluation backend of its own —
    /// [`TunerConfig::backend`] is ignored. This is how the tuning
    /// daemon multiplexes many jobs onto one shared farm: each job runs
    /// the full, unchanged pipeline (store warm start, prior mining,
    /// GA, persistence), while compilation is brokered by the shared
    /// proxy. The determinism contract is the executor's to keep: an
    /// executor that returns the same bit-exact results as the
    /// in-process pool yields a bit-identical [`TuneResult`].
    ///
    /// # Errors
    ///
    /// As [`Tuner::tune`]; an executor abort surfaces as
    /// [`TuneError::Service`] with the failure taken from
    /// [`crate::service::ServiceExecutor::take_failure`].
    pub fn tune_with_executor(
        &self,
        module: &Module,
        executor: &dyn crate::service::ServiceExecutor,
    ) -> Result<TuneResult, TuneError> {
        self.tune_impl(module, Some(executor))
    }

    fn tune_impl(
        &self,
        module: &Module,
        external: Option<&dyn crate::service::ServiceExecutor>,
    ) -> Result<TuneResult, TuneError> {
        let engine_config = EngineConfig {
            workers: self.config.workers,
            artifact_cache: self.config.artifact_cache,
            ..EngineConfig::default()
        };
        let mut store = self.config.cache_path.as_ref().map(FitnessStore::load);
        let loaded_entries = store.as_mut().map_or(0, FitnessStore::len);
        let profile = self.compiler.profile();
        // Mine the loaded store into a prior before the engine takes
        // ownership of it. PriorMode::Off takes no prior path at all, and
        // an empty store mines an empty prior (no seeds, uniform bias):
        // both leave the GA inputs — and thus the run — bit-identical to
        // a prior-free tuner.
        let prior_cfg = &self.config.prior_config;
        let prior = match (&mut store, self.config.priors) {
            (Some(store), PriorMode::SeedOnly | PriorMode::SeedAndBias) => Some(mine_prior(
                store,
                profile,
                self.config.arch,
                module,
                prior_cfg,
            )),
            _ => None,
        };
        // Telemetry (when on) is built before the farm so the launch
        // can thread it through: one registry and one span ring shared
        // by the engine, the eval server, and — via the wire — every
        // worker client.
        let telemetry = if self.config.telemetry.is_on() {
            Some(crate::service::FarmTelemetry {
                registry: std::sync::Arc::new(btel::Registry::new()),
                tracer: btel::Tracer::enabled(4096),
            })
        } else {
            None
        };
        if let (Some(store), Some(t)) = (&mut store, &telemetry) {
            store.set_telemetry(crate::store::StoreTelemetry::from_registry(&t.registry));
        }
        // Service backend: launch the client farm before the engine so
        // the executor reference outlives the engine borrowing it. An
        // external executor (the daemon's shared-farm proxy) overrides
        // the configured backend — the substrate already exists.
        let service = match (&self.config.backend, external) {
            (_, Some(_)) | (Backend::InProcess, None) => None,
            (Backend::Service(cfg), None) => Some(
                ServiceHandle::launch_with(
                    cfg,
                    self.config.compiler,
                    module,
                    self.config.arch,
                    self.config.artifact_cache,
                    telemetry.clone(),
                )
                .map_err(|e| TuneError::Service(std::sync::Arc::new(e)))?,
            ),
        };
        let mut engine = match store {
            Some(store) => FitnessEngine::with_store(
                &self.compiler,
                module,
                self.config.arch,
                engine_config,
                store,
            )?,
            None => FitnessEngine::new(&self.compiler, module, self.config.arch, engine_config)?,
        };
        if let Some(t) = &telemetry {
            engine.set_telemetry(crate::engine::EngineTelemetry::from_registry(
                &t.registry,
                t.tracer.clone(),
            ));
        }
        if let Some(service) = &service {
            engine.set_executor(service);
        } else if let Some(external) = external {
            engine.set_executor(external);
        }
        // The artifact store lives inside the (v4) store directory.
        // Loading against a v3 file or a missing path is a clean cold
        // start whose save degrades to a skip until the fitness store's
        // own save creates the directory — so the very first run under
        // a fresh path warms fitness only, and every later run warms
        // both.
        if self.config.artifact_cache {
            if let Some(path) = &self.config.cache_path {
                let mut artifacts = ArtifactStore::load(path);
                if let Some(t) = &telemetry {
                    artifacts.set_telemetry(t.registry.histogram(
                        "bintuner_store_artifact_save_seconds",
                        "Wall time of each artifact-log save (append or rewrite).",
                    ));
                }
                engine.set_artifact_store(artifacts);
            }
        }
        let mut ga_params = self.config.ga.clone();
        if let Some(prior) = &prior {
            ga_params.seeded_initial = prior.seeds.clone();
            if self.config.priors == PriorMode::SeedAndBias {
                ga_params.mutation_bias = prior.mutation_bias(prior_cfg);
            }
        }
        let mut ga = Ga::new(profile.n_flags(), ga_params, self.config.seed);
        let repair = |flags: &[bool], seed: u64| profile.constraints().repair(flags, seed);
        let run_result = if self.config.dedup {
            ga.run_batched_dedup(
                &engine,
                repair,
                |flags| {
                    // Mirror the engine's equivalence classes exactly: a
                    // vector that defeats repair never resolves an effect
                    // config there (it takes the penalty path keyed by
                    // exact vector), so classing it under its would-be
                    // EffectConfig digest could mark a never-evaluated
                    // config as seen. Give such vectors their own
                    // exact-vector class instead.
                    if profile.constraints().check(flags).is_empty() {
                        EffectConfig::from_flags(profile, flags).stable_digest() as u64
                    } else {
                        let mut h = minicc::StableHasher::with_seed(u64::MAX);
                        flags.iter().for_each(|&b| h.write_bool(b));
                        h.finish()
                    }
                },
                &self.config.termination,
            )
        } else {
            ga.run_batched(&engine, repair, &self.config.termination)
        };
        let run: GaRun = match run_result {
            Ok(run) => run,
            Err(_abort) => {
                // The evaluation substrate died mid-run — on the
                // in-process backend this cannot happen (the engine is
                // infallible without an executor), so the abort is the
                // service's. The handle recorded the typed failure when
                // it aborted the batch; surface that (full source
                // chain), and let the handles' Drop impls tear the farm
                // down. The caller — CLI or daemon — stays alive.
                drop(engine);
                let cause = service
                    .as_ref()
                    .and_then(ServiceHandle::take_failure)
                    .or_else(|| external.and_then(crate::service::ServiceExecutor::take_failure))
                    .unwrap_or_else(|| {
                        std::sync::Arc::new(evald::EvaldError::Protocol(
                            "evaluation aborted without a recorded service failure",
                        ))
                    });
                return Err(TuneError::Service(cause));
            }
        };
        let baseline = engine.baseline_binary().clone();
        let mut stats = engine.stats();
        let (store_after, artifacts_after) = engine.into_stores();
        // Tear the service down before saving: its merge records fold
        // into the store through this single writer (appends serialized
        // server-side — the clients never touch the file). The engine
        // already recorded every dispatched miss itself, so these
        // inserts dedup to no-ops; the fold is the defense-in-depth end
        // of the merge protocol, not the store-fill path (see
        // `service` module docs). The *artifact* fold below is NOT
        // redundant, though: farm workers compile in their own address
        // spaces, so their stage artifacts exist nowhere else — without
        // this fold a process-worker run would persist no artifacts and
        // the next warm start would silently rerun full pipelines.
        let service_artifacts = service.as_ref().map(ServiceHandle::take_artifacts);
        let service_outcome = service.map(ServiceHandle::finish);
        let persistence = store_after.map(|mut store| {
            if let Some((_, merged)) = &service_outcome {
                for rec in merged {
                    store.insert(
                        StoreKey {
                            module_hash: rec.module_hash,
                            compiler: rec.compiler,
                            arch: rec.arch,
                            effect_digest: rec.effect_digest,
                        },
                        StoredFitness {
                            fitness: f64::from_bits(rec.fitness_bits),
                            failed: rec.failed,
                            flags: FlagBits::from_bools(&rec.flags),
                            generation: 0, // stamped by the store
                        },
                    );
                }
            }
            let new_entries = store.pending_len();
            let (save_error, lock_skipped) = match store.save() {
                Ok(SaveOutcome::Written) => (None, false),
                Ok(SaveOutcome::SkippedLocked) => (None, true),
                Err(e) => (Some(e.to_string()), false),
            };
            PersistSummary {
                path: store.path().expect("store built from a path").to_path_buf(),
                loaded_entries,
                new_entries,
                degraded: save_error.is_some(),
                save_error,
                lock_skipped,
            }
        });
        // The artifact save runs after the fitness save on purpose: a
        // v3→v4 migration above creates the directory the artifact log
        // appends into. A skip (directory still missing, lock
        // contended) only costs future warm-starts, never correctness.
        if let Some(mut artifacts) = artifacts_after {
            if let Some((ast, lower)) = service_artifacts {
                // Client-produced stage artifacts, folded through the
                // same single writer (insert dedups against live and
                // pending entries, so thread-mode runs — where the
                // server engine may have produced the same artifacts —
                // stay idempotent).
                for a in ast {
                    artifacts.insert_ast(
                        AstArtifactKey {
                            body_hash: a.body_hash,
                            compiler: a.compiler,
                            ast_digest: a.ast_digest,
                        },
                        f64::from_bits(a.cost_bits),
                        a.blob,
                    );
                }
                for a in lower {
                    artifacts.insert_lower(
                        LowerArtifactKey {
                            body_hash: a.body_hash,
                            compiler: a.compiler,
                            arch: a.arch,
                            ast_digest: a.ast_digest,
                            lower_digest: a.lower_digest,
                        },
                        f64::from_bits(a.cost_bits),
                        a.blob,
                    );
                }
            }
            let _ = artifacts.save();
        }
        let service_summary = service_outcome.map(|(summary, _)| summary);
        if let Some(summary) = &service_summary {
            stats.duplicate_results = summary.duplicate_results;
        }
        let prior_summary = prior.map(|p| {
            let seed_best_ncd = run
                .history
                .iter()
                .filter(|r| r.seeded)
                .map(|r| r.fitness)
                .fold(None, |acc: Option<f64>, f| {
                    Some(acc.map_or(f, |a| a.max(f)))
                });
            PriorSummary {
                mode: self.config.priors,
                mined_records: p.mined_records,
                seeds_injected: run.seeded_evaluations,
                source_module: p.source_module,
                source_distance: p.source_distance,
                seed_best_ncd,
                seed_matched_best: seed_best_ncd
                    .is_some_and(|f| f.to_bits() == run.best_fitness.to_bits()),
                biased_flags: if self.config.priors == PriorMode::SeedAndBias {
                    p.biased_flag_count(prior_cfg)
                } else {
                    0
                },
            }
        });
        // Drain spans only after the service teardown above: worker-side
        // spans are imported into this shared tracer as their Result
        // frames fold in, so the ring is complete once the farm is down.
        let (registry, spans) = match telemetry {
            Some(t) => {
                let spans = t.tracer.drain();
                if let Some(path) = &self.config.trace_path {
                    // Best-effort: telemetry must never fail a run.
                    let _ = std::fs::write(path, btel::spans_to_jsonl(&spans));
                }
                (Some(t.registry), spans)
            }
            None => (None, Vec::new()),
        };
        self.finish(
            module,
            run,
            baseline,
            stats,
            persistence,
            prior_summary,
            service_summary,
            registry,
            spans,
        )
    }

    /// Reference path: evaluate one individual at a time through the
    /// closure protocol, with no parallelism and no cache — the shape of
    /// the original per-individual loop. A fixed seed yields the same
    /// best flag vector as [`Tuner::tune`]; the engine path is the
    /// batched/parallel refactoring of exactly this computation.
    ///
    /// # Errors
    ///
    /// See [`TuneError`].
    pub fn tune_sequential(&self, module: &Module) -> Result<TuneResult, TuneError> {
        let baseline = self
            .compiler
            .compile_preset(module, OptLevel::O0, self.config.arch)
            .map_err(TuneError::Baseline)?;
        let ncd = NcdBaseline::new(binrep::encode_binary(&baseline));
        let profile = self.compiler.profile();
        let mut ga = Ga::new(profile.n_flags(), self.config.ga.clone(), self.config.seed);
        let run: GaRun = ga.run(
            |flags| {
                let cost = self.compiler.simulated_compile_seconds(module, flags);
                match self.compiler.compile(module, flags, self.config.arch) {
                    Ok(bin) => (ncd.score(&binrep::encode_binary(&bin)), cost),
                    Err(_) => (FAILED_COMPILE_PENALTY, cost),
                }
            },
            |flags, seed| profile.constraints().repair(flags, seed),
            &self.config.termination,
        );
        self.finish(
            module,
            run,
            baseline,
            EngineStats::default(),
            None,
            None,
            None,
            None,
            Vec::new(),
        )
    }

    /// Shared post-processing: fill the iteration database, recompile the
    /// winner, assemble the result.
    #[allow(clippy::too_many_arguments)] // internal assembly seam
    fn finish(
        &self,
        module: &Module,
        run: GaRun,
        baseline: Binary,
        engine_stats: EngineStats,
        persistence: Option<PersistSummary>,
        prior: Option<PriorSummary>,
        service: Option<ServiceSummary>,
        registry: Option<std::sync::Arc<btel::Registry>>,
        spans: Vec<btel::SpanRecord>,
    ) -> Result<TuneResult, TuneError> {
        let mut db = Database::new();
        for rec in &run.history {
            db.push(IterationRow {
                iteration: rec.iteration,
                ncd: rec.fitness,
                best_ncd: rec.best_so_far,
                elapsed_seconds: rec.elapsed_seconds,
                flags: rec.genes.clone(),
                cache_hit: rec.cache_hit,
                persistent_hit: rec.persistent_hit,
                ast_reused: rec.ast_reused,
                lower_reused: rec.lower_reused,
                seeded_from_prior: rec.seeded,
                wall_seconds: rec.wall_seconds,
                ast_produce_seconds: rec.ast_produce_seconds,
            });
        }
        let best_binary = self
            .compiler
            .compile(module, &run.best_genes, self.config.arch)
            .map_err(TuneError::BestRecompile)?;
        Ok(TuneResult {
            best_flags: run.best_genes,
            best_ncd: run.best_fitness,
            iterations: run.evaluations,
            stopped_by: run.stopped_by,
            simulated_hours: run.elapsed_seconds / 3600.0,
            best_binary,
            baseline,
            db,
            engine_stats,
            skipped_duplicates: run.skipped_duplicates,
            persistence,
            prior,
            service,
            registry,
            spans,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unit-test twin of `testutil::small_tuner` — unusable here
    /// directly: inside the crate's own unit tests, `testutil`'s
    /// `bintuner` is the *dependency* build, whose `TunerConfig` is a
    /// distinct type from `crate::TunerConfig`. Integration suites use
    /// the shared fixture.
    fn small_config(max_evals: usize) -> TunerConfig {
        TunerConfig {
            termination: Termination {
                max_evaluations: max_evals,
                min_evaluations: max_evals / 2,
                plateau_window: max_evals / 3,
                ..Default::default()
            },
            ga: GaParams {
                population: 10,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn tuner_beats_default_presets() {
        let bench = corpus::by_name("429.mcf").unwrap();
        let tuner = Tuner::new(small_config(120));
        let result = tuner.tune(&bench.module).unwrap();
        // The tuned NCD must beat every default preset's NCD.
        let ncd = lzc::NcdBaseline::new(binrep::encode_binary(&result.baseline));
        for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::Os] {
            let bin = tuner
                .compiler()
                .compile_preset(&bench.module, level, Arch::X86)
                .unwrap();
            let d = ncd.score(&binrep::encode_binary(&bin));
            assert!(
                result.best_ncd >= d - 1e-9,
                "{level}: preset {d} > tuned {}",
                result.best_ncd
            );
        }
        assert_eq!(result.iterations, result.db.rows().len());
        assert!(result.simulated_hours > 0.0);
    }

    #[test]
    fn tuned_binary_preserves_semantics() {
        let bench = corpus::by_name("605.mcf_s").unwrap();
        let tuner = Tuner::new(small_config(80));
        let result = tuner.tune(&bench.module).unwrap();
        for inputs in &bench.test_inputs {
            let base = emu::Machine::new(&result.baseline)
                .run(&[], inputs, 5_000_000)
                .unwrap();
            let tuned = emu::Machine::new(&result.best_binary)
                .run(&[], inputs, 5_000_000)
                .unwrap();
            assert_eq!(base.output, tuned.output, "inputs {inputs:?}");
        }
    }

    #[test]
    fn tuning_is_deterministic() {
        // Two back-to-back runs with an identical config must produce
        // identical *trajectories* — every iteration's flags, fitness
        // bits, and charged time — not merely the same winner. (Measured
        // wall_seconds is telemetry and deliberately excluded: it is the
        // one field wall-clock is allowed to touch.)
        let bench = corpus::by_name("648.exchange2_s").unwrap();
        let r1 = Tuner::new(small_config(60)).tune(&bench.module).unwrap();
        let r2 = Tuner::new(small_config(60)).tune(&bench.module).unwrap();
        assert_eq!(r1.best_flags, r2.best_flags);
        assert_eq!(r1.best_ncd.to_bits(), r2.best_ncd.to_bits());
        assert_eq!(r1.iterations, r2.iterations);
        assert_eq!(r1.stopped_by, r2.stopped_by);
        assert_eq!(r1.db.rows().len(), r2.db.rows().len());
        for (a, b) in r1.db.rows().iter().zip(r2.db.rows()) {
            assert_eq!(a.flags, b.flags, "iteration {}", a.iteration);
            assert_eq!(a.ncd.to_bits(), b.ncd.to_bits());
            assert_eq!(a.best_ncd.to_bits(), b.best_ncd.to_bits());
            assert_eq!(a.elapsed_seconds.to_bits(), b.elapsed_seconds.to_bits());
            assert_eq!(a.cache_hit, b.cache_hit);
            assert_eq!(a.seeded_from_prior, b.seeded_from_prior);
        }
    }

    #[test]
    fn best_flags_are_constraint_valid() {
        let bench = corpus::by_name("473.astar").unwrap();
        let tuner = Tuner::new(small_config(60));
        let result = tuner.tune(&bench.module).unwrap();
        assert!(tuner
            .compiler()
            .profile()
            .constraints()
            .is_valid(&result.best_flags));
    }

    #[test]
    fn parallel_engine_matches_sequential_path() {
        // Same seed: the 4-worker cached engine and the closure-based
        // sequential path must agree on the entire run — best flags,
        // fitness, iteration count, and every recorded NCD.
        let bench = corpus::by_name("462.libquantum").unwrap();
        let mut config = small_config(70);
        config.workers = 4;
        let par = Tuner::new(config).tune(&bench.module).unwrap();
        let seq = Tuner::new(small_config(70))
            .tune_sequential(&bench.module)
            .unwrap();
        assert_eq!(par.best_flags, seq.best_flags);
        assert_eq!(par.best_ncd, seq.best_ncd);
        assert_eq!(par.iterations, seq.iterations);
        assert_eq!(par.stopped_by, seq.stopped_by);
        assert_eq!(par.db.rows().len(), seq.db.rows().len());
        for (a, b) in par.db.rows().iter().zip(seq.db.rows()) {
            assert_eq!(a.ncd, b.ncd, "iteration {}", a.iteration);
            assert_eq!(a.flags, b.flags, "iteration {}", a.iteration);
            assert_eq!(a.elapsed_seconds, b.elapsed_seconds);
        }
        // The engine path must actually have deduplicated something.
        assert!(par.engine_stats.cache_hits > 0);
        assert_eq!(seq.engine_stats.cache_hits, 0);
    }

    #[test]
    fn cache_hit_is_bit_identical_to_cold_evaluation() {
        use genetic::Evaluator;
        let bench = corpus::by_name("429.mcf").unwrap();
        let compiler = Compiler::new(CompilerKind::Gcc);
        let engine = FitnessEngine::new(
            &compiler,
            &bench.module,
            Arch::X86,
            EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let genome = compiler.profile().preset(OptLevel::O2);
        let cold = engine
            .evaluate_batch(std::slice::from_ref(&genome))
            .unwrap();
        let warm = engine
            .evaluate_batch(std::slice::from_ref(&genome))
            .unwrap();
        assert!(!cold[0].cache_hit);
        assert!(warm[0].cache_hit);
        // Bit-identical, not approximately equal.
        assert_eq!(cold[0].fitness.to_bits(), warm[0].fitness.to_bits());
        assert_eq!(
            cold[0].cost_seconds.to_bits(),
            warm[0].cost_seconds.to_bits()
        );
        assert_eq!(engine.stats().cache_hits, 1);
        assert_eq!(engine.cache_len(), 1);
    }

    #[test]
    fn within_batch_duplicates_are_cache_hits() {
        use genetic::Evaluator;
        let bench = corpus::by_name("473.astar").unwrap();
        let compiler = Compiler::new(CompilerKind::Gcc);
        let engine = FitnessEngine::new(
            &compiler,
            &bench.module,
            Arch::X86,
            EngineConfig {
                workers: 4,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let a = compiler.profile().preset(OptLevel::O1);
        let b = compiler.profile().preset(OptLevel::O3);
        let batch = vec![a.clone(), b.clone(), a.clone(), b, a];
        let evals = engine.evaluate_batch(&batch).unwrap();
        assert_eq!(
            evals.iter().map(|e| e.cache_hit).collect::<Vec<_>>(),
            vec![false, false, true, true, true]
        );
        assert_eq!(evals[0].fitness.to_bits(), evals[2].fitness.to_bits());
        assert_eq!(evals[0].fitness.to_bits(), evals[4].fitness.to_bits());
        assert_eq!(engine.cache_len(), 2);
    }

    #[test]
    fn failed_compile_is_penalized_not_fatal() {
        use genetic::Evaluator;
        let bench = corpus::by_name("429.mcf").unwrap();
        let compiler = Compiler::new(CompilerKind::Gcc);
        let engine = FitnessEngine::new(
            &compiler,
            &bench.module,
            Arch::X86,
            EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        // -fpartial-inlining without -finline-functions violates the
        // profile's documented constraints (fed directly, bypassing
        // repair, as a hostile genome).
        let mut bad = vec![false; compiler.profile().n_flags()];
        bad[compiler.profile().flag_index("-fpartial-inlining").unwrap()] = true;
        let good = compiler.profile().preset(OptLevel::O2);
        let evals = engine.evaluate_batch(&[bad, good]).unwrap();
        assert_eq!(evals[0].fitness, FAILED_COMPILE_PENALTY);
        assert!(evals[1].fitness > evals[0].fitness);
        assert_eq!(engine.stats().failed_compiles, 1);
    }
}
