//! The auto-tuning loop (paper Figure 4): genetic algorithm on the server
//! side, compiler + fitness computation on the client side, a constraint
//! solver rejecting/repairing invalid optimization sequences, and a
//! database recording every iteration.

use crate::db::{Database, IterationRow};
use binrep::{Arch, Binary};
use genetic::{Ga, GaParams, GaRun, StopReason, Termination};
use lzc::NcdBaseline;
use minicc::ast::Module;
use minicc::{Compiler, CompilerKind, OptLevel};

/// Tuner configuration.
#[derive(Debug, Clone)]
pub struct TunerConfig {
    /// Compiler family to drive.
    pub compiler: CompilerKind,
    /// Target architecture.
    pub arch: Arch,
    /// GA parameters.
    pub ga: GaParams,
    /// Termination criteria.
    pub termination: Termination,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TunerConfig {
    fn default() -> TunerConfig {
        TunerConfig {
            compiler: CompilerKind::Gcc,
            arch: Arch::X86,
            ga: GaParams::default(),
            termination: Termination {
                max_evaluations: 700,
                min_evaluations: 220,
                plateau_window: 150,
                plateau_growth: 0.0035,
                ..Default::default()
            },
            seed: 0xB147,
        }
    }
}

/// The outcome of one tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Best (constraint-valid) flag vector found.
    pub best_flags: Vec<bool>,
    /// Its NCD against the `-O0` baseline.
    pub best_ncd: f64,
    /// Number of compilation iterations performed.
    pub iterations: usize,
    /// Why the search stopped.
    pub stopped_by: StopReason,
    /// Modelled compilation wall-clock total, in hours (Table 1 scale).
    pub simulated_hours: f64,
    /// The tuned binary (recompiled from `best_flags`).
    pub best_binary: Binary,
    /// The `-O0` baseline binary.
    pub baseline: Binary,
    /// Per-iteration records.
    pub db: Database,
}

/// BinTuner: tunes a module's optimization flags to maximize binary code
/// difference from `-O0`.
#[derive(Debug)]
pub struct Tuner {
    config: TunerConfig,
    compiler: Compiler,
}

impl Tuner {
    /// Build a tuner.
    pub fn new(config: TunerConfig) -> Tuner {
        let compiler = Compiler::new(config.compiler);
        Tuner { config, compiler }
    }

    /// The compiler profile in use.
    pub fn compiler(&self) -> &Compiler {
        &self.compiler
    }

    /// Run iterative compilation on `module`.
    ///
    /// The fitness of a flag vector is `NCD(code(flags), code(-O0))`
    /// (§4.2); constraint violations are repaired before compilation, so
    /// every iteration compiles successfully — BinTuner's constraints-
    /// verification component.
    pub fn tune(&self, module: &Module) -> TuneResult {
        let baseline = self
            .compiler
            .compile_preset(module, OptLevel::O0, self.config.arch)
            .expect("O0 compile");
        let ncd = NcdBaseline::new(binrep::encode_binary(&baseline));
        let profile = self.compiler.profile();
        let n = profile.n_flags();
        let mut db = Database::new();
        let mut ga = Ga::new(n, self.config.ga.clone(), self.config.seed);
        let run: GaRun = ga.run(
            |flags| {
                let bin = self
                    .compiler
                    .compile(module, flags, self.config.arch)
                    .expect("repaired flags must compile");
                let code = binrep::encode_binary(&bin);
                let fitness = ncd.score(&code);
                let cost = self.compiler.simulated_compile_seconds(module, flags);
                (fitness, cost)
            },
            |flags, seed| profile.constraints().repair(flags, seed),
            &self.config.termination,
        );
        for rec in &run.history {
            db.push(IterationRow {
                iteration: rec.iteration,
                ncd: rec.fitness,
                best_ncd: rec.best_so_far,
                elapsed_seconds: rec.elapsed_seconds,
                flags: rec.genes.clone(),
            });
        }
        let best_binary = self
            .compiler
            .compile(module, &run.best_genes, self.config.arch)
            .expect("best flags compile");
        TuneResult {
            best_flags: run.best_genes,
            best_ncd: run.best_fitness,
            iterations: run.evaluations,
            stopped_by: run.stopped_by,
            simulated_hours: run.elapsed_seconds / 3600.0,
            best_binary,
            baseline,
            db,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(max_evals: usize) -> TunerConfig {
        TunerConfig {
            termination: Termination {
                max_evaluations: max_evals,
                min_evaluations: max_evals / 2,
                plateau_window: max_evals / 3,
                ..Default::default()
            },
            ga: GaParams {
                population: 10,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn tuner_beats_default_presets() {
        let bench = corpus::by_name("429.mcf").unwrap();
        let tuner = Tuner::new(small_config(120));
        let result = tuner.tune(&bench.module);
        // The tuned NCD must beat every default preset's NCD.
        let ncd = lzc::NcdBaseline::new(binrep::encode_binary(&result.baseline));
        for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::Os] {
            let bin = tuner
                .compiler()
                .compile_preset(&bench.module, level, Arch::X86)
                .unwrap();
            let d = ncd.score(&binrep::encode_binary(&bin));
            assert!(
                result.best_ncd >= d - 1e-9,
                "{level}: preset {d} > tuned {}",
                result.best_ncd
            );
        }
        assert_eq!(result.iterations, result.db.rows().len());
        assert!(result.simulated_hours > 0.0);
    }

    #[test]
    fn tuned_binary_preserves_semantics() {
        let bench = corpus::by_name("605.mcf_s").unwrap();
        let tuner = Tuner::new(small_config(80));
        let result = tuner.tune(&bench.module);
        for inputs in &bench.test_inputs {
            let base = emu::Machine::new(&result.baseline)
                .run(&[], inputs, 5_000_000)
                .unwrap();
            let tuned = emu::Machine::new(&result.best_binary)
                .run(&[], inputs, 5_000_000)
                .unwrap();
            assert_eq!(base.output, tuned.output, "inputs {inputs:?}");
        }
    }

    #[test]
    fn tuning_is_deterministic() {
        let bench = corpus::by_name("648.exchange2_s").unwrap();
        let r1 = Tuner::new(small_config(60)).tune(&bench.module);
        let r2 = Tuner::new(small_config(60)).tune(&bench.module);
        assert_eq!(r1.best_flags, r2.best_flags);
        assert_eq!(r1.iterations, r2.iterations);
    }

    #[test]
    fn best_flags_are_constraint_valid() {
        let bench = corpus::by_name("473.astar").unwrap();
        let tuner = Tuner::new(small_config(60));
        let result = tuner.tune(&bench.module);
        assert!(tuner
            .compiler()
            .profile()
            .constraints()
            .is_valid(&result.best_flags));
    }
}
