//! The pre-forked worker-process farm (paper §5 "Implementation").
//!
//! [`crate::service::ServiceHandle`] can realize its clients as OS
//! *processes* instead of threads ([`evald::WorkerMode::Processes`]):
//! the launcher re-execs the current binary with a hidden
//! `--evald-worker` entry point, and each worker process connects back
//! over the configured stream transport (Unix socket or TCP loopback),
//! sends its [`evald::wire::Frame::Hello`], receives the module under
//! test as a [`evald::wire::Frame::Job`] (encoded with
//! [`minicc::codec`]), builds its own [`FitnessEngine`], and serves
//! shards exactly like a thread client would.
//!
//! This module holds both halves of that protocol: [`worker_main`] (the
//! child side, invoked from the `bintuner` binary) and the crate-private
//! `WorkerSpec` (the parent side: binary resolution and process
//! spawning, used by the service launcher).

use crate::engine::EngineConfig;
use crate::service::EngineWorker;
use crate::store::FitnessStore;
use crate::FitnessEngine;
use binrep::Arch;
use evald::wire::{decode_frame, encode_frame, Frame};
use evald::{tcp_connect, unix_connect, ClientOptions, EvaldError, FaultKind};
use minicc::{Compiler, CompilerKind, CompilerProfile};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

/// Where a worker process connects back to its server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// TCP loopback address (`127.0.0.1:port`).
    Tcp(SocketAddr),
    /// Unix-domain socket path.
    Unix(PathBuf),
}

/// Parsed `--evald-worker` command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerArgs {
    /// Client id to announce in the Hello handshake and result frames.
    pub client_id: u32,
    /// Which compiler profile to build.
    pub kind: CompilerKind,
    /// Target architecture.
    pub arch: Arch,
    /// Whether the worker's engine keeps its staged artifact cache.
    pub artifact_cache: bool,
    /// Server endpoint to connect back to.
    pub endpoint: Endpoint,
    /// Whether the worker records trace spans (stage timings parented
    /// to the server's dispatch spans, shipped back on Result frames).
    pub trace: bool,
    /// Chaos hook: trigger `fault_kind` after this many shards.
    pub fail_after: Option<usize>,
    /// What the chaos hook does when it triggers (crash, hang, slow
    /// frames, dropped frame). Inert while `fail_after` is `None`.
    pub fault_kind: FaultKind,
}

/// Parse a `--fault-kind` value: `crash`, `hang`, `drop`, `slow:<ms>`.
fn fault_kind_from_arg(arg: &str) -> Result<FaultKind, String> {
    match arg {
        "crash" => Ok(FaultKind::Crash),
        "hang" => Ok(FaultKind::Hang),
        "drop" => Ok(FaultKind::DropFrame),
        other => match other.strip_prefix("slow:") {
            Some(ms) => ms
                .parse::<u64>()
                .map(FaultKind::SlowFrame)
                .map_err(|e| format!("--fault-kind slow: {e}")),
            None => Err(format!(
                "--fault-kind expects crash|hang|drop|slow:<ms>, got {other}"
            )),
        },
    }
}

/// Inverse of [`fault_kind_from_arg`], used when spawning workers.
fn fault_kind_to_arg(kind: FaultKind) -> String {
    match kind {
        FaultKind::Crash => "crash".to_string(),
        FaultKind::Hang => "hang".to_string(),
        FaultKind::DropFrame => "drop".to_string(),
        FaultKind::SlowFrame(ms) => format!("slow:{ms}"),
    }
}

/// Stable one-byte tag → [`CompilerKind`] (inverse of
/// [`CompilerKind::stable_id`]).
fn compiler_from_tag(tag: u8) -> Option<CompilerKind> {
    match tag {
        0 => Some(CompilerKind::Gcc),
        1 => Some(CompilerKind::Llvm),
        _ => None,
    }
}

/// Stable one-byte tag → [`Arch`] (inverse of [`crate::store::arch_tag`]).
fn arch_from_tag(tag: u8) -> Option<Arch> {
    match tag {
        0 => Some(Arch::X86),
        1 => Some(Arch::X8664),
        2 => Some(Arch::Arm),
        3 => Some(Arch::Mips),
        _ => None,
    }
}

impl WorkerArgs {
    /// Parse the arguments following `--evald-worker`.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed or missing
    /// argument (the worker prints it to stderr and exits non-zero —
    /// the parent only ever sees a connection that never arrived).
    pub fn parse(args: &[String]) -> Result<WorkerArgs, String> {
        let mut client_id = None;
        let mut kind = None;
        let mut arch = None;
        let mut artifact_cache = None;
        let mut endpoint = None;
        let mut trace = false;
        let mut fail_after = None;
        let mut fault_kind = FaultKind::Crash;
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .ok_or_else(|| format!("{flag} expects a value"))
                    .cloned()
            };
            match flag.as_str() {
                "--client-id" => {
                    client_id = Some(
                        value()?
                            .parse::<u32>()
                            .map_err(|e| format!("--client-id: {e}"))?,
                    );
                }
                "--compiler-tag" => {
                    let tag = value()?
                        .parse::<u8>()
                        .map_err(|e| format!("--compiler-tag: {e}"))?;
                    kind = Some(
                        compiler_from_tag(tag)
                            .ok_or_else(|| format!("unknown compiler tag {tag}"))?,
                    );
                }
                "--arch-tag" => {
                    let tag = value()?
                        .parse::<u8>()
                        .map_err(|e| format!("--arch-tag: {e}"))?;
                    arch =
                        Some(arch_from_tag(tag).ok_or_else(|| format!("unknown arch tag {tag}"))?);
                }
                "--artifact-cache" => {
                    artifact_cache = Some(match value()?.as_str() {
                        "0" => false,
                        "1" => true,
                        other => return Err(format!("--artifact-cache expects 0|1, got {other}")),
                    });
                }
                "--tcp" => {
                    endpoint = Some(Endpoint::Tcp(
                        value()?
                            .parse::<SocketAddr>()
                            .map_err(|e| format!("--tcp: {e}"))?,
                    ));
                }
                "--unix" => endpoint = Some(Endpoint::Unix(PathBuf::from(value()?))),
                "--trace" => trace = true,
                "--fail-after" => {
                    fail_after = Some(
                        value()?
                            .parse::<usize>()
                            .map_err(|e| format!("--fail-after: {e}"))?,
                    );
                }
                "--fault-kind" => fault_kind = fault_kind_from_arg(&value()?)?,
                other => return Err(format!("unknown worker argument {other}")),
            }
        }
        Ok(WorkerArgs {
            client_id: client_id.ok_or("--client-id is required")?,
            kind: kind.ok_or("--compiler-tag is required")?,
            arch: arch.ok_or("--arch-tag is required")?,
            artifact_cache: artifact_cache.ok_or("--artifact-cache is required")?,
            endpoint: endpoint.ok_or("--tcp or --unix is required")?,
            trace,
            fail_after,
            fault_kind,
        })
    }
}

/// A deterministic, jitter-free exponential backoff schedule: attempt
/// `k` waits `base_ms × factor^k`, capped at `max_ms`. Determinism is a
/// feature here — the chaos differentials replay supervision decisions
/// exactly, so respawn timing must be a pure function of the attempt
/// number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffSchedule {
    /// Delay before the first retry, milliseconds.
    pub base_ms: u64,
    /// Multiplier applied per subsequent attempt.
    pub factor: u64,
    /// Ceiling on any single delay, milliseconds.
    pub max_ms: u64,
}

impl Default for BackoffSchedule {
    fn default() -> BackoffSchedule {
        BackoffSchedule {
            base_ms: 50,
            factor: 2,
            max_ms: 2_000,
        }
    }
}

impl BackoffSchedule {
    /// The delay before retry number `attempt` (zero-based).
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let mut delay = self.base_ms;
        for _ in 0..attempt {
            delay = delay.saturating_mul(self.factor);
            if delay >= self.max_ms {
                return self.max_ms;
            }
        }
        delay.min(self.max_ms)
    }
}

/// What the supervisor says after a failure: try again after the
/// scheduled backoff, or stop burning the farm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorVerdict {
    /// Respawn after this many milliseconds.
    Retry {
        /// Backoff delay from the deterministic schedule.
        delay_ms: u64,
    },
    /// The crash-loop budget is spent: K consecutive failures without a
    /// success in between. The caller fails the job (quarantine) rather
    /// than respawning again.
    GiveUp,
}

/// Worker-lifecycle supervisor: consecutive-failure accounting over a
/// [`BackoffSchedule`]. One success resets the streak; `strikes`
/// consecutive failures is a crash loop and turns into
/// [`SupervisorVerdict::GiveUp`] — the signal the daemon converts into
/// poison-job quarantine. Deliberately clock-free (a failure *count*,
/// not a failure *rate*): the schedule already spaces attempts out, and
/// clock-free decisions replay deterministically in the chaos suite.
#[derive(Debug, Clone)]
pub struct Supervisor {
    schedule: BackoffSchedule,
    strikes: u32,
    consecutive_failures: u32,
}

impl Supervisor {
    /// A supervisor that gives up after `strikes` consecutive failures
    /// (minimum 1).
    pub fn new(schedule: BackoffSchedule, strikes: u32) -> Supervisor {
        Supervisor {
            schedule,
            strikes: strikes.max(1),
            consecutive_failures: 0,
        }
    }

    /// Record a worker that came up healthy: the failure streak resets.
    pub fn on_success(&mut self) {
        self.consecutive_failures = 0;
    }

    /// Record a spawn failure / dead-on-arrival worker and rule on what
    /// happens next.
    pub fn on_failure(&mut self) -> SupervisorVerdict {
        self.consecutive_failures += 1;
        if self.consecutive_failures >= self.strikes {
            SupervisorVerdict::GiveUp
        } else {
            SupervisorVerdict::Retry {
                delay_ms: self.schedule.delay_ms(self.consecutive_failures - 1),
            }
        }
    }

    /// The current consecutive-failure streak.
    pub fn failures(&self) -> u32 {
        self.consecutive_failures
    }
}

/// The `--evald-worker` entry point: parse `args` (everything after the
/// `--evald-worker` sentinel), run the worker, and return the process
/// exit code. The `bintuner` binary calls this from `main`.
pub fn worker_main(args: &[String]) -> i32 {
    let parsed = match WorkerArgs::parse(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("evald worker: {e}");
            return 2;
        }
    };
    match run_worker(&parsed) {
        // A server that simply goes away is a normal end of service.
        Ok(()) | Err(EvaldError::Disconnected) => 0,
        Err(e) => {
            eprintln!("evald worker {}: {e}", parsed.client_id);
            1
        }
    }
}

/// Connect, handshake, build the engine from the job description, and
/// serve shards until shutdown.
fn run_worker(args: &WorkerArgs) -> Result<(), EvaldError> {
    let mut duplex = match &args.endpoint {
        Endpoint::Tcp(addr) => tcp_connect(*addr)?,
        Endpoint::Unix(path) => unix_connect(path)?,
    };
    let n_flags = CompilerProfile::new(args.kind).n_flags() as u16;
    let opts = ClientOptions {
        client_id: args.client_id,
        n_flags,
        fail_after_shards: args.fail_after,
        fault_kind: args.fault_kind,
    };
    duplex.tx.send_frame(&encode_frame(&Frame::Hello {
        client: args.client_id,
        n_flags,
    }))?;
    // The engine needs the module, which arrives as the job description.
    // Nothing but a Job (or an early Shutdown / empty-batch EndBatch) is
    // legal before the first Work frame.
    let payload = loop {
        let bytes = duplex.rx.recv_frame()?;
        let (frame, _) = decode_frame(&bytes)?;
        match frame {
            Frame::Job { payload } => break payload,
            Frame::Shutdown => return Ok(()),
            Frame::EndBatch { .. } => {
                duplex.tx.send_frame(&encode_frame(&Frame::Merge {
                    client: args.client_id,
                    records: Vec::new(),
                    ast_artifacts: Vec::new(),
                    lower_artifacts: Vec::new(),
                }))?;
            }
            Frame::Work { .. } => {
                // Work before the job description: we cannot evaluate.
                // Exiting severs the connection; the server re-queues the
                // shard on a healthy client.
                return Err(EvaldError::Protocol("Work frame before Job"));
            }
            Frame::Ping { nonce } => {
                // Answer heartbeats even before the job arrives — a
                // worker waiting on its Job is alive, not hung.
                duplex
                    .tx
                    .send_frame(&encode_frame(&Frame::Pong { nonce }))?;
            }
            Frame::Hello { .. }
            | Frame::Result { .. }
            | Frame::Merge { .. }
            | Frame::Pong { .. } => {}
        }
    };
    let module = minicc::codec::decode_module(&payload)
        .map_err(|_| EvaldError::Corrupt("job payload is not an encoded module"))?;
    let compiler = Compiler::new(args.kind);
    let mut engine = FitnessEngine::with_store(
        &compiler,
        &module,
        args.arch,
        EngineConfig {
            workers: 1,
            artifact_cache: args.artifact_cache,
            ..EngineConfig::default()
        },
        FitnessStore::in_memory(),
    )
    .map_err(|_| EvaldError::Protocol("worker engine failed its baseline compile"))?;
    if args.artifact_cache {
        // Producer-only seam, same as a thread client: never saved and
        // never queried, it only captures fresh stage artifacts for the
        // merge barrier (see `client_thread` in `crate::service`).
        engine.set_artifact_store(crate::store::ArtifactStore::in_memory());
    }
    if args.trace {
        // The worker keeps a private registry (only spans travel back;
        // the handles hold their metrics alive without it) and an id
        // base partitioning span ids per client so stitched traces
        // never collide with the server's — or each other's — ids.
        let registry = btel::Registry::new();
        let tracer = btel::Tracer::with_id_base(4096, (u64::from(args.client_id) + 1) << 48);
        engine.set_telemetry(crate::engine::EngineTelemetry::from_registry(
            &registry, tracer,
        ));
    }
    let mut worker = EngineWorker::new(&engine);
    evald::serve(&mut worker, &mut duplex, &opts)
}

/// Everything the parent needs to (re)spawn one worker process.
#[derive(Debug, Clone)]
pub(crate) struct WorkerSpec {
    pub binary: PathBuf,
    pub kind: CompilerKind,
    pub arch: Arch,
    pub artifact_cache: bool,
    pub endpoint: Endpoint,
    /// Spawn workers with `--trace` (the launch carried a
    /// [`crate::service::FarmTelemetry`] with an enabled tracer).
    pub trace: bool,
}

impl WorkerSpec {
    /// Spawn one worker process. Stdin is null; stderr is inherited so a
    /// worker's own diagnostics surface in the parent's stream. `fault`
    /// is the chaos hook: trigger the given [`FaultKind`] after that
    /// many shards.
    pub fn spawn(
        &self,
        client_id: u32,
        fault: Option<(usize, FaultKind)>,
    ) -> std::io::Result<Child> {
        let mut cmd = Command::new(&self.binary);
        cmd.arg("--evald-worker")
            .arg("--client-id")
            .arg(client_id.to_string())
            .arg("--compiler-tag")
            .arg(self.kind.stable_id().to_string())
            .arg("--arch-tag")
            .arg(crate::store::arch_tag(self.arch).to_string())
            .arg("--artifact-cache")
            .arg(if self.artifact_cache { "1" } else { "0" });
        match &self.endpoint {
            Endpoint::Tcp(addr) => cmd.arg("--tcp").arg(addr.to_string()),
            Endpoint::Unix(path) => cmd.arg("--unix").arg(path),
        };
        if self.trace {
            cmd.arg("--trace");
        }
        if let Some((k, kind)) = fault {
            cmd.arg("--fail-after").arg(k.to_string());
            cmd.arg("--fault-kind").arg(fault_kind_to_arg(kind));
        }
        cmd.stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        cmd.spawn()
    }
}

/// Resolve the worker binary to re-exec: the configured path, or — the
/// common deployment — the current executable itself. When the current
/// executable is *not* the `bintuner` binary (a test or bench harness),
/// look for a sibling `bintuner` next to it and in the parent directory
/// (cargo places test binaries in `target/<profile>/deps/`, one level
/// below the real binary).
pub(crate) fn resolve_worker_binary(configured: Option<&PathBuf>) -> std::io::Result<PathBuf> {
    if let Some(path) = configured {
        return Ok(path.clone());
    }
    let exe = std::env::current_exe()?;
    if exe
        .file_stem()
        .is_some_and(|s| s.to_string_lossy() == "bintuner")
    {
        return Ok(exe);
    }
    let candidates = [
        exe.parent().map(|d| d.join("bintuner")),
        exe.parent()
            .and_then(Path::parent)
            .map(|d| d.join("bintuner")),
    ];
    for c in candidates.into_iter().flatten() {
        if c.is_file() {
            return Ok(c);
        }
    }
    Err(std::io::Error::new(
        std::io::ErrorKind::NotFound,
        "no worker binary: current exe is not bintuner and no sibling bintuner binary was found \
         (set ProcessFarm::worker_binary explicitly)",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_args() -> Vec<String> {
        [
            "--client-id",
            "7",
            "--compiler-tag",
            "1",
            "--arch-tag",
            "2",
            "--artifact-cache",
            "1",
            "--tcp",
            "127.0.0.1:4455",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    #[test]
    fn worker_args_parse_round_trips_the_spawn_command() {
        let args = WorkerArgs::parse(&base_args()).unwrap();
        assert_eq!(
            args,
            WorkerArgs {
                client_id: 7,
                kind: CompilerKind::Llvm,
                arch: Arch::Arm,
                artifact_cache: true,
                endpoint: Endpoint::Tcp("127.0.0.1:4455".parse().unwrap()),
                trace: false,
                fail_after: None,
                fault_kind: FaultKind::Crash,
            }
        );
        let mut with_fault = base_args();
        with_fault.extend(["--fail-after".to_string(), "3".to_string()]);
        assert_eq!(WorkerArgs::parse(&with_fault).unwrap().fail_after, Some(3));
        let mut with_trace = base_args();
        with_trace.push("--trace".to_string());
        assert!(WorkerArgs::parse(&with_trace).unwrap().trace);
        let unix: Vec<String> = base_args()
            .into_iter()
            .map(|a| if a == "--tcp" { "--unix".into() } else { a })
            .collect();
        assert_eq!(
            WorkerArgs::parse(&unix).unwrap().endpoint,
            Endpoint::Unix(PathBuf::from("127.0.0.1:4455"))
        );
    }

    #[test]
    fn worker_args_reject_malformed_input() {
        for (mangle, needle) in [
            (vec!["--client-id".to_string()], "expects a value"),
            (
                vec!["--compiler-tag".to_string(), "9".into()],
                "compiler tag",
            ),
            (vec!["--arch-tag".to_string(), "9".into()], "arch tag"),
            (vec!["--artifact-cache".to_string(), "2".into()], "0|1"),
            (vec!["--tcp".to_string(), "nonsense".into()], "--tcp"),
            (vec!["--what".to_string()], "unknown worker argument"),
        ] {
            let err = WorkerArgs::parse(&mangle).unwrap_err();
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
        // Missing required pieces are named.
        let err = WorkerArgs::parse(&[]).unwrap_err();
        assert!(err.contains("--client-id"));
    }

    #[test]
    fn tag_inverses_match_the_stable_ids() {
        for kind in [CompilerKind::Gcc, CompilerKind::Llvm] {
            assert_eq!(compiler_from_tag(kind.stable_id()), Some(kind));
        }
        for arch in [Arch::X86, Arch::X8664, Arch::Arm, Arch::Mips] {
            assert_eq!(arch_from_tag(crate::store::arch_tag(arch)), Some(arch));
        }
        assert_eq!(compiler_from_tag(7), None);
        assert_eq!(arch_from_tag(9), None);
    }

    #[test]
    fn explicit_worker_binary_wins_resolution() {
        let configured = PathBuf::from("/custom/worker");
        assert_eq!(
            resolve_worker_binary(Some(&configured)).unwrap(),
            configured
        );
    }

    #[test]
    fn fault_kind_args_round_trip_the_spawn_command() {
        // Every kind must survive the CLI hop parent → worker process.
        for kind in [
            FaultKind::Crash,
            FaultKind::Hang,
            FaultKind::DropFrame,
            FaultKind::SlowFrame(75),
        ] {
            let arg = fault_kind_to_arg(kind);
            assert_eq!(fault_kind_from_arg(&arg), Ok(kind), "via {arg:?}");
            let mut args = base_args();
            args.extend([
                "--fail-after".to_string(),
                "2".to_string(),
                "--fault-kind".to_string(),
                arg,
            ]);
            let parsed = WorkerArgs::parse(&args).unwrap();
            assert_eq!(parsed.fault_kind, kind);
            assert_eq!(parsed.fail_after, Some(2));
        }
        assert!(fault_kind_from_arg("slow").is_err());
        assert!(fault_kind_from_arg("slow:abc").is_err());
        assert!(fault_kind_from_arg("wedge").is_err());
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let schedule = BackoffSchedule {
            base_ms: 50,
            factor: 2,
            max_ms: 500,
        };
        let delays: Vec<u64> = (0..6).map(|k| schedule.delay_ms(k)).collect();
        assert_eq!(delays, vec![50, 100, 200, 400, 500, 500]);
        // Jitter-free: the same attempt always gets the same delay.
        assert_eq!(schedule.delay_ms(3), schedule.delay_ms(3));
        // Overflow-safe far past the cap.
        assert_eq!(schedule.delay_ms(u32::MAX), 500);
    }

    #[test]
    fn supervisor_gives_up_after_k_consecutive_failures() {
        let mut sup = Supervisor::new(BackoffSchedule::default(), 3);
        assert_eq!(
            sup.on_failure(),
            SupervisorVerdict::Retry { delay_ms: 50 },
            "first failure retries at the base delay"
        );
        assert_eq!(
            sup.on_failure(),
            SupervisorVerdict::Retry { delay_ms: 100 },
            "second failure backs off exponentially"
        );
        assert_eq!(sup.failures(), 2);
        assert_eq!(sup.on_failure(), SupervisorVerdict::GiveUp, "third strike");

        // A success in between resets the streak — only *consecutive*
        // failures are a crash loop.
        let mut sup = Supervisor::new(BackoffSchedule::default(), 3);
        sup.on_failure();
        sup.on_failure();
        sup.on_success();
        assert_eq!(sup.failures(), 0);
        assert_eq!(sup.on_failure(), SupervisorVerdict::Retry { delay_ms: 50 });

        // strikes=1: no retries at all.
        let mut sup = Supervisor::new(BackoffSchedule::default(), 1);
        assert_eq!(sup.on_failure(), SupervisorVerdict::GiveUp);
    }
}
