//! The `bintuner` binary.
//!
//! Two entry points:
//!
//! - `bintuner --evald-worker <args>` — the re-exec target of the
//!   process farm: runs one evaluation-service worker process (see
//!   [`bintuner::farm`]).
//! - `bintuner daemon [flags]` — the multi-tenant tuning daemon `tuned`
//!   (see [`bintuner::daemon`]): a long-lived server multiplexing tenant
//!   jobs onto one shared farm and one shared persistent store.
//! - `bintuner metrics (--unix <path> | --tcp <addr>) [--trace]` —
//!   render a live daemon's btel registry as Prometheus-style text (or,
//!   with `--trace`, its recent job spans as JSONL).
//!
//! The tuning loop itself stays a library embedded by the test and
//! bench harnesses.

use bintuner::daemon::{Daemon, DaemonAddr, DaemonClient, DaemonConfig};
use evald::{ProcessFarm, ServiceConfig, TransportKind, WorkerMode};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage:\n  bintuner daemon [--unix <path> | --tcp] [--store <dir>]\n\
         \x20                [--clients N] [--farm-transport unix|tcp]\n\
         \x20                [--process-workers] [--queue N] [--runners N]\n\
         \x20                [--max-evals N]\n  \
         bintuner metrics (--unix <path> | --tcp <addr>) [--trace]\n  \
         bintuner --evald-worker <args>   (spawned by ServiceHandle::launch)"
    );
    std::process::exit(2);
}

fn parse_transport(s: &str) -> TransportKind {
    match s {
        "unix" => TransportKind::Unix,
        "tcp" => TransportKind::Tcp,
        _ => usage(),
    }
}

fn daemon_main(args: &[String]) -> i32 {
    let mut config = DaemonConfig::default();
    let mut farm_transport = TransportKind::Unix;
    let mut process_workers = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().map(String::as_str).unwrap_or_else(|| usage());
        match arg.as_str() {
            "--unix" => {
                config.transport = TransportKind::Unix;
                config.unix_path = Some(PathBuf::from(value()));
            }
            "--tcp" => config.transport = TransportKind::Tcp,
            "--store" => config.store_path = Some(PathBuf::from(value())),
            "--clients" => config.farm.clients = value().parse().unwrap_or_else(|_| usage()),
            "--farm-transport" => farm_transport = parse_transport(value()),
            "--process-workers" => process_workers = true,
            "--queue" => config.queue_limit = value().parse().unwrap_or_else(|_| usage()),
            "--runners" => config.runners = value().parse().unwrap_or_else(|_| usage()),
            "--max-evals" => {
                config.base.termination.max_evaluations =
                    value().parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
    }
    config.farm = ServiceConfig {
        transport: farm_transport,
        workers: if process_workers {
            // Re-exec this very binary as the farm's worker processes.
            WorkerMode::Processes(ProcessFarm {
                worker_binary: std::env::current_exe().ok(),
                ..ProcessFarm::default()
            })
        } else {
            WorkerMode::Threads
        },
        ..config.farm
    };
    let handle = match Daemon::launch(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("bintuner daemon: launch failed: {e}");
            return 1;
        }
    };
    println!("tuned listening on {}", handle.addr());
    // Serve until killed; the handle's Drop (never reached) would shut
    // down cleanly.
    loop {
        std::thread::park();
    }
}

fn metrics_main(args: &[String]) -> i32 {
    let mut addr = None;
    let mut trace = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().map(String::as_str).unwrap_or_else(|| usage());
        match arg.as_str() {
            "--unix" => addr = Some(DaemonAddr::Unix(PathBuf::from(value()))),
            "--tcp" => {
                let parsed = value().parse().unwrap_or_else(|_| usage());
                addr = Some(DaemonAddr::Tcp(parsed));
            }
            "--trace" => trace = true,
            _ => usage(),
        }
    }
    let Some(addr) = addr else { usage() };
    let mut client = match DaemonClient::connect(&addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("bintuner metrics: connect to {addr} failed: {e}");
            return 1;
        }
    };
    let fetched = if trace {
        client.trace_dump()
    } else {
        client.metrics_text()
    };
    match fetched {
        Ok(text) => {
            print!("{text}");
            0
        }
        Err(e) => {
            eprintln!("bintuner metrics: fetch failed: {e}");
            1
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--evald-worker") => std::process::exit(bintuner::farm::worker_main(&args[1..])),
        Some("daemon") => std::process::exit(daemon_main(&args[1..])),
        Some("metrics") => std::process::exit(metrics_main(&args[1..])),
        _ => usage(),
    }
}
