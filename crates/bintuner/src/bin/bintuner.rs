//! The `bintuner` binary.
//!
//! Today its one job is to be the re-exec target of the process farm:
//! `bintuner --evald-worker <args>` runs one evaluation-service worker
//! process (see [`bintuner::farm`]). Invoked any other way it prints a
//! short usage, because the tuning loop itself is a library embedded by
//! the test and bench harnesses.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--evald-worker") {
        std::process::exit(bintuner::farm::worker_main(&args[1..]));
    }
    eprintln!(
        "bintuner: this binary currently only serves the evaluation-service \
         process farm; run `bintuner --evald-worker --help-args` via \
         ServiceHandle::launch instead of invoking it directly"
    );
    std::process::exit(2);
}
