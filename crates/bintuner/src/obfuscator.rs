//! Obfuscator-LLVM analog (paper §5.4, Figure 8(b) comparison).
//!
//! The three O-LLVM schemes, implemented over the mini-ISA:
//! instruction substitution (fixed diversification rules), bogus control
//! flow through opaque predicates, and control-flow flattening
//! (dispatcher-based). All three preserve semantics — validated by
//! differential execution in the integration tests.

use binrep::{Binary, Block, Cond, Function, Gpr, Insn, Opcode, Operand, Terminator};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Which O-LLVM schemes to apply.
#[derive(Debug, Clone, Copy)]
pub struct ObfuscatorConfig {
    /// Instruction substitution (`-mllvm -sub`).
    pub substitution: bool,
    /// Bogus control flow (`-mllvm -bcf`).
    pub bogus_cfg: bool,
    /// Control-flow flattening (`-mllvm -fla`).
    pub flatten: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ObfuscatorConfig {
    fn default() -> ObfuscatorConfig {
        ObfuscatorConfig {
            substitution: true,
            bogus_cfg: true,
            flatten: true,
            seed: 0x0117,
        }
    }
}

/// Apply Obfuscator-LLVM-style transformations to a binary.
pub fn obfuscate(bin: &mut Binary, config: &ObfuscatorConfig) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    for f in &mut bin.functions {
        if config.substitution {
            substitute(f);
        }
        if config.bogus_cfg {
            bogus_cfg(f, &mut rng);
        }
        if config.flatten {
            flatten(f);
        }
        debug_assert_eq!(f.cfg.validate(), Ok(()));
    }
}

fn flags_dead_after(insns: &[Insn], i: usize, term_reads: bool) -> bool {
    for insn in &insns[i + 1..] {
        if insn.op.reads_flags() {
            return false;
        }
        if insn.op.writes_flags() || matches!(insn.op, Opcode::Call | Opcode::CallImport) {
            return true;
        }
    }
    !term_reads
}

/// Instruction substitution: O-LLVM's "several fixed rules to diversify
/// arithmetic operations" (§5.4). Applied where FLAGS liveness allows.
fn substitute(f: &mut Function) {
    for b in &mut f.cfg.blocks {
        let term_reads = matches!(b.term, Terminator::Branch { .. });
        let mut i = 0;
        while i < b.insns.len() {
            let dead = flags_dead_after(&b.insns, i, term_reads);
            let insn = b.insns[i];
            let r = insn.a.and_then(|o| o.as_reg());
            let imm = insn.b.and_then(|o| o.as_imm());
            let new: Option<Vec<Insn>> = match (insn.op, r, imm, dead) {
                // a + c → a - (-c)
                (Opcode::Add, Some(r), Some(c), true)
                    if c != 0 && c.unsigned_abs() < i32::MAX as u64 =>
                {
                    Some(vec![Insn::op2(Opcode::Sub, r, -(c as i32 as i64))])
                }
                // a ^ c → (a | c) - (a & c)  [via scratch edx]
                (Opcode::Xor, Some(r), Some(c), true) if r != Gpr::Edx => Some(vec![
                    Insn::op2(Opcode::Mov, Gpr::Edx, r),
                    Insn::op2(Opcode::Or, r, c),
                    Insn::op2(Opcode::And, Gpr::Edx, c),
                    Insn::op2(Opcode::Sub, r, Gpr::Edx),
                ]),
                // mov r, c → mov r, c^K ; xor r, K
                (Opcode::Mov, Some(r), Some(c), true)
                    if insn.b.map(|o| o.as_imm().is_some()).unwrap_or(false)
                        && c.unsigned_abs() > 64 =>
                {
                    let k = 0x5a5a_5a5ai64;
                    let masked = ((c as u32) ^ (k as u32)) as i64;
                    Some(vec![
                        Insn::op2(Opcode::Mov, r, masked),
                        Insn::op2(Opcode::Xor, r, k),
                    ])
                }
                _ => None,
            };
            match new {
                Some(seq) => {
                    let n = seq.len();
                    b.insns.splice(i..=i, seq);
                    i += n;
                }
                None => i += 1,
            }
        }
    }
}

/// Bogus control flow: wrap blocks behind an always-true opaque
/// predicate, with a never-executed junk clone as the false arm.
fn bogus_cfg(f: &mut Function, rng: &mut StdRng) {
    let targets: Vec<binrep::BlockId> = f
        .cfg
        .blocks
        .iter()
        .filter(|b| b.insns.len() >= 2 && rng.gen_bool(0.4))
        .map(|b| b.id)
        .collect();
    for id in targets {
        // Move the real body to a fresh block; the original becomes the
        // opaque dispatcher.
        let real = f.cfg.fresh_id();
        let junk = f.cfg.fresh_id();
        let original = f.cfg.block_mut(id);
        let insns = std::mem::take(&mut original.insns);
        let term = std::mem::replace(&mut original.term, Terminator::Ret);
        // Opaque predicate: test edx, 0 sets ZF=1 always → E is taken.
        original.insns.push(Insn::op2(Opcode::Test, Gpr::Edx, 0i64));
        original.term = Terminator::Branch {
            cond: Cond::E,
            then_bb: real,
            else_bb: junk,
        };
        f.cfg.push(Block::new(real, insns.clone(), term));
        // Junk arm: a mangled clone (never executed).
        let mut junk_insns: Vec<Insn> = insns
            .into_iter()
            .take(4)
            .map(|mut i| {
                if let Some(Operand::Imm(v)) = i.b {
                    i.b = Some(Operand::Imm(v ^ 0x2f));
                }
                i
            })
            .collect();
        junk_insns.push(Insn::op2(Opcode::Xor, Gpr::Edx, Gpr::Edx));
        f.cfg
            .push(Block::new(junk, junk_insns, Terminator::Jmp(real)));
    }
}

/// Control-flow flattening: route unconditional transfers through a
/// central dispatcher driven by a state register (`edx`).
fn flatten(f: &mut Function) {
    if f.cfg.len() < 3 {
        return;
    }
    let ids: Vec<binrep::BlockId> = f.cfg.blocks.iter().map(|b| b.id).collect();
    let dispatcher = f.cfg.fresh_id();
    let index_of = |id: binrep::BlockId, ids: &[binrep::BlockId]| {
        ids.iter().position(|&x| x == id).unwrap() as i64
    };
    // Rewrite every unconditional Jmp to set the state and enter the
    // dispatcher. (Branches keep FLAGS live, so they are left intact —
    // O-LLVM's flattening also keeps conditional computations.)
    for b in &mut f.cfg.blocks {
        if let Terminator::Jmp(t) = b.term {
            if t != dispatcher {
                let idx = index_of(t, &ids);
                b.insns.push(Insn::op2(Opcode::Mov, Gpr::Edx, idx));
                b.term = Terminator::Jmp(dispatcher);
            }
        }
    }
    f.cfg.push(Block::new(
        dispatcher,
        Vec::new(),
        Terminator::JumpTable {
            index: Gpr::Edx,
            targets: ids,
        },
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use minicc::{Compiler, CompilerKind, OptLevel};

    #[test]
    fn obfuscation_preserves_semantics() {
        let bench = corpus::by_name("429.mcf").unwrap();
        let cc = Compiler::new(CompilerKind::Llvm);
        let bin = cc
            .compile_preset(&bench.module, OptLevel::O1, binrep::Arch::X86)
            .unwrap();
        let mut obf = bin.clone();
        obfuscate(&mut obf, &ObfuscatorConfig::default());
        obf.validate().unwrap();
        for inputs in &bench.test_inputs {
            let a = emu::Machine::new(&bin).run(&[], inputs, 8_000_000).unwrap();
            let b = emu::Machine::new(&obf).run(&[], inputs, 8_000_000).unwrap();
            assert_eq!(a.output, b.output, "inputs {inputs:?}");
        }
    }

    #[test]
    fn obfuscation_changes_structure_substantially() {
        let bench = corpus::by_name("429.mcf").unwrap();
        let cc = Compiler::new(CompilerKind::Llvm);
        let bin = cc
            .compile_preset(&bench.module, OptLevel::O1, binrep::Arch::X86)
            .unwrap();
        let mut obf = bin.clone();
        obfuscate(&mut obf, &ObfuscatorConfig::default());
        assert!(obf.block_count() > bin.block_count() + bin.block_count() / 4);
        assert_ne!(binrep::encode_binary(&bin), binrep::encode_binary(&obf));
    }

    #[test]
    fn individual_schemes_compose() {
        let bench = corpus::by_name("648.exchange2_s").unwrap();
        let cc = Compiler::new(CompilerKind::Llvm);
        let bin = cc
            .compile_preset(&bench.module, OptLevel::O1, binrep::Arch::X86)
            .unwrap();
        for (sub, bcf, fla) in [
            (true, false, false),
            (false, true, false),
            (false, false, true),
        ] {
            let mut obf = bin.clone();
            obfuscate(
                &mut obf,
                &ObfuscatorConfig {
                    substitution: sub,
                    bogus_cfg: bcf,
                    flatten: fla,
                    seed: 1,
                },
            );
            obf.validate().unwrap();
            let a = emu::Machine::new(&bin)
                .run(&[], &bench.test_inputs[0], 8_000_000)
                .unwrap();
            let b = emu::Machine::new(&obf)
                .run(&[], &bench.test_inputs[0], 8_000_000)
                .unwrap();
            assert_eq!(a.output, b.output, "sub={sub} bcf={bcf} fla={fla}");
        }
    }
}
