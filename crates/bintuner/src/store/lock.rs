//! Advisory cross-process file locks for store mutation.
//!
//! One [`StoreLock`] guards one file: the v4 store takes one per shard
//! log (so compacting shard 3 never blocks a writer appending to shard
//! 7), the artifact log takes its own, and the v3→v4 migration takes a
//! single whole-store lock on the store path itself while the
//! file-to-directory flip happens.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Advisory cross-process lock on a store file: a `<path>.lock` sibling
/// created with `O_EXCL` and holding the owner's pid. Released on drop;
/// a lock whose owner pid is no longer alive (crashed run) is reclaimed.
///
/// Advisory means cooperative: only the store's save/compaction paths
/// honor it, which is enough because saving is the store's only file
/// mutation.
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
}

impl StoreLock {
    /// Path of the lock file guarding `store_path`.
    pub fn lock_path(store_path: &Path) -> PathBuf {
        let mut p = store_path.as_os_str().to_owned();
        p.push(".lock");
        PathBuf::from(p)
    }

    /// Try to take the lock. `Ok(None)` means another live process holds
    /// it (the caller should degrade, not block). A stale lock — owner
    /// pid dead — is reclaimed once.
    ///
    /// Reclamation is check-then-unlink and therefore racy in principle
    /// (`O_EXCL` is the only atomic primitive std offers here), so two
    /// guards shrink the window to a pair of adjacent syscalls: the
    /// holder pid is re-read immediately before the unlink (a racing
    /// reclaimer's *fresh* lock is seen and respected), and after
    /// creating our own lock we re-read it to confirm we still own it
    /// (losing that verification degrades to `Ok(None)` — a skipped
    /// save, the same safe fallback as plain contention). A lost race
    /// that slips both guards costs what the pre-lock code always
    /// risked: a torn append the corruption-tolerant loader truncates.
    ///
    /// # Errors
    ///
    /// Unexpected I/O failures creating the lock file (permissions, a
    /// vanished parent directory).
    pub fn acquire(store_path: &Path) -> io::Result<Option<StoreLock>> {
        Self::acquire_with(store_path, &pid_alive, &|f, pid| f.write_all(pid))
    }

    /// Implementation seam behind [`StoreLock::acquire`]: the pid
    /// liveness probe and the pid write are injectable so the unit tests
    /// can exercise the non-Linux "never steal" policy and the
    /// failed-write cleanup path on any host.
    fn acquire_with(
        store_path: &Path,
        alive: &dyn Fn(u32) -> bool,
        write_pid: &dyn Fn(&mut fs::File, &[u8]) -> io::Result<()>,
    ) -> io::Result<Option<StoreLock>> {
        let path = StoreLock::lock_path(store_path);
        let my_pid = std::process::id().to_string();
        let read_holder = |path: &Path| fs::read_to_string(path).ok();
        for attempt in 0..2 {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    if let Err(e) = write_pid(&mut f, my_pid.as_bytes()) {
                        // A lock file we created but could not stamp
                        // (disk full) must not wedge every future save:
                        // remove it and surface the failure.
                        drop(f);
                        let _ = fs::remove_file(&path);
                        return Err(e);
                    }
                    drop(f);
                    // Ownership verification: a racing stale-reclaimer
                    // may have unlinked and replaced our fresh lock.
                    if read_holder(&path).as_deref().map(str::trim) == Some(my_pid.as_str()) {
                        return Ok(Some(StoreLock { path }));
                    }
                    return Ok(None);
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let first = read_holder(&path);
                    let stale = match first.as_deref().map(str::trim).map(str::parse::<u32>) {
                        Some(Ok(pid)) => pid != std::process::id() && !alive(pid),
                        // Empty content: a torn acquire (killed between
                        // create and pid write) — no live owner can be
                        // identified, reclaim it. A racing acquirer whose
                        // file is momentarily empty is protected by its
                        // own ownership verification above.
                        Some(Err(_)) if first.as_deref().is_some_and(|s| s.trim().is_empty()) => {
                            true
                        }
                        // Garbled non-empty owner: written by something
                        // else entirely — leave it alone.
                        _ => false,
                    };
                    if !stale || attempt == 1 {
                        return Ok(None);
                    }
                    // Re-read right before unlinking: if the content
                    // changed, another process already reclaimed and
                    // re-locked — back off instead of deleting its lock.
                    if read_holder(&path) != first {
                        return Ok(None);
                    }
                    let _ = fs::remove_file(&path);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        // Release only a lock file we still own — never a fresh lock a
        // racing reclaimer put in its place.
        let owned = fs::read_to_string(&self.path)
            .ok()
            .is_some_and(|s| s.trim() == std::process::id().to_string());
        if owned {
            let _ = fs::remove_file(&self.path);
        }
    }
}

/// Whether a process with this pid exists.
fn pid_alive(pid: u32) -> bool {
    pid_alive_impl(pid, cfg!(target_os = "linux"))
}

/// The liveness decision, with the platform capability as an explicit
/// input so the non-Linux policy is unit-testable on Linux. Without a
/// portable probe (`can_probe == false`) every holder is treated as
/// alive — locks are then only released by their owner's drop. That is
/// the conservative "never steal" arm: a wedged stale lock costs a
/// skipped save, a wrongly stolen live lock costs interleaved writes.
fn pid_alive_impl(pid: u32, can_probe: bool) -> bool {
    if !can_probe {
        return true;
    }
    #[cfg(target_os = "linux")]
    {
        Path::new(&format!("/proc/{pid}")).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = pid;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "bintuner_lock_{}_{}.btfs",
            std::process::id(),
            name
        ));
        let _ = fs::remove_file(&p);
        let _ = fs::remove_file(StoreLock::lock_path(&p));
        p
    }

    /// A pid no live process has (pid_max is far below u32::MAX).
    const DEAD_PID: u32 = u32::MAX - 1;

    #[test]
    fn non_linux_policy_never_steals_a_dead_pid_lock() {
        // The decision itself: without a probe, even a provably dead
        // holder reads as alive.
        assert!(pid_alive_impl(DEAD_PID, false));
        #[cfg(target_os = "linux")]
        assert!(!pid_alive_impl(DEAD_PID, true));

        // End to end through acquire: a dead-pid lock that the Linux
        // path would reclaim is left alone under the never-steal policy.
        let path = scratch("never_steal");
        fs::write(StoreLock::lock_path(&path), DEAD_PID.to_string()).unwrap();
        let no_probe = |pid: u32| pid_alive_impl(pid, false);
        let got = StoreLock::acquire_with(&path, &no_probe, &|f, pid| f.write_all(pid)).unwrap();
        assert!(got.is_none(), "never-steal policy stole a lock");
        assert!(StoreLock::lock_path(&path).exists(), "lock file removed");

        // The same situation with the probe available is reclaimed —
        // pinning that the two arms genuinely differ.
        #[cfg(target_os = "linux")]
        {
            let probe = |pid: u32| pid_alive_impl(pid, true);
            let got = StoreLock::acquire_with(&path, &probe, &|f, pid| f.write_all(pid)).unwrap();
            assert!(got.is_some(), "dead-pid lock not reclaimed on Linux");
        }
        let _ = fs::remove_file(StoreLock::lock_path(&path));
    }

    #[test]
    fn failed_pid_write_removes_the_lock_file_and_surfaces_the_error() {
        let path = scratch("failed_write");
        let fail = |_f: &mut fs::File, _pid: &[u8]| -> io::Result<()> {
            Err(io::Error::other("disk full"))
        };
        let err = StoreLock::acquire_with(&path, &pid_alive, &fail).unwrap_err();
        assert_eq!(err.to_string(), "disk full");
        // Regression: the half-created lock must not wedge future saves.
        assert!(
            !StoreLock::lock_path(&path).exists(),
            "orphaned lock file left behind"
        );
        // And the next acquire (healthy writer) succeeds outright.
        let lock = StoreLock::acquire(&path).unwrap();
        assert!(lock.is_some());
        drop(lock);
        assert!(!StoreLock::lock_path(&path).exists());
    }
}
