//! Advisory cross-process file locks for store mutation.
//!
//! One [`StoreLock`] guards one file: the v4 store takes one per shard
//! log (so compacting shard 3 never blocks a writer appending to shard
//! 7), the artifact log takes its own, and the v3→v4 migration takes a
//! single whole-store lock on the store path itself while the
//! file-to-directory flip happens.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Advisory cross-process lock on a store file: a `<path>.lock` sibling
/// created with `O_EXCL` and holding the owner's pid. Released on drop;
/// a lock whose owner pid is no longer alive (crashed run) is reclaimed.
///
/// Advisory means cooperative: only the store's save/compaction paths
/// honor it, which is enough because saving is the store's only file
/// mutation.
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
}

impl StoreLock {
    /// Path of the lock file guarding `store_path`.
    pub fn lock_path(store_path: &Path) -> PathBuf {
        let mut p = store_path.as_os_str().to_owned();
        p.push(".lock");
        PathBuf::from(p)
    }

    /// Try to take the lock. `Ok(None)` means another live process holds
    /// it (the caller should degrade, not block). A stale lock — owner
    /// pid dead — is reclaimed once.
    ///
    /// Reclamation claims by **rename**, the one atomic
    /// take-whatever-is-there primitive std offers: the observed-stale
    /// lock is renamed to a claimant-unique sibling, so exactly one
    /// racing reclaimer wins and the holder re-check runs on a file the
    /// claimant owns exclusively — unlike the old check-then-unlink
    /// pair, there is no window where a racer's *fresh* lock can be
    /// deleted after the check passed. If the claimed file no longer
    /// matches the stale observation (a racer reclaimed and re-locked
    /// between our read and our rename), the claim is undone by
    /// renaming it straight back and the acquire degrades to
    /// `Ok(None)`. The second guard is unchanged: after creating our
    /// own lock we re-read it to confirm we still own it. What remains
    /// is not a two-syscall window of ours but a compound race — a
    /// racer's complete reclaim cycle inside our single read-to-rename
    /// gap *and* a third acquirer's complete create-stamp-verify cycle
    /// inside our single claim-to-restore gap — and a loss costs what
    /// the pre-lock code always risked: a torn append the
    /// corruption-tolerant loader truncates (pinned by
    /// `save_after_torn_append_truncates_and_appends_cleanly`).
    ///
    /// # Errors
    ///
    /// Unexpected I/O failures creating the lock file (permissions, a
    /// vanished parent directory).
    pub fn acquire(store_path: &Path) -> io::Result<Option<StoreLock>> {
        Self::acquire_with(store_path, &pid_alive, &|f, pid| f.write_all(pid))
    }

    /// Implementation seam behind [`StoreLock::acquire`]: the pid
    /// liveness probe and the pid write are injectable so the unit tests
    /// can exercise the non-Linux "never steal" policy and the
    /// failed-write cleanup path on any host.
    fn acquire_with(
        store_path: &Path,
        alive: &dyn Fn(u32) -> bool,
        write_pid: &dyn Fn(&mut fs::File, &[u8]) -> io::Result<()>,
    ) -> io::Result<Option<StoreLock>> {
        let path = StoreLock::lock_path(store_path);
        let my_pid = std::process::id().to_string();
        let read_holder = |path: &Path| fs::read_to_string(path).ok();
        for attempt in 0..2 {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    if let Err(e) = write_pid(&mut f, my_pid.as_bytes()) {
                        // A lock file we created but could not stamp
                        // (disk full) must not wedge every future save:
                        // remove it and surface the failure.
                        drop(f);
                        let _ = fs::remove_file(&path);
                        return Err(e);
                    }
                    drop(f);
                    // Ownership verification: a racing stale-reclaimer
                    // may have unlinked and replaced our fresh lock.
                    if read_holder(&path).as_deref().map(str::trim) == Some(my_pid.as_str()) {
                        return Ok(Some(StoreLock { path }));
                    }
                    return Ok(None);
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let first = read_holder(&path);
                    let stale = match first.as_deref().map(str::trim).map(str::parse::<u32>) {
                        Some(Ok(pid)) => pid != std::process::id() && !alive(pid),
                        // Empty content: a torn acquire (killed between
                        // create and pid write) — no live owner can be
                        // identified, reclaim it. A racing acquirer whose
                        // file is momentarily empty is protected by its
                        // own ownership verification above.
                        Some(Err(_)) if first.as_deref().is_some_and(|s| s.trim().is_empty()) => {
                            true
                        }
                        // Garbled non-empty owner: written by something
                        // else entirely — leave it alone.
                        _ => false,
                    };
                    if !stale || attempt == 1 {
                        return Ok(None);
                    }
                    // Atomic claim: rename the observed-stale lock to a
                    // name only this claimant uses. Of N racing
                    // reclaimers exactly one rename succeeds (the rest
                    // see the source vanish), and the winner holds the
                    // claimed file exclusively — no racer mutates a
                    // path nobody else knows.
                    let claim = claim_path(&path);
                    if fs::rename(&path, &claim).is_err() {
                        // Lost the claim race (or the holder released
                        // on its own): fall through to the second
                        // `create_new` attempt, which decides cleanly.
                        continue;
                    }
                    // Race-free holder re-check, *after* the claim.
                    if read_holder(&claim).as_deref().map(str::trim)
                        == first.as_deref().map(str::trim)
                    {
                        // Still the stale lock we observed: a dead pid
                        // writes nothing, so nobody owns it. (The empty
                        // torn-acquire case is also safe: a mid-acquire
                        // racer stamping its pid writes through its fd
                        // into *this* renamed file, and its own
                        // ownership verification then fails against the
                        // lock path.)
                        let _ = fs::remove_file(&claim);
                    } else {
                        // The lock changed between observation and
                        // claim — we grabbed a racer's fresh lock. Put
                        // it back atomically and degrade; the racer
                        // keeps (or correctly re-verifies) its claim.
                        let _ = fs::rename(&claim, &path);
                        return Ok(None);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        // Release only a lock file we still own — never a fresh lock a
        // racing reclaimer put in its place.
        let owned = fs::read_to_string(&self.path)
            .ok()
            .is_some_and(|s| s.trim() == std::process::id().to_string());
        if owned {
            let _ = fs::remove_file(&self.path);
        }
    }
}

/// Claimant-unique sibling of `lock_path` for a rename-based stale
/// reclaim: the pid disambiguates processes, the counter disambiguates
/// threads of one process racing on the same lock. Claim files are
/// transient — removed (valid claim) or renamed back (lost race) on
/// every path out of the reclaim.
fn claim_path(lock_path: &Path) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static CLAIM_SEQ: AtomicU64 = AtomicU64::new(0);
    let mut p = lock_path.as_os_str().to_owned();
    p.push(format!(
        ".claim.{}.{}",
        std::process::id(),
        CLAIM_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    PathBuf::from(p)
}

/// Whether a process with this pid exists.
fn pid_alive(pid: u32) -> bool {
    pid_alive_impl(pid, cfg!(target_os = "linux"))
}

/// The liveness decision, with the platform capability as an explicit
/// input so the non-Linux policy is unit-testable on Linux. Without a
/// portable probe (`can_probe == false`) every holder is treated as
/// alive — locks are then only released by their owner's drop. That is
/// the conservative "never steal" arm: a wedged stale lock costs a
/// skipped save, a wrongly stolen live lock costs interleaved writes.
fn pid_alive_impl(pid: u32, can_probe: bool) -> bool {
    if !can_probe {
        return true;
    }
    #[cfg(target_os = "linux")]
    {
        Path::new(&format!("/proc/{pid}")).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = pid;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "bintuner_lock_{}_{}.btfs",
            std::process::id(),
            name
        ));
        let _ = fs::remove_file(&p);
        let _ = fs::remove_file(StoreLock::lock_path(&p));
        p
    }

    /// A pid no live process has (pid_max is far below u32::MAX).
    const DEAD_PID: u32 = u32::MAX - 1;

    #[test]
    fn non_linux_policy_never_steals_a_dead_pid_lock() {
        // The decision itself: without a probe, even a provably dead
        // holder reads as alive.
        assert!(pid_alive_impl(DEAD_PID, false));
        #[cfg(target_os = "linux")]
        assert!(!pid_alive_impl(DEAD_PID, true));

        // End to end through acquire: a dead-pid lock that the Linux
        // path would reclaim is left alone under the never-steal policy.
        let path = scratch("never_steal");
        fs::write(StoreLock::lock_path(&path), DEAD_PID.to_string()).unwrap();
        let no_probe = |pid: u32| pid_alive_impl(pid, false);
        let got = StoreLock::acquire_with(&path, &no_probe, &|f, pid| f.write_all(pid)).unwrap();
        assert!(got.is_none(), "never-steal policy stole a lock");
        assert!(StoreLock::lock_path(&path).exists(), "lock file removed");

        // The same situation with the probe available is reclaimed —
        // pinning that the two arms genuinely differ.
        #[cfg(target_os = "linux")]
        {
            let probe = |pid: u32| pid_alive_impl(pid, true);
            let got = StoreLock::acquire_with(&path, &probe, &|f, pid| f.write_all(pid)).unwrap();
            assert!(got.is_some(), "dead-pid lock not reclaimed on Linux");
        }
        let _ = fs::remove_file(StoreLock::lock_path(&path));
    }

    #[test]
    fn swapped_lock_is_restored_not_stolen() {
        // The compound race the rename claim defends against: between
        // our staleness observation and our claim, a racer completes a
        // full reclaim and re-locks. The alive probe runs exactly in
        // that gap, so a probe with a side effect simulates the racer
        // deterministically: it swaps the stale lock for a fresh
        // live-pid lock. The claim must then be undone by the
        // rename-back — the racer keeps its lock, we degrade to None,
        // and no claim debris survives.
        let path = scratch("swapped");
        let lock_file = StoreLock::lock_path(&path);
        fs::write(&lock_file, DEAD_PID.to_string()).unwrap();
        let racer_pid = std::process::id().to_string();
        let swapping_probe = {
            let lock_file = lock_file.clone();
            let racer_pid = racer_pid.clone();
            move |_pid: u32| {
                fs::write(&lock_file, &racer_pid).unwrap();
                false // the observed holder is dead — proceed to reclaim
            }
        };
        let got =
            StoreLock::acquire_with(&path, &swapping_probe, &|f, pid| f.write_all(pid)).unwrap();
        assert!(got.is_none(), "stole a lock that changed after observation");
        assert_eq!(
            fs::read_to_string(&lock_file).unwrap(),
            racer_pid,
            "the racer's fresh lock must survive at the lock path"
        );
        let dir = path.parent().unwrap_or(Path::new("."));
        for entry in fs::read_dir(dir).unwrap() {
            let name = entry.unwrap().file_name();
            assert!(
                !name.to_string_lossy().contains(".claim."),
                "claim debris left behind: {name:?}"
            );
        }
        let _ = fs::remove_file(&lock_file);
    }

    #[test]
    fn stale_reclaim_admits_exactly_one_winner_under_contention() {
        // The atomicity invariant of the rename claim: any number of
        // threads hammering acquire on a path that keeps regrowing
        // stale locks never observe two simultaneous holders. (Planting
        // uses `create_new`, so a *held* lock is never overwritten —
        // every planted file really is an orphan.)
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let path = scratch("contention");
        let lock_file = StoreLock::lock_path(&path);
        fs::write(&lock_file, DEAD_PID.to_string()).unwrap();
        let holders = Arc::new(AtomicUsize::new(0));
        let acquired = Arc::new(AtomicUsize::new(0));
        let dead_probe = |pid: u32| pid != DEAD_PID && pid_alive(pid);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let path = path.clone();
                let lock_file = lock_file.clone();
                let holders = Arc::clone(&holders);
                let acquired = Arc::clone(&acquired);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        if let Some(lock) =
                            StoreLock::acquire_with(&path, &dead_probe, &|f, pid| f.write_all(pid))
                                .unwrap()
                        {
                            let now = holders.fetch_add(1, Ordering::SeqCst);
                            assert_eq!(now, 0, "two live holders of one store lock");
                            acquired.fetch_add(1, Ordering::SeqCst);
                            std::hint::spin_loop();
                            holders.fetch_sub(1, Ordering::SeqCst);
                            drop(lock);
                        } else if let Ok(mut f) = fs::OpenOptions::new()
                            .write(true)
                            .create_new(true)
                            .open(&lock_file)
                        {
                            // Replant a stale lock so reclaim keeps
                            // being exercised, not just first-create.
                            let _ = f.write_all(DEAD_PID.to_string().as_bytes());
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(
            acquired.load(Ordering::SeqCst) > 0,
            "contention test never acquired — vacuous"
        );
        let _ = fs::remove_file(&lock_file);
    }

    #[test]
    fn failed_pid_write_removes_the_lock_file_and_surfaces_the_error() {
        let path = scratch("failed_write");
        let fail = |_f: &mut fs::File, _pid: &[u8]| -> io::Result<()> {
            Err(io::Error::other("disk full"))
        };
        let err = StoreLock::acquire_with(&path, &pid_alive, &fail).unwrap_err();
        assert_eq!(err.to_string(), "disk full");
        // Regression: the half-created lock must not wedge future saves.
        assert!(
            !StoreLock::lock_path(&path).exists(),
            "orphaned lock file left behind"
        );
        // And the next acquire (healthy writer) succeeds outright.
        let lock = StoreLock::acquire(&path).unwrap();
        assert!(lock.is_some());
        drop(lock);
        assert!(!StoreLock::lock_path(&path).exists());
    }
}
