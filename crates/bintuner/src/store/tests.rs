//! Unit tests for the sharded fitness store. The cross-process torture
//! cases (torn appends at every byte boundary, crash-during-compaction,
//! reader/writer/compactor stress) live in `tests/store_torture.rs`;
//! these cover the single-process contracts.

use super::shard::{RECORD_LEN, SHARD_HEADER_LEN};
use super::*;

/// Unique scratch path per test (no tempfile crate in the container).
fn scratch(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "bintuner_store_{}_{}.btfs",
        std::process::id(),
        name
    ));
    let _ = fs::remove_file(&p);
    let _ = fs::remove_dir_all(&p);
    p
}

fn cleanup(path: &Path) {
    let _ = fs::remove_file(path);
    let _ = fs::remove_dir_all(path);
    let _ = fs::remove_file(StoreLock::lock_path(path));
}

fn key(i: u64) -> StoreKey {
    StoreKey::new(
        0xAA00 + i,
        CompilerKind::Gcc,
        Arch::X86,
        u128::from(i) << 64 | 0x5EED,
    )
}

fn value(i: u64) -> StoredFitness {
    StoredFitness {
        fitness: i as f64 * 0.125 + 0.25,
        failed: i.is_multiple_of(7),
        flags: FlagBits::from_bools(
            &(0..140)
                .map(|b| (b as u64 + i).is_multiple_of(3))
                .collect::<Vec<_>>(),
        ),
        generation: 0,
    }
}

fn feats(i: u32) -> ModuleFeatures {
    let mut f = ModuleFeatures::default();
    for (j, c) in f.counts.iter_mut().enumerate() {
        *c = i * 10 + j as u32;
    }
    f
}

/// Total record count across every shard log (header bytes excluded) —
/// the sharded analogue of the old single-file size assertions.
fn disk_records(dir: &Path) -> usize {
    let mut records = 0;
    for entry in fs::read_dir(dir).unwrap().flatten() {
        let name = entry.file_name();
        let name = name.to_str().unwrap();
        if name.starts_with("shard-") && name.ends_with(".log") {
            let len = entry.metadata().unwrap().len() as usize;
            assert!(len >= SHARD_HEADER_LEN, "shard file shorter than header");
            assert!(
                (len - SHARD_HEADER_LEN).is_multiple_of(RECORD_LEN),
                "shard file not record-aligned"
            );
            records += (len - SHARD_HEADER_LEN) / RECORD_LEN;
        }
    }
    records
}

#[test]
fn round_trip() {
    let path = scratch("round_trip");
    let mut store = FitnessStore::load(&path);
    assert!(store.report().missing);
    for i in 0..20 {
        store.insert(key(i), value(i));
    }
    store.record_module_features(0xFEA7, feats(3));
    store.save().unwrap();
    assert!(path.is_dir(), "v4 store is a directory");

    let mut reloaded = FitnessStore::load(&path);
    assert_eq!(reloaded.len(), 20);
    assert_eq!(reloaded.report().valid_records, 21);
    assert_eq!(reloaded.report().dropped_bytes, 0);
    for i in 0..20 {
        let got = reloaded.get(&key(i)).unwrap();
        assert_eq!(got.fitness.to_bits(), value(i).fitness.to_bits());
        assert_eq!(got.failed, value(i).failed);
        assert_eq!(got.flags, value(i).flags);
        assert_eq!(got.flags.to_bools().len(), 140);
    }
    assert_eq!(reloaded.get(&key(99)), None);
    assert_eq!(reloaded.module_features(0xFEA7), Some(feats(3)));
    assert_eq!(reloaded.module_features(0xDEAD), None);
    cleanup(&path);
}

#[test]
fn shards_load_lazily_on_first_touch() {
    let path = scratch("lazy");
    let mut store = FitnessStore::load(&path);
    for i in 0..40 {
        store.insert(key(i), value(i));
    }
    store.save().unwrap();

    let mut reloaded = FitnessStore::load(&path);
    assert_eq!(reloaded.shards_loaded(), 0, "manifest load touched shards");
    let probe = key(0);
    assert!(reloaded.get(&probe).is_some());
    assert_eq!(
        reloaded.shards_loaded(),
        1,
        "a get materialized more than its own shard"
    );
    // Re-probing the same shard loads nothing new.
    assert!(reloaded.get(&probe).is_some());
    assert_eq!(reloaded.shards_loaded(), 1);
    // A full scan materializes everything.
    assert_eq!(reloaded.len(), 40);
    assert_eq!(reloaded.shards_loaded(), DEFAULT_SHARD_COUNT);
    cleanup(&path);
}

#[test]
fn flag_bits_round_trip_and_bounds() {
    let v: Vec<bool> = (0..137).map(|i| i % 5 == 0).collect();
    let bits = FlagBits::from_bools(&v);
    assert_eq!(bits.len(), 137);
    assert_eq!(bits.to_bools(), v);
    assert!(!bits.get(500), "out of range reads false");

    assert!(FlagBits::from_bools(&[]).is_empty());
    let too_wide = vec![true; MAX_STORED_FLAGS + 1];
    assert!(FlagBits::from_bools(&too_wide).is_empty());
    let exactly = vec![true; MAX_STORED_FLAGS];
    assert_eq!(FlagBits::from_bools(&exactly).to_bools(), exactly);
}

#[test]
fn appends_accumulate_across_runs() {
    let path = scratch("append");
    let mut first = FitnessStore::load(&path);
    first.insert(key(1), value(1));
    first.save().unwrap();
    assert_eq!(disk_records(&path), 1);

    let mut second = FitnessStore::load(&path);
    assert_eq!(second.len(), 1);
    second.insert(key(2), value(2));
    // Re-inserting an identical entry must not grow the log.
    second.insert(key(1), value(1));
    assert_eq!(second.pending_len(), 1);
    second.save().unwrap();
    assert_eq!(disk_records(&path), 2);
    assert_eq!(FitnessStore::load(&path).len(), 2);
    cleanup(&path);
}

#[test]
fn unchanged_module_features_do_not_grow_the_log() {
    let path = scratch("feat_noop");
    let mut first = FitnessStore::load(&path);
    first.record_module_features(7, feats(1));
    first.save().unwrap();
    assert_eq!(disk_records(&path), 1);

    let mut second = FitnessStore::load(&path);
    second.record_module_features(7, feats(1));
    assert_eq!(second.pending_len(), 0);
    second.save().unwrap();
    assert_eq!(disk_records(&path), 1);

    // Changed features do append (and win on reload).
    let mut third = FitnessStore::load(&path);
    third.record_module_features(7, feats(9));
    third.save().unwrap();
    assert_eq!(FitnessStore::load(&path).module_features(7), Some(feats(9)));
    cleanup(&path);
}

#[test]
fn truncated_shard_keeps_valid_prefix() {
    // A single shard makes the byte arithmetic exact, like the old
    // single-file test (the every-boundary sweep lives in the torture
    // harness).
    let path = scratch("truncated");
    let mut store = FitnessStore::load_with_shard_count(&path, 1);
    for i in 0..5 {
        store.insert(key(i), value(i));
    }
    store.save().unwrap();
    // Tear the last record: a torn append loses only the tail.
    let shard_file = path.join("shard-00.log");
    let bytes = fs::read(&shard_file).unwrap();
    fs::write(&shard_file, &bytes[..bytes.len() - 10]).unwrap();

    let mut recovered = FitnessStore::load(&path);
    assert_eq!(recovered.len(), 4);
    assert_eq!(recovered.report().dropped_bytes, RECORD_LEN - 10);
    // The next save rewrites a clean shard rather than appending after
    // the torn tail.
    recovered.insert(key(9), value(9));
    recovered.save().unwrap();
    let mut clean = FitnessStore::load(&path);
    assert_eq!(clean.len(), 5);
    assert_eq!(clean.report().dropped_bytes, 0);
    cleanup(&path);
}

#[test]
fn save_after_torn_append_truncates_and_appends_cleanly() {
    // The documented cost of the compound race the rename-based lock
    // claim leaves open (see `StoreLock::acquire`): two writers both
    // believe they hold one shard and their appends interleave, the
    // loser's torn. Pin that this degrades exactly to the
    // corruption-tolerant load — whole duplicate records dedup, the
    // torn tail drops, the next save rewrites a clean shard — and
    // never to a wedge or a load failure.
    use std::io::Write as _;
    let path = scratch("lost_race");
    let mut store = FitnessStore::load_with_shard_count(&path, 1);
    for i in 0..4 {
        store.insert(key(i), value(i));
    }
    store.save().unwrap();
    let shard_file = path.join("shard-00.log");
    // The lost racer's unlocked append: one whole record (a duplicate
    // of an existing entry) followed by a half record — the worst
    // interleaving a momentary double-hold can produce.
    let bytes = fs::read(&shard_file).unwrap();
    let start = SHARD_HEADER_LEN;
    let one_record = &bytes[start..start + RECORD_LEN];
    let mut f = fs::OpenOptions::new()
        .append(true)
        .open(&shard_file)
        .unwrap();
    f.write_all(one_record).unwrap();
    f.write_all(&one_record[..RECORD_LEN / 2]).unwrap();
    drop(f);

    let mut recovered = FitnessStore::load(&path);
    assert_eq!(recovered.len(), 4, "duplicate dedups, torn tail drops");
    assert_eq!(recovered.report().dropped_bytes, RECORD_LEN / 2);
    // The surviving writer keeps functioning: its next save compacts
    // the damage away and the lock protocol cycles on the repaired
    // shard (the lock file is gone after a successful save).
    recovered.insert(key(8), value(8));
    assert_eq!(recovered.save().unwrap(), SaveOutcome::Written);
    assert!(!StoreLock::lock_path(&shard_file).exists());
    let mut clean = FitnessStore::load(&path);
    assert_eq!(clean.len(), 5);
    assert_eq!(clean.report().dropped_bytes, 0);
    cleanup(&path);
}

#[test]
fn checksum_corruption_drops_damaged_suffix() {
    let path = scratch("corrupt");
    let mut store = FitnessStore::load_with_shard_count(&path, 1);
    for i in 0..6 {
        store.insert(key(i), value(i));
    }
    store.save().unwrap();
    let shard_file = path.join("shard-00.log");
    let mut bytes = fs::read(&shard_file).unwrap();
    // Flip one payload byte in the third record.
    bytes[SHARD_HEADER_LEN + 2 * RECORD_LEN + 5] ^= 0xFF;
    fs::write(&shard_file, &bytes).unwrap();

    let mut recovered = FitnessStore::load(&path);
    assert_eq!(recovered.len(), 2);
    assert!(recovered.report().dropped_bytes > 0);
    cleanup(&path);
}

#[test]
fn foreign_shard_header_is_a_cold_shard() {
    let path = scratch("foreign_shard");
    let mut store = FitnessStore::load_with_shard_count(&path, 2);
    for i in 0..8 {
        store.insert(key(i), value(i));
    }
    store.save().unwrap();
    let n_in_00 = {
        let mut s = FitnessStore::load(&path);
        s.len();
        s.shard_entry_counts()[0]
    };
    assert!(n_in_00 > 0, "test premise: shard 0 holds something");
    // A shard file moved in from a different-geometry store fails its
    // header check: that shard cold-starts, the rest are untouched.
    fs::write(path.join("shard-00.log"), b"BTFS????not ours").unwrap();
    let mut recovered = FitnessStore::load(&path);
    assert_eq!(recovered.len(), 8 - n_in_00);
    assert!(recovered.report().version_mismatch || recovered.report().malformed_header);
    // The next save heals the cold shard wholesale.
    recovered.insert(key(0), value(0));
    recovered.save().unwrap();
    let mut healed = FitnessStore::load(&path);
    assert_eq!(healed.len(), 8 - n_in_00 + 1);
    cleanup(&path);
}

#[test]
fn v3_single_file_migrates_losslessly() {
    let path = scratch("v3_migrate");
    let entries: Vec<_> = (0..24).map(|i| (key(i), value(i))).collect();
    let features = vec![(0xFEA7u64, feats(3)), (0xFEA8, feats(4))];
    write_v3_file(&path, &entries, &features).unwrap();

    // Load: every record is kept and counted; the path is still a file.
    let mut store = FitnessStore::load(&path);
    assert_eq!(store.report().valid_records, 26);
    assert_eq!(store.report().dropped_bytes, 0);
    assert!(!store.report().version_mismatch);
    assert_eq!(store.len(), 24);
    assert!(path.is_file());
    for (k, v) in &entries {
        assert_eq!(store.get(k).unwrap().fitness.to_bits(), v.fitness.to_bits());
    }
    assert_eq!(store.module_features(0xFEA7), Some(feats(3)));

    // Save: the file becomes the sharded directory, transparently.
    store.insert(key(100), value(100));
    store.save().unwrap();
    assert!(path.is_dir());
    let mut migrated = FitnessStore::load(&path);
    assert_eq!(migrated.len(), 25);
    for (k, v) in &entries {
        assert_eq!(
            migrated.get(k).unwrap().fitness.to_bits(),
            v.fitness.to_bits()
        );
    }
    assert_eq!(migrated.module_features(0xFEA8), Some(feats(4)));
    // No migration droppings.
    let mut stage = path.as_os_str().to_owned();
    stage.push(".migrate");
    assert!(!PathBuf::from(stage).exists());
    cleanup(&path);
}

#[test]
fn v3_migration_preserves_record_ages() {
    let path = scratch("v3_ages");
    let mut old = value(1);
    old.generation = 2;
    write_v3_file(&path, &[(key(1), old)], &[]).unwrap();

    let mut store = FitnessStore::load(&path);
    assert_eq!(store.generation(), 3, "v3 rule: max(stored) + 1");
    store.insert(key(2), value(2));
    store.save().unwrap();

    let mut migrated = FitnessStore::load(&path);
    assert_eq!(migrated.get(&key(1)).unwrap().generation, 2);
    assert_eq!(migrated.get(&key(2)).unwrap().generation, 3);
    assert_eq!(migrated.generation(), 4);
    cleanup(&path);
}

#[test]
fn version_mismatch_is_a_cold_start() {
    let path = scratch("version");
    // A hypothetical v5 single file: not migratable, cold start.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    bytes.extend_from_slice(&[0xAB; 70]);
    fs::write(&path, &bytes).unwrap();

    let mut store = FitnessStore::load(&path);
    assert!(store.is_empty());
    assert!(store.report().version_mismatch);
    // Saving replaces the stale file with a current-version directory.
    store.insert(key(3), value(3));
    store.save().unwrap();
    assert!(path.is_dir());
    let mut reloaded = FitnessStore::load(&path);
    assert!(!reloaded.report().version_mismatch);
    assert_eq!(reloaded.len(), 1);
    cleanup(&path);
}

#[test]
fn garbage_file_is_a_cold_start() {
    let path = scratch("garbage");
    fs::write(&path, b"definitely not a fitness store").unwrap();
    let mut store = FitnessStore::load(&path);
    assert!(store.is_empty());
    assert!(store.report().malformed_header);
    cleanup(&path);
}

#[test]
fn damaged_manifest_recovers_from_shard_files() {
    let path = scratch("manifest");
    let mut store = FitnessStore::load_with_shard_count(&path, 4);
    for i in 0..12 {
        store.insert(key(i), value(i));
    }
    store.save().unwrap();
    fs::write(path.join("manifest"), b"scribble").unwrap();

    let mut recovered = FitnessStore::load(&path);
    assert!(recovered.report().malformed_header);
    assert_eq!(recovered.shard_count(), 4, "geometry not recovered");
    assert_eq!(recovered.len(), 12, "records lost with the manifest");
    // The next save heals the manifest.
    recovered.save().unwrap();
    let mut healed = FitnessStore::load(&path);
    assert!(!healed.report().malformed_header);
    assert_eq!(healed.len(), 12);
    cleanup(&path);
}

#[test]
fn per_shard_compaction_shrinks_a_log_dominated_by_dead_records() {
    let path = scratch("compact");
    // Overwrite the same key with changing values across many saves:
    // its shard accumulates dead records until compaction rewrites it.
    for round in 0..(shard::COMPACT_MIN_RECORDS as u64 + 8) {
        let mut store = FitnessStore::load(&path);
        store.insert(key(0), StoredFitness::new(round as f64, false));
        store.record_module_features(0xC0, feats(0));
        store.save().unwrap();
    }
    let mut final_store = FitnessStore::load(&path);
    assert_eq!(final_store.len(), 1);
    assert_eq!(final_store.module_features(0xC0), Some(feats(0)));
    assert!(
        disk_records(&path) < shard::COMPACT_MIN_RECORDS / 2,
        "shard never compacted: {} records",
        disk_records(&path)
    );
    // Atomic rewrite leaves no temp droppings.
    for entry in fs::read_dir(&path).unwrap().flatten() {
        assert!(
            !entry.file_name().to_str().unwrap().ends_with(".tmp"),
            "tmp dropping: {:?}",
            entry.file_name()
        );
    }
    cleanup(&path);
}

#[test]
fn explicit_compaction_is_per_shard() {
    let path = scratch("compact_one");
    let mut store = FitnessStore::load_with_shard_count(&path, 4);
    for i in 0..32 {
        store.insert(key(i), value(i));
    }
    store.save().unwrap();

    let mut store = FitnessStore::load(&path);
    let before: Vec<u64> = (0..4)
        .map(|i| fs::metadata(path.join(format!("shard-{i:02}.log"))).map_or(0, |m| m.len()))
        .collect();
    assert_eq!(store.compact_shard(1).unwrap(), SaveOutcome::Written);
    let after: Vec<u64> = (0..4)
        .map(|i| fs::metadata(path.join(format!("shard-{i:02}.log"))).map_or(0, |m| m.len()))
        .collect();
    // Only shard 1's file was touched (all-live shards keep their size).
    assert_eq!(before[0], after[0]);
    assert_eq!(before[2], after[2]);
    assert_eq!(before[3], after[3]);
    assert_eq!(before[1], after[1], "all-live compaction changed content");
    assert_eq!(FitnessStore::load(&path).len(), 32);
    cleanup(&path);
}

#[test]
fn in_memory_store_save_is_a_noop() {
    let mut store = FitnessStore::in_memory();
    store.insert(key(1), value(1));
    assert_eq!(store.save().unwrap(), SaveOutcome::Written);
    assert_eq!(store.pending_len(), 0);
    assert_eq!(store.len(), 1);
    assert!(store.path().is_none());
}

#[test]
fn generation_advances_one_per_load_save_cycle() {
    let path = scratch("generation");
    // Run 0: fresh store stamps generation 0.
    let mut run0 = FitnessStore::load(&path);
    assert_eq!(run0.generation(), 0);
    run0.insert(key(0), value(0));
    run0.save().unwrap();
    // Run 1: the manifest carries the next generation; old records keep
    // their age.
    let mut run1 = FitnessStore::load(&path);
    assert_eq!(run1.generation(), 1);
    run1.insert(key(1), value(1));
    // Re-inserting an identical value must NOT refresh its age.
    run1.insert(key(0), value(0));
    run1.save().unwrap();

    let mut run2 = FitnessStore::load(&path);
    assert_eq!(run2.generation(), 2);
    assert_eq!(run2.get(&key(0)).unwrap().generation, 0);
    assert_eq!(run2.get(&key(1)).unwrap().generation, 1);
    // A caller-supplied generation is overwritten by the stamp.
    run2.insert(
        key(7),
        StoredFitness {
            generation: 999,
            ..value(7)
        },
    );
    assert_eq!(run2.get(&key(7)).unwrap().generation, 2);
    run2.save().unwrap();
    // A save with no fitness written does not burn a generation.
    let mut idle = FitnessStore::load(&path);
    assert_eq!(idle.generation(), 3);
    idle.save().unwrap();
    assert_eq!(FitnessStore::load(&path).generation(), 3);
    cleanup(&path);
}

#[test]
fn contended_whole_store_lock_degrades_migration_to_a_skip() {
    let path = scratch("locked");
    let mut store = FitnessStore::load(&path);
    store.insert(key(1), value(1));

    let held = StoreLock::acquire(&path).unwrap().expect("lock free");
    // A second acquire (same path, lock held by a live pid — ours)
    // reports busy instead of stealing.
    assert!(StoreLock::acquire(&path).unwrap().is_none());
    assert_eq!(store.save().unwrap(), SaveOutcome::SkippedLocked);
    // Nothing reached disk; the pending queue survived for a retry.
    assert!(!path.exists());
    assert_eq!(store.pending_len(), 1);

    drop(held);
    assert_eq!(store.save().unwrap(), SaveOutcome::Written);
    assert_eq!(store.pending_len(), 0);
    assert_eq!(FitnessStore::load(&path).len(), 1);
    // The lock file does not outlive the save.
    assert!(!StoreLock::lock_path(&path).exists());
    cleanup(&path);
}

#[test]
fn contended_shard_lock_skips_only_that_shard() {
    let path = scratch("shard_locked");
    FitnessStore::load(&path).save().unwrap(); // nothing yet
    let mut store = FitnessStore::load(&path);
    store.insert(key(1), value(1));
    store.save().unwrap(); // directory now exists

    let mut writer = FitnessStore::load(&path);
    // Two keys routed to two different shards.
    let (a, b) = {
        let mut ks = (0..64).map(key);
        let a = ks.next().unwrap();
        let b = ks
            .find(|k| shard_for(k, writer.shard_count()) != shard_for(&a, writer.shard_count()))
            .expect("two keys in one shard across 64 tries");
        (a, b)
    };
    writer.insert(a, value(50));
    writer.insert(b, value(51));

    let a_file = path.join(format!(
        "shard-{:02}.log",
        shard_for(&a, DEFAULT_SHARD_COUNT)
    ));
    let held = StoreLock::acquire(&a_file).unwrap().expect("lock free");
    assert_eq!(writer.save().unwrap(), SaveOutcome::SkippedLocked);
    // b's shard was written despite a's being locked.
    let mut readback = FitnessStore::load(&path);
    assert!(readback.get(&b).is_some(), "unlocked shard was not written");
    assert!(readback.get(&a).is_none(), "locked shard was written");
    assert_eq!(writer.pending_len(), 1, "skipped shard lost its pending");

    drop(held);
    assert_eq!(writer.save().unwrap(), SaveOutcome::Written);
    assert!(FitnessStore::load(&path).get(&a).is_some());
    cleanup(&path);
}

#[test]
fn stale_lock_of_a_dead_process_is_reclaimed() {
    let path = scratch("stale_lock");
    // No live process has this pid (pid_max is far below u32::MAX).
    fs::write(StoreLock::lock_path(&path), b"4294967294").unwrap();
    let mut store = FitnessStore::load(&path);
    store.insert(key(2), value(2));
    assert_eq!(store.save().unwrap(), SaveOutcome::Written);
    assert_eq!(FitnessStore::load(&path).len(), 1);
    assert!(!StoreLock::lock_path(&path).exists());

    // An *empty* lock file on a shard — an acquire killed between create
    // and pid write — is a torn lock with no identifiable owner:
    // reclaimed, not a permanent wedge.
    let shard_file = path.join(format!(
        "shard-{:02}.log",
        shard_for(&key(3), DEFAULT_SHARD_COUNT)
    ));
    fs::write(StoreLock::lock_path(&shard_file), b"").unwrap();
    store.insert(key(3), value(3));
    assert_eq!(store.save().unwrap(), SaveOutcome::Written);
    assert!(!StoreLock::lock_path(&shard_file).exists());

    // A lock file with garbled non-empty content is foreign: left alone.
    let shard4 = path.join(format!(
        "shard-{:02}.log",
        shard_for(&key(4), DEFAULT_SHARD_COUNT)
    ));
    fs::write(StoreLock::lock_path(&shard4), b"not a pid").unwrap();
    store.insert(key(4), value(4));
    assert_eq!(store.save().unwrap(), SaveOutcome::SkippedLocked);
    fs::remove_file(StoreLock::lock_path(&shard4)).unwrap();
    cleanup(&path);
}

#[test]
fn drain_pending_fitness_reroutes_results_away_from_save() {
    let path = scratch("drain");
    let mut client_side = FitnessStore::in_memory();
    client_side.insert(key(1), value(1));
    client_side.insert(key(2), value(2));
    client_side.record_module_features(0xF, feats(1));
    let drained = client_side.drain_pending_fitness();
    assert_eq!(drained.len(), 2);
    // Insertion order is restored across shards.
    assert_eq!(drained[0].0, key(1));
    assert_eq!(drained[1].0, key(2));
    assert_eq!(client_side.pending_len(), 0);
    assert_eq!(client_side.drain_pending_fitness(), vec![]);
    // The in-memory map still serves lookups (client-side cache).
    assert!(client_side.get(&key(1)).is_some());

    // Server side: draining into a real store persists exactly the
    // shipped records (single-writer merge path).
    let mut server_side = FitnessStore::load(&path);
    for (k, v) in drained {
        server_side.insert(k, v);
    }
    server_side.save().unwrap();
    assert_eq!(FitnessStore::load(&path).len(), 2);
    cleanup(&path);
}
