//! Shard routing and the on-disk log format.
//!
//! One v4 store directory holds `shard-NN.log` files, each an
//! append-only log of the same fixed-size checksummed records the v3
//! single-file format used — only the 8-byte file header grew into a
//! 12-byte shard header that also names the shard's index and the
//! store's shard count, so a file moved between stores of different
//! geometry is detected instead of misread.
//!
//! Routing is a pure function of the key over [`minicc::StableHasher`]
//! (FNV-1a with an explicit canonical encoding) — **not** a std hasher,
//! which is process-seeded: the same key must land in the same shard
//! across runs, platforms, and the v3→v4 migration, or a warm store
//! would silently cold-start.

use super::index::ShardIndex;
use super::{
    FlagBits, PendingRecord, StoreKey, StoredFitness, FLAG_BYTES, FORMAT_VERSION, MAGIC,
    MAX_STORED_FLAGS,
};
use bytes::BufMut;
use minicc::fnv1a32 as checksum;
use minicc::{ModuleFeatures, StableHasher};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// v3 single-file header: magic + format version.
pub(super) const V3_HEADER_LEN: usize = 8;
/// v4 shard file header: magic + format version + shard index (u16) +
/// shard count (u16).
pub(super) const SHARD_HEADER_LEN: usize = 12;
/// Tagged record payload: 1 tag byte + 65 body bytes (the fitness body:
/// module_hash(8) + compiler(1) + arch(1) + digest(16) + fitness(8) +
/// failed(1) + n_flags(2) + flag bitmap(24) + generation(4); the
/// features body is shorter and zero-padded to the same width), plus a
/// 4-byte FNV-1a checksum. Unchanged from v3.
pub(super) const RECORD_BODY_LEN: usize = 65;
pub(super) const RECORD_PAYLOAD_LEN: usize = 1 + RECORD_BODY_LEN;
pub(super) const RECORD_LEN: usize = RECORD_PAYLOAD_LEN + 4;
/// Compaction floor per shard: below this many disk records, dead
/// entries are not worth a rewrite.
pub(super) const COMPACT_MIN_RECORDS: usize = 64;

pub(super) const TAG_FITNESS: u8 = 0;
pub(super) const TAG_MODULE_FEATURES: u8 = 1;

// The features body (module_hash + N u32 counts) must fit the fixed
// record body; growing ModuleFeatures::N past this is a format change.
const _: () = assert!(8 + 4 * ModuleFeatures::N <= RECORD_BODY_LEN);

/// Domain seed for shard routing (distinct from every digest seed so a
/// routing hash can never alias a content hash).
const SHARD_SEED: u64 = 0x0053_4841_5244; // "SHARD"

/// The shard a fitness key routes to — a pure function of the key and
/// the shard count, stable across runs, platforms, and migration.
pub fn shard_for(key: &StoreKey, shard_count: usize) -> usize {
    let mut h = StableHasher::with_seed(SHARD_SEED);
    h.write_u64(key.module_hash);
    h.write_u8(key.compiler);
    h.write_u8(key.arch);
    h.write_u64((key.effect_digest >> 64) as u64);
    h.write_u64(key.effect_digest as u64);
    (h.finish() % shard_count.max(1) as u64) as usize
}

/// The shard a module's features record routes to. Keyed by module hash
/// alone (features have no effect digest), same seed and discipline as
/// [`shard_for`].
pub fn shard_for_module(module_hash: u64, shard_count: usize) -> usize {
    let mut h = StableHasher::with_seed(SHARD_SEED);
    h.write_u64(module_hash);
    (h.finish() % shard_count.max(1) as u64) as usize
}

/// `shard-NN.log` inside the store directory.
pub(super) fn shard_path(dir: &Path, idx: usize) -> PathBuf {
    dir.join(format!("shard-{idx:02}.log"))
}

fn shard_header(idx: usize, shard_count: usize) -> [u8; SHARD_HEADER_LEN] {
    let mut h = [0u8; SHARD_HEADER_LEN];
    h[..4].copy_from_slice(&MAGIC);
    h[4..8].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h[8..10].copy_from_slice(&(idx as u16).to_le_bytes());
    h[10..12].copy_from_slice(&(shard_count as u16).to_le_bytes());
    h
}

/// Parse one shard file's bytes. Never fails: a foreign header is a
/// cold shard (rewritten on save), a damaged tail is dropped while the
/// valid prefix is kept.
pub(super) fn parse_shard(bytes: &[u8], idx: usize, shard_count: usize) -> ShardIndex {
    let mut shard = ShardIndex::default();
    if bytes.len() < SHARD_HEADER_LEN || bytes[..SHARD_HEADER_LEN] != shard_header(idx, shard_count)
    {
        // Distinguish "wrong version" from "not ours at all" for the
        // report, but both degrade identically.
        if bytes.len() >= 8 && bytes[..4] == MAGIC {
            shard.report.version_mismatch = true;
        } else {
            shard.report.malformed_header = true;
        }
        shard.report.dropped_bytes = bytes.len();
        shard.needs_rewrite = true;
        return shard;
    }
    let consumed = parse_records(&bytes[SHARD_HEADER_LEN..], &mut shard);
    shard.report.valid_records = shard.disk_records;
    if SHARD_HEADER_LEN + consumed != bytes.len() {
        // Truncated or corrupt tail: appending after it would misalign
        // every future record, so force a rewrite.
        shard.report.dropped_bytes = bytes.len() - SHARD_HEADER_LEN - consumed;
        shard.needs_rewrite = true;
    }
    shard
}

/// Decode checksummed records into `shard` until the bytes run out or a
/// record fails its checksum/tag check. Returns the bytes consumed.
fn parse_records(bytes: &[u8], shard: &mut ShardIndex) -> usize {
    let mut off = 0;
    while off + RECORD_LEN <= bytes.len() {
        let payload = &bytes[off..off + RECORD_PAYLOAD_LEN];
        let stored = u32::from_le_bytes(
            bytes[off + RECORD_PAYLOAD_LEN..off + RECORD_LEN]
                .try_into()
                .unwrap(),
        );
        if checksum(payload) != stored || !decode_record(payload, shard) {
            break;
        }
        shard.disk_records += 1;
        off += RECORD_LEN;
    }
    off
}

/// Decode one checksum-verified payload. Returns false for an unknown
/// tag (treated as a corrupt tail — same-version files only ever carry
/// known tags).
fn decode_record(payload: &[u8], shard: &mut ShardIndex) -> bool {
    let body = &payload[1..];
    match payload[0] {
        TAG_FITNESS => {
            let (key, value) = decode_fitness(body);
            shard.entries.insert(key, value);
            true
        }
        TAG_MODULE_FEATURES => {
            let (hash, feats) = decode_features(body);
            shard.features.insert(hash, feats);
            true
        }
        _ => false,
    }
}

/// Load one shard from disk. A missing file is an empty shard (clean —
/// shards materialize on first write).
pub(super) fn load_shard(dir: &Path, idx: usize, shard_count: usize) -> ShardIndex {
    match fs::read(shard_path(dir, idx)) {
        Ok(bytes) => parse_shard(&bytes, idx, shard_count),
        Err(_) => {
            let mut shard = ShardIndex::default();
            shard.report.missing = true;
            shard
        }
    }
}

/// Flush one shard's pending records to its log file. The caller holds
/// the shard's [`super::StoreLock`].
///
/// Fast path: one appended `write_all`. The file is rewritten wholesale
/// — to a temp file, then atomically `rename`d into place — when it was
/// corrupt/missing or when dead records make compaction worthwhile.
/// `force_rewrite` is the public compaction hook and the migration
/// path.
///
/// The rewrite **re-reads the file under the lock and merges** before
/// writing: a record appended by another process since our load is
/// preserved (disk wins for keys we did not re-insert ourselves), so
/// per-shard compaction can run concurrently with writers of the same
/// store without losing records.
pub(super) fn save_shard(
    dir: &Path,
    idx: usize,
    shard_count: usize,
    shard: &mut ShardIndex,
    force_rewrite: bool,
) -> std::io::Result<()> {
    let path = shard_path(dir, idx);
    let future_records = shard.disk_records + shard.pending.len();
    let compact = force_rewrite
        || shard.needs_rewrite
        || !path.exists()
        || (future_records >= COMPACT_MIN_RECORDS && shard.live() * 2 <= future_records);
    if compact {
        rewrite_shard(&path, idx, shard_count, shard)
    } else {
        append_shard(&path, shard)
    }
}

fn rewrite_shard(
    path: &Path,
    idx: usize,
    shard_count: usize,
    shard: &mut ShardIndex,
) -> std::io::Result<()> {
    // Merge under the lock: fresh disk state, overlaid with our own
    // entries for keys the disk lacks, overlaid with our pending
    // inserts (ours are the newest values for those keys).
    let mut merged = match fs::read(path) {
        Ok(bytes) => parse_shard(&bytes, idx, shard_count),
        Err(_) => ShardIndex::default(),
    };
    for (key, value) in &shard.entries {
        merged.entries.entry(*key).or_insert(*value);
    }
    for (hash, feats) in &shard.features {
        merged.features.entry(*hash).or_insert(*feats);
    }
    for (_, rec) in &shard.pending {
        match rec {
            PendingRecord::Fitness(key, value) => {
                merged.entries.insert(*key, *value);
            }
            PendingRecord::Features(hash, feats) => {
                merged.features.insert(*hash, *feats);
            }
        }
    }

    let mut buf: Vec<u8> = Vec::with_capacity(SHARD_HEADER_LEN + merged.live() * RECORD_LEN);
    buf.put_slice(&shard_header(idx, shard_count));
    for (&hash, feats) in &merged.features {
        encode_features_record(hash, feats, &mut buf);
    }
    for (key, value) in &merged.entries {
        encode_fitness_record(key, value, &mut buf);
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, &buf)?;
    fs::rename(&tmp, path)?;

    shard.entries = merged.entries;
    shard.features = merged.features;
    shard.disk_records = shard.live();
    shard.pending.clear();
    shard.needs_rewrite = false;
    Ok(())
}

fn append_shard(path: &Path, shard: &mut ShardIndex) -> std::io::Result<()> {
    let mut buf: Vec<u8> = Vec::with_capacity(shard.pending.len() * RECORD_LEN);
    for (_, rec) in &shard.pending {
        match rec {
            PendingRecord::Fitness(key, value) => encode_fitness_record(key, value, &mut buf),
            PendingRecord::Features(hash, feats) => encode_features_record(*hash, feats, &mut buf),
        }
    }
    let mut file = fs::OpenOptions::new().append(true).open(path)?;
    file.write_all(&buf)?;
    shard.disk_records += shard.pending.len();
    shard.pending.clear();
    Ok(())
}

// ---------------------------------------------------------------------
// v3 single-file compatibility: the migration parser, and a writer kept
// for the differential fixtures that pin sharded ≡ single-file
// semantics.
// ---------------------------------------------------------------------

/// Parse a v3 single-file store. Same never-fail contract as the shard
/// parser; records land in one flat index for the caller to distribute
/// by [`shard_for`].
pub(super) fn parse_v3(bytes: &[u8]) -> ShardIndex {
    let mut flat = ShardIndex {
        needs_rewrite: true, // a v3 file is always restructured on save
        ..ShardIndex::default()
    };
    if bytes.len() < V3_HEADER_LEN || bytes[..4] != MAGIC {
        flat.report.malformed_header = true;
        flat.report.dropped_bytes = bytes.len();
        return flat;
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != 3 {
        flat.report.version_mismatch = true;
        flat.report.dropped_bytes = bytes.len();
        return flat;
    }
    let consumed = parse_records(&bytes[V3_HEADER_LEN..], &mut flat);
    flat.report.valid_records = flat.disk_records;
    if V3_HEADER_LEN + consumed != bytes.len() {
        flat.report.dropped_bytes = bytes.len() - V3_HEADER_LEN - consumed;
    }
    flat
}

/// Write a v3-format single-file store. A test/differential fixture
/// seam (the live format is v4): it lets the suite construct legacy
/// stores byte-for-byte like a v3 writer would and pin that migration
/// is lossless and shard assignment is stable.
pub fn write_v3_file(
    path: &Path,
    entries: &[(StoreKey, StoredFitness)],
    features: &[(u64, ModuleFeatures)],
) -> std::io::Result<()> {
    let mut buf: Vec<u8> = Vec::new();
    buf.put_slice(&MAGIC);
    buf.put_u32_le(3);
    for (hash, feats) in features {
        encode_features_record(*hash, feats, &mut buf);
    }
    for (key, value) in entries {
        encode_fitness_record(key, value, &mut buf);
    }
    fs::write(path, &buf)
}

// ---------------------------------------------------------------------
// Record encoding (shared by v3 and v4 — byte-identical).
// ---------------------------------------------------------------------

/// Append the checksum over the record payload written since `start`,
/// after zero-padding the body to its fixed width.
fn finish_record(start: usize, out: &mut Vec<u8>) {
    while out.len() - start < RECORD_PAYLOAD_LEN {
        out.put_u8(0);
    }
    debug_assert_eq!(out.len() - start, RECORD_PAYLOAD_LEN);
    let ck = checksum(&out[start..]);
    out.put_u32_le(ck);
}

pub(super) fn encode_fitness_record(key: &StoreKey, value: &StoredFitness, out: &mut Vec<u8>) {
    let start = out.len();
    out.put_u8(TAG_FITNESS);
    out.put_u64_le(key.module_hash);
    out.put_u8(key.compiler);
    out.put_u8(key.arch);
    out.put_u64_le((key.effect_digest >> 64) as u64);
    out.put_u64_le(key.effect_digest as u64);
    out.put_u64_le(value.fitness.to_bits());
    out.put_u8(value.failed as u8);
    out.put_u16_le(value.flags.n);
    out.put_slice(&value.flags.bits);
    out.put_u32_le(value.generation);
    finish_record(start, out);
}

pub(super) fn encode_features_record(module_hash: u64, feats: &ModuleFeatures, out: &mut Vec<u8>) {
    let start = out.len();
    out.put_u8(TAG_MODULE_FEATURES);
    out.put_u64_le(module_hash);
    for &c in &feats.counts {
        out.put_u32_le(c);
    }
    finish_record(start, out);
}

fn decode_fitness(body: &[u8]) -> (StoreKey, StoredFitness) {
    let u64_at = |off: usize| u64::from_le_bytes(body[off..off + 8].try_into().unwrap());
    let key = StoreKey {
        module_hash: u64_at(0),
        compiler: body[8],
        arch: body[9],
        effect_digest: (u128::from(u64_at(10)) << 64) | u128::from(u64_at(18)),
    };
    let n = u16::from_le_bytes(body[35..37].try_into().unwrap());
    let mut flags = FlagBits {
        n: n.min(MAX_STORED_FLAGS as u16),
        bits: [0; FLAG_BYTES],
    };
    flags.bits.copy_from_slice(&body[37..37 + FLAG_BYTES]);
    let value = StoredFitness {
        fitness: f64::from_bits(u64_at(26)),
        failed: body[34] != 0,
        flags,
        generation: u32::from_le_bytes(body[37 + FLAG_BYTES..41 + FLAG_BYTES].try_into().unwrap()),
    };
    (key, value)
}

fn decode_features(body: &[u8]) -> (u64, ModuleFeatures) {
    let hash = u64::from_le_bytes(body[0..8].try_into().unwrap());
    let mut feats = ModuleFeatures::default();
    for (i, c) in feats.counts.iter_mut().enumerate() {
        let off = 8 + 4 * i;
        *c = u32::from_le_bytes(body[off..off + 4].try_into().unwrap());
    }
    (hash, feats)
}
