//! The compact in-memory index of one shard.
//!
//! A [`ShardIndex`] is what one shard's log file parses into: the live
//! key → fitness map, the per-module features recorded in that shard,
//! the records queued for the next save, and enough disk bookkeeping to
//! decide when compaction is worth a rewrite. The sharded store holds
//! one slot per shard and fills it lazily — a `get` only ever
//! materializes the index of the shard its key routes to.

use super::{LoadReport, PendingRecord, StoreKey, StoredFitness};
use minicc::ModuleFeatures;
use std::collections::HashMap;

/// In-memory state of one shard.
#[derive(Debug, Default)]
pub(super) struct ShardIndex {
    /// Live fitness entries whose keys route to this shard.
    pub entries: HashMap<StoreKey, StoredFitness>,
    /// Per-module shape features routed to this shard by module hash.
    pub features: HashMap<u64, ModuleFeatures>,
    /// Records inserted since the last save. The `u64` is a store-wide
    /// insertion sequence number so a cross-shard drain can restore the
    /// caller's insertion order exactly.
    pub pending: Vec<(u64, PendingRecord)>,
    /// Records currently in this shard's file, including dead
    /// (overwritten) ones. Advisory: a concurrent writer's appends are
    /// not counted until the next reload, which only delays compaction.
    pub disk_records: usize,
    /// This shard's file must be rewritten wholesale (corrupt/foreign
    /// content that cannot be appended to).
    pub needs_rewrite: bool,
    /// What loading this shard's file found.
    pub report: LoadReport,
}

impl ShardIndex {
    /// Live record count (fitness entries + features entries) — the
    /// numerator of the compaction heuristic.
    pub fn live(&self) -> usize {
        self.entries.len() + self.features.len()
    }

    /// Whether an insert of `value` under `key` would be a no-op (the
    /// stored fitness and failure bit already match bit-for-bit; the
    /// flag bitmap and generation are advisory metadata). No-op inserts
    /// never grow the log — and never refresh record ages, keeping the
    /// prior miner's decay honest.
    pub fn is_noop_insert(&self, key: &StoreKey, value: &StoredFitness) -> bool {
        self.entries.get(key).is_some_and(|v| {
            v.fitness.to_bits() == value.fitness.to_bits() && v.failed == value.failed
        })
    }

    /// Queued fitness records (features records piggyback on the save
    /// but are identity metadata, not results).
    pub fn pending_fitness(&self) -> usize {
        self.pending
            .iter()
            .filter(|(_, r)| matches!(r, PendingRecord::Fitness(..)))
            .count()
    }

    /// Fold another just-parsed index into this one (migration path:
    /// records parsed from a v3 single file get distributed into the
    /// shard their key routes to).
    pub fn absorb_entry(&mut self, key: StoreKey, value: StoredFitness) {
        self.entries.insert(key, value);
    }

    /// Features half of [`ShardIndex::absorb_entry`].
    pub fn absorb_features(&mut self, module_hash: u64, feats: ModuleFeatures) {
        self.features.insert(module_hash, feats);
    }
}
