//! Persistent cross-run fitness store — paper Figure 4's server-side
//! database, "stored for future exploration".
//!
//! BinTuner records every compiled variant's fitness in a database so
//! that re-tuning the same target starts warm. Since format version 4
//! that database is a **sharded directory**, not a single file:
//!
//! * **Key** — `(module content hash, compiler profile, arch,
//!   effect-config digest)`: exactly the tuple the emitted binary is a
//!   pure function of. All components come from `minicc`'s stable
//!   canonical hashing ([`minicc::StableHasher`]), never from `std`'s
//!   process-seeded hashers, so keys survive restarts.
//! * **Sharded layout** — the store path is a directory holding a
//!   checksummed `manifest` (shard count + generation) and
//!   [`DEFAULT_SHARD_COUNT`] append-only `shard-NN.log` files. A key
//!   routes to its shard by a stable hash ([`shard_for`]); each shard
//!   carries its own compact in-memory index, loaded lazily on first
//!   touch, and its own [`StoreLock`], so compacting one shard never
//!   stops readers or writers of any other shard.
//! * **Minable records** — besides the fitness itself, each record
//!   carries the *representative flag vector* that produced it (as a
//!   fixed-width bitmap, [`FlagBits`]), and the store additionally keeps
//!   one [`ModuleFeatures`] record per module. Together these are what
//!   `bintuner::priors` mines into per-flag potency priors and
//!   cross-module config transfer — the paper's "future exploration" —
//!   without needing the original sources at mining time.
//! * **Append-only logs + per-shard compaction** — each run appends only
//!   the configurations it actually compiled, as fixed-size checksummed
//!   records, one `write_all` per touched shard. When dead records
//!   dominate a shard, that shard alone is compacted: its live set is
//!   rewritten to a sibling temp file and atomically `rename`d — after
//!   re-reading the log under the shard lock, so records appended by a
//!   concurrent process are merged, never lost.
//! * **Corruption tolerance** — loading never fails and never panics: a
//!   bad magic/version yields a clean cold start (rewritten wholesale on
//!   the next save), a truncated or checksum-corrupt shard tail drops
//!   exactly the damaged suffix, and a damaged manifest is rebuilt from
//!   the shard files themselves. A torn append therefore loses at most
//!   the interrupted run's new entries in one shard.
//! * **v3 migration** — a single-file v3 store at the path is parsed
//!   losslessly on load (every valid record kept, count preserved in
//!   [`LoadReport`]) and restructured into the sharded directory on the
//!   next save, under a whole-store lock; the flip is staged in a
//!   sibling directory and `rename`d so a crash mid-migration leaves
//!   either the old file or the complete new directory.
//! * **Generations** — every fitness record carries the store's
//!   monotonic generation at insertion time; the manifest records the
//!   generation the *next* load should stamp with. One load→save cycle
//!   is one generation, so `store.generation() − record.generation` is a
//!   record's age in runs — the input to the prior miner's age decay
//!   (`PriorConfig::decay_half_life`).
//!
//! The on-disk encoding is hand-rolled little-endian via the vendored
//! [`bytes::BufMut`] surface (the vendored `serde` is derive-markers
//! only — it has no serialization runtime), and is versioned: bump
//! [`FORMAT_VERSION`] whenever the record layout *or* any canonical hash
//! encoding changes, so stale files degrade to a cold start instead of
//! being misread. Version 2 added the flag bitmap and module-features
//! records; version 3 added the per-record generation counter; version 4
//! sharded the single file into the manifest + shard-log directory
//! (v3 files still load, one version back, via the migration path).
//!
//! Concurrency: one store value is owned by one tuning run at a time
//! (the engine wraps it in a `Mutex`), and *within* a service run the
//! evaluation server is the single writer per shard — clients only ship
//! results back. Two *processes* sharing one `cache_path` are
//! coordinated per shard by advisory lock files: the loser of a race
//! degrades to skipping that shard's save ([`SaveOutcome::SkippedLocked`],
//! surfaced through `PersistSummary`, pending kept for a retry), never
//! to interleaved writes.

mod artifact;
mod index;
mod lock;
mod shard;

pub use artifact::{
    ArtifactRetention, ArtifactStore, AstArtifactKey, LowerArtifactKey, PendingArtifacts,
};
pub use lock::StoreLock;
pub use shard::{shard_for, shard_for_module, write_v3_file};

use binrep::Arch;
use index::ShardIndex;
use minicc::fnv1a32 as checksum;
use minicc::{CompilerKind, ModuleFeatures};
use std::collections::HashSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// File magic: `BTFS` (BinTuner Fitness Store).
pub const MAGIC: [u8; 4] = *b"BTFS";

/// On-disk format version. Covers the directory/record layout *and* the
/// canonical encodings behind [`minicc::ast::Module::content_hash`],
/// [`minicc::EffectConfig::stable_digest`], and the
/// [`minicc::ModuleFeatures`] component meanings — a mismatch is a clean
/// cold start, never a misread. The sole exception is one version back:
/// a version-3 single file is migrated losslessly.
pub const FORMAT_VERSION: u32 = 4;

/// Widest flag vector a stored bitmap can represent. Both modelled
/// profiles are well under this; a hypothetical wider profile stores an
/// empty bitmap (the fitness entry itself is unaffected — only prior
/// mining skips it).
pub const MAX_STORED_FLAGS: usize = 192;

pub(crate) const FLAG_BYTES: usize = MAX_STORED_FLAGS / 8;

/// Shards in a newly created store. Existing directories keep whatever
/// geometry their manifest records.
pub const DEFAULT_SHARD_COUNT: usize = 16;

/// `manifest` file: magic + version + shard count + generation +
/// checksum, each u32 little-endian after the 4 magic bytes.
const MANIFEST_LEN: usize = 20;

/// The cache key a fitness result is filed under.
///
/// `compiler` and `arch` are stored as stable one-byte tags (see
/// [`CompilerKind::stable_id`]) rather than enums, so records written by
/// a future version with more variants load as never-matching keys
/// instead of failing to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoreKey {
    /// [`minicc::ast::Module::content_hash`] of the tuned module.
    pub module_hash: u64,
    /// [`CompilerKind::stable_id`] tag.
    pub compiler: u8,
    /// Stable architecture tag (see [`arch_tag`]).
    pub arch: u8,
    /// [`minicc::EffectConfig::stable_digest`] of the resolved config.
    pub effect_digest: u128,
}

impl StoreKey {
    /// Build a key from the typed components.
    pub fn new(module_hash: u64, compiler: CompilerKind, arch: Arch, effect_digest: u128) -> Self {
        StoreKey {
            module_hash,
            compiler: compiler.stable_id(),
            arch: arch_tag(arch),
            effect_digest,
        }
    }
}

/// Stable one-byte tag for an architecture — part of the on-disk format;
/// assignments must never be reordered or reused.
pub fn arch_tag(arch: Arch) -> u8 {
    match arch {
        Arch::X86 => 0,
        Arch::X8664 => 1,
        Arch::Arm => 2,
        Arch::Mips => 3,
    }
}

/// A fixed-width bitmap of a flag vector — the minable "which flags were
/// on" half of a stored fitness record.
///
/// Width-checked: the bitmap remembers how many flags the source vector
/// had, so a prior miner can reject records written against a different
/// profile width instead of misreading them.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct FlagBits {
    pub(crate) n: u16,
    pub(crate) bits: [u8; FLAG_BYTES],
}

impl FlagBits {
    /// The empty bitmap (no flag vector recorded).
    pub fn empty() -> FlagBits {
        FlagBits {
            n: 0,
            bits: [0; FLAG_BYTES],
        }
    }

    /// Capture a flag vector. Vectors wider than [`MAX_STORED_FLAGS`]
    /// cannot be represented and yield the empty bitmap (the caller's
    /// fitness entry is still stored; only mining skips it).
    pub fn from_bools(flags: &[bool]) -> FlagBits {
        if flags.is_empty() || flags.len() > MAX_STORED_FLAGS {
            return FlagBits::empty();
        }
        let mut out = FlagBits {
            n: flags.len() as u16,
            bits: [0; FLAG_BYTES],
        };
        for (i, &on) in flags.iter().enumerate() {
            if on {
                out.bits[i / 8] |= 1 << (i % 8);
            }
        }
        out
    }

    /// Number of flags the source vector had (0 = nothing recorded).
    pub fn len(&self) -> usize {
        usize::from(self.n)
    }

    /// Whether no flag vector was recorded.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether flag `i` was enabled (false out of range).
    pub fn get(&self, i: usize) -> bool {
        i < self.len() && self.bits[i / 8] & (1 << (i % 8)) != 0
    }

    /// Reconstruct the flag vector.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

impl std::fmt::Debug for FlagBits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FlagBits({}/{} on)",
            (0..self.len()).filter(|&i| self.get(i)).count(),
            self.len()
        )
    }
}

/// One persisted fitness result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoredFitness {
    /// NCD against the `-O0` baseline (bit-exact as computed), or the
    /// failure penalty when `failed`.
    pub fitness: f64,
    /// Whether the compile failed constraint checking.
    pub failed: bool,
    /// Representative flag vector that produced this result (empty when
    /// unknown, e.g. records written before the vector was captured).
    pub flags: FlagBits,
    /// Store generation at insertion time (stamped by
    /// [`FitnessStore::insert`]; the value supplied by the caller is
    /// overwritten). Age in runs is `store.generation() − generation` —
    /// the prior miner's decay input.
    pub generation: u32,
}

impl StoredFitness {
    /// A result with no recorded flag vector (generation stamped at
    /// insertion).
    pub fn new(fitness: f64, failed: bool) -> StoredFitness {
        StoredFitness {
            fitness,
            failed,
            flags: FlagBits::empty(),
            generation: 0,
        }
    }
}

/// What [`FitnessStore::load`] found on disk — telemetry for warm-start
/// reporting and the recovery tests.
///
/// With the lazy sharded layout the counters grow as shards are first
/// touched; forcing a full load (e.g. [`FitnessStore::len`]) makes the
/// report whole-store accurate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Records decoded and kept (fitness and module-features records).
    pub valid_records: usize,
    /// Trailing bytes dropped (truncation or checksum corruption).
    pub dropped_bytes: usize,
    /// A file carried a different [`FORMAT_VERSION`] — cold start for
    /// its contents (except version 3, which migrates).
    pub version_mismatch: bool,
    /// A header (store manifest, shard log, or legacy file) was not ours
    /// — cold start for its contents.
    pub malformed_header: bool,
    /// Nothing existed at the path — clean first run.
    pub missing: bool,
}

/// A record queued for the next save, in insertion order.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PendingRecord {
    Fitness(StoreKey, StoredFitness),
    Features(u64, ModuleFeatures),
}

/// What [`FitnessStore::save`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaveOutcome {
    /// The store on disk is current (records written, or nothing was
    /// pending, or the store has no backing file).
    Written,
    /// Another live process held an advisory lock for at least one shard
    /// (or the whole store, during migration): that part of the save was
    /// skipped and its pending entries remain queued for a retry. Only
    /// the warm start for future runs is deferred — never an error, per
    /// the degrade-don't-panic contract.
    SkippedLocked,
}

/// What the path held when the store was loaded — drives how `save`
/// reaches the sharded layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Layout {
    /// No backing path: saves are no-ops.
    Memory,
    /// Path did not exist: the directory is created on first save.
    Missing,
    /// A v4 store directory: the steady state. Shards load lazily.
    Sharded,
    /// A v3 single file, parsed losslessly: restructured on save.
    LegacyFile,
    /// Unreadable/foreign content at the path: cold start, replaced on
    /// save.
    Foreign,
}

/// Telemetry handles for the persistent store. Installed via
/// [`FitnessStore::set_telemetry`]; absent (the default) means the hard
/// Off-mode purity contract — no clock reads, no telemetry state, byte-
/// identical on-disk behavior.
#[derive(Debug, Clone)]
pub struct StoreTelemetry {
    /// Wall time of each per-shard append or rewrite during
    /// [`FitnessStore::save`].
    pub shard_save_seconds: std::sync::Arc<btel::Histogram>,
    /// Wall time of each per-shard compaction rewrite.
    pub compact_seconds: std::sync::Arc<btel::Histogram>,
    /// Shard saves/compactions skipped because another live process held
    /// the advisory lock (lock contention; pending records are retried).
    pub lock_skips: std::sync::Arc<btel::Counter>,
}

impl StoreTelemetry {
    /// Declare the store's metric families in `registry` and return the
    /// handles.
    pub fn from_registry(registry: &btel::Registry) -> StoreTelemetry {
        StoreTelemetry {
            shard_save_seconds: registry.histogram(
                "bintuner_store_shard_save_seconds",
                "Wall time of each per-shard append/rewrite during FitnessStore::save.",
            ),
            compact_seconds: registry.histogram(
                "bintuner_store_compact_seconds",
                "Wall time of each per-shard compaction rewrite.",
            ),
            lock_skips: registry.counter(
                "bintuner_store_lock_skips_total",
                "Shard saves/compactions skipped under advisory-lock contention.",
            ),
        }
    }
}

/// A disk-backed map from [`StoreKey`] to [`StoredFitness`], plus one
/// [`ModuleFeatures`] entry per module for prior mining.
///
/// All mutation is in-memory until [`FitnessStore::save`]; the engine
/// inserts fresh results as it compiles, and the tuner saves once at the
/// end of a run. Lookups take `&mut self` because the shard an untouched
/// key routes to is loaded on demand.
#[derive(Debug)]
pub struct FitnessStore {
    path: Option<PathBuf>,
    layout: Layout,
    shard_count: usize,
    /// One lazily-filled slot per shard. Non-`Sharded` layouts are fully
    /// materialized at load, so every slot is `Some` from the start.
    shards: Vec<Option<ShardIndex>>,
    /// Monotonic generation stamped on inserts, fixed for this store
    /// value's lifetime.
    generation: u32,
    /// Generation currently recorded in the on-disk manifest.
    manifest_gen: u32,
    /// The manifest must be rewritten even if the generation is
    /// unchanged (recovered from corruption).
    manifest_dirty: bool,
    /// Store-wide insertion sequence, so draining pending records across
    /// shards restores the caller's insertion order exactly.
    next_seq: u64,
    report: LoadReport,
    /// Save/compaction timing handles; `None` (the default) takes no
    /// telemetry path at all.
    tel: Option<StoreTelemetry>,
}

fn full_slots(n: usize) -> Vec<Option<ShardIndex>> {
    (0..n).map(|_| Some(ShardIndex::default())).collect()
}

impl FitnessStore {
    /// A store with no backing file: [`FitnessStore::save`] is a no-op.
    /// Useful for tests and for engines that only want in-run sharing.
    pub fn in_memory() -> FitnessStore {
        FitnessStore {
            path: None,
            layout: Layout::Memory,
            shard_count: DEFAULT_SHARD_COUNT,
            shards: full_slots(DEFAULT_SHARD_COUNT),
            generation: 0,
            manifest_gen: 0,
            manifest_dirty: false,
            next_seq: 0,
            report: LoadReport::default(),
            tel: None,
        }
    }

    /// Load a store from `path` with the default shard geometry. Never
    /// fails: a missing path is a clean first run, a foreign or
    /// version-mismatched file is a cold start (replaced on the next
    /// save), a v3 single file migrates losslessly, and a damaged shard
    /// tail is dropped while the valid prefix is kept. Inspect
    /// [`FitnessStore::report`] for what happened.
    pub fn load(path: impl Into<PathBuf>) -> FitnessStore {
        FitnessStore::load_with_shard_count(path, DEFAULT_SHARD_COUNT)
    }

    /// [`FitnessStore::load`] with an explicit shard count for stores
    /// created by this call. An existing directory keeps its manifest's
    /// geometry; the count only shapes new stores and v3 migrations.
    pub fn load_with_shard_count(path: impl Into<PathBuf>, shard_count: usize) -> FitnessStore {
        let path = path.into();
        let mut store = FitnessStore {
            path: Some(path.clone()),
            layout: Layout::Missing,
            shard_count: shard_count.clamp(1, u16::MAX as usize),
            shards: Vec::new(),
            generation: 0,
            manifest_gen: 0,
            manifest_dirty: false,
            next_seq: 0,
            report: LoadReport::default(),
            tel: None,
        };
        match fs::metadata(&path) {
            Err(_) => {
                store.report.missing = true;
                store.shards = full_slots(store.shard_count);
            }
            Ok(m) if m.is_dir() => store.load_dir(&path),
            Ok(_) => store.load_file(&path),
        }
        store
    }

    /// Open an existing v4 directory: read the manifest, defer every
    /// shard until first touch.
    fn load_dir(&mut self, dir: &Path) {
        self.layout = Layout::Sharded;
        match fs::read(dir.join("manifest"))
            .ok()
            .and_then(|b| decode_manifest(&b))
        {
            Some((count, generation)) => {
                self.shard_count = count;
                self.generation = generation;
                self.manifest_gen = generation;
                self.shards = (0..count).map(|_| None).collect();
            }
            None => self.recover_dir(dir),
        }
    }

    /// A directory without a readable manifest: rebuild the geometry
    /// from the shard files themselves, eagerly, and queue a manifest
    /// rewrite. Loses nothing but the generation counter's exact value
    /// (recomputed as `max(stored) + 1`, the v3 rule).
    fn recover_dir(&mut self, dir: &Path) {
        self.report.malformed_header = true;
        self.manifest_dirty = true;
        let mut max_idx: Option<usize> = None;
        let mut header_count: Option<usize> = None;
        if let Ok(entries) = fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(idx) = name
                    .to_str()
                    .and_then(|n| n.strip_prefix("shard-"))
                    .and_then(|n| n.strip_suffix(".log"))
                    .and_then(|n| n.parse::<usize>().ok())
                else {
                    continue;
                };
                max_idx = Some(max_idx.map_or(idx, |m| m.max(idx)));
                if header_count.is_none() {
                    if let Ok(bytes) = fs::read(entry.path()) {
                        if bytes.len() >= 12 && bytes[..4] == MAGIC {
                            let c = u16::from_le_bytes(bytes[10..12].try_into().unwrap());
                            header_count = Some(usize::from(c));
                        }
                    }
                }
            }
        }
        self.shard_count = match (header_count, max_idx) {
            (Some(c), Some(m)) if c > m => c,
            (_, Some(m)) => m + 1,
            _ => self.shard_count,
        }
        .clamp(1, u16::MAX as usize);
        self.layout = Layout::Sharded;
        self.shards = (0..self.shard_count).map(|_| None).collect();
        for idx in 0..self.shard_count {
            self.ensure_shard(idx);
        }
        self.generation = self
            .shards
            .iter()
            .flatten()
            .flat_map(|s| s.entries.values())
            .map(|v| v.generation)
            .max()
            .map_or(0, |g| g.saturating_add(1));
        self.manifest_gen = self.generation;
    }

    /// A plain file at the path: a v3 store (migrated losslessly) or
    /// foreign bytes (cold start).
    fn load_file(&mut self, path: &Path) {
        let flat = match fs::read(path) {
            Ok(bytes) => shard::parse_v3(&bytes),
            Err(_) => {
                // Races between metadata and read degrade to missing.
                self.report.missing = true;
                self.shards = full_slots(self.shard_count);
                return;
            }
        };
        self.report = flat.report;
        self.shards = full_slots(self.shard_count);
        if flat.report.malformed_header || flat.report.version_mismatch {
            self.layout = Layout::Foreign;
            return;
        }
        self.layout = Layout::LegacyFile;
        for (key, value) in flat.entries {
            let idx = shard_for(&key, self.shard_count);
            self.shards[idx].as_mut().unwrap().absorb_entry(key, value);
        }
        for (hash, feats) in flat.features {
            let idx = shard_for_module(hash, self.shard_count);
            self.shards[idx]
                .as_mut()
                .unwrap()
                .absorb_features(hash, feats);
        }
        self.generation = self
            .shards
            .iter()
            .flatten()
            .flat_map(|s| s.entries.values())
            .map(|v| v.generation)
            .max()
            .map_or(0, |g| g.saturating_add(1));
    }

    /// Materialize shard `idx`, folding its load telemetry into the
    /// store-wide report.
    fn ensure_shard(&mut self, idx: usize) -> &mut ShardIndex {
        if self.shards[idx].is_none() {
            let loaded = match &self.path {
                Some(dir) if self.layout == Layout::Sharded => {
                    let s = shard::load_shard(dir, idx, self.shard_count);
                    self.report.valid_records += s.report.valid_records;
                    self.report.dropped_bytes += s.report.dropped_bytes;
                    self.report.version_mismatch |= s.report.version_mismatch;
                    self.report.malformed_header |= s.report.malformed_header;
                    // A missing shard file is normal (shards materialize
                    // on first write) — not a store-wide `missing`.
                    s
                }
                _ => ShardIndex::default(),
            };
            self.shards[idx] = Some(loaded);
        }
        self.shards[idx].as_mut().unwrap()
    }

    fn ensure_all(&mut self) {
        for idx in 0..self.shard_count {
            self.ensure_shard(idx);
        }
    }

    /// The backing path, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// What loading has found on disk so far (shards count in when first
    /// touched; see [`LoadReport`]).
    pub fn report(&self) -> LoadReport {
        self.report
    }

    /// The store's shard geometry.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// How many shard indices are currently materialized in memory —
    /// observability for the lazy-loading tests and the scaling bench.
    pub fn shards_loaded(&self) -> usize {
        self.shards.iter().filter(|s| s.is_some()).count()
    }

    /// Live fitness entries per shard (forces a full load) — diagnostics
    /// for the shard-assignment and migration tests.
    pub fn shard_entry_counts(&mut self) -> Vec<usize> {
        self.ensure_all();
        self.shards
            .iter()
            .flatten()
            .map(|s| s.entries.len())
            .collect()
    }

    /// Number of live fitness entries (module-features records are
    /// bookkeeping and not counted). Forces a full load.
    pub fn len(&mut self) -> usize {
        self.ensure_all();
        self.shards.iter().flatten().map(|s| s.entries.len()).sum()
    }

    /// Whether the store holds no fitness entries (forces a full load).
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// Fitness entries inserted since the last [`FitnessStore::save`]
    /// (module-features records piggyback on the save but are not
    /// counted — they are identity metadata, not results).
    pub fn pending_len(&self) -> usize {
        self.shards
            .iter()
            .flatten()
            .map(ShardIndex::pending_fitness)
            .sum()
    }

    /// Look up a persisted result, materializing only the one shard the
    /// key routes to.
    pub fn get(&mut self, key: &StoreKey) -> Option<StoredFitness> {
        let idx = shard_for(key, self.shard_count);
        self.ensure_shard(idx).entries.get(key).copied()
    }

    /// All live fitness entries (mining input; arbitrary order —
    /// consumers that need determinism must sort). Forces a full load.
    pub fn entries(&mut self) -> Vec<(StoreKey, StoredFitness)> {
        self.ensure_all();
        self.shards
            .iter()
            .flatten()
            .flat_map(|s| s.entries.iter().map(|(&k, &v)| (k, v)))
            .collect()
    }

    /// The generation stamped on new inserts (0 for a fresh or empty
    /// store; advances by one per load→save cycle).
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Install save/compaction timing handles. Without this call the
    /// store takes no telemetry path at all (the Off-mode purity
    /// contract).
    pub fn set_telemetry(&mut self, tel: StoreTelemetry) {
        self.tel = Some(tel);
    }

    /// Insert (or overwrite) a result; queued for the next save and
    /// stamped with the current [`FitnessStore::generation`]. An insert
    /// whose fitness and failure bit match the stored value bit-for-bit
    /// is a no-op (the flag bitmap and generation are advisory
    /// metadata), so re-tuning a warm target never grows the log — and
    /// never refreshes record ages, keeping decay honest.
    pub fn insert(&mut self, key: StoreKey, value: StoredFitness) {
        let idx = shard_for(&key, self.shard_count);
        let generation = self.generation;
        let seq = self.next_seq;
        let shard = self.ensure_shard(idx);
        if shard.is_noop_insert(&key, &value) {
            return;
        }
        let value = StoredFitness {
            generation,
            ..value
        };
        shard.entries.insert(key, value);
        shard
            .pending
            .push((seq, PendingRecord::Fitness(key, value)));
        self.next_seq += 1;
    }

    /// Drain the fitness results queued since the last save (or drain),
    /// *removing* them from the save queue — the client-side path of the
    /// evaluation service, where an in-memory store accumulates a
    /// shard's results to ship back for the server's single writable
    /// store instead of saving anything itself. Queued module-features
    /// records stay queued (they are identity metadata, not results).
    /// Order is the caller's insertion order, across shards.
    pub fn drain_pending_fitness(&mut self) -> Vec<(StoreKey, StoredFitness)> {
        let mut tagged = Vec::new();
        for shard in self.shards.iter_mut().flatten() {
            shard.pending.retain(|&(seq, rec)| match rec {
                PendingRecord::Fitness(key, value) => {
                    tagged.push((seq, key, value));
                    false
                }
                PendingRecord::Features(..) => true,
            });
        }
        tagged.sort_unstable_by_key(|&(seq, ..)| seq);
        tagged.into_iter().map(|(_, k, v)| (k, v)).collect()
    }

    /// Record a module's shape features (queued for the next save;
    /// unchanged features are a no-op so warm re-runs never grow the
    /// log). The engine calls this once per run for the tuned module.
    pub fn record_module_features(&mut self, module_hash: u64, feats: ModuleFeatures) {
        let idx = shard_for_module(module_hash, self.shard_count);
        let seq = self.next_seq;
        let shard = self.ensure_shard(idx);
        if shard.features.get(&module_hash) == Some(&feats) {
            return;
        }
        shard.features.insert(module_hash, feats);
        shard
            .pending
            .push((seq, PendingRecord::Features(module_hash, feats)));
        self.next_seq += 1;
    }

    /// A module's recorded shape features, if any (materializes one
    /// shard).
    pub fn module_features(&mut self, module_hash: u64) -> Option<ModuleFeatures> {
        let idx = shard_for_module(module_hash, self.shard_count);
        self.ensure_shard(idx).features.get(&module_hash).copied()
    }

    /// All modules with recorded features (arbitrary order — consumers
    /// that need determinism must sort). Forces a full load.
    pub fn modules_with_features(&mut self) -> Vec<(u64, ModuleFeatures)> {
        self.ensure_all();
        self.shards
            .iter()
            .flatten()
            .flat_map(|s| s.features.iter().map(|(&h, &f)| (h, f)))
            .collect()
    }

    /// Flush pending entries to disk.
    ///
    /// On a sharded store only the touched shards are written, each
    /// under its own advisory lock: the fast path is one appended
    /// `write_all` per shard, and a shard whose dead records dominate is
    /// compacted alone (re-read + merge under its lock, then an atomic
    /// tmp + `rename`). A shard whose lock another live process holds is
    /// *skipped* — [`SaveOutcome::SkippedLocked`], pending kept for a
    /// retry — rather than blocked on or corrupted.
    ///
    /// A legacy v3 file (or a missing/foreign path) is migrated to the
    /// sharded directory here, under a whole-store lock: the new
    /// directory is fully staged at `<path>.migrate` and `rename`d into
    /// place, so a crash leaves either the old store or the complete new
    /// one.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the in-memory state is unchanged by a
    /// failed (or skipped) save, so it can be retried.
    pub fn save(&mut self) -> io::Result<SaveOutcome> {
        let Some(path) = self.path.clone() else {
            for shard in self.shards.iter_mut().flatten() {
                shard.pending.clear();
            }
            return Ok(SaveOutcome::Written);
        };
        if self.layout == Layout::Sharded {
            self.save_sharded(&path)
        } else {
            self.migrate(&path)
        }
    }

    /// First save of a non-sharded layout: stage the v4 directory and
    /// flip the path over to it.
    fn migrate(&mut self, path: &Path) -> io::Result<SaveOutcome> {
        let has_state = self
            .shards
            .iter()
            .flatten()
            .any(|s| s.live() > 0 || !s.pending.is_empty());
        if !has_state && self.layout == Layout::Missing {
            return Ok(SaveOutcome::Written); // nothing to create yet
        }
        let Some(_lock) = StoreLock::acquire(path)? else {
            return Ok(SaveOutcome::SkippedLocked);
        };
        // Re-check under the lock: a concurrent process may have already
        // migrated this path. Adopt its geometry and fall through to the
        // ordinary per-shard save (which merges, losing nothing).
        if fs::metadata(path).map(|m| m.is_dir()).unwrap_or(false) {
            let manifest = fs::read(path.join("manifest"))
                .ok()
                .and_then(|b| decode_manifest(&b));
            if let Some((count, generation)) = manifest {
                if count != self.shard_count {
                    self.reshard(count);
                }
                self.manifest_gen = generation;
            } else {
                self.manifest_dirty = true;
            }
            self.layout = Layout::Sharded;
            drop(_lock);
            return self.save_sharded(path);
        }
        // Merge any records a concurrent v3-era writer appended between
        // our load and this lock: disk wins except for keys we have
        // pending ourselves.
        if self.layout == Layout::LegacyFile {
            if let Ok(bytes) = fs::read(path) {
                let fresh = shard::parse_v3(&bytes);
                if !fresh.report.malformed_header && !fresh.report.version_mismatch {
                    let pending_keys: HashSet<StoreKey> = self
                        .shards
                        .iter()
                        .flatten()
                        .flat_map(|s| s.pending.iter())
                        .filter_map(|(_, r)| match r {
                            PendingRecord::Fitness(k, _) => Some(*k),
                            PendingRecord::Features(..) => None,
                        })
                        .collect();
                    let pending_mods: HashSet<u64> = self
                        .shards
                        .iter()
                        .flatten()
                        .flat_map(|s| s.pending.iter())
                        .filter_map(|(_, r)| match r {
                            PendingRecord::Features(h, _) => Some(*h),
                            PendingRecord::Fitness(..) => None,
                        })
                        .collect();
                    for (key, value) in fresh.entries {
                        if !pending_keys.contains(&key) {
                            let idx = shard_for(&key, self.shard_count);
                            self.shards[idx].as_mut().unwrap().absorb_entry(key, value);
                        }
                    }
                    for (hash, feats) in fresh.features {
                        if !pending_mods.contains(&hash) {
                            let idx = shard_for_module(hash, self.shard_count);
                            self.shards[idx]
                                .as_mut()
                                .unwrap()
                                .absorb_features(hash, feats);
                        }
                    }
                }
            }
        }
        let fitness_written = self.pending_len() > 0;
        let manifest_gen = if fitness_written {
            self.generation.saturating_add(1)
        } else {
            self.generation
        };
        // Stage the complete directory, then flip. The gap between
        // removing the old file and the rename is the only non-atomic
        // instant, and a loader landing in it sees a clean cold start.
        let mut stage_name = path.as_os_str().to_owned();
        stage_name.push(".migrate");
        let stage = PathBuf::from(stage_name);
        if stage.exists() {
            fs::remove_dir_all(&stage)?;
        }
        fs::create_dir_all(&stage)?;
        write_manifest(&stage, self.shard_count, manifest_gen)?;
        for idx in 0..self.shard_count {
            let count = self.shard_count;
            let shard = self.shards[idx].as_mut().unwrap();
            if shard.live() > 0 || !shard.pending.is_empty() {
                shard::save_shard(&stage, idx, count, shard, true)?;
            }
        }
        if fs::metadata(path).map(|m| m.is_file()).unwrap_or(false) {
            fs::remove_file(path)?;
        }
        fs::rename(&stage, path)?;
        self.layout = Layout::Sharded;
        self.manifest_gen = manifest_gen;
        self.manifest_dirty = false;
        self.report.version_mismatch = false;
        self.report.malformed_header = false;
        Ok(SaveOutcome::Written)
    }

    /// Re-route every in-memory record into a different shard geometry
    /// (only reached when adopting a concurrently-migrated directory).
    fn reshard(&mut self, new_count: usize) {
        let old: Vec<ShardIndex> = self
            .shards
            .drain(..)
            .map(Option::unwrap_or_default)
            .collect();
        self.shard_count = new_count;
        self.shards = full_slots(new_count);
        for shard in old {
            for (key, value) in shard.entries {
                let idx = shard_for(&key, new_count);
                self.shards[idx].as_mut().unwrap().absorb_entry(key, value);
            }
            for (hash, feats) in shard.features {
                let idx = shard_for_module(hash, new_count);
                self.shards[idx]
                    .as_mut()
                    .unwrap()
                    .absorb_features(hash, feats);
            }
            for (seq, rec) in shard.pending {
                let idx = match &rec {
                    PendingRecord::Fitness(k, _) => shard_for(k, new_count),
                    PendingRecord::Features(h, _) => shard_for_module(*h, new_count),
                };
                self.shards[idx].as_mut().unwrap().pending.push((seq, rec));
            }
        }
    }

    /// Steady-state save: write each touched shard under its own lock.
    fn save_sharded(&mut self, dir: &Path) -> io::Result<SaveOutcome> {
        let mut skipped = false;
        let mut fitness_written = false;
        for idx in 0..self.shard_count {
            let count = self.shard_count;
            let Some(shard) = self.shards[idx].as_mut() else {
                continue; // never touched: nothing pending by definition
            };
            if shard.pending.is_empty() && !shard.needs_rewrite {
                continue;
            }
            let Some(_lock) = StoreLock::acquire(&shard::shard_path(dir, idx))? else {
                skipped = true; // pending kept; retried on the next save
                if let Some(tel) = &self.tel {
                    tel.lock_skips.inc();
                }
                continue;
            };
            fitness_written |= shard.pending_fitness() > 0;
            match &self.tel {
                None => shard::save_shard(dir, idx, count, shard, false)?,
                Some(tel) => {
                    let t = std::time::Instant::now();
                    shard::save_shard(dir, idx, count, shard, false)?;
                    tel.shard_save_seconds
                        .observe_seconds(t.elapsed().as_secs_f64());
                }
            }
        }
        let manifest_gen = if fitness_written {
            self.generation.saturating_add(1)
        } else {
            self.manifest_gen
        };
        if manifest_gen != self.manifest_gen || self.manifest_dirty {
            // The manifest itself is guarded by the whole-store lock; a
            // loss here only defers the generation bump, never records.
            match StoreLock::acquire(dir)? {
                Some(_lock) => {
                    write_manifest(dir, self.shard_count, manifest_gen)?;
                    self.manifest_gen = manifest_gen;
                    self.manifest_dirty = false;
                }
                None => {
                    self.manifest_dirty = true;
                    skipped = true;
                }
            }
        }
        Ok(if skipped {
            SaveOutcome::SkippedLocked
        } else {
            SaveOutcome::Written
        })
    }

    /// Compact every shard (each under its own lock; contended shards
    /// are skipped). A non-sharded layout is saved (migrated) first.
    pub fn compact(&mut self) -> io::Result<SaveOutcome> {
        if self.layout != Layout::Sharded {
            if self.save()? == SaveOutcome::SkippedLocked {
                return Ok(SaveOutcome::SkippedLocked);
            }
            if self.layout != Layout::Sharded {
                return Ok(SaveOutcome::Written); // in-memory store
            }
        }
        let mut skipped = false;
        for idx in 0..self.shard_count {
            if self.compact_shard(idx)? == SaveOutcome::SkippedLocked {
                skipped = true;
            }
        }
        Ok(if skipped {
            SaveOutcome::SkippedLocked
        } else {
            SaveOutcome::Written
        })
    }

    /// Compact one shard in place: re-read + merge under its lock, write
    /// the live set to a temp file, atomically rename. Readers and
    /// writers of every *other* shard are untouched — that independence
    /// is the point of the sharded layout (and what the torture harness
    /// and the scaling bench pin down).
    pub fn compact_shard(&mut self, idx: usize) -> io::Result<SaveOutcome> {
        let Some(dir) = self.path.clone() else {
            return Ok(SaveOutcome::Written);
        };
        if self.layout != Layout::Sharded || idx >= self.shard_count {
            return Ok(SaveOutcome::Written);
        }
        let count = self.shard_count;
        // Cloned up front (cheap Arc bumps): `ensure_shard` holds a
        // mutable borrow of `self` across the write below.
        let tel = self.tel.clone();
        let shard = self.ensure_shard(idx);
        if shard.live() == 0 && shard.pending.is_empty() && !shard::shard_path(&dir, idx).exists() {
            return Ok(SaveOutcome::Written);
        }
        let Some(_lock) = StoreLock::acquire(&shard::shard_path(&dir, idx))? else {
            if let Some(tel) = &tel {
                tel.lock_skips.inc();
            }
            return Ok(SaveOutcome::SkippedLocked);
        };
        match &tel {
            None => shard::save_shard(&dir, idx, count, shard, true)?,
            Some(tel) => {
                let t = std::time::Instant::now();
                shard::save_shard(&dir, idx, count, shard, true)?;
                tel.compact_seconds
                    .observe_seconds(t.elapsed().as_secs_f64());
            }
        }
        Ok(SaveOutcome::Written)
    }
}

fn encode_manifest(shard_count: usize, generation: u32) -> [u8; MANIFEST_LEN] {
    let mut m = [0u8; MANIFEST_LEN];
    m[..4].copy_from_slice(&MAGIC);
    m[4..8].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    m[8..12].copy_from_slice(&(shard_count as u32).to_le_bytes());
    m[12..16].copy_from_slice(&generation.to_le_bytes());
    let ck = checksum(&m[..16]);
    m[16..20].copy_from_slice(&ck.to_le_bytes());
    m
}

fn decode_manifest(bytes: &[u8]) -> Option<(usize, u32)> {
    if bytes.len() != MANIFEST_LEN
        || bytes[..4] != MAGIC
        || u32::from_le_bytes(bytes[4..8].try_into().unwrap()) != FORMAT_VERSION
        || u32::from_le_bytes(bytes[16..20].try_into().unwrap()) != checksum(&bytes[..16])
    {
        return None;
    }
    let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    if count == 0 || count > usize::from(u16::MAX) {
        return None;
    }
    let generation = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    Some((count, generation))
}

/// Write the manifest atomically (tmp + rename).
fn write_manifest(dir: &Path, shard_count: usize, generation: u32) -> io::Result<()> {
    let path = dir.join("manifest");
    let tmp = dir.join("manifest.tmp");
    fs::write(&tmp, encode_manifest(shard_count, generation))?;
    fs::rename(&tmp, &path)
}

#[cfg(test)]
mod tests;
