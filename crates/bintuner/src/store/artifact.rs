//! Persistent stage-artifact store — the disk sibling of the engine's
//! tier-0 artifact cache.
//!
//! The staged compile pipeline (PR 5) reuses optimized ASTs and lowered
//! binaries *within* a run; this store keeps the hot ones *across* runs,
//! next to the fitness shards (`<store-dir>/artifacts.log`). Records are
//! keyed by stage digests plus the module **body** hash
//! ([`minicc::ast::Module::body_hash`] — everything except the name), so
//! a renamed-but-otherwise-identical module, whose fitness keys are all
//! cold, still warm-starts its compiles from the previous run's
//! artifacts.
//!
//! Retention is sized by **measured per-stage cost**, not the in-run
//! multiplicity>=2 heuristic: each record carries the seconds its stage
//! took to produce, [`ArtifactRetention::min_stage_seconds`] drops
//! artifacts too cheap to be worth disk, and when the log exceeds
//! [`ArtifactRetention::max_bytes`] the cheapest artifacts are evicted
//! first (they cost the least to recompute).
//!
//! Same corruption discipline as the fitness shards: length-prefixed
//! FNV-checksummed records, loading never fails (valid prefix kept,
//! damaged tail dropped, foreign file is a cold start), one
//! [`StoreLock`] on the log across saves, atomic tmp+rename when
//! eviction forces a rewrite.

use super::{LoadReport, SaveOutcome, StoreLock};
use bytes::BufMut;
use minicc::fnv1a32 as checksum;
use std::collections::HashMap;
use std::fs;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Artifact log magic: `BTAS` (BinTuner Artifact Store) + version.
pub const ARTIFACT_MAGIC: [u8; 4] = *b"BTAS";
const ARTIFACT_VERSION: u32 = 1;
const ARTIFACT_HEADER_LEN: usize = 8;

const TAG_AST: u8 = 0;
const TAG_LOWER: u8 = 1;

/// Fixed prefix of an AST record's payload: tag + key (8+1+16) + cost.
const AST_FIXED: usize = 1 + 25 + 8;
/// Fixed prefix of a lower record's payload: tag + key (8+1+1+16+16) +
/// cost.
const LOWER_FIXED: usize = 1 + 42 + 8;

/// Sanity cap on a single record payload — a forged length beyond this
/// is treated as a corrupt tail instead of driving an allocation.
const MAX_PAYLOAD: usize = 64 << 20;

/// Key of a persisted optimized-AST artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AstArtifactKey {
    /// [`minicc::ast::Module::body_hash`] of the source module.
    pub body_hash: u64,
    /// [`minicc::CompilerKind::stable_id`] tag.
    pub compiler: u8,
    /// AST-stage digest (`minicc::stage::AstStageKey::stable_digest`).
    pub ast_digest: u128,
}

/// Key of a persisted lowered-binary artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LowerArtifactKey {
    /// [`minicc::ast::Module::body_hash`] of the source module.
    pub body_hash: u64,
    /// [`minicc::CompilerKind::stable_id`] tag.
    pub compiler: u8,
    /// Stable architecture tag (see [`super::arch_tag`]).
    pub arch: u8,
    /// AST-stage digest the lowering consumed.
    pub ast_digest: u128,
    /// Lower-stage digest (`minicc::stage::LowerStageKey::stable_digest`).
    pub lower_digest: u128,
}

/// Retention policy: which artifacts earn disk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArtifactRetention {
    /// Soft cap on the log's total size. When exceeded at save time the
    /// log is rewritten keeping the most expensive artifacts first.
    pub max_bytes: u64,
    /// Artifacts whose stage took less than this many seconds to
    /// produce are not persisted (and are evicted on the next rewrite):
    /// recomputing them is cheaper than the disk traffic.
    pub min_stage_seconds: f64,
}

impl Default for ArtifactRetention {
    fn default() -> ArtifactRetention {
        ArtifactRetention {
            max_bytes: 64 << 20,
            min_stage_seconds: 0.0,
        }
    }
}

/// Where a live artifact sits in the log.
#[derive(Debug, Clone, Copy)]
struct DiskArtifact {
    /// Offset of the record's length prefix.
    record_off: u64,
    /// Whole record length (prefix + payload + checksum).
    record_len: u32,
    /// Blob position within the file.
    blob_off: u64,
    blob_len: u32,
    /// Measured stage seconds (the retention currency).
    cost: f64,
}

/// A pending (not yet saved) artifact.
#[derive(Debug, Clone)]
struct PendingArtifact<K> {
    key: K,
    cost: f64,
    blob: Vec<u8>,
}

/// Artifacts drained out of a store's pending queues
/// ([`ArtifactStore::drain_pending`]): `(key, stage seconds, blob)`
/// triples, ready to cross the evaluation service's merge barrier.
#[derive(Debug, Clone, Default)]
pub struct PendingArtifacts {
    /// Pending optimized-AST artifacts.
    pub ast: Vec<(AstArtifactKey, f64, Vec<u8>)>,
    /// Pending lowered-binary artifacts.
    pub lower: Vec<(LowerArtifactKey, f64, Vec<u8>)>,
}

impl PendingArtifacts {
    /// Total drained artifact count.
    pub fn len(&self) -> usize {
        self.ast.len() + self.lower.len()
    }

    /// Whether nothing was pending.
    pub fn is_empty(&self) -> bool {
        self.ast.is_empty() && self.lower.is_empty()
    }
}

/// Disk-backed map from stage-digest keys to compiled artifact bytes.
///
/// Blobs stay on disk: loading builds only the compact offset index,
/// [`ArtifactStore::fetch_ast`]/[`ArtifactStore::fetch_lower`] read and
/// re-verify a record on demand. Pending inserts become queryable only
/// after [`ArtifactStore::save`] — membership must look the same to
/// every backend within a run, and only the saved log is shared state.
#[derive(Debug, Default)]
pub struct ArtifactStore {
    path: Option<PathBuf>,
    ast: HashMap<AstArtifactKey, DiskArtifact>,
    lower: HashMap<LowerArtifactKey, DiskArtifact>,
    pending_ast: Vec<PendingArtifact<AstArtifactKey>>,
    pending_lower: Vec<PendingArtifact<LowerArtifactKey>>,
    /// Total bytes of live records on disk (dead bytes excluded).
    live_bytes: u64,
    /// Bytes in the file, live or dead — the compaction trigger.
    file_bytes: u64,
    needs_rewrite: bool,
    retention: ArtifactRetention,
    report: LoadReport,
    /// Save-timing histogram (`bintuner_store_artifact_save_seconds`);
    /// `None` (the default) takes no telemetry path at all.
    tel: Option<std::sync::Arc<btel::Histogram>>,
}

impl ArtifactStore {
    /// A store with no backing file; saves are no-ops.
    pub fn in_memory() -> ArtifactStore {
        ArtifactStore::default()
    }

    /// Load the artifact log living inside store directory `dir`
    /// (`<dir>/artifacts.log`). Never fails: missing file or missing
    /// directory is a clean cold start, foreign/damaged content degrades
    /// per the usual store contract.
    pub fn load(dir: &Path) -> ArtifactStore {
        let path = dir.join("artifacts.log");
        let mut store = ArtifactStore {
            path: Some(path.clone()),
            ..ArtifactStore::default()
        };
        match fs::read(&path) {
            Ok(bytes) => store.parse(&bytes),
            Err(_) => store.report.missing = true,
        }
        store
    }

    /// Override the retention policy (builder style).
    pub fn with_retention(mut self, retention: ArtifactRetention) -> ArtifactStore {
        self.retention = retention;
        self
    }

    /// The active retention policy.
    pub fn retention(&self) -> ArtifactRetention {
        self.retention
    }

    /// Install a save-timing histogram, conventionally declared in the
    /// run's registry as `bintuner_store_artifact_save_seconds`. Without
    /// this call saves take no telemetry path at all.
    pub fn set_telemetry(&mut self, save_seconds: std::sync::Arc<btel::Histogram>) {
        self.tel = Some(save_seconds);
    }

    fn parse(&mut self, bytes: &[u8]) {
        if bytes.len() < ARTIFACT_HEADER_LEN
            || bytes[..4] != ARTIFACT_MAGIC
            || u32::from_le_bytes(bytes[4..8].try_into().unwrap()) != ARTIFACT_VERSION
        {
            self.report.malformed_header = true;
            self.report.dropped_bytes = bytes.len();
            self.needs_rewrite = true;
            self.file_bytes = bytes.len() as u64;
            return;
        }
        let mut off = ARTIFACT_HEADER_LEN;
        while off + 4 <= bytes.len() {
            let p_len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            let end = off + 4 + p_len + 4;
            if !(AST_FIXED..=MAX_PAYLOAD).contains(&p_len) || end > bytes.len() {
                break;
            }
            let payload = &bytes[off + 4..off + 4 + p_len];
            let stored = u32::from_le_bytes(bytes[end - 4..end].try_into().unwrap());
            if checksum(payload) != stored || !self.index_record(off as u64, payload) {
                break;
            }
            self.report.valid_records += 1;
            off = end;
        }
        self.file_bytes = bytes.len() as u64;
        self.live_bytes = self
            .ast
            .values()
            .chain(self.lower.values())
            .map(|a| u64::from(a.record_len))
            .sum();
        if off != bytes.len() {
            self.report.dropped_bytes = bytes.len() - off;
            self.needs_rewrite = true;
        }
    }

    /// Index one checksum-verified payload. Returns false on an unknown
    /// tag or malformed key section (corrupt tail).
    fn index_record(&mut self, record_off: u64, payload: &[u8]) -> bool {
        let record_len = (4 + payload.len() + 4) as u32;
        let u64_at = |off: usize| u64::from_le_bytes(payload[off..off + 8].try_into().unwrap());
        let u128_at = |off: usize| (u128::from(u64_at(off)) << 64) | u128::from(u64_at(off + 8));
        match payload[0] {
            TAG_AST if payload.len() >= AST_FIXED => {
                let key = AstArtifactKey {
                    body_hash: u64_at(1),
                    compiler: payload[9],
                    ast_digest: u128_at(10),
                };
                let cost = f64::from_bits(u64_at(26));
                self.ast.insert(
                    key,
                    DiskArtifact {
                        record_off,
                        record_len,
                        blob_off: record_off + 4 + AST_FIXED as u64,
                        blob_len: (payload.len() - AST_FIXED) as u32,
                        cost,
                    },
                );
                true
            }
            TAG_LOWER if payload.len() >= LOWER_FIXED => {
                let key = LowerArtifactKey {
                    body_hash: u64_at(1),
                    compiler: payload[9],
                    arch: payload[10],
                    ast_digest: u128_at(11),
                    lower_digest: u128_at(27),
                };
                let cost = f64::from_bits(u64_at(43));
                self.lower.insert(
                    key,
                    DiskArtifact {
                        record_off,
                        record_len,
                        blob_off: record_off + 4 + LOWER_FIXED as u64,
                        blob_len: (payload.len() - LOWER_FIXED) as u32,
                        cost,
                    },
                );
                true
            }
            _ => false,
        }
    }

    /// What loading found on disk.
    pub fn report(&self) -> LoadReport {
        self.report
    }

    /// Live persisted artifact count (pending inserts excluded).
    pub fn len(&self) -> usize {
        self.ast.len() + self.lower.len()
    }

    /// Whether no artifacts are persisted.
    pub fn is_empty(&self) -> bool {
        self.ast.is_empty() && self.lower.is_empty()
    }

    /// Artifacts queued since the last save.
    pub fn pending_len(&self) -> usize {
        self.pending_ast.len() + self.pending_lower.len()
    }

    /// Whether a persisted optimized AST exists for this key. Membership
    /// only — the deterministic input to miss classification.
    pub fn has_ast(&self, key: &AstArtifactKey) -> bool {
        self.ast.contains_key(key)
    }

    /// Whether a persisted lowered binary exists for this key.
    pub fn has_lower(&self, key: &LowerArtifactKey) -> bool {
        self.lower.contains_key(key)
    }

    /// Read an AST artifact's blob back, re-verifying its checksum.
    /// `None` if absent or if the record fails verification (e.g. the
    /// log was compacted underneath us) — callers recompute.
    pub fn fetch_ast(&self, key: &AstArtifactKey) -> Option<Vec<u8>> {
        self.fetch(*self.ast.get(key)?, &ast_sort_key(key))
    }

    /// Read a lowered-binary artifact's blob back ([`ArtifactStore::fetch_ast`]
    /// contract).
    pub fn fetch_lower(&self, key: &LowerArtifactKey) -> Option<Vec<u8>> {
        self.fetch(*self.lower.get(key)?, &lower_sort_key(key))
    }

    /// Read a record back from disk, verifying both its checksum and
    /// its identity (`key_bytes` = tag + key) — a log compacted by
    /// another process may have a *different* valid record at this
    /// offset, which must read as a miss, not as the wrong blob.
    fn fetch(&self, at: DiskArtifact, key_bytes: &[u8]) -> Option<Vec<u8>> {
        let path = self.path.as_ref()?;
        let mut f = fs::File::open(path).ok()?;
        f.seek(SeekFrom::Start(at.record_off)).ok()?;
        let mut record = vec![0u8; at.record_len as usize];
        f.read_exact(&mut record).ok()?;
        let p_len = u32::from_le_bytes(record[..4].try_into().unwrap()) as usize;
        if 4 + p_len + 4 != record.len() {
            return None;
        }
        let payload = &record[4..4 + p_len];
        let stored = u32::from_le_bytes(record[4 + p_len..].try_into().unwrap());
        if checksum(payload) != stored || !payload.starts_with(key_bytes) {
            return None;
        }
        let blob_start = (at.blob_off - at.record_off) as usize;
        record
            .get(blob_start..blob_start + at.blob_len as usize)
            .map(<[u8]>::to_vec)
    }

    /// Queue an optimized-AST artifact (`blob` is the `minicc::codec`
    /// encoding; `cost` the measured stage seconds). No-op if the key is
    /// already live or pending, or the cost is below the retention
    /// floor.
    pub fn insert_ast(&mut self, key: AstArtifactKey, cost: f64, blob: Vec<u8>) {
        if cost < self.retention.min_stage_seconds
            || self.ast.contains_key(&key)
            || self.pending_ast.iter().any(|p| p.key == key)
        {
            return;
        }
        self.pending_ast.push(PendingArtifact { key, cost, blob });
    }

    /// Queue a lowered-binary artifact (`blob` is the `binrep::codec`
    /// encoding; [`ArtifactStore::insert_ast`] contract).
    pub fn insert_lower(&mut self, key: LowerArtifactKey, cost: f64, blob: Vec<u8>) {
        if cost < self.retention.min_stage_seconds
            || self.lower.contains_key(&key)
            || self.pending_lower.iter().any(|p| p.key == key)
        {
            return;
        }
        self.pending_lower.push(PendingArtifact { key, cost, blob });
    }

    /// Drain the artifacts queued since the last save (or drain),
    /// clearing the pending queues — the client side of the evaluation
    /// service ships these back through the merge barrier so farm
    /// workers' freshly computed stage artifacts reach the server's
    /// persistent log. Each entry is `(key, measured stage seconds,
    /// encoded blob)`.
    pub fn drain_pending(&mut self) -> PendingArtifacts {
        PendingArtifacts {
            ast: self
                .pending_ast
                .drain(..)
                .map(|p| (p.key, p.cost, p.blob))
                .collect(),
            lower: self
                .pending_lower
                .drain(..)
                .map(|p| (p.key, p.cost, p.blob))
                .collect(),
        }
    }

    /// Flush pending artifacts under the log's [`StoreLock`].
    ///
    /// Fast path appends; the log is rewritten (tmp + atomic rename)
    /// when it was corrupt, when dead records dominate, or when the
    /// retention budget is exceeded — eviction drops the cheapest
    /// artifacts first, deterministically. A missing parent directory
    /// (the fitness store has not been saved as v4 yet) or a contended
    /// lock degrades to [`SaveOutcome::SkippedLocked`] with pending
    /// kept.
    pub fn save(&mut self) -> io::Result<SaveOutcome> {
        let Some(path) = self.path.clone() else {
            self.pending_ast.clear();
            self.pending_lower.clear();
            return Ok(SaveOutcome::Written);
        };
        if self.pending_len() == 0 && !self.needs_rewrite && !self.over_budget() {
            return Ok(SaveOutcome::Written);
        }
        match path.parent() {
            Some(dir) if dir.as_os_str().is_empty() || dir.is_dir() => {}
            _ => return Ok(SaveOutcome::SkippedLocked),
        }
        let Some(_lock) = StoreLock::acquire(&path)? else {
            return Ok(SaveOutcome::SkippedLocked);
        };
        let pending_bytes: u64 = self
            .pending_ast
            .iter()
            .map(|p| (4 + AST_FIXED + p.blob.len() + 4) as u64)
            .chain(
                self.pending_lower
                    .iter()
                    .map(|p| (4 + LOWER_FIXED + p.blob.len() + 4) as u64),
            )
            .sum();
        let compact = self.needs_rewrite
            || !path.exists()
            || self.file_bytes + pending_bytes > self.retention.max_bytes
            || self.live_bytes * 2 < self.file_bytes;
        let tel = self.tel.clone();
        match &tel {
            None => {
                if compact {
                    self.rewrite(&path)?;
                } else {
                    self.append(&path)?;
                }
            }
            Some(save_seconds) => {
                let t = std::time::Instant::now();
                if compact {
                    self.rewrite(&path)?;
                } else {
                    self.append(&path)?;
                }
                save_seconds.observe_seconds(t.elapsed().as_secs_f64());
            }
        }
        Ok(SaveOutcome::Written)
    }

    fn over_budget(&self) -> bool {
        self.file_bytes > self.retention.max_bytes
    }

    fn append(&mut self, path: &Path) -> io::Result<()> {
        let mut buf = Vec::new();
        let base = fs::metadata(path)?.len();
        let mut new_ast = Vec::new();
        let mut new_lower = Vec::new();
        for p in &self.pending_ast {
            let off = base + buf.len() as u64;
            let rec = encode_ast(&p.key, p.cost, &p.blob);
            new_ast.push((p.key, disk_at(off, &rec, AST_FIXED, p.cost)));
            buf.extend_from_slice(&rec);
        }
        for p in &self.pending_lower {
            let off = base + buf.len() as u64;
            let rec = encode_lower(&p.key, p.cost, &p.blob);
            new_lower.push((p.key, disk_at(off, &rec, LOWER_FIXED, p.cost)));
            buf.extend_from_slice(&rec);
        }
        let mut file = fs::OpenOptions::new().append(true).open(path)?;
        io::Write::write_all(&mut file, &buf)?;
        for (k, a) in new_ast {
            self.live_bytes += u64::from(a.record_len);
            self.ast.insert(k, a);
        }
        for (k, a) in new_lower {
            self.live_bytes += u64::from(a.record_len);
            self.lower.insert(k, a);
        }
        self.file_bytes += buf.len() as u64;
        self.pending_ast.clear();
        self.pending_lower.clear();
        Ok(())
    }

    /// Rewrite the whole log applying retention. Survivor order (and
    /// therefore eviction) is deterministic: most expensive first,
    /// ties broken by key.
    fn rewrite(&mut self, path: &Path) -> io::Result<()> {
        enum Rec {
            Ast(AstArtifactKey),
            Lower(LowerArtifactKey),
        }
        // Materialize every candidate: live disk records (blobs read
        // back and re-verified — unreadable ones drop out) + pending.
        let mut candidates: Vec<(f64, Vec<u8>, Rec, Vec<u8>)> = Vec::new(); // (cost, sort key, kind, blob)
        for (key, at) in &self.ast {
            if at.cost < self.retention.min_stage_seconds {
                continue;
            }
            if let Some(blob) = self.fetch(*at, &ast_sort_key(key)) {
                candidates.push((at.cost, ast_sort_key(key), Rec::Ast(*key), blob));
            }
        }
        for (key, at) in &self.lower {
            if at.cost < self.retention.min_stage_seconds {
                continue;
            }
            if let Some(blob) = self.fetch(*at, &lower_sort_key(key)) {
                candidates.push((at.cost, lower_sort_key(key), Rec::Lower(*key), blob));
            }
        }
        for p in self.pending_ast.drain(..) {
            candidates.push((p.cost, ast_sort_key(&p.key), Rec::Ast(p.key), p.blob));
        }
        for p in self.pending_lower.drain(..) {
            candidates.push((p.cost, lower_sort_key(&p.key), Rec::Lower(p.key), p.blob));
        }
        // Most expensive first; eviction truncates the cheap tail.
        candidates.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));

        let mut buf = Vec::with_capacity(ARTIFACT_HEADER_LEN);
        buf.extend_from_slice(&ARTIFACT_MAGIC);
        buf.put_u32_le(ARTIFACT_VERSION);
        let mut ast = HashMap::new();
        let mut lower = HashMap::new();
        for (cost, _, kind, blob) in candidates {
            let (rec, fixed) = match &kind {
                Rec::Ast(k) => (encode_ast(k, cost, &blob), AST_FIXED),
                Rec::Lower(k) => (encode_lower(k, cost, &blob), LOWER_FIXED),
            };
            if buf.len() as u64 + rec.len() as u64 > self.retention.max_bytes
                && !(ast.is_empty() && lower.is_empty())
            {
                break; // budget reached: everything cheaper is evicted
            }
            let at = disk_at(buf.len() as u64, &rec, fixed, cost);
            match kind {
                Rec::Ast(k) => {
                    ast.insert(k, at);
                }
                Rec::Lower(k) => {
                    lower.insert(k, at);
                }
            }
            buf.extend_from_slice(&rec);
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        fs::write(&tmp, &buf)?;
        fs::rename(&tmp, path)?;
        self.ast = ast;
        self.lower = lower;
        self.file_bytes = buf.len() as u64;
        self.live_bytes = self
            .ast
            .values()
            .chain(self.lower.values())
            .map(|a| u64::from(a.record_len))
            .sum();
        self.needs_rewrite = false;
        Ok(())
    }
}

fn disk_at(record_off: u64, rec: &[u8], fixed: usize, cost: f64) -> DiskArtifact {
    DiskArtifact {
        record_off,
        record_len: rec.len() as u32,
        blob_off: record_off + 4 + fixed as u64,
        blob_len: (rec.len() - 4 - fixed - 4) as u32,
        cost,
    }
}

/// The exact tag + key prefix of an AST record's payload — both the
/// deterministic sort key for eviction and the identity `fetch` checks.
fn ast_sort_key(k: &AstArtifactKey) -> Vec<u8> {
    let mut v = vec![TAG_AST];
    v.extend_from_slice(&k.body_hash.to_le_bytes());
    v.push(k.compiler);
    v.extend_from_slice(&((k.ast_digest >> 64) as u64).to_le_bytes());
    v.extend_from_slice(&(k.ast_digest as u64).to_le_bytes());
    v
}

/// Lower-record half of [`ast_sort_key`], same contract.
fn lower_sort_key(k: &LowerArtifactKey) -> Vec<u8> {
    let mut v = vec![TAG_LOWER];
    v.extend_from_slice(&k.body_hash.to_le_bytes());
    v.push(k.compiler);
    v.push(k.arch);
    v.extend_from_slice(&((k.ast_digest >> 64) as u64).to_le_bytes());
    v.extend_from_slice(&(k.ast_digest as u64).to_le_bytes());
    v.extend_from_slice(&((k.lower_digest >> 64) as u64).to_le_bytes());
    v.extend_from_slice(&(k.lower_digest as u64).to_le_bytes());
    v
}

fn encode_ast(key: &AstArtifactKey, cost: f64, blob: &[u8]) -> Vec<u8> {
    let p_len = AST_FIXED + blob.len();
    let mut rec = Vec::with_capacity(4 + p_len + 4);
    rec.put_u32_le(p_len as u32);
    rec.put_u8(TAG_AST);
    rec.put_u64_le(key.body_hash);
    rec.put_u8(key.compiler);
    rec.put_u64_le((key.ast_digest >> 64) as u64);
    rec.put_u64_le(key.ast_digest as u64);
    rec.put_u64_le(cost.to_bits());
    rec.put_slice(blob);
    let ck = checksum(&rec[4..]);
    rec.put_u32_le(ck);
    rec
}

fn encode_lower(key: &LowerArtifactKey, cost: f64, blob: &[u8]) -> Vec<u8> {
    let p_len = LOWER_FIXED + blob.len();
    let mut rec = Vec::with_capacity(4 + p_len + 4);
    rec.put_u32_le(p_len as u32);
    rec.put_u8(TAG_LOWER);
    rec.put_u64_le(key.body_hash);
    rec.put_u8(key.compiler);
    rec.put_u8(key.arch);
    rec.put_u64_le((key.ast_digest >> 64) as u64);
    rec.put_u64_le(key.ast_digest as u64);
    rec.put_u64_le((key.lower_digest >> 64) as u64);
    rec.put_u64_le(key.lower_digest as u64);
    rec.put_u64_le(cost.to_bits());
    rec.put_slice(blob);
    let ck = checksum(&rec[4..]);
    rec.put_u32_le(ck);
    rec
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "bintuner_artifacts_{}_{}",
            std::process::id(),
            name
        ));
        let _ = fs::remove_dir_all(&p);
        fs::create_dir_all(&p).unwrap();
        p
    }

    fn akey(i: u64) -> AstArtifactKey {
        AstArtifactKey {
            body_hash: 0xB0D1 + i,
            compiler: 0,
            ast_digest: u128::from(i) << 64 | 0xA57,
        }
    }

    fn lkey(i: u64) -> LowerArtifactKey {
        LowerArtifactKey {
            body_hash: 0xB0D1 + i,
            compiler: 0,
            arch: 1,
            ast_digest: u128::from(i) << 64 | 0xA57,
            lower_digest: u128::from(i) << 64 | 0x10E4,
        }
    }

    fn blob(i: u64, len: usize) -> Vec<u8> {
        (0..len).map(|j| (i as usize * 31 + j) as u8).collect()
    }

    #[test]
    fn round_trip_and_fetch_verification() {
        let dir = scratch_dir("round_trip");
        let mut store = ArtifactStore::load(&dir);
        assert!(store.report().missing);
        store.insert_ast(akey(1), 0.5, blob(1, 100));
        store.insert_lower(lkey(2), 1.5, blob(2, 200));
        // Pending artifacts are NOT queryable before save.
        assert!(!store.has_ast(&akey(1)));
        assert_eq!(store.save().unwrap(), SaveOutcome::Written);
        assert!(store.has_ast(&akey(1)));
        assert_eq!(store.fetch_ast(&akey(1)).unwrap(), blob(1, 100));

        let reloaded = ArtifactStore::load(&dir);
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.report().valid_records, 2);
        assert_eq!(reloaded.fetch_ast(&akey(1)).unwrap(), blob(1, 100));
        assert_eq!(reloaded.fetch_lower(&lkey(2)).unwrap(), blob(2, 200));
        assert_eq!(reloaded.fetch_ast(&akey(9)), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_keeps_valid_prefix_and_fetch_survives_compaction_race() {
        let dir = scratch_dir("torn");
        let mut store = ArtifactStore::load(&dir);
        for i in 0..4 {
            store.insert_ast(akey(i), 1.0, blob(i, 64));
        }
        store.save().unwrap();
        let path = dir.join("artifacts.log");
        let bytes = fs::read(&path).unwrap();
        // Every truncation point loads a clean valid prefix.
        for cut in 0..bytes.len() {
            fs::write(&path, &bytes[..cut]).unwrap();
            let s = ArtifactStore::load(&dir);
            assert!(s.len() <= 4);
            for i in 0..4 {
                if let Some(b) = s.fetch_ast(&akey(i)) {
                    assert_eq!(b, blob(i, 64));
                }
            }
        }
        fs::write(&path, &bytes).unwrap();

        // A fetch against a stale index (file rewritten underneath)
        // either returns verified bytes or None — never garbage.
        let stale = ArtifactStore::load(&dir);
        let mut fresh = ArtifactStore::load(&dir).with_retention(ArtifactRetention {
            max_bytes: 200, // forces eviction + rewrite
            min_stage_seconds: 0.0,
        });
        fresh.insert_ast(akey(9), 5.0, blob(9, 64));
        fresh.save().unwrap();
        for i in 0..4 {
            if let Some(b) = stale.fetch_ast(&akey(i)) {
                assert_eq!(b, blob(i, 64));
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_evicts_cheapest_first_and_floors_by_cost() {
        let dir = scratch_dir("retention");
        let mut store = ArtifactStore::load(&dir).with_retention(ArtifactRetention {
            max_bytes: 3 * 200, // room for roughly two 200-byte blobs
            min_stage_seconds: 0.1,
        });
        store.insert_ast(akey(1), 0.01, blob(1, 200)); // below the floor: dropped
        store.insert_ast(akey(2), 9.0, blob(2, 200));
        store.insert_ast(akey(3), 4.0, blob(3, 200));
        store.insert_ast(akey(4), 1.0, blob(4, 200));
        store.save().unwrap();

        let got = ArtifactStore::load(&dir);
        assert!(!got.has_ast(&akey(1)), "sub-floor artifact persisted");
        assert!(got.has_ast(&akey(2)), "most expensive artifact evicted");
        assert!(
            !got.has_ast(&akey(4)) || got.has_ast(&akey(3)),
            "cheap survived while expensive evicted"
        );
        assert!(got.len() < 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_log_is_a_cold_start_and_heals_on_save() {
        let dir = scratch_dir("garbage");
        fs::write(dir.join("artifacts.log"), b"not an artifact log").unwrap();
        let mut store = ArtifactStore::load(&dir);
        assert!(store.is_empty());
        assert!(store.report().malformed_header);
        store.insert_ast(akey(1), 1.0, blob(1, 10));
        store.save().unwrap();
        let healed = ArtifactStore::load(&dir);
        assert!(!healed.report().malformed_header);
        assert_eq!(healed.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_parent_directory_degrades_to_a_skip() {
        let dir = std::env::temp_dir().join(format!(
            "bintuner_artifacts_{}_missing/never_created",
            std::process::id()
        ));
        let mut store = ArtifactStore::load(&dir);
        store.insert_ast(akey(1), 1.0, blob(1, 10));
        assert_eq!(store.save().unwrap(), SaveOutcome::SkippedLocked);
        assert_eq!(store.pending_len(), 1, "pending kept for a retry");
    }
}
