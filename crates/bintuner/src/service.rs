//! The evaluation-service backend: `evald` wired beneath the tuner.
//!
//! This is the glue between the generic client–server machinery in the
//! `evald` crate and BinTuner's fitness evaluation — the paper's actual
//! deployment shape (§5 "Implementation": the GA on a server, compile +
//! diff on a farm of clients), runnable entirely offline:
//!
//! * [`ServiceHandle::launch`] spawns N client threads. **Each client is
//!   a full [`FitnessEngine`]** with its own [`Compiler`] instance, its
//!   own `-O0` baseline, its own in-run caches, and an *in-memory*
//!   [`FitnessStore`] that accumulates the shard results it computes.
//! * The server side is the tuner's own engine: partition, the three
//!   cache tiers, the single writable store and the stats all stay where
//!   they were, and only the deduplicated miss list travels — the handle
//!   implements [`MissExecutor`] by pushing each miss batch through
//!   [`evald::EvalServer::evaluate`] (work-stealing shards, straggler
//!   re-dispatch, first result wins).
//! * At batch end every client drains its local store into
//!   [`evald::MergeRecord`]s; the server accumulates them and the tuner
//!   folds them into the persistent store before saving — appends are
//!   serialized through that single writer, which is what resolves the
//!   concurrent-store-writers problem for the service case (the advisory
//!   file lock covers the separate-processes case). Note that in *this*
//!   integration the fold is belt-and-braces, not the consistency
//!   mechanism: the server engine already records every dispatched miss
//!   result itself, so each folded record hits
//!   [`FitnessStore::insert`]'s identical-value dedup (that redundancy
//!   is what keeps the store complete even when a client dies before
//!   its merge). The merge path is load-bearing for embedders whose
//!   clients evaluate work the server did not dispatch;
//!   `merged_records` telemetry proves it ran.
//!
//! Every fitness an engine computes is a pure function of the genome, so
//! client count, transport, scheduling and even mid-run client death
//! change *nothing* about the run's trajectory — `tests/service_vs_local.rs`
//! pins bit-identity against the in-process engine.

use crate::engine::{EngineConfig, EngineStats, MissExecutor, MissResult, FAILED_COMPILE_PENALTY};
use crate::store::FitnessStore;
use crate::FitnessEngine;
use binrep::Arch;
use evald::wire::ShardStats;
use evald::{
    channel_duplex, run_client, unix_connect, unix_listener, ClientOptions, CostModel, Duplex,
    EvalServer, EvaldError, MergeRecord, ShardWorker, WireEval,
};
use minicc::ast::Module;
use minicc::{Compiler, CompilerKind, CompilerProfile};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread::JoinHandle;

pub use evald::{FaultPlan, ServiceConfig, ServiceStats, TransportKind};

/// What the evaluation service did over one run (on
/// [`crate::TuneResult::service`] when `TunerConfig::backend` is a
/// service).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceSummary {
    /// Transport the run used.
    pub transport: TransportKind,
    /// Clients launched.
    pub clients: usize,
    /// Clients lost mid-run (all work re-dispatched; the result is
    /// unaffected as long as one client survived).
    pub clients_lost: usize,
    /// Shards dispatched across all batches.
    pub shards: usize,
    /// Shard copies re-issued to idle clients (straggler re-dispatch).
    pub redispatched_shards: usize,
    /// Evaluations discarded because another client answered first
    /// (bit-identical duplicates; also mirrored into
    /// [`EngineStats::duplicate_results`]).
    pub duplicate_results: usize,
    /// Client-cache records merged back into the server-side store.
    pub merged_records: usize,
    /// Real compiles performed across the farm (includes duplicated
    /// straggler work, unlike the engine's logical compile count).
    pub farm_compiles: u64,
    /// Farm compiles that ran the full pipeline (no stage artifact
    /// reused in the client's tier-0 cache). The farm-side counterpart
    /// of [`EngineStats::full_compiles`] — the engine's counter is the
    /// *logical* classification (identical to an in-process run), this
    /// is the physical work the clients measured, straggler duplicates
    /// included.
    pub farm_full_compiles: u64,
    /// Farm compiles that reused a client-cached stage-1 artifact
    /// (optimized AST).
    pub farm_ast_reuse: u64,
    /// Farm compiles that reused a client-cached stage-2 artifact
    /// (lowered binary).
    pub farm_lower_reuse: u64,
}

/// Monotonic suffix for unix socket paths, so parallel tests (or
/// parallel tuners in one process) never collide.
static SOCKET_SEQ: AtomicU64 = AtomicU64::new(0);

/// A launched evaluation service: the dispatch server plus its client
/// threads. Implements [`MissExecutor`], so the tuner installs it
/// beneath its fitness engine with [`FitnessEngine::set_executor`].
///
/// Tear it down with [`ServiceHandle::finish`]; a handle dropped on an
/// error path (e.g. the engine's baseline compile failing after launch)
/// still severs every connection and joins every thread via `Drop`, so
/// no client or reader outlives the run.
pub struct ServiceHandle {
    /// `None` once [`ServiceHandle::finish`] has torn the server down.
    server: Mutex<Option<EvalServer>>,
    clients: Vec<JoinHandle<()>>,
    transport: TransportKind,
    launched: usize,
    socket_path: Option<std::path::PathBuf>,
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandle")
            .field("transport", &self.transport)
            .field("clients", &self.launched)
            .finish_non_exhaustive()
    }
}

/// One client thread: build a compiler + engine of our own and serve
/// shards until the server shuts us down. An engine that cannot even
/// compile the baseline exits immediately — the server sees the
/// disconnect and carries on with the remaining clients.
fn client_thread(
    kind: CompilerKind,
    module: Module,
    arch: Arch,
    artifact_cache: bool,
    duplex: Duplex,
    opts: ClientOptions,
) {
    let compiler = Compiler::new(kind);
    let Ok(engine) = FitnessEngine::with_store(
        &compiler,
        &module,
        arch,
        EngineConfig {
            workers: 1,
            artifact_cache,
            ..EngineConfig::default()
        },
        FitnessStore::in_memory(),
    ) else {
        return;
    };
    let mut worker = EngineWorker {
        engine: &engine,
        last: EngineStats::default(),
    };
    // A disconnect here is the server going away — normal end of service.
    let _ = run_client(&mut worker, duplex, &opts);
}

/// [`ShardWorker`] over a client-local [`FitnessEngine`].
struct EngineWorker<'e, 'a> {
    engine: &'e FitnessEngine<'a>,
    /// Stats snapshot at the last shard (per-shard deltas go on the
    /// wire).
    last: EngineStats,
}

impl ShardWorker for EngineWorker<'_, '_> {
    fn evaluate(&mut self, genomes: &[Vec<bool>]) -> (Vec<WireEval>, ShardStats) {
        use genetic::Evaluator;
        let evals = self.engine.evaluate_batch(genomes);
        let now = self.engine.stats();
        let stats = ShardStats {
            compiles: (now.compiles - self.last.compiles) as u32,
            cache_hits: (now.cache_hits + now.persistent_hits
                - self.last.cache_hits
                - self.last.persistent_hits) as u32,
            full_compiles: (now.full_compiles - self.last.full_compiles) as u32,
            ast_reuse: (now.ast_reuse - self.last.ast_reuse) as u32,
            lower_reuse: (now.lower_reuse - self.last.lower_reuse) as u32,
            wall_seconds: now.wall_seconds - self.last.wall_seconds,
        };
        self.last = now;
        let wire = evals
            .into_iter()
            .map(|e| WireEval {
                fitness_bits: e.fitness.to_bits(),
                // NCD is non-negative, so the penalty value is unambiguous.
                failed: e.fitness.to_bits() == FAILED_COMPILE_PENALTY.to_bits(),
                wall_seconds_bits: e.wall_seconds.to_bits(),
            })
            .collect();
        (wire, stats)
    }

    fn drain_merge(&mut self) -> Vec<MergeRecord> {
        self.engine
            .drain_pending_store()
            .into_iter()
            .map(|(key, value)| MergeRecord {
                module_hash: key.module_hash,
                compiler: key.compiler,
                arch: key.arch,
                effect_digest: key.effect_digest,
                fitness_bits: value.fitness.to_bits(),
                failed: value.failed,
                flags: value.flags.to_bools(),
            })
            .collect()
    }
}

impl ServiceHandle {
    /// Launch the service for one tuning run: spawn the client farm,
    /// connect it over the configured transport, and complete the
    /// handshake.
    ///
    /// # Errors
    ///
    /// Transport setup failures, or [`EvaldError::NoClients`] when no
    /// client survives the handshake.
    pub fn launch(
        cfg: &ServiceConfig,
        kind: CompilerKind,
        module: &Module,
        arch: Arch,
        artifact_cache: bool,
    ) -> Result<ServiceHandle, EvaldError> {
        let n_clients = cfg.clients.max(1);
        let n_flags = CompilerProfile::new(kind).n_flags() as u16;
        let cost = CostModel::from_features(&module.features());
        let mut server_side: Vec<Duplex> = Vec::with_capacity(n_clients);
        let mut handles = Vec::with_capacity(n_clients);
        let mut socket_path = None;

        let fault_for = |i: usize| {
            cfg.fault
                .and_then(|f| (f.client == i).then_some(f.after_shards))
        };
        match cfg.transport {
            TransportKind::Channel => {
                for i in 0..n_clients {
                    let (server_end, client_end) = channel_duplex();
                    server_side.push(server_end);
                    let module = module.clone();
                    let opts = ClientOptions {
                        client_id: i as u32,
                        n_flags,
                        fail_after_shards: fault_for(i),
                    };
                    handles.push(std::thread::spawn(move || {
                        client_thread(kind, module, arch, artifact_cache, client_end, opts);
                    }));
                }
            }
            TransportKind::Unix => {
                let path = std::env::temp_dir().join(format!(
                    "evald_{}_{}.sock",
                    std::process::id(),
                    SOCKET_SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                let listener = unix_listener(&path)?;
                for i in 0..n_clients {
                    let module = module.clone();
                    let opts = ClientOptions {
                        client_id: i as u32,
                        n_flags,
                        fail_after_shards: fault_for(i),
                    };
                    // Connect on *this* thread, then accept the pending
                    // connection: both steps fail fast through `?`. A
                    // client thread that connected for itself could die
                    // before connecting and leave the matching accept
                    // blocked forever. Connection order is irrelevant
                    // (any client may serve any shard).
                    let client_end = unix_connect(&path)?;
                    server_side.push(evald::transport::unix_accept(&listener)?);
                    handles.push(std::thread::spawn(move || {
                        client_thread(kind, module, arch, artifact_cache, client_end, opts);
                    }));
                }
                socket_path = Some(path);
            }
        }

        let server = EvalServer::new(server_side, cost, n_flags)?;
        Ok(ServiceHandle {
            server: Mutex::new(Some(server)),
            clients: handles,
            transport: cfg.transport,
            launched: n_clients,
            socket_path,
        })
    }

    /// Sever connections, join every thread, remove the socket file.
    /// Idempotent; shared by [`ServiceHandle::finish`] and `Drop`.
    fn teardown(&mut self) -> Option<ServiceStats> {
        let stats = self.server.lock().unwrap().take().map(EvalServer::shutdown);
        for h in self.clients.drain(..) {
            let _ = h.join();
        }
        if let Some(path) = self.socket_path.take() {
            let _ = std::fs::remove_file(path);
        }
        stats
    }

    /// Shut the service down: stop the clients, join their threads, and
    /// return the final telemetry plus the accumulated merge records for
    /// the tuner's single-writer store fold.
    pub fn finish(mut self) -> (ServiceSummary, Vec<MergeRecord>) {
        let merged = self
            .server
            .lock()
            .unwrap()
            .as_mut()
            .map(EvalServer::take_merged)
            .unwrap_or_default();
        let stats = self.teardown().expect("finish tears down once");
        (
            ServiceSummary {
                transport: self.transport,
                clients: self.launched,
                clients_lost: stats.clients_lost,
                shards: stats.shards,
                redispatched_shards: stats.redispatched_shards,
                duplicate_results: stats.duplicate_results,
                merged_records: stats.merged_records,
                farm_compiles: stats.client_compiles,
                farm_full_compiles: stats.client_full_compiles,
                farm_ast_reuse: stats.client_ast_reuse,
                farm_lower_reuse: stats.client_lower_reuse,
            },
            merged,
        )
    }
}

impl Drop for ServiceHandle {
    /// Error paths between launch and [`ServiceHandle::finish`] (e.g.
    /// [`crate::TuneError::Baseline`] from the engine build) must not
    /// leak blocked client/reader threads or the socket file.
    fn drop(&mut self) {
        self.teardown();
    }
}

impl MissExecutor for ServiceHandle {
    fn execute(&self, misses: &[Vec<bool>]) -> Vec<MissResult> {
        let mut guard = self.server.lock().unwrap();
        let server = guard.as_mut().expect("service already finished");
        let evals = match server.evaluate(misses) {
            Ok(evals) => evals,
            // Losing *every* client mid-run leaves nothing to evaluate
            // on; there is no degraded answer that keeps the GA honest,
            // and the batch Evaluator protocol has no error channel, so
            // this is the one unrecoverable stop. (Losing any proper
            // subset of clients is handled by re-dispatch and never gets
            // here.)
            Err(e) => panic!(
                "evaluation service failed with work outstanding: {e}{}",
                server
                    .last_loss()
                    .map(|l| format!(" (last client loss: {l})"))
                    .unwrap_or_default()
            ),
        };
        evals
            .into_iter()
            .map(|e| MissResult {
                fitness: e.fitness(),
                failed: e.failed,
                wall_seconds: e.wall_seconds(),
            })
            .collect()
    }
}
