//! The evaluation-service backend: `evald` wired beneath the tuner.
//!
//! This is the glue between the generic client–server machinery in the
//! `evald` crate and BinTuner's fitness evaluation — the paper's actual
//! deployment shape (§5 "Implementation": the GA on a server, compile +
//! diff on a farm of clients), runnable entirely offline:
//!
//! * [`ServiceHandle::launch`] spawns N client threads. **Each client is
//!   a full [`FitnessEngine`]** with its own [`Compiler`] instance, its
//!   own `-O0` baseline, its own in-run caches, and an *in-memory*
//!   [`FitnessStore`] that accumulates the shard results it computes.
//! * The server side is the tuner's own engine: partition, the three
//!   cache tiers, the single writable store and the stats all stay where
//!   they were, and only the deduplicated miss list travels — the handle
//!   implements [`MissExecutor`] by pushing each miss batch through
//!   [`evald::EvalServer::evaluate`] (work-stealing shards, straggler
//!   re-dispatch, first result wins).
//! * At batch end every client drains its local store into
//!   [`evald::MergeRecord`]s; the server accumulates them and the tuner
//!   folds them into the persistent store before saving — appends are
//!   serialized through that single writer, which is what resolves the
//!   concurrent-store-writers problem for the service case (the advisory
//!   file lock covers the separate-processes case). Note that in *this*
//!   integration the fold is belt-and-braces, not the consistency
//!   mechanism: the server engine already records every dispatched miss
//!   result itself, so each folded record hits
//!   [`FitnessStore::insert`]'s identical-value dedup (that redundancy
//!   is what keeps the store complete even when a client dies before
//!   its merge). The merge path is load-bearing for embedders whose
//!   clients evaluate work the server did not dispatch;
//!   `merged_records` telemetry proves it ran.
//!
//! Every fitness an engine computes is a pure function of the genome, so
//! client count, transport, scheduling and even mid-run client death
//! change *nothing* about the run's trajectory — `tests/service_vs_local.rs`
//! pins bit-identity against the in-process engine.

use crate::engine::{
    EngineConfig, EngineStats, EngineTelemetry, MissExecutor, MissResult, FAILED_COMPILE_PENALTY,
};
use crate::farm::{
    resolve_worker_binary, BackoffSchedule, Endpoint, Supervisor, SupervisorVerdict, WorkerSpec,
};
use crate::store::{ArtifactStore, FitnessStore};
use crate::FitnessEngine;
use binrep::Arch;
use evald::transport::{tcp_accept, unix_accept};
use evald::wire::ShardStats;
use evald::{
    channel_duplex, run_client, tcp_listener, unix_connect, unix_listener, BoundUnixListener,
    ClientOptions, CostModel, Duplex, EvalServer, EvaldError, MergeRecord, ServerTelemetry,
    ShardWorker, WireAstArtifact, WireEval, WireLowerArtifact, WireSpan,
};
use genetic::EvalAbort;
use minicc::ast::Module;
use minicc::{Compiler, CompilerKind, CompilerProfile};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub use evald::{
    FaultKind, FaultPlan, LivenessConfig, ProcessFarm, ServiceConfig, ServiceStats, TransportKind,
    WorkerMode,
};

/// Telemetry wiring for one service launch
/// ([`ServiceHandle::launch_with`]). The registry receives the farm's
/// dispatch-latency histogram and client-churn counters; the tracer
/// receives server-side dispatch spans and the worker stage spans
/// stitched in off `Result` frames. Workers (threads or processes)
/// trace into per-client id ranges when the tracer is enabled, so a
/// stitched trace never has colliding span ids.
#[derive(Debug, Clone)]
pub struct FarmTelemetry {
    /// Metric families for the farm (`bintuner_farm_*`).
    pub registry: Arc<btel::Registry>,
    /// Server-side span recorder.
    pub tracer: btel::Tracer,
}

impl FarmTelemetry {
    /// Resolve the farm's server-side metric handles into an
    /// [`evald::ServerTelemetry`].
    fn server_telemetry(&self) -> ServerTelemetry {
        ServerTelemetry {
            tracer: self.tracer.clone(),
            dispatch_seconds: self.registry.histogram(
                "bintuner_farm_dispatch_seconds",
                "shard dispatch-to-first-result wall clock",
            ),
            redispatched: self.registry.counter(
                "bintuner_farm_redispatched_total",
                "shard copies re-issued to idle clients (straggler steals)",
            ),
            clients_joined: self.registry.counter(
                "bintuner_farm_clients_joined_total",
                "clients absorbed after launch (reconnects/respawns)",
            ),
            clients_lost: self
                .registry
                .counter("bintuner_farm_clients_lost_total", "clients lost mid-run"),
            heartbeat_misses: self.registry.counter(
                "bintuner_farm_heartbeat_misses_total",
                "heartbeat probes unanswered past one interval",
            ),
            evictions: self.registry.counter(
                "bintuner_farm_evictions_total",
                "clients evicted by the liveness plane (hung or late)",
            ),
        }
    }

    /// Resolve the respawn-plane metric handles.
    fn supervision_counters(&self) -> SupervisionCounters {
        SupervisionCounters {
            respawns: self.registry.counter(
                "bintuner_farm_respawns_total",
                "worker processes respawned under supervision",
            ),
            backoff_ms: self.registry.counter(
                "bintuner_farm_backoff_ms_total",
                "milliseconds spent in supervised respawn backoff",
            ),
        }
    }
}

/// Respawn-plane metric handles (`bintuner_farm_{respawns,backoff_ms}`),
/// held by the service so respawns *after* launch still count.
#[derive(Clone)]
struct SupervisionCounters {
    respawns: Arc<btel::Counter>,
    backoff_ms: Arc<btel::Counter>,
}

/// What the evaluation service did over one run (on
/// [`crate::TuneResult::service`] when `TunerConfig::backend` is a
/// service).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSummary {
    /// Transport the run used.
    pub transport: TransportKind,
    /// Whether clients were pre-forked worker processes (vs threads).
    pub process_workers: bool,
    /// Clients launched.
    pub clients: usize,
    /// Clients lost mid-run (all work re-dispatched; the result is
    /// unaffected as long as one client survived).
    pub clients_lost: usize,
    /// Shards dispatched across all batches.
    pub shards: usize,
    /// Shard copies re-issued to idle clients (straggler re-dispatch).
    pub redispatched_shards: usize,
    /// Evaluations discarded because another client answered first
    /// (bit-identical duplicates; also mirrored into
    /// [`EngineStats::duplicate_results`]).
    pub duplicate_results: usize,
    /// Client-cache records merged back into the server-side store.
    pub merged_records: usize,
    /// Client-produced stage artifacts merged back into the server-side
    /// artifact store.
    pub merged_artifacts: usize,
    /// Real compiles performed across the farm (includes duplicated
    /// straggler work, unlike the engine's logical compile count).
    pub farm_compiles: u64,
    /// Farm compiles that ran the full pipeline (no stage artifact
    /// reused in the client's tier-0 cache). The farm-side counterpart
    /// of [`EngineStats::full_compiles`] — the engine's counter is the
    /// *logical* classification (identical to an in-process run), this
    /// is the physical work the clients measured, straggler duplicates
    /// included.
    pub farm_full_compiles: u64,
    /// Farm compiles that reused a client-cached stage-1 artifact
    /// (optimized AST).
    pub farm_ast_reuse: u64,
    /// Farm compiles that reused a client-cached stage-2 artifact
    /// (lowered binary).
    pub farm_lower_reuse: u64,
    /// Clients that joined *after* launch (reconnecting/respawned worker
    /// processes absorbed mid-run).
    pub clients_joined: usize,
    /// Clients the liveness plane evicted (missed heartbeats or a blown
    /// dispatch deadline); a subset of `clients_lost`.
    pub evicted_clients: usize,
    /// Heartbeat probes still unanswered when the next probe fired.
    pub heartbeat_misses: u64,
    /// Worker processes that had to be killed (drain timeout at
    /// shutdown, or the [`ServiceHandle::kill_worker`] chaos hook).
    pub workers_killed: usize,
    /// Shard wall-time measurements folded into the adaptive cost model.
    pub cost_observations: u64,
    /// The adaptive cost model's converged farm-wide estimate
    /// (seconds per genome), once it has seen enough shards; `None`
    /// while the static [`minicc::ModuleFeatures`] prior still rules.
    pub observed_secs_per_genome: Option<f64>,
    /// Shard size chosen for each batch, in batch order — the trace
    /// showing shard sizes converging to observed farm throughput.
    pub shard_sizes: Vec<usize>,
}

/// Monotonic suffix for unix socket paths, so parallel tests (or
/// parallel tuners in one process) never collide.
static SOCKET_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh per-process, per-launch unix socket path in the temp dir.
fn farm_socket_path() -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "evald_{}_{}.sock",
        std::process::id(),
        SOCKET_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A launched evaluation service: the dispatch server plus its client
/// threads. Implements [`MissExecutor`], so the tuner installs it
/// beneath its fitness engine with [`FitnessEngine::set_executor`].
///
/// Tear it down with [`ServiceHandle::finish`]; a handle dropped on an
/// error path (e.g. the engine's baseline compile failing after launch)
/// still severs every connection and joins every thread via `Drop`, so
/// no client or reader outlives the run.
pub struct ServiceHandle {
    /// `None` once [`ServiceHandle::finish`] has torn the server down.
    server: Mutex<Option<EvalServer>>,
    /// The service failure behind the most recent batch abort (set when
    /// [`MissExecutor::execute`] returns `Err`; the tuner drains it via
    /// [`ServiceHandle::take_failure`] to build `TuneError::Service`).
    failure: Mutex<Option<Arc<EvaldError>>>,
    /// Thread-mode clients.
    clients: Vec<JoinHandle<()>>,
    /// Process-mode workers (`None` slots are workers already reaped,
    /// e.g. by [`ServiceHandle::kill_worker`]).
    children: Mutex<Vec<Option<std::process::Child>>>,
    /// Everything needed to respawn a worker ([`ServiceHandle::spawn_worker`]).
    spec: Option<WorkerSpec>,
    /// Client ids continue past the initial farm (matches the server's
    /// injector numbering).
    next_worker_id: AtomicU32,
    /// The reconnect path: keeps accepting on the farm's listener and
    /// injects late connections into the running server.
    acceptor: Option<Acceptor>,
    drain_grace_ms: u64,
    workers_killed: AtomicUsize,
    /// Respawn-plane metric handles (`None` without telemetry or in
    /// thread mode — threads are never respawned).
    supervision: Option<SupervisionCounters>,
    transport: TransportKind,
    process_workers: bool,
    launched: usize,
}

/// The acceptor thread and its stop flag. The thread owns the farm's
/// listener, so stopping it also closes the listening socket (and, for
/// unix transports, unlinks the socket file via [`BoundUnixListener`]'s
/// `Drop`).
struct Acceptor {
    stop: Arc<AtomicBool>,
    thread: JoinHandle<()>,
}

/// The farm's listening socket, either flavor, in nonblocking mode (the
/// launch deadline loop and the acceptor's stop flag both need accept to
/// return instead of parking).
enum FarmListener {
    Unix(BoundUnixListener),
    Tcp(std::net::TcpListener),
}

impl FarmListener {
    fn set_nonblocking(&self) -> std::io::Result<()> {
        match self {
            FarmListener::Unix(l) => l.listener().set_nonblocking(true),
            FarmListener::Tcp(l) => l.set_nonblocking(true),
        }
    }

    fn accept(&self) -> Result<Duplex, EvaldError> {
        match self {
            FarmListener::Unix(l) => unix_accept(l),
            FarmListener::Tcp(l) => tcp_accept(l),
        }
    }

    /// Whether an accept error is just "nothing pending yet".
    fn would_block(err: &EvaldError) -> bool {
        matches!(err, EvaldError::Io(e) if e.kind() == std::io::ErrorKind::WouldBlock)
    }
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandle")
            .field("transport", &self.transport)
            .field("clients", &self.launched)
            .finish_non_exhaustive()
    }
}

/// One client thread: build a compiler + engine of our own and serve
/// shards until the server shuts us down. An engine that cannot even
/// compile the baseline exits immediately — the server sees the
/// disconnect and carries on with the remaining clients.
fn client_thread(
    kind: CompilerKind,
    module: Module,
    arch: Arch,
    artifact_cache: bool,
    trace: bool,
    duplex: Duplex,
    opts: ClientOptions,
) {
    let compiler = Compiler::new(kind);
    let Ok(mut engine) = FitnessEngine::with_store(
        &compiler,
        &module,
        arch,
        EngineConfig {
            workers: 1,
            artifact_cache,
            ..EngineConfig::default()
        },
        FitnessStore::in_memory(),
    ) else {
        return;
    };
    if artifact_cache {
        // An in-memory artifact store is a pure *producer* seam: it is
        // never saved, so it never answers membership queries — the
        // engine's compile classification (and thus the differential
        // bit-identity guarantee) is untouched. Its only job is to
        // capture freshly built stage artifacts for the merge barrier,
        // where the server folds them into the persistent store.
        engine.set_artifact_store(ArtifactStore::in_memory());
    }
    if trace {
        // Thread clients trace exactly like worker processes do: a
        // private registry (only spans travel back over the wire) and a
        // per-client span-id range for collision-free stitching.
        let registry = btel::Registry::new();
        let tracer = btel::Tracer::with_id_base(4096, (u64::from(opts.client_id) + 1) << 48);
        engine.set_telemetry(EngineTelemetry::from_registry(&registry, tracer));
    }
    let mut worker = EngineWorker::new(&engine);
    // A disconnect here is the server going away — normal end of service.
    let _ = run_client(&mut worker, duplex, &opts);
}

/// [`ShardWorker`] over a client-local [`FitnessEngine`] — shared by
/// thread clients (here) and worker processes ([`crate::farm`]).
pub(crate) struct EngineWorker<'e, 'a> {
    engine: &'e FitnessEngine<'a>,
    /// Stats snapshot at the last shard (per-shard deltas go on the
    /// wire).
    last: EngineStats,
}

impl<'e, 'a> EngineWorker<'e, 'a> {
    pub(crate) fn new(engine: &'e FitnessEngine<'a>) -> EngineWorker<'e, 'a> {
        EngineWorker {
            engine,
            last: EngineStats::default(),
        }
    }
}

impl ShardWorker for EngineWorker<'_, '_> {
    fn evaluate(&mut self, genomes: &[Vec<bool>], span: u64) -> (Vec<WireEval>, ShardStats) {
        use genetic::Evaluator;
        // Re-parent this shard's stage spans to the server's dispatch
        // span (`0` = tracing off upstream; a disabled local tracer
        // ignores the parent anyway).
        if let Some(tel) = self.engine.telemetry() {
            tel.set_trace_parent(span);
        }
        // A worker-local engine has no executor installed, and an
        // executor-less engine is infallible by construction (the
        // `Evaluator` contract: compile failures are scored, not
        // errors) — so this expect can never fire.
        let evals = self
            .engine
            .evaluate_batch(genomes)
            .expect("executor-less worker engine cannot abort");
        let now = self.engine.stats();
        let stats = ShardStats {
            compiles: (now.compiles - self.last.compiles) as u32,
            cache_hits: (now.cache_hits + now.persistent_hits
                - self.last.cache_hits
                - self.last.persistent_hits) as u32,
            full_compiles: (now.full_compiles - self.last.full_compiles) as u32,
            ast_reuse: (now.ast_reuse - self.last.ast_reuse) as u32,
            lower_reuse: (now.lower_reuse - self.last.lower_reuse) as u32,
            wall_seconds: now.wall_seconds - self.last.wall_seconds,
            span,
        };
        self.last = now;
        let wire = evals
            .into_iter()
            .map(|e| WireEval {
                fitness_bits: e.fitness.to_bits(),
                // NCD is non-negative, so the penalty value is unambiguous.
                failed: e.fitness.to_bits() == FAILED_COMPILE_PENALTY.to_bits(),
                // The frame carries one wall figure per eval, so the
                // worker's shared stage-1 production folds back in here:
                // the server charges the farm's physical time, not the
                // local attribution split.
                wall_seconds_bits: (e.wall_seconds + e.ast_produce_seconds).to_bits(),
            })
            .collect();
        (wire, stats)
    }

    fn drain_spans(&mut self) -> Vec<WireSpan> {
        self.engine.telemetry().map_or_else(Vec::new, |tel| {
            tel.tracer
                .drain()
                .into_iter()
                .map(|s| WireSpan {
                    id: s.id,
                    parent: s.parent,
                    name: s.name,
                    start_us: s.start_us,
                    dur_us: s.dur_us,
                })
                .collect()
        })
    }

    fn drain_merge(&mut self) -> Vec<MergeRecord> {
        self.engine
            .drain_pending_store()
            .into_iter()
            .map(|(key, value)| MergeRecord {
                module_hash: key.module_hash,
                compiler: key.compiler,
                arch: key.arch,
                effect_digest: key.effect_digest,
                fitness_bits: value.fitness.to_bits(),
                failed: value.failed,
                flags: value.flags.to_bools(),
            })
            .collect()
    }

    fn drain_artifacts(&mut self) -> (Vec<WireAstArtifact>, Vec<WireLowerArtifact>) {
        let pending = self.engine.drain_pending_artifacts();
        (
            pending
                .ast
                .into_iter()
                .map(|(k, cost, blob)| WireAstArtifact {
                    body_hash: k.body_hash,
                    compiler: k.compiler,
                    ast_digest: k.ast_digest,
                    cost_bits: cost.to_bits(),
                    blob,
                })
                .collect(),
            pending
                .lower
                .into_iter()
                .map(|(k, cost, blob)| WireLowerArtifact {
                    body_hash: k.body_hash,
                    compiler: k.compiler,
                    arch: k.arch,
                    ast_digest: k.ast_digest,
                    lower_digest: k.lower_digest,
                    cost_bits: cost.to_bits(),
                    blob,
                })
                .collect(),
        )
    }
}

/// Spawn one worker process, retrying through the deterministic backoff
/// schedule: one bad fork (transient EAGAIN, racing resource limits)
/// must not fail the whole launch. Gives up — returning the *last*
/// spawn error — after `attempts` consecutive failures.
fn spawn_with_retry(
    spec: &WorkerSpec,
    client_id: u32,
    fault: Option<(usize, FaultKind)>,
    attempts: u32,
    supervision: Option<&SupervisionCounters>,
) -> std::io::Result<std::process::Child> {
    let mut supervisor = Supervisor::new(BackoffSchedule::default(), attempts.max(1));
    loop {
        match spec.spawn(client_id, fault) {
            Ok(child) => return Ok(child),
            Err(e) => match supervisor.on_failure() {
                SupervisorVerdict::Retry { delay_ms } => {
                    if let Some(c) = supervision {
                        c.respawns.inc();
                        c.backoff_ms.add(delay_ms);
                    }
                    std::thread::sleep(Duration::from_millis(delay_ms));
                }
                SupervisorVerdict::GiveUp => return Err(e),
            },
        }
    }
}

impl ServiceHandle {
    /// Launch the service for one tuning run: spawn the client farm,
    /// connect it over the configured transport, and complete the
    /// handshake.
    ///
    /// # Errors
    ///
    /// Transport setup failures, or [`EvaldError::NoClients`] when no
    /// client survives the handshake.
    pub fn launch(
        cfg: &ServiceConfig,
        kind: CompilerKind,
        module: &Module,
        arch: Arch,
        artifact_cache: bool,
    ) -> Result<ServiceHandle, EvaldError> {
        ServiceHandle::launch_with(cfg, kind, module, arch, artifact_cache, None)
    }

    /// [`ServiceHandle::launch`] with telemetry wiring: the server's
    /// dispatch metrics and stitched spans land in `tel`'s registry and
    /// tracer, and — when the tracer is enabled — every client traces
    /// its compile stages back over the wire. `None` is the Off-mode
    /// purity contract: bit-identical to a pre-telemetry launch.
    ///
    /// # Errors
    ///
    /// See [`ServiceHandle::launch`].
    pub fn launch_with(
        cfg: &ServiceConfig,
        kind: CompilerKind,
        module: &Module,
        arch: Arch,
        artifact_cache: bool,
        tel: Option<FarmTelemetry>,
    ) -> Result<ServiceHandle, EvaldError> {
        let n_clients = cfg.clients.max(1);
        let n_flags = CompilerProfile::new(kind).n_flags() as u16;
        let cost = CostModel::from_features(&module.features());
        let trace = tel.as_ref().is_some_and(|t| t.tracer.is_enabled());
        let fault_for = |i: usize| {
            cfg.fault
                .and_then(|f| (f.client == i).then_some((f.after_shards, f.kind)))
        };

        if let WorkerMode::Processes(farm) = &cfg.workers {
            return ServiceHandle::launch_processes(
                cfg,
                farm,
                kind,
                module,
                arch,
                artifact_cache,
                n_clients,
                n_flags,
                cost,
                &fault_for,
                tel,
            );
        }

        let mut server_side: Vec<Duplex> = Vec::with_capacity(n_clients);
        let mut handles = Vec::with_capacity(n_clients);
        match cfg.transport {
            TransportKind::Channel => {
                for i in 0..n_clients {
                    let (server_end, client_end) = channel_duplex();
                    server_side.push(server_end);
                    let module = module.clone();
                    let fault = fault_for(i);
                    let opts = ClientOptions {
                        client_id: i as u32,
                        n_flags,
                        fail_after_shards: fault.map(|(after, _)| after),
                        fault_kind: fault.map(|(_, kind)| kind).unwrap_or_default(),
                    };
                    handles.push(std::thread::spawn(move || {
                        client_thread(kind, module, arch, artifact_cache, trace, client_end, opts);
                    }));
                }
            }
            TransportKind::Unix => {
                // The listener drops (and unlinks its socket file) when
                // this arm ends — every client has connected by then.
                let listener = unix_listener(&farm_socket_path())?;
                for i in 0..n_clients {
                    let module = module.clone();
                    let fault = fault_for(i);
                    let opts = ClientOptions {
                        client_id: i as u32,
                        n_flags,
                        fail_after_shards: fault.map(|(after, _)| after),
                        fault_kind: fault.map(|(_, kind)| kind).unwrap_or_default(),
                    };
                    // Connect on *this* thread, then accept the pending
                    // connection: both steps fail fast through `?`. A
                    // client thread that connected for itself could die
                    // before connecting and leave the matching accept
                    // blocked forever. Connection order is irrelevant
                    // (any client may serve any shard).
                    let client_end = unix_connect(listener.path())?;
                    server_side.push(unix_accept(&listener)?);
                    handles.push(std::thread::spawn(move || {
                        client_thread(kind, module, arch, artifact_cache, trace, client_end, opts);
                    }));
                }
            }
            TransportKind::Tcp => {
                let (listener, addr) = tcp_listener()?;
                for i in 0..n_clients {
                    let module = module.clone();
                    let fault = fault_for(i);
                    let opts = ClientOptions {
                        client_id: i as u32,
                        n_flags,
                        fail_after_shards: fault.map(|(after, _)| after),
                        fault_kind: fault.map(|(_, kind)| kind).unwrap_or_default(),
                    };
                    // Same connect-then-accept discipline as Unix.
                    let client_end = evald::tcp_connect(addr)?;
                    server_side.push(tcp_accept(&listener)?);
                    handles.push(std::thread::spawn(move || {
                        client_thread(kind, module, arch, artifact_cache, trace, client_end, opts);
                    }));
                }
            }
        }

        let mut server = EvalServer::new(server_side, cost, n_flags)?;
        server.set_liveness(cfg.liveness);
        if let Some(t) = &tel {
            server.set_telemetry(t.server_telemetry());
        }
        Ok(ServiceHandle {
            server: Mutex::new(Some(server)),
            failure: Mutex::new(None),
            clients: handles,
            children: Mutex::new(Vec::new()),
            spec: None,
            next_worker_id: AtomicU32::new(n_clients as u32),
            acceptor: None,
            drain_grace_ms: 0,
            workers_killed: AtomicUsize::new(0),
            supervision: None,
            transport: cfg.transport,
            process_workers: false,
            launched: n_clients,
        })
    }

    /// Process-mode launch: bind the listener, pre-fork the worker
    /// processes, accept their connections (with a deadline, so a worker
    /// that dies before connecting cannot wedge the launch), handshake,
    /// ship the job description, and start the reconnect acceptor.
    #[allow(clippy::too_many_arguments)] // internal launch seam
    fn launch_processes(
        cfg: &ServiceConfig,
        farm: &ProcessFarm,
        kind: CompilerKind,
        module: &Module,
        arch: Arch,
        artifact_cache: bool,
        n_clients: usize,
        n_flags: u16,
        cost: CostModel,
        fault_for: &dyn Fn(usize) -> Option<(usize, FaultKind)>,
        tel: Option<FarmTelemetry>,
    ) -> Result<ServiceHandle, EvaldError> {
        let supervision = tel.as_ref().map(FarmTelemetry::supervision_counters);
        let binary = resolve_worker_binary(farm.worker_binary.as_ref())?;
        let (listener, endpoint) = match cfg.transport {
            TransportKind::Channel => {
                return Err(EvaldError::Protocol(
                    "process workers require a stream transport (unix or tcp) \
                     — there is no channel across an exec",
                ))
            }
            TransportKind::Unix => {
                let l = unix_listener(&farm_socket_path())?;
                let path = l.path().to_path_buf();
                (FarmListener::Unix(l), Endpoint::Unix(path))
            }
            TransportKind::Tcp => {
                let (l, addr) = tcp_listener()?;
                (FarmListener::Tcp(l), Endpoint::Tcp(addr))
            }
        };
        listener.set_nonblocking()?;
        let spec = WorkerSpec {
            binary,
            kind,
            arch,
            artifact_cache,
            endpoint,
            trace: tel.as_ref().is_some_and(|t| t.tracer.is_enabled()),
        };

        let mut children: Vec<Option<std::process::Child>> = Vec::with_capacity(n_clients);
        // Everything after the first spawn must reap the children on
        // failure — a launch error must not leak worker processes.
        let launch_result = (|| {
            for i in 0..n_clients {
                children.push(Some(spawn_with_retry(
                    &spec,
                    i as u32,
                    fault_for(i),
                    farm.spawn_attempts,
                    supervision.as_ref(),
                )?));
            }
            let mut server_side: Vec<Duplex> = Vec::with_capacity(n_clients);
            // The accept deadline comes from the farm config (it used to
            // be hard-coded at 30 s); `0` means "no patience at all".
            let deadline = Instant::now() + Duration::from_millis(farm.accept_deadline_ms);
            let mut all_dead_since: Option<Instant> = None;
            while server_side.len() < n_clients {
                match listener.accept() {
                    Ok(duplex) => server_side.push(duplex),
                    Err(e) if FarmListener::would_block(&e) => {
                        // A worker that died before connecting is never
                        // coming; give stragglers a short grace for
                        // connections already in the backlog, then let
                        // the handshake decide with what arrived.
                        let mut alive = 0;
                        for child in children.iter_mut().flatten() {
                            if matches!(child.try_wait(), Ok(None)) {
                                alive += 1;
                            }
                        }
                        if alive == 0 {
                            let t = *all_dead_since.get_or_insert_with(Instant::now);
                            if t.elapsed() > Duration::from_millis(250) {
                                break;
                            }
                        } else {
                            all_dead_since = None;
                        }
                        if Instant::now() > deadline {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => return Err(e),
                }
            }
            let mut server = EvalServer::new(server_side, cost, n_flags)?;
            server.set_liveness(cfg.liveness);
            if let Some(t) = &tel {
                server.set_telemetry(t.server_telemetry());
            }
            // Workers build their engines from the job description; ship
            // it before any Work frame can be dispatched.
            server.set_job(minicc::codec::encode_module(module));
            Ok(server)
        })();
        let server = match launch_result {
            Ok(server) => server,
            Err(e) => {
                for child in children.iter_mut().flatten() {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                return Err(e);
            }
        };

        // The reconnect path: a worker that dies is absorbed on return
        // (or replacement via spawn_worker) by injecting the accepted
        // connection into the running server.
        let injector = server.injector();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok(duplex) => {
                        injector.inject(duplex);
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(15)),
                }
            }
            // `listener` drops here: socket closed, unix file unlinked.
        });

        Ok(ServiceHandle {
            server: Mutex::new(Some(server)),
            failure: Mutex::new(None),
            clients: Vec::new(),
            children: Mutex::new(children),
            spec: Some(spec),
            next_worker_id: AtomicU32::new(n_clients as u32),
            acceptor: Some(Acceptor { stop, thread }),
            drain_grace_ms: farm.drain_grace_ms,
            workers_killed: AtomicUsize::new(0),
            supervision,
            transport: cfg.transport,
            process_workers: true,
            launched: n_clients,
        })
    }

    /// Chaos hook: SIGKILL worker process `idx` (zero-based launch
    /// order). Returns `false` when there is no live worker at that
    /// index (thread mode, out of range, or already killed). The
    /// running batch recovers via straggler re-dispatch.
    pub fn kill_worker(&self, idx: usize) -> bool {
        let mut children = self.children.lock().unwrap();
        let Some(slot) = children.get_mut(idx) else {
            return false;
        };
        let Some(mut child) = slot.take() else {
            return false;
        };
        let _ = child.kill();
        let _ = child.wait();
        self.workers_killed.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Spawn one additional worker process connecting to the running
    /// farm (the replacement half of the reconnect story). Returns the
    /// client id the worker announces.
    ///
    /// # Errors
    ///
    /// Unsupported in thread mode; otherwise whatever the OS reports
    /// for the spawn.
    pub fn spawn_worker(&self) -> std::io::Result<u32> {
        let spec = self.spec.as_ref().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "spawn_worker requires process-mode workers",
            )
        })?;
        let id = self.next_worker_id.fetch_add(1, Ordering::Relaxed);
        let child = spec.spawn(id, None)?;
        if let Some(c) = &self.supervision {
            c.respawns.inc();
        }
        self.children.lock().unwrap().push(Some(child));
        Ok(id)
    }

    /// A live snapshot of the service telemetry (`None` once
    /// [`ServiceHandle::finish`] has consumed the server). Lets chaos
    /// tests watch a respawned worker get absorbed mid-run.
    pub fn stats(&self) -> Option<ServiceStats> {
        self.server.lock().unwrap().as_ref().map(EvalServer::stats)
    }

    /// Take the service failure behind the most recent batch abort, if
    /// one was recorded ([`MissExecutor::execute`] returning `Err`).
    /// The tuner maps it into [`crate::TuneError::Service`] so the
    /// caller — notably the daemon — sees *which* transport-level
    /// failure killed the job, not just that the GA stopped.
    pub fn take_failure(&self) -> Option<Arc<EvaldError>> {
        self.failure.lock().unwrap().take()
    }

    /// Drain the client-produced stage artifacts accumulated on the
    /// merge barrier (the tuner folds them into its persistent
    /// [`ArtifactStore`] before saving — the single-writer rule, same
    /// as the fitness-record fold). Call before
    /// [`ServiceHandle::finish`].
    pub fn take_artifacts(&self) -> (Vec<WireAstArtifact>, Vec<WireLowerArtifact>) {
        let mut guard = self.server.lock().unwrap();
        guard
            .as_mut()
            .map(EvalServer::take_merged_artifacts)
            .unwrap_or_default()
    }

    /// Sever connections, join every thread, drain (or kill) every
    /// worker process. Idempotent; shared by [`ServiceHandle::finish`]
    /// and `Drop`.
    ///
    /// Order matters: the acceptor stops first (no new connections can
    /// enter a dying server; dropping its listener unlinks the unix
    /// socket file), then the server shuts down (Shutdown frames let
    /// workers exit cleanly), then threads are joined and processes
    /// drained within the configured grace before being killed.
    fn teardown(&mut self) -> Option<ServiceStats> {
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.stop.store(true, Ordering::Relaxed);
            let _ = acceptor.thread.join();
        }
        let stats = self.server.lock().unwrap().take().map(EvalServer::shutdown);
        for h in self.clients.drain(..) {
            let _ = h.join();
        }
        self.drain_children();
        stats
    }

    /// Wait up to the drain grace for worker processes to exit after
    /// their Shutdown frame; kill whatever is still running.
    fn drain_children(&self) {
        let mut children = self.children.lock().unwrap();
        if children.is_empty() {
            return;
        }
        let deadline = Instant::now() + Duration::from_millis(self.drain_grace_ms);
        loop {
            let mut still_running = 0;
            for child in children.iter_mut().flatten() {
                if matches!(child.try_wait(), Ok(None)) {
                    still_running += 1;
                }
            }
            if still_running == 0 {
                break;
            }
            if Instant::now() >= deadline {
                for child in children.iter_mut().flatten() {
                    if matches!(child.try_wait(), Ok(None)) {
                        let _ = child.kill();
                        self.workers_killed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        // Reap every child so no zombies outlive the service.
        for child in children.iter_mut().flatten() {
            let _ = child.wait();
        }
        children.clear();
    }

    /// Shut the service down: stop the clients, join their threads /
    /// drain their processes, and return the final telemetry plus the
    /// accumulated merge records for the tuner's single-writer store
    /// fold.
    pub fn finish(mut self) -> (ServiceSummary, Vec<MergeRecord>) {
        // Cost-model telemetry must be read before shutdown consumes the
        // server.
        let (merged, observed_secs_per_genome, shard_sizes) = {
            let mut guard = self.server.lock().unwrap();
            let merged = guard
                .as_mut()
                .map(EvalServer::take_merged)
                .unwrap_or_default();
            let (observed, sizes) = guard
                .as_ref()
                .map(|s| {
                    (
                        s.cost_model().observed_secs_per_genome(),
                        s.shard_sizes().to_vec(),
                    )
                })
                .unwrap_or((None, Vec::new()));
            (merged, observed, sizes)
        };
        let stats = self.teardown().expect("finish tears down once");
        (
            ServiceSummary {
                transport: self.transport,
                process_workers: self.process_workers,
                clients: self.launched,
                clients_lost: stats.clients_lost,
                shards: stats.shards,
                redispatched_shards: stats.redispatched_shards,
                duplicate_results: stats.duplicate_results,
                merged_records: stats.merged_records,
                merged_artifacts: stats.merged_artifacts,
                farm_compiles: stats.client_compiles,
                farm_full_compiles: stats.client_full_compiles,
                farm_ast_reuse: stats.client_ast_reuse,
                farm_lower_reuse: stats.client_lower_reuse,
                clients_joined: stats.clients_joined,
                evicted_clients: stats.evicted_clients,
                heartbeat_misses: stats.heartbeat_misses,
                workers_killed: self.workers_killed.load(Ordering::Relaxed),
                cost_observations: stats.cost_observations,
                observed_secs_per_genome,
                shard_sizes,
            },
            merged,
        )
    }
}

impl Drop for ServiceHandle {
    /// Error paths between launch and [`ServiceHandle::finish`] (e.g.
    /// [`crate::TuneError::Baseline`] from the engine build) must not
    /// leak blocked client/reader threads or the socket file.
    fn drop(&mut self) {
        self.teardown();
    }
}

/// `Arc<EvaldError>` adapted into the abort's source chain (std has no
/// blanket `Error for Arc<T>`): the same allocation is shared with
/// [`ServiceHandle::take_failure`], so the tuner's typed error and the
/// abort's `source()` report one and the same failure.
#[derive(Debug)]
pub(crate) struct SharedEvaldError(pub(crate) Arc<EvaldError>);

impl std::fmt::Display for SharedEvaldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for SharedEvaldError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.0.source()
    }
}

impl MissExecutor for ServiceHandle {
    fn execute(&self, misses: &[Vec<bool>]) -> Result<Vec<MissResult>, EvalAbort> {
        let mut guard = self.server.lock().unwrap();
        let Some(server) = guard.as_mut() else {
            return Err(EvalAbort::new(
                "evaluation service already finished — no substrate left to evaluate on",
            ));
        };
        let evals = match server.evaluate(misses) {
            Ok(evals) => evals,
            // Losing *every* client mid-run leaves nothing to evaluate
            // on, and there is no degraded answer that keeps the GA
            // honest — so the *batch* aborts: the error unwinds through
            // `Ga::run_batched` to the tuner, which surfaces it as
            // `TuneError::Service`. The process hosting the service — a
            // CLI run or a multi-tenant daemon — keeps running and
            // decides whether to relaunch the farm. (Losing any proper
            // subset of clients is handled by re-dispatch and never
            // gets here.)
            Err(e) => {
                let message = format!(
                    "evaluation service failed with work outstanding: {e}{}",
                    server
                        .last_loss()
                        .map(|l| format!(" (last client loss: {l})"))
                        .unwrap_or_default()
                );
                let cause = Arc::new(e);
                *self.failure.lock().unwrap() = Some(Arc::clone(&cause));
                return Err(EvalAbort::with_source(message, SharedEvaldError(cause)));
            }
        };
        Ok(evals
            .into_iter()
            .map(|e| MissResult {
                fitness: e.fitness(),
                failed: e.failed,
                wall_seconds: e.wall_seconds(),
            })
            .collect())
    }
}

/// A [`MissExecutor`] that can also report the typed service failure
/// behind its most recent batch abort.
///
/// [`Tuner::tune_with_executor`](crate::Tuner::tune_with_executor)
/// accepts any implementor, so an embedder that multiplexes several
/// tuning runs onto shared evaluation substrate — the `bintuner daemon`
/// — plugs its farm proxy into the unchanged tuning pipeline and still
/// gets a fully chained [`crate::TuneError::Service`] when the
/// substrate dies.
pub trait ServiceExecutor: MissExecutor {
    /// Take the failure recorded by the most recent aborted
    /// [`MissExecutor::execute`] call, if any.
    fn take_failure(&self) -> Option<Arc<EvaldError>>;
}

impl ServiceExecutor for ServiceHandle {
    fn take_failure(&self) -> Option<Arc<EvaldError>> {
        ServiceHandle::take_failure(self)
    }
}
