//! Figure 1: the Mirai IoT botnet dataset — (a) the trend of default vs
//! non-default compiler optimization settings among 2019 variants, and
//! (b) the CDF of anti-virus detection counts for the two groups.
//!
//! Reproduction: a stream of synthetic Mirai variants is generated month
//! by month; a growing share is produced by BinTuner (non-default
//! settings), the rest by default -Ox presets. The BinComp-style
//! provenance classifier recovers the split; the AV ensemble shows the
//! non-default group evades far more engines.

use avscan::{Ensemble, ProvenanceClassifier};
use bench::{full_run, print_table, tune};
use minicc::{Compiler, CompilerKind, OptLevel};
use rand::prelude::*;
use rand::rngs::StdRng;

fn main() {
    let mirai = corpus::malware(corpus::MalwareFamily::Mirai, 0);
    let cc = Compiler::new(CompilerKind::Gcc);
    let arch = binrep::Arch::X86;
    let reference = cc
        .compile_preset(&mirai.module, OptLevel::O2, arch)
        .unwrap();
    let ensemble = Ensemble::from_reference(&reference, 54, 0xF01);
    let classifier = ProvenanceClassifier::train(&mirai.module, arch, 0.05);

    // One tuned flag vector per "campaign" (reused across months, like a
    // builder kit) — non-default settings.
    let tuned = tune(&mirai, CompilerKind::Gcc, 70, 0xF02);
    let mut rng = StdRng::seed_from_u64(0xF03);
    let per_month = if full_run() { 40 } else { 12 };

    let mut rows = Vec::new();
    let mut default_detections: Vec<usize> = Vec::new();
    let mut nondefault_detections: Vec<usize> = Vec::new();
    let mut cum_default = 0usize;
    let mut cum_nondefault = 0usize;
    for month in 1..=12u32 {
        // Non-default share grows through the year (paper: reaches 42%).
        let nondefault_share = 0.10 + 0.32 * (month as f64 / 12.0);
        let mut classified_nondefault = 0usize;
        let mut classified_default = 0usize;
        for k in 0..per_month {
            let variant =
                corpus::malware(corpus::MalwareFamily::Mirai, (month as u64) << 8 | k as u64);
            let is_nondefault = rng.gen_bool(nondefault_share);
            let bin = if is_nondefault {
                cc.compile(&variant.module, &tuned.best_flags, arch)
                    .unwrap()
            } else {
                let level = *[OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::Os]
                    .choose(&mut rng)
                    .unwrap();
                cc.compile_preset(&variant.module, level, arch).unwrap()
            };
            let p = classifier.classify(&bin);
            if p.non_default {
                classified_nondefault += 1;
            } else {
                classified_default += 1;
            }
            let det = ensemble.detection_count(&bin);
            if is_nondefault {
                nondefault_detections.push(det);
            } else {
                default_detections.push(det);
            }
        }
        cum_default += classified_default;
        cum_nondefault += classified_nondefault;
        rows.push(vec![
            format!("2019-{month:02}"),
            cum_default.to_string(),
            cum_nondefault.to_string(),
            format!(
                "{:.0}%",
                100.0 * cum_nondefault as f64 / (cum_default + cum_nondefault) as f64
            ),
        ]);
    }
    print_table(
        "Figure 1(a): Mirai compiler provenance (cumulative, classified)",
        &["month", "default -Ox", "non-default", "non-default share"],
        &rows,
    );
    println!("paper endpoint: 42% of variants non-default by Dec 2019");

    // (b) detection-count CDF.
    let cdf = |xs: &[usize]| -> Vec<(usize, f64)> {
        let mut points = Vec::new();
        for t in (0..=54).step_by(6) {
            let frac = xs.iter().filter(|&&x| x <= t).count() as f64 / xs.len().max(1) as f64;
            points.push((t, frac));
        }
        points
    };
    let dd = cdf(&default_detections);
    let nd = cdf(&nondefault_detections);
    let rows: Vec<Vec<String>> = dd
        .iter()
        .zip(&nd)
        .map(|((t, fd), (_, fn_))| {
            vec![format!("≤{t}"), format!("{:.2}", fd), format!("{:.2}", fn_)]
        })
        .collect();
    print_table(
        "Figure 1(b): CDF of AV detection counts",
        &["detections", "default group", "non-default group"],
        &rows,
    );
    let mean = |xs: &[usize]| xs.iter().sum::<usize>() as f64 / xs.len().max(1) as f64;
    println!(
        "mean detections: default {:.1}, non-default {:.1} (non-default must be lower)",
        mean(&default_detections),
        mean(&nondefault_detections)
    );
}
