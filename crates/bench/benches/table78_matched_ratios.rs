//! Tables 7 & 8: detailed comparison metrics — the ratio of matched basic
//! blocks, matched CFG edges, and matched non-library functions for each
//! program under each optimization setting vs. -O0, plus BinTuner's
//! iteration count and modelled hours.
//!
//! Reproduction target: ratios fall as the setting gets more aggressive,
//! with BinTuner's column the lowest; CFG edges are the most fragile
//! representation (§5.2).

use bench::{print_table, selected_benchmarks, tune};
use minicc::{Compiler, CompilerKind, OptLevel};

fn main() {
    for kind in [CompilerKind::Llvm, CompilerKind::Gcc] {
        let cc = Compiler::new(kind);
        let first = match kind {
            CompilerKind::Llvm => OptLevel::O1,
            CompilerKind::Gcc => OptLevel::Os,
        };
        let mut rows = Vec::new();
        let mut edge_drop_count = 0usize;
        let mut total = 0usize;
        for bench in selected_benchmarks(true) {
            if corpus::excluded_for(kind).contains(&bench.name) {
                continue;
            }
            let o0 = cc
                .compile_preset(&bench.module, OptLevel::O0, binrep::Arch::X86)
                .unwrap();
            let ratio_tuple = |bin: &binrep::Binary| {
                let r = binhunt::diff_binaries_with_beam(&o0, bin, 5);
                (
                    r.matched_block_ratio,
                    r.matched_edge_ratio,
                    r.matched_function_ratio,
                )
            };
            let fmt = |(b, e, f): (f64, f64, f64)| format!("({b:.2}, {e:.2}, {f:.2})");
            let result = tune(&bench, kind, 80, 0x7AB7);
            let r_first = ratio_tuple(
                &cc.compile_preset(&bench.module, first, binrep::Arch::X86)
                    .unwrap(),
            );
            let r2 = ratio_tuple(
                &cc.compile_preset(&bench.module, OptLevel::O2, binrep::Arch::X86)
                    .unwrap(),
            );
            let r3 = ratio_tuple(
                &cc.compile_preset(&bench.module, OptLevel::O3, binrep::Arch::X86)
                    .unwrap(),
            );
            let rt = ratio_tuple(&result.best_binary);
            // §5.2: CFG edges most susceptible — check tuned edges < tuned blocks.
            total += 1;
            if rt.1 <= rt.0 + 1e-9 {
                edge_drop_count += 1;
            }
            rows.push(vec![
                bench.name.to_string(),
                fmt(r_first),
                fmt(r2),
                fmt(r3),
                fmt(rt),
                result.iterations.to_string(),
                format!("{:.2}", result.simulated_hours),
            ]);
        }
        print_table(
            &format!(
                "Table {} ({kind}): matched (blocks, CFG edges, functions) vs O0",
                if kind == CompilerKind::Llvm { "7" } else { "8" }
            ),
            &[
                "program",
                &format!("{first} vs O0"),
                "O2 vs O0",
                "O3 vs O0",
                "BinTuner vs O0",
                "# iter",
                "hours",
            ],
            &rows,
        );
        println!(
            "programs where CFG-edge ratio ≤ block ratio under BinTuner: {edge_drop_count}/{total} (CFG most fragile)"
        );
    }
}
