//! Figure 8: Precision@1 of prominent binary-diffing tools under four
//! compilation settings: (a) GCC & Coreutils with {O1, O3, Os, BinTuner},
//! (b) LLVM & OpenSSL with {O1, O3, Obfuscator-LLVM, BinTuner}.
//!
//! Reproduction targets (shape): precision declines as settings get more
//! aggressive; BinTuner is the worst case and even beats O-LLVM; IMF-SIM
//! is the most robust tool.

use bench::{print_table, tune};
use bintuner::{obfuscate, ObfuscatorConfig};
use difftools::{precision_at_1, Tool};
use minicc::{Compiler, CompilerKind, OptLevel};

fn main() {
    // (a) GCC & Coreutils — INNEREYE only works with LLVM (paper note).
    run_suite(
        "Figure 8(a): GCC & Coreutils",
        CompilerKind::Gcc,
        corpus::coreutils(),
        &[
            Tool::Asm2Vec,
            Tool::VulSeeker,
            Tool::ImfSim,
            Tool::CoP,
            Tool::MultiMh,
            Tool::BinSlayer,
        ],
        &[
            ("O1", Setting::Level(OptLevel::O1)),
            ("O3", Setting::Level(OptLevel::O3)),
            ("Os", Setting::Level(OptLevel::Os)),
            ("BinTuner", Setting::Tuned),
        ],
    );
    // (b) LLVM & OpenSSL — all seven tools, plus Obfuscator-LLVM.
    run_suite(
        "Figure 8(b): LLVM & OpenSSL",
        CompilerKind::Llvm,
        corpus::openssl(),
        &Tool::ALL,
        &[
            ("O1", Setting::Level(OptLevel::O1)),
            ("O3", Setting::Level(OptLevel::O3)),
            ("O-LLVM", Setting::Ollvm),
            ("BinTuner", Setting::Tuned),
        ],
    );
}

#[derive(Clone, Copy)]
enum Setting {
    Level(OptLevel),
    Ollvm,
    Tuned,
}

fn run_suite(
    title: &str,
    kind: CompilerKind,
    bench: corpus::Benchmark,
    tools: &[Tool],
    settings: &[(&str, Setting)],
) {
    let cc = Compiler::new(kind);
    let o0 = cc
        .compile_preset(&bench.module, OptLevel::O0, binrep::Arch::X86)
        .unwrap();
    let binaries: Vec<(String, binrep::Binary)> = settings
        .iter()
        .map(|(name, s)| {
            let bin = match s {
                Setting::Level(l) => cc
                    .compile_preset(&bench.module, *l, binrep::Arch::X86)
                    .unwrap(),
                Setting::Ollvm => {
                    let mut b = cc
                        .compile_preset(&bench.module, OptLevel::O2, binrep::Arch::X86)
                        .unwrap();
                    obfuscate(&mut b, &ObfuscatorConfig::default());
                    b
                }
                Setting::Tuned => tune(&bench, kind, 90, 0xF18).best_binary,
            };
            (name.to_string(), bin)
        })
        .collect();
    let mut rows = Vec::new();
    for tool in tools {
        let mut cells = vec![tool.name().to_string()];
        let mut prev = f64::INFINITY;
        let mut monotone = true;
        for (_, bin) in &binaries {
            let p = precision_at_1(*tool, &o0, bin, 0xF18);
            if p > prev + 0.2 {
                monotone = false;
            }
            prev = p;
            cells.push(format!("{p:.2}"));
        }
        cells.push(if monotone {
            "~decl".into()
        } else {
            "mixed".into()
        });
        rows.push(cells);
    }
    let mut headers: Vec<&str> = vec!["tool"];
    let names: Vec<String> = settings.iter().map(|(n, _)| n.to_string()).collect();
    headers.extend(names.iter().map(String::as_str));
    headers.push("trend");
    print_table(title, &headers, &rows);
}
